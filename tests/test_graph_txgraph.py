"""Tests for the TxGraph container."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import TxGraph


class TestNodes:
    def test_add_node_is_idempotent(self):
        g = TxGraph()
        g.add_node("a")
        g.add_node("a")
        assert g.num_nodes == 1

    def test_node_attrs_merge(self):
        g = TxGraph()
        g.add_node("a", color="red")
        g.add_node("a", size=3)
        assert g.node_attr("a", "color") == "red"
        assert g.node_attr("a", "size") == 3

    def test_node_attr_default(self):
        g = TxGraph()
        g.add_node("a")
        assert g.node_attr("a", "missing", default=7) == 7

    def test_node_index_follows_insertion_order(self):
        g = TxGraph()
        for name in ("x", "y", "z"):
            g.add_node(name)
        assert [g.node_index(n) for n in ("x", "y", "z")] == [0, 1, 2]


class TestEdges:
    def test_edge_merging_accumulates_amount_and_count(self, toy_graph):
        edge = toy_graph.get_edge("a", "b")
        assert edge.amount == pytest.approx(4.0)
        assert edge.count == 2

    def test_edge_merge_keeps_weighted_mean_timestamp(self, toy_graph):
        edge = toy_graph.get_edge("a", "b")
        assert edge.timestamp == pytest.approx(150.0)

    def test_directed_edges_are_distinct(self):
        g = TxGraph()
        g.add_edge("a", "b", amount=1.0)
        g.add_edge("b", "a", amount=2.0)
        assert g.num_edges == 2

    def test_has_edge(self, toy_graph):
        assert toy_graph.has_edge("a", "b")
        assert not toy_graph.has_edge("b", "a")

    def test_out_and_in_edges(self, toy_graph):
        out_dsts = {e.dst for e in toy_graph.out_edges("a")}
        in_srcs = {e.src for e in toy_graph.in_edges("a")}
        assert out_dsts == {"b", "e"}
        assert in_srcs == {"d"}

    def test_neighbors_union_of_directions(self, toy_graph):
        assert toy_graph.neighbors("a") == {"b", "d", "e"}

    def test_degree_counts_both_directions(self, toy_graph):
        assert toy_graph.degree("a") == 3


class TestMatrices:
    def test_adjacency_shape_and_entries(self, toy_graph):
        adj = toy_graph.adjacency_matrix()
        assert adj.shape == (5, 5)
        i, j = toy_graph.node_index("a"), toy_graph.node_index("b")
        assert adj[i, j] == 1.0
        assert adj[j, i] == 0.0

    def test_weighted_adjacency_uses_amounts(self, toy_graph):
        adj = toy_graph.adjacency_matrix(weighted=True)
        i, j = toy_graph.node_index("a"), toy_graph.node_index("b")
        assert adj[i, j] == pytest.approx(4.0)

    def test_symmetric_adjacency(self, toy_graph):
        adj = toy_graph.adjacency_matrix(symmetric=True)
        np.testing.assert_allclose(adj, adj.T)

    def test_feature_matrix_with_dim_fallback(self):
        g = TxGraph()
        g.add_node("a", features=np.arange(3.0))
        g.add_node("b")
        feats = g.feature_matrix(dim=3)
        np.testing.assert_allclose(feats[1], np.zeros(3))

    def test_feature_matrix_missing_raises_without_dim(self):
        g = TxGraph()
        g.add_node("a")
        with pytest.raises(KeyError):
            g.feature_matrix()

    def test_edge_feature_matrix(self, toy_graph):
        feats = toy_graph.edge_feature_matrix()
        assert feats.shape == (toy_graph.num_edges, 2)
        assert feats[:, 1].min() >= 1.0


class TestSubgraph:
    def test_subgraph_keeps_only_internal_edges(self, toy_graph):
        sub = toy_graph.subgraph(["a", "b", "c"])
        assert sub.num_nodes == 3
        assert sub.has_edge("a", "b") and sub.has_edge("b", "c")
        assert not sub.has_edge("c", "d")

    def test_subgraph_preserves_attributes(self):
        g = TxGraph()
        g.add_node("a", label="exchange")
        g.add_edge("a", "b", amount=1.0)
        sub = g.subgraph(["a", "b"])
        assert sub.node_attr("a", "label") == "exchange"

    def test_copy_is_independent(self, toy_graph):
        clone = toy_graph.copy()
        clone.add_edge("z", "a", amount=1.0)
        assert not toy_graph.has_node("z")

    def test_to_networkx_round_trip_counts(self, toy_graph):
        nx_graph = toy_graph.to_networkx()
        assert nx_graph.number_of_nodes() == toy_graph.num_nodes
        assert nx_graph.number_of_edges() == toy_graph.num_edges


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)), min_size=1, max_size=30))
def test_adjacency_nonzeros_match_edge_count(pairs):
    g = TxGraph()
    for src, dst in pairs:
        g.add_edge(src, dst, amount=1.0)
    adjacency = g.adjacency_matrix()
    assert int((adjacency > 0).sum()) == g.num_edges


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)), min_size=1, max_size=20))
def test_subgraph_never_gains_edges(pairs):
    g = TxGraph()
    for src, dst in pairs:
        g.add_edge(src, dst, amount=1.0)
    sub = g.subgraph(list(g.nodes)[: max(1, g.num_nodes // 2)])
    assert sub.num_edges <= g.num_edges
    assert sub.num_nodes <= g.num_nodes


def _assert_graphs_bit_identical(a: TxGraph, b: TxGraph) -> None:
    assert a.nodes == b.nodes
    assert [(e.src, e.dst) for e in a.edges] == [(e.src, e.dst) for e in b.edges]
    for ea, eb in zip(a.edges, b.edges):
        assert ea.amount == eb.amount          # bitwise, no approx
        assert ea.count == eb.count
        assert ea.timestamp == eb.timestamp


class TestAddEdgesBulk:
    """add_edges_bulk must be bit-identical to the sequential add_edge loop."""

    @staticmethod
    def random_stream(rng, n, num_nodes=9, self_loops=True):
        srcs = rng.integers(0, num_nodes, size=n)
        dsts = rng.integers(0, num_nodes, size=n)
        if not self_loops:
            dsts = np.where(dsts == srcs, (dsts + 1) % num_nodes, dsts)
        amounts = rng.lognormal(0.0, 1.0, size=n)
        timestamps = rng.uniform(0.0, 1e6, size=n)
        return srcs, dsts, amounts, timestamps

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_sequential_add_edge(self, seed):
        rng = np.random.default_rng(seed)
        srcs, dsts, amounts, timestamps = self.random_stream(rng, 400)
        sequential = TxGraph()
        for i in range(len(srcs)):
            sequential.add_edge(int(srcs[i]), int(dsts[i]),
                                amount=float(amounts[i]), count=1,
                                timestamp=float(timestamps[i]))
        bulk = TxGraph()
        bulk.add_edges_bulk(srcs, dsts, amounts=amounts, timestamps=timestamps)
        _assert_graphs_bit_identical(sequential, bulk)

    def test_matches_with_node_keys_table(self):
        rng = np.random.default_rng(5)
        srcs, dsts, amounts, timestamps = self.random_stream(rng, 300)
        node_keys = [f"0x{i:02d}" for i in range(9)]
        sequential = TxGraph()
        for i in range(len(srcs)):
            sequential.add_edge(node_keys[srcs[i]], node_keys[dsts[i]],
                                amount=float(amounts[i]), count=1,
                                timestamp=float(timestamps[i]))
        bulk = TxGraph()
        bulk.add_edges_bulk(srcs, dsts, amounts=amounts, timestamps=timestamps,
                            node_keys=node_keys)
        _assert_graphs_bit_identical(sequential, bulk)
        assert all(isinstance(node, str) for node in bulk.nodes)

    def test_variable_counts_and_zero_count_guard(self):
        rng = np.random.default_rng(9)
        srcs, dsts, amounts, timestamps = self.random_stream(rng, 200, num_nodes=4)
        counts = rng.integers(0, 3, size=len(srcs))
        sequential = TxGraph()
        for i in range(len(srcs)):
            sequential.add_edge(int(srcs[i]), int(dsts[i]),
                                amount=float(amounts[i]), count=int(counts[i]),
                                timestamp=float(timestamps[i]))
        bulk = TxGraph()
        bulk.add_edges_bulk(srcs, dsts, amounts=amounts, counts=counts,
                            timestamps=timestamps)
        _assert_graphs_bit_identical(sequential, bulk)

    def test_merges_into_existing_graph(self):
        rng = np.random.default_rng(11)
        srcs, dsts, amounts, timestamps = self.random_stream(rng, 120, num_nodes=5)
        sequential = TxGraph()
        bulk = TxGraph()
        for g in (sequential, bulk):
            g.add_edge(0, 1, amount=2.0, timestamp=10.0)
            g.add_edge(4, 2, amount=1.0, timestamp=20.0)
        for i in range(len(srcs)):
            sequential.add_edge(int(srcs[i]), int(dsts[i]),
                                amount=float(amounts[i]), count=1,
                                timestamp=float(timestamps[i]))
        bulk.add_edges_bulk(srcs, dsts, amounts=amounts, timestamps=timestamps)
        _assert_graphs_bit_identical(sequential, bulk)

    def test_empty_stream_is_a_noop(self):
        g = TxGraph()
        g.add_edges_bulk(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert g.num_nodes == 0 and g.num_edges == 0

    def test_out_of_range_codes_raise(self):
        g = TxGraph()
        with pytest.raises(ValueError):
            g.add_edges_bulk(np.array([0, 3]), np.array([1, 0]),
                             node_keys=["a", "b"])
        with pytest.raises(ValueError):
            # Negative codes must not wrap around via python indexing.
            g.add_edges_bulk(np.array([0, -1]), np.array([1, 0]),
                             node_keys=["a", "b"])
        assert g.num_nodes == 0 and g.num_edges == 0

    def test_object_dtype_falls_back_to_sequential(self):
        bulk = TxGraph()
        bulk.add_edges_bulk(np.array(["a", "a"], dtype=object),
                            np.array(["b", "c"], dtype=object),
                            amounts=np.array([1.0, 2.0]),
                            timestamps=np.array([5.0, 6.0]))
        assert bulk.nodes == ["a", "b", "c"]
        assert bulk.num_edges == 2


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 6), st.integers(0, 6),
              st.floats(0.001, 100.0, allow_nan=False),
              st.floats(0.0, 1000.0, allow_nan=False)),
    min_size=1, max_size=50))
def test_add_edges_bulk_property_parity(rows):
    sequential = TxGraph()
    for src, dst, amount, ts in rows:
        sequential.add_edge(src, dst, amount=amount, timestamp=ts)
    bulk = TxGraph()
    bulk.add_edges_bulk(np.array([r[0] for r in rows]),
                        np.array([r[1] for r in rows]),
                        amounts=np.array([r[2] for r in rows]),
                        timestamps=np.array([r[3] for r in rows]))
    _assert_graphs_bit_identical(sequential, bulk)


class TestBulkVersionEpoch:
    """Pin the mutation-epoch accounting of ``add_edges_bulk`` replays."""

    @staticmethod
    def _seeded():
        g = TxGraph()
        g.add_edge("a", "b", amount=1.0, count=1, timestamp=10.0)
        g.add_edge("b", "c", amount=2.0, count=1, timestamp=20.0)
        return g

    def test_all_replay_bulk_bumps_version_once_per_merge(self):
        """Regression: the all-replay early return used to bump ``_version``
        one extra time on top of the per-merge bumps the replayed
        ``add_edge`` calls already made."""
        g = self._seeded()
        before = g._version
        g.add_edges_bulk(np.array([0, 1]), np.array([1, 2]),
                         amounts=np.array([3.0, 4.0]),
                         timestamps=np.array([30.0, 40.0]),
                         node_keys=["a", "b", "c"])
        assert g._version == before + 2

    def test_version_parity_with_sequential_path(self):
        """Bulk and sequential application of the same replay rows leave the
        graph at the same epoch — so cache-validity behaviour (``to_csr``
        keys on ``_version``) is path-independent."""
        bulk, seq = self._seeded(), self._seeded()
        rows = [("a", "b", 5.0, 50.0), ("b", "c", 6.0, 60.0), ("a", "b", 7.0, 70.0)]
        bulk.add_edges_bulk(np.array([0, 1, 0]), np.array([1, 2, 1]),
                            amounts=np.array([r[2] for r in rows]),
                            timestamps=np.array([r[3] for r in rows]),
                            node_keys=["a", "b", "c"])
        for src, dst, amount, ts in rows:
            seq.add_edge(src, dst, amount=amount, count=1, timestamp=ts)
        assert bulk._version == seq._version
        _assert_graphs_bit_identical(seq, bulk)

    def test_all_replay_keeps_structure_memos(self):
        """Payload-only replays retain the warmed CSR row index: merges never
        change topology, so ``_structure_version`` (and with it the
        ``out_edges``/``in_edges`` row memo) must survive the bulk call."""
        g = self._seeded()
        list(g.out_edges("a"))              # warms the row index
        structure_before = g._structure_version
        assert g._adj_version == structure_before
        g.add_edges_bulk(np.array([0, 0]), np.array([1, 1]),
                         amounts=np.array([1.0, 1.0]),
                         timestamps=np.array([5.0, 6.0]),
                         node_keys=["a", "b", "c"])
        assert g._structure_version == structure_before
        assert g._adj_version == structure_before
        # The merged payload is visible through the retained memo.
        [edge] = [e for e in g.out_edges("a") if e.dst == "b"]
        assert edge.count == 3
