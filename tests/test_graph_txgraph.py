"""Tests for the TxGraph container."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph import TxGraph


class TestNodes:
    def test_add_node_is_idempotent(self):
        g = TxGraph()
        g.add_node("a")
        g.add_node("a")
        assert g.num_nodes == 1

    def test_node_attrs_merge(self):
        g = TxGraph()
        g.add_node("a", color="red")
        g.add_node("a", size=3)
        assert g.node_attr("a", "color") == "red"
        assert g.node_attr("a", "size") == 3

    def test_node_attr_default(self):
        g = TxGraph()
        g.add_node("a")
        assert g.node_attr("a", "missing", default=7) == 7

    def test_node_index_follows_insertion_order(self):
        g = TxGraph()
        for name in ("x", "y", "z"):
            g.add_node(name)
        assert [g.node_index(n) for n in ("x", "y", "z")] == [0, 1, 2]


class TestEdges:
    def test_edge_merging_accumulates_amount_and_count(self, toy_graph):
        edge = toy_graph.get_edge("a", "b")
        assert edge.amount == pytest.approx(4.0)
        assert edge.count == 2

    def test_edge_merge_keeps_weighted_mean_timestamp(self, toy_graph):
        edge = toy_graph.get_edge("a", "b")
        assert edge.timestamp == pytest.approx(150.0)

    def test_directed_edges_are_distinct(self):
        g = TxGraph()
        g.add_edge("a", "b", amount=1.0)
        g.add_edge("b", "a", amount=2.0)
        assert g.num_edges == 2

    def test_has_edge(self, toy_graph):
        assert toy_graph.has_edge("a", "b")
        assert not toy_graph.has_edge("b", "a")

    def test_out_and_in_edges(self, toy_graph):
        out_dsts = {e.dst for e in toy_graph.out_edges("a")}
        in_srcs = {e.src for e in toy_graph.in_edges("a")}
        assert out_dsts == {"b", "e"}
        assert in_srcs == {"d"}

    def test_neighbors_union_of_directions(self, toy_graph):
        assert toy_graph.neighbors("a") == {"b", "d", "e"}

    def test_degree_counts_both_directions(self, toy_graph):
        assert toy_graph.degree("a") == 3


class TestMatrices:
    def test_adjacency_shape_and_entries(self, toy_graph):
        adj = toy_graph.adjacency_matrix()
        assert adj.shape == (5, 5)
        i, j = toy_graph.node_index("a"), toy_graph.node_index("b")
        assert adj[i, j] == 1.0
        assert adj[j, i] == 0.0

    def test_weighted_adjacency_uses_amounts(self, toy_graph):
        adj = toy_graph.adjacency_matrix(weighted=True)
        i, j = toy_graph.node_index("a"), toy_graph.node_index("b")
        assert adj[i, j] == pytest.approx(4.0)

    def test_symmetric_adjacency(self, toy_graph):
        adj = toy_graph.adjacency_matrix(symmetric=True)
        np.testing.assert_allclose(adj, adj.T)

    def test_feature_matrix_with_dim_fallback(self):
        g = TxGraph()
        g.add_node("a", features=np.arange(3.0))
        g.add_node("b")
        feats = g.feature_matrix(dim=3)
        np.testing.assert_allclose(feats[1], np.zeros(3))

    def test_feature_matrix_missing_raises_without_dim(self):
        g = TxGraph()
        g.add_node("a")
        with pytest.raises(KeyError):
            g.feature_matrix()

    def test_edge_feature_matrix(self, toy_graph):
        feats = toy_graph.edge_feature_matrix()
        assert feats.shape == (toy_graph.num_edges, 2)
        assert feats[:, 1].min() >= 1.0


class TestSubgraph:
    def test_subgraph_keeps_only_internal_edges(self, toy_graph):
        sub = toy_graph.subgraph(["a", "b", "c"])
        assert sub.num_nodes == 3
        assert sub.has_edge("a", "b") and sub.has_edge("b", "c")
        assert not sub.has_edge("c", "d")

    def test_subgraph_preserves_attributes(self):
        g = TxGraph()
        g.add_node("a", label="exchange")
        g.add_edge("a", "b", amount=1.0)
        sub = g.subgraph(["a", "b"])
        assert sub.node_attr("a", "label") == "exchange"

    def test_copy_is_independent(self, toy_graph):
        clone = toy_graph.copy()
        clone.add_edge("z", "a", amount=1.0)
        assert not toy_graph.has_node("z")

    def test_to_networkx_round_trip_counts(self, toy_graph):
        nx_graph = toy_graph.to_networkx()
        assert nx_graph.number_of_nodes() == toy_graph.num_nodes
        assert nx_graph.number_of_edges() == toy_graph.num_edges


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)), min_size=1, max_size=30))
def test_adjacency_nonzeros_match_edge_count(pairs):
    g = TxGraph()
    for src, dst in pairs:
        g.add_edge(src, dst, amount=1.0)
    adjacency = g.adjacency_matrix()
    assert int((adjacency > 0).sum()) == g.num_edges


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 6), st.integers(0, 6)), min_size=1, max_size=20))
def test_subgraph_never_gains_edges(pairs):
    g = TxGraph()
    for src, dst in pairs:
        g.add_edge(src, dst, amount=1.0)
    sub = g.subgraph(list(g.nodes)[: max(1, g.num_nodes // 2)])
    assert sub.num_edges <= g.num_edges
    assert sub.num_nodes <= g.num_nodes
