"""Tests for the 14 baseline classifiers behind the common interface."""

import numpy as np
import pytest

from repro.baselines import (
    BERT4ETHClassifier,
    BaselineClassifier,
    GCNClassifier,
    baseline_registry,
)
from repro.metrics import accuracy

FAST_GNN_KWARGS = dict(hidden_dim=8, epochs=3)


@pytest.fixture(scope="module")
def baseline_task(small_dataset):
    samples, labels = small_dataset.binary_task("exchange", rng=np.random.default_rng(5))
    return samples[:16], labels[:16]


def fast_registry():
    """The full registry re-parameterised for test speed."""
    registry = baseline_registry(seed=0)
    for model in registry.values():
        if hasattr(model, "hidden_dim"):
            model.hidden_dim = 8
        if hasattr(model, "epochs") and not hasattr(model, "walk_length"):
            model.epochs = 3
        if hasattr(model, "walk_length"):
            model.walk_length = 6
            model.walks_per_node = 1
            model.dim = 8
    return registry


class TestRegistry:
    def test_fourteen_baselines(self):
        assert len(baseline_registry()) == 14

    def test_names_match_keys(self):
        for key, model in baseline_registry().items():
            assert model.name == key

    def test_base_class_interface_is_abstract(self):
        with pytest.raises(NotImplementedError):
            BaselineClassifier().fit([], [])
        with pytest.raises(NotImplementedError):
            BaselineClassifier().predict_proba([])


@pytest.mark.slow
class TestAllBaselines:
    """Trains all 14 baselines end to end — the slow tail of the tier-1 suite."""

    @pytest.mark.parametrize("name", sorted(baseline_registry()))
    def test_fit_predict_evaluate(self, name, baseline_task):
        samples, labels = baseline_task
        model = fast_registry()[name]
        model.fit(samples, labels)
        probs = model.predict_proba(samples)
        assert probs.shape == (len(samples),)
        assert np.all(probs >= 0.0) and np.all(probs <= 1.0)
        predictions = model.predict(samples)
        assert set(np.unique(predictions)) <= {0, 1}
        report = model.evaluate(samples, labels)
        assert set(report) == {"precision", "recall", "f1", "accuracy"}

    def test_gnn_baseline_learns_training_set(self, baseline_task):
        samples, labels = baseline_task
        model = GCNClassifier(hidden_dim=16, epochs=10, seed=0)
        model.fit(samples, labels)
        assert accuracy(labels, model.predict(samples)) >= 0.7

    def test_unfitted_gnn_baseline_raises(self, baseline_task):
        samples, _labels = baseline_task
        with pytest.raises(RuntimeError):
            GCNClassifier(**FAST_GNN_KWARGS).predict_proba(samples)

    def test_label_length_mismatch_raises(self, baseline_task):
        samples, labels = baseline_task
        with pytest.raises(ValueError):
            GCNClassifier(**FAST_GNN_KWARGS).fit(samples, labels[:-1])

    def test_structure_only_variant_runs(self, baseline_task):
        samples, labels = baseline_task
        model = GCNClassifier(hidden_dim=8, epochs=3, use_node_features=False, seed=0)
        model.fit(samples, labels)
        assert model.predict(samples).shape == (len(samples),)

    def test_bert4eth_tokenizer_shapes(self, baseline_task):
        samples, _labels = baseline_task
        model = BERT4ETHClassifier(**FAST_GNN_KWARGS)
        tokens = model._tokenize(samples[0])
        assert tokens.ndim == 2 and tokens.shape[1] == 4
        assert tokens.shape[0] <= model.max_sequence_length

    def test_bert4eth_handles_center_with_no_edges(self, baseline_task, small_dataset):
        model = BERT4ETHClassifier(**FAST_GNN_KWARGS)
        # Construct a degenerate sample graph with an isolated centre.
        from repro.data.dataset import AccountSubgraph
        from repro.graph import TxGraph

        graph = TxGraph()
        graph.add_node("0xlonely")
        sample = AccountSubgraph(center="0xlonely", category=None, graph=graph,
                                 node_features=np.zeros((1, 15)), center_index=0)
        tokens = model._tokenize(sample)
        assert tokens.shape == (1, 4)

    def test_deterministic_given_seed(self, baseline_task):
        samples, labels = baseline_task
        a = GCNClassifier(**FAST_GNN_KWARGS, seed=1).fit(samples, labels).predict_proba(samples)
        b = GCNClassifier(**FAST_GNN_KWARGS, seed=1).fit(samples, labels).predict_proba(samples)
        np.testing.assert_allclose(a, b)
