"""Tests for the dense GNN layers."""

import numpy as np
import pytest

from repro.gnn import (
    APPNPPropagation,
    GATLayer,
    GCNLayer,
    GINLayer,
    GraphSAGELayer,
    normalize_adjacency,
)
from repro.nn import Adam, Tensor


@pytest.fixture()
def small_graph(rng):
    adjacency = np.array([
        [0, 1, 1, 0],
        [1, 0, 0, 1],
        [1, 0, 0, 0],
        [0, 1, 0, 0],
    ], dtype=float)
    features = rng.normal(size=(4, 6))
    return adjacency, features


class TestNormalizeAdjacency:
    def test_symmetric_output(self, small_graph):
        adjacency, _ = small_graph
        normalized = normalize_adjacency(adjacency)
        np.testing.assert_allclose(normalized, normalized.T)

    def test_self_loops_added(self):
        normalized = normalize_adjacency(np.zeros((3, 3)))
        np.testing.assert_allclose(normalized, np.eye(3))

    def test_rows_of_regular_graph(self):
        # A 3-cycle plus self loops has every node at degree 3.
        adjacency = np.ones((3, 3)) - np.eye(3)
        normalized = normalize_adjacency(adjacency)
        np.testing.assert_allclose(normalized, np.full((3, 3), 1 / 3))

    def test_isolated_node_stays_finite(self):
        adjacency = np.zeros((2, 2))
        adjacency[0, 1] = adjacency[1, 0] = 0.0
        assert np.all(np.isfinite(normalize_adjacency(adjacency)))

    def test_non_square_raises(self):
        with pytest.raises(ValueError):
            normalize_adjacency(np.zeros((2, 3)))


class TestLayerShapes:
    @pytest.mark.parametrize("layer_cls", [GCNLayer, GATLayer, GINLayer, GraphSAGELayer])
    def test_output_shape(self, layer_cls, small_graph, rng):
        adjacency, features = small_graph
        layer = layer_cls(6, 5, rng=rng)
        out = layer(Tensor(features), adjacency)
        assert out.shape == (4, 5)

    @pytest.mark.parametrize("layer_cls", [GCNLayer, GATLayer, GINLayer, GraphSAGELayer])
    def test_gradients_reach_parameters(self, layer_cls, small_graph, rng):
        adjacency, features = small_graph
        layer = layer_cls(6, 5, rng=rng)
        layer(Tensor(features), adjacency).sum().backward()
        assert all(p.grad is not None for p in layer.parameters())

    def test_gat_multi_head_shape(self, small_graph, rng):
        adjacency, features = small_graph
        layer = GATLayer(6, 5, num_heads=3, rng=rng)
        assert layer(Tensor(features), adjacency).shape == (4, 5)

    def test_appnp_preserves_shape(self, small_graph, rng):
        adjacency, features = small_graph
        out = APPNPPropagation(k=3, alpha=0.2)(Tensor(features), adjacency)
        assert out.shape == features.shape


class TestLayerSemantics:
    def test_gcn_isolated_node_depends_only_on_itself(self, rng):
        adjacency = np.zeros((3, 3))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        layer = GCNLayer(4, 4, activation=None, rng=rng)
        features = rng.normal(size=(3, 4))
        base = layer(Tensor(features), adjacency).data.copy()
        perturbed = features.copy()
        perturbed[0] += 10.0   # change node 0; node 2 is isolated from it
        out = layer(Tensor(perturbed), adjacency).data
        np.testing.assert_allclose(out[2], base[2])
        assert not np.allclose(out[0], base[0])

    def test_gat_attention_restricted_to_neighbours(self, rng):
        adjacency = np.zeros((3, 3))
        adjacency[0, 1] = adjacency[1, 0] = 1.0
        layer = GATLayer(4, 4, rng=rng)
        features = rng.normal(size=(3, 4))
        base = layer(Tensor(features), adjacency).data.copy()
        perturbed = features.copy()
        perturbed[0] += 5.0
        out = layer(Tensor(perturbed), adjacency).data
        np.testing.assert_allclose(out[2], base[2])

    def test_gin_permutation_equivariance(self, rng):
        adjacency = np.array([[0, 1, 0], [1, 0, 1], [0, 1, 0]], dtype=float)
        features = rng.normal(size=(3, 4))
        layer = GINLayer(4, 4, rng=np.random.default_rng(1))
        out = layer(Tensor(features), adjacency).data
        perm = np.array([2, 1, 0])
        out_perm = layer(Tensor(features[perm]), adjacency[np.ix_(perm, perm)]).data
        np.testing.assert_allclose(out[perm], out_perm, atol=1e-10)

    def test_appnp_alpha_one_is_identity(self, small_graph):
        adjacency, features = small_graph
        out = APPNPPropagation(k=5, alpha=1.0)(Tensor(features), adjacency)
        np.testing.assert_allclose(out.data, features)

    def test_appnp_invalid_alpha_raises(self):
        with pytest.raises(ValueError):
            APPNPPropagation(alpha=2.0)

    def test_sage_aggregates_neighbour_mean(self, rng):
        adjacency = np.array([[0, 1], [1, 0]], dtype=float)
        layer = GraphSAGELayer(2, 2, activation=None, rng=rng)
        features = np.array([[1.0, 0.0], [0.0, 1.0]])
        out = layer(Tensor(features), adjacency).data
        expected0 = features[0] @ layer.self_linear.weight.data \
            + features[1] @ layer.neighbor_linear.weight.data \
            + layer.self_linear.bias.data + layer.neighbor_linear.bias.data
        np.testing.assert_allclose(out[0], expected0, atol=1e-10)


class TestTrainability:
    def test_gcn_learns_to_separate_two_graph_classes(self, rng):
        """A tiny end-to-end sanity check that gradients actually train a GCN.

        Node 2's output should become high when it is connected to the feature-
        carrying nodes (dense graph) and low when it is isolated (sparse graph).
        """
        layer = GCNLayer(2, 1, activation=None, rng=rng)
        optimizer = Adam(layer.parameters(), lr=0.05)
        dense = np.ones((4, 4)) - np.eye(4)
        sparse = np.zeros((4, 4))
        features = np.array([[1.0, 0.0], [0.0, 1.0], [0.0, 0.0], [0.0, 0.0]])
        for _ in range(150):
            optimizer.zero_grad()
            pos = layer(Tensor(features), dense)[2].sum()
            neg = layer(Tensor(features), sparse)[2].sum()
            loss = (1.0 - pos) ** 2 + (neg + 1.0) ** 2
            loss.backward()
            optimizer.step()
        final_pos = layer(Tensor(features), dense)[2].sum().item()
        final_neg = layer(Tensor(features), sparse)[2].sum().item()
        assert final_pos > final_neg
