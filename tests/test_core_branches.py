"""Tests for the GSG and LDG encoding branches."""

import numpy as np
import pytest

from repro.core import GSGBranch, GSGConfig, LDGBranch, LDGConfig
from repro.metrics import accuracy


@pytest.fixture(scope="module")
def tiny_task(small_dataset):
    samples, labels = small_dataset.binary_task("exchange", rng=np.random.default_rng(0))
    return samples[:14], labels[:14]


def tiny_gsg_config(**overrides) -> GSGConfig:
    config = GSGConfig(hidden_dim=8, epochs=3, contrastive_batch=4)
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def tiny_ldg_config(**overrides) -> LDGConfig:
    config = LDGConfig(hidden_dim=8, epochs=3, num_slices=3, first_pool_clusters=4)
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


class TestGSGBranch:
    def test_unfitted_predict_raises(self, tiny_task):
        samples, _labels = tiny_task
        with pytest.raises(RuntimeError):
            GSGBranch(tiny_gsg_config()).predict_scores(samples)

    def test_length_mismatch_raises(self, tiny_task):
        samples, labels = tiny_task
        with pytest.raises(ValueError):
            GSGBranch(tiny_gsg_config()).fit(samples, labels[:-1])

    def test_scores_shape_and_finiteness(self, tiny_task):
        samples, labels = tiny_task
        branch = GSGBranch(tiny_gsg_config()).fit(samples, labels)
        scores = branch.predict_scores(samples)
        assert scores.shape == (len(samples),)
        assert np.all(np.isfinite(scores))

    def test_probabilities_bounded(self, tiny_task):
        samples, labels = tiny_task
        branch = GSGBranch(tiny_gsg_config()).fit(samples, labels)
        probs = branch.predict_proba(samples)
        assert np.all(probs > 0.0) and np.all(probs < 1.0)

    def test_training_separates_classes_on_train_set(self, tiny_task):
        samples, labels = tiny_task
        branch = GSGBranch(tiny_gsg_config(epochs=8)).fit(samples, labels)
        predictions = (branch.predict_proba(samples) >= 0.5).astype(int)
        assert accuracy(labels, predictions) >= 0.7

    def test_contrastive_can_be_disabled(self, tiny_task):
        samples, labels = tiny_task
        branch = GSGBranch(tiny_gsg_config(use_contrastive=False)).fit(samples, labels)
        assert np.all(np.isfinite(branch.predict_scores(samples)))

    def test_embed_returns_hidden_dim_vector(self, tiny_task):
        samples, labels = tiny_task
        branch = GSGBranch(tiny_gsg_config()).fit(samples, labels)
        assert branch.embed(samples[0]).shape == (8,)

    def test_deterministic_given_seed(self, tiny_task):
        samples, labels = tiny_task
        a = GSGBranch(tiny_gsg_config(seed=3)).fit(samples, labels).predict_scores(samples)
        b = GSGBranch(tiny_gsg_config(seed=3)).fit(samples, labels).predict_scores(samples)
        np.testing.assert_allclose(a, b)


class TestLDGBranch:
    def test_unfitted_predict_raises(self, tiny_task):
        samples, _labels = tiny_task
        with pytest.raises(RuntimeError):
            LDGBranch(tiny_ldg_config()).predict_scores(samples)

    def test_length_mismatch_raises(self, tiny_task):
        samples, labels = tiny_task
        with pytest.raises(ValueError):
            LDGBranch(tiny_ldg_config()).fit(samples, labels[:-1])

    def test_scores_shape_and_finiteness(self, tiny_task):
        samples, labels = tiny_task
        branch = LDGBranch(tiny_ldg_config()).fit(samples, labels)
        scores = branch.predict_scores(samples)
        assert scores.shape == (len(samples),)
        assert np.all(np.isfinite(scores))

    def test_training_separates_classes_on_train_set(self, tiny_task):
        samples, labels = tiny_task
        branch = LDGBranch(tiny_ldg_config(epochs=8)).fit(samples, labels)
        predictions = (branch.predict_proba(samples) >= 0.5).astype(int)
        assert accuracy(labels, predictions) >= 0.7

    def test_slice_weights_form_distribution(self, tiny_task):
        samples, labels = tiny_task
        branch = LDGBranch(tiny_ldg_config()).fit(samples, labels)
        weights = branch.slice_weights()
        assert weights.shape == (3,)
        assert weights.sum() == pytest.approx(1.0)
        assert np.all(weights > 0.0)

    def test_slice_weights_before_fit_raise(self):
        with pytest.raises(RuntimeError):
            LDGBranch(tiny_ldg_config()).slice_weights()

    def test_single_pooling_layer_configuration(self, tiny_task):
        samples, labels = tiny_task
        branch = LDGBranch(tiny_ldg_config(pooling_layers=1)).fit(samples, labels)
        assert np.all(np.isfinite(branch.predict_scores(samples)))

    def test_three_pooling_layers_configuration(self, tiny_task):
        samples, labels = tiny_task
        branch = LDGBranch(tiny_ldg_config(pooling_layers=3)).fit(samples, labels)
        assert np.all(np.isfinite(branch.predict_scores(samples)))
