"""Tests for the joint calibration module and the account classification module."""

import numpy as np
import pytest

from repro.core import CalibrationConfig, JointCalibrationModule
from repro.core.classifier import CLASSIFIER_FACTORIES, AccountClassificationModule


def synthetic_branch_scores(n=200, seed=0):
    """Raw GSG/LDG-like scores where both branches carry signal."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=n)
    gsg = labels * 2.0 - 1.0 + rng.normal(scale=0.8, size=n)
    ldg = labels * 1.5 - 0.75 + rng.normal(scale=1.0, size=n)
    return gsg, ldg, labels


class TestCalibrationConfig:
    def test_method_pool_full_by_default(self):
        assert len(CalibrationConfig().method_names()) == 6

    def test_parametric_only(self):
        config = CalibrationConfig(use_nonparametric=False)
        assert set(config.method_names()) == {"temperature_scaling", "beta_calibration",
                                              "logistic_calibration"}

    def test_nonparametric_only(self):
        config = CalibrationConfig(use_parametric=False)
        assert set(config.method_names()) == {"histogram_binning", "isotonic_regression", "bbq"}


class TestJointCalibrationModule:
    def test_transform_shape(self):
        gsg, ldg, labels = synthetic_branch_scores()
        module = JointCalibrationModule().fit(gsg, ldg, labels)
        calibrated = module.transform(gsg, ldg)
        assert calibrated.shape == (len(labels), 2)

    def test_outputs_are_probabilities(self):
        gsg, ldg, labels = synthetic_branch_scores()
        calibrated = JointCalibrationModule().fit_transform(gsg, ldg, labels)
        assert np.all(calibrated >= 0.0) and np.all(calibrated <= 1.0)

    def test_calibrated_probabilities_track_labels(self):
        gsg, ldg, labels = synthetic_branch_scores(seed=2)
        calibrated = JointCalibrationModule().fit_transform(gsg, ldg, labels)
        assert calibrated[labels == 1, 0].mean() > calibrated[labels == 0, 0].mean()
        assert calibrated[labels == 1, 1].mean() > calibrated[labels == 0, 1].mean()

    def test_weights_reported_per_branch(self):
        gsg, ldg, labels = synthetic_branch_scores()
        module = JointCalibrationModule().fit(gsg, ldg, labels)
        weights = module.weights()
        assert set(weights) == {"gsg", "ldg"}
        assert len(weights["gsg"]) == 6
        assert sum(weights["gsg"].values()) == pytest.approx(1.0)

    def test_disabled_calibration_returns_scaled_confidences(self):
        gsg, ldg, labels = synthetic_branch_scores()
        module = JointCalibrationModule(CalibrationConfig(use_calibration=False))
        calibrated = module.fit_transform(gsg, ldg, labels)
        assert np.all(calibrated > 0.0) and np.all(calibrated < 1.0)
        assert module.weights() == {"gsg": {}, "ldg": {}}

    def test_non_adaptive_mode_gives_uniform_weights(self):
        gsg, ldg, labels = synthetic_branch_scores()
        module = JointCalibrationModule(CalibrationConfig(adaptive=False)).fit(gsg, ldg, labels)
        weights = module.weights()["gsg"]
        assert all(w == pytest.approx(1.0 / 6.0) for w in weights.values())

    def test_restricted_method_pools(self):
        gsg, ldg, labels = synthetic_branch_scores()
        module = JointCalibrationModule(CalibrationConfig(use_parametric=False))
        module.fit(gsg, ldg, labels)
        assert set(module.weights()["ldg"]) == {"histogram_binning", "isotonic_regression", "bbq"}


class TestAccountClassificationModule:
    def test_unknown_classifier_raises(self):
        with pytest.raises(ValueError):
            AccountClassificationModule("svm")

    @pytest.mark.parametrize("name", sorted(CLASSIFIER_FACTORIES))
    def test_every_classifier_fits_and_predicts(self, name):
        gsg, ldg, labels = synthetic_branch_scores(seed=4)
        calibrated = JointCalibrationModule().fit_transform(gsg, ldg, labels)
        module = AccountClassificationModule(name).fit(calibrated, labels)
        predictions = module.predict(calibrated)
        assert predictions.shape == labels.shape
        assert set(np.unique(predictions)) <= {0, 1}
        assert (predictions == labels).mean() > 0.7

    def test_predict_proba_in_unit_interval(self):
        gsg, ldg, labels = synthetic_branch_scores(seed=5)
        calibrated = JointCalibrationModule().fit_transform(gsg, ldg, labels)
        module = AccountClassificationModule("lightgbm").fit(calibrated, labels)
        probs = module.predict_proba(calibrated)
        assert probs.shape == labels.shape
        assert np.all(probs >= 0.0) and np.all(probs <= 1.0)
