"""Degenerate-graph edge cases across slicing, centrality and sampling.

Empty graphs, single nodes (with and without self-loops) and graphs whose
edges all share one timestamp must neither crash nor diverge between the
dense and CSR slicers, and every centrality must return finite values.
Degenerate *queries* — subgraphs over node sets with no induced edges or
with identifiers absent from the graph, ``edges_between`` on absent nodes —
must return empty results (never ``KeyError``) identically on the columnar
``TxGraph`` and the dict-backed reference path.
"""

import math

import numpy as np
import pytest

from repro.data.slicing import time_slice_adjacency, time_slice_csr
from repro.graph import TxGraph, ego_subgraph
from repro.graph.centrality import (
    degree_centrality,
    edge_centrality,
    eigenvector_centrality,
    pagerank_centrality,
)

from tests._dict_reference import DictGraphReference


def empty_graph() -> TxGraph:
    return TxGraph()


def single_node_graph() -> TxGraph:
    g = TxGraph()
    g.add_node("solo")
    return g


def self_loop_graph() -> TxGraph:
    g = TxGraph()
    g.add_edge("solo", "solo", amount=2.0, timestamp=100.0)
    return g


def same_timestamp_graph() -> TxGraph:
    g = TxGraph()
    g.add_edge("a", "b", amount=1.0, timestamp=500.0)
    g.add_edge("b", "c", amount=2.0, timestamp=500.0)
    g.add_edge("c", "a", amount=3.0, timestamp=500.0)
    g.add_edge("a", "a", amount=4.0, timestamp=500.0)
    return g


DEGENERATE_BUILDERS = [empty_graph, single_node_graph, self_loop_graph,
                       same_timestamp_graph]


class TestSlicerParity:
    @pytest.mark.parametrize("builder", DEGENERATE_BUILDERS)
    @pytest.mark.parametrize("num_slices", [1, 3])
    @pytest.mark.parametrize("weighted", [True, False])
    @pytest.mark.parametrize("cumulative", [True, False])
    def test_csr_equals_dense(self, builder, num_slices, weighted, cumulative):
        graph = builder()
        dense = time_slice_adjacency(graph, num_slices, weighted=weighted,
                                     cumulative=cumulative)
        sparse = time_slice_csr(graph, num_slices, weighted=weighted,
                                cumulative=cumulative)
        assert len(dense) == len(sparse) == num_slices
        for dense_slice, sparse_slice in zip(dense, sparse):
            np.testing.assert_array_equal(sparse_slice.to_dense(), dense_slice)

    def test_same_timestamp_edges_all_land_in_first_slice(self):
        graph = same_timestamp_graph()
        slices = time_slice_adjacency(graph, 4, weighted=True)
        assert slices[0].sum() > 0
        for later in slices[1:]:
            assert later.sum() == 0.0


class TestCentralitiesFinite:
    @pytest.mark.parametrize("builder", DEGENERATE_BUILDERS)
    @pytest.mark.parametrize("centrality", [degree_centrality,
                                            eigenvector_centrality,
                                            pagerank_centrality])
    def test_node_centralities_finite(self, builder, centrality):
        graph = builder()
        scores = centrality(graph)
        assert set(scores) == set(graph.nodes)
        assert all(math.isfinite(v) for v in scores.values())

    @pytest.mark.parametrize("builder", DEGENERATE_BUILDERS)
    @pytest.mark.parametrize("measure", ["degree", "eigenvector", "pagerank"])
    def test_edge_centralities_finite(self, builder, measure):
        graph = builder()
        scores = edge_centrality(graph, measure=measure)
        assert len(scores) == graph.num_edges
        assert all(math.isfinite(v) for v in scores.values())

    def test_empty_graph_returns_empty_dicts(self):
        graph = empty_graph()
        assert eigenvector_centrality(graph) == {}
        assert pagerank_centrality(graph) == {}
        assert degree_centrality(graph) == {}


class TestDegenerateSampling:
    def test_ego_subgraph_of_isolated_node_is_itself(self):
        graph = single_node_graph()
        sub = ego_subgraph(graph, "solo", hops=2, k=10)
        assert sub.nodes == ["solo"]
        assert sub.num_edges == 0

    def test_ego_subgraph_of_self_loop_node_keeps_loop(self):
        graph = self_loop_graph()
        sub = ego_subgraph(graph, "solo", hops=2, k=10)
        assert sub.nodes == ["solo"]
        assert sub.num_edges == 1


def _both_paths():
    """The same 4-node graph on the columnar TxGraph and the dict reference."""
    graphs = []
    for cls in (TxGraph, DictGraphReference):
        g = cls()
        g.add_edge("a", "b", amount=1.0, timestamp=10.0)
        g.add_edge("b", "c", amount=2.0, timestamp=20.0)
        g.add_node("isolated", color="grey")
        graphs.append(g)
    return graphs


class TestEmptyResultsOnBothPaths:
    """Degenerate queries return empty results, not KeyError (old and new path)."""

    def test_subgraph_with_no_induced_edges(self):
        for g in _both_paths():
            sub = g.subgraph(["a", "c", "isolated"])
            assert sub.nodes == ["a", "c", "isolated"]
            assert sub.num_edges == 0
            assert sub.edges == []

    def test_subgraph_with_absent_nodes_ignores_them(self):
        for g in _both_paths():
            sub = g.subgraph(["a", "b", "zz", "yy"])
            assert sub.nodes == ["a", "b"]
            assert sub.num_edges == 1
            assert [(e.src, e.dst) for e in sub.edges] == [("a", "b")]

    def test_subgraph_of_only_absent_nodes_is_empty(self):
        for g in _both_paths():
            sub = g.subgraph(["zz", "yy"])
            assert sub.nodes == []
            assert sub.num_edges == 0

    def test_subgraph_of_empty_node_set_is_empty(self):
        for g in _both_paths():
            sub = g.subgraph([])
            assert sub.nodes == []
            assert sub.num_edges == 0

    def test_edges_between_absent_nodes_is_empty(self):
        for g in _both_paths():
            assert g.edges_between("zz", "yy") == []
            assert g.edges_between("a", "zz") == []
            assert g.edges_between("zz", "a") == []
            assert g.edges_between("zz", "zz") == []

    def test_traversals_of_absent_node_are_empty(self):
        for g in _both_paths():
            assert list(g.out_edges("zz")) == []
            assert list(g.in_edges("zz")) == []
            assert g.neighbors("zz") == set()
            assert g.degree("zz") == 0

    def test_subgraph_preserves_attrs_of_edgeless_nodes(self):
        for g in _both_paths():
            sub = g.subgraph(["isolated"])
            assert sub.nodes == ["isolated"]
            assert sub._node_attrs["isolated"]["color"] == "grey"


class TestDegenerateQueriesOnTxGraph:
    """Columnar-specific guards that have no dict-path equivalent."""

    def test_has_edge_and_get_edge_on_absent_nodes(self):
        (g, _ref) = _both_paths()
        assert not g.has_edge("zz", "a")
        assert not g.has_edge("a", "zz")
        with pytest.raises(KeyError):
            g.get_edge("zz", "a")

    def test_empty_graph_queries(self):
        g = TxGraph()
        assert g.edges == []
        assert g.subgraph(["anything"]).nodes == []
        assert g.edges_between("u", "v") == []
        assert g.degree_vector().tolist() == []
        for arr in g.edge_arrays():
            assert len(arr) == 0

    def test_degree_vector_matches_per_node_degree(self):
        g, _ref = _both_paths()
        g.add_edge("c", "c", amount=1.0)   # self-loop counts once
        degrees = g.degree_vector()
        assert degrees.tolist() == [g.degree(node) for node in g.nodes]
