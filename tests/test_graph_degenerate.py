"""Degenerate-graph edge cases across slicing, centrality and sampling.

Empty graphs, single nodes (with and without self-loops) and graphs whose
edges all share one timestamp must neither crash nor diverge between the
dense and CSR slicers, and every centrality must return finite values.
"""

import math

import numpy as np
import pytest

from repro.data.slicing import time_slice_adjacency, time_slice_csr
from repro.graph import TxGraph, ego_subgraph
from repro.graph.centrality import (
    degree_centrality,
    edge_centrality,
    eigenvector_centrality,
    pagerank_centrality,
)


def empty_graph() -> TxGraph:
    return TxGraph()


def single_node_graph() -> TxGraph:
    g = TxGraph()
    g.add_node("solo")
    return g


def self_loop_graph() -> TxGraph:
    g = TxGraph()
    g.add_edge("solo", "solo", amount=2.0, timestamp=100.0)
    return g


def same_timestamp_graph() -> TxGraph:
    g = TxGraph()
    g.add_edge("a", "b", amount=1.0, timestamp=500.0)
    g.add_edge("b", "c", amount=2.0, timestamp=500.0)
    g.add_edge("c", "a", amount=3.0, timestamp=500.0)
    g.add_edge("a", "a", amount=4.0, timestamp=500.0)
    return g


DEGENERATE_BUILDERS = [empty_graph, single_node_graph, self_loop_graph,
                       same_timestamp_graph]


class TestSlicerParity:
    @pytest.mark.parametrize("builder", DEGENERATE_BUILDERS)
    @pytest.mark.parametrize("num_slices", [1, 3])
    @pytest.mark.parametrize("weighted", [True, False])
    @pytest.mark.parametrize("cumulative", [True, False])
    def test_csr_equals_dense(self, builder, num_slices, weighted, cumulative):
        graph = builder()
        dense = time_slice_adjacency(graph, num_slices, weighted=weighted,
                                     cumulative=cumulative)
        sparse = time_slice_csr(graph, num_slices, weighted=weighted,
                                cumulative=cumulative)
        assert len(dense) == len(sparse) == num_slices
        for dense_slice, sparse_slice in zip(dense, sparse):
            np.testing.assert_array_equal(sparse_slice.to_dense(), dense_slice)

    def test_same_timestamp_edges_all_land_in_first_slice(self):
        graph = same_timestamp_graph()
        slices = time_slice_adjacency(graph, 4, weighted=True)
        assert slices[0].sum() > 0
        for later in slices[1:]:
            assert later.sum() == 0.0


class TestCentralitiesFinite:
    @pytest.mark.parametrize("builder", DEGENERATE_BUILDERS)
    @pytest.mark.parametrize("centrality", [degree_centrality,
                                            eigenvector_centrality,
                                            pagerank_centrality])
    def test_node_centralities_finite(self, builder, centrality):
        graph = builder()
        scores = centrality(graph)
        assert set(scores) == set(graph.nodes)
        assert all(math.isfinite(v) for v in scores.values())

    @pytest.mark.parametrize("builder", DEGENERATE_BUILDERS)
    @pytest.mark.parametrize("measure", ["degree", "eigenvector", "pagerank"])
    def test_edge_centralities_finite(self, builder, measure):
        graph = builder()
        scores = edge_centrality(graph, measure=measure)
        assert len(scores) == graph.num_edges
        assert all(math.isfinite(v) for v in scores.values())

    def test_empty_graph_returns_empty_dicts(self):
        graph = empty_graph()
        assert eigenvector_centrality(graph) == {}
        assert pagerank_centrality(graph) == {}
        assert degree_centrality(graph) == {}


class TestDegenerateSampling:
    def test_ego_subgraph_of_isolated_node_is_itself(self):
        graph = single_node_graph()
        sub = ego_subgraph(graph, "solo", hops=2, k=10)
        assert sub.nodes == ["solo"]
        assert sub.num_edges == 0

    def test_ego_subgraph_of_self_loop_node_keeps_loop(self):
        graph = self_loop_graph()
        sub = ego_subgraph(graph, "solo", hops=2, k=10)
        assert sub.nodes == ["solo"]
        assert sub.num_edges == 1
