"""Follow-the-chain tests: incremental ingestion vs cold rebuild, bit for bit.

Covers the ISSUE's stale-cache sweep end to end: ``TxGraph.ingest`` over
appended ledger rows must equal a from-scratch ``build_transaction_graph``;
the extractor's feature table must refresh only touched accounts yet match a
cold extractor exactly; and a serving ``DeAnonymizer`` that already cached an
address's subgraph must — after a block touching that address lands — rescore
it from fresh data, bit-identical to a cold pipeline over the grown ledger.
"""

import numpy as np
import pytest

from repro.api import DeAnonymizer
from repro.chain import LedgerConfig, generate_ledger
from repro.core import CalibrationConfig, DBG4ETHConfig, GSGConfig, LDGConfig
from repro.data import (
    DatasetConfig,
    DeepFeatureExtractor,
    SubgraphDatasetBuilder,
    build_transaction_graph,
)

DATASET_CONFIG = DatasetConfig(top_k=30, max_nodes_per_subgraph=40, seed=3)


def micro_config() -> DBG4ETHConfig:
    return DBG4ETHConfig(
        gsg=GSGConfig(hidden_dim=8, epochs=2, contrastive_batch=4),
        ldg=LDGConfig(hidden_dim=8, epochs=2, num_slices=3, first_pool_clusters=4),
        calibration=CalibrationConfig(),
    )


def fresh_ledger(seed: int = 9, scale: float = 0.15):
    config = LedgerConfig().scaled(scale)
    config.seed = seed
    return generate_ledger(config)


def append_block_touching(ledger, addresses, n_per_address: int = 10,
                          value: float = 25.0, include_noise: bool = True):
    """Append one block of high-value transactions touching ``addresses``.

    Mixes in a self-transfer, an unsubmitted row and a fresh counterparty per
    address so the ingest filter has something to drop and something to intern.
    """
    senders, receivers, submitted = [], [], []
    for i, address in enumerate(addresses):
        counterpart = f"0xfresh{i}_{address[-6:]}"
        senders += [address] * n_per_address + [counterpart]
        receivers += [counterpart] * n_per_address + [address]
        submitted += [True] * n_per_address + [True]
        if include_noise:
            senders += [address, address]
            receivers += [address, counterpart]    # self-transfer + unsubmitted
            submitted += [True, False]
    n = len(senders)
    start_ts = ledger.timespan()[1] + ledger.block_interval
    rng = np.random.default_rng(17)
    ledger.append_blocks_columnar(
        senders, receivers,
        values=np.full(n, value) + rng.uniform(0.0, 1.0, n),
        gas_prices=np.full(n, 20.0),
        gas_used=np.full(n, 21_000, dtype=np.int64),
        timestamps=start_ts + np.arange(n, dtype=np.float64),
        is_contract_call=np.zeros(n, dtype=bool),
        submitted=np.array(submitted),
        transactions_per_block=max(n, 1))


def assert_graphs_bit_identical(a, b):
    assert a._node_order == b._node_order
    assert a._m == b._m
    for name in ("_src", "_dst", "_amount", "_count", "_ts"):
        np.testing.assert_array_equal(getattr(a, name)[:a._m],
                                      getattr(b, name)[:b._m], err_msg=name)
    assert a._node_attrs == b._node_attrs


class TestGraphIngest:
    def test_ingest_matches_cold_rebuild(self):
        ledger = fresh_ledger()
        graph = build_transaction_graph(ledger, min_value=0.5)
        assert graph.ingested_rows == ledger.num_transactions
        targets = ledger.store.addresses[:3]
        append_block_touching(ledger, targets)
        touched = graph.ingest(ledger)
        cold = build_transaction_graph(ledger, min_value=0.5)
        assert_graphs_bit_identical(graph, cold)
        assert graph.ingested_rows == ledger.num_transactions
        assert set(targets) <= set(touched)

    def test_ingest_is_idempotent_when_clean(self):
        ledger = fresh_ledger()
        graph = build_transaction_graph(ledger)
        version = graph._version
        assert graph.ingest(ledger) == []
        assert graph._version == version

    def test_repeated_ingest_rounds_match_cold_rebuild(self):
        ledger = fresh_ledger(seed=4)
        graph = build_transaction_graph(ledger)
        for round_index in range(3):
            append_block_touching(
                ledger, ledger.store.addresses[round_index:round_index + 2])
            graph.ingest(ledger)
        assert_graphs_bit_identical(graph, build_transaction_graph(ledger))

    def test_ingest_touched_set_excludes_filtered_rows(self):
        """Rows the dust/self/unsubmitted filter drops touch nobody."""
        ledger = fresh_ledger(seed=5)
        graph = build_transaction_graph(ledger, min_value=1.0)
        quiet = "0xonly_dust_sender"
        loud = ledger.store.addresses[0]
        start_ts = ledger.timespan()[1] + 12.0
        ledger.append_blocks_columnar(
            [quiet, loud], [loud, f"0xloud_partner"],
            values=np.array([0.01, 50.0]),            # dust vs real
            gas_prices=np.full(2, 20.0),
            gas_used=np.full(2, 21_000, dtype=np.int64),
            timestamps=np.array([start_ts, start_ts + 1.0]),
            is_contract_call=np.zeros(2, dtype=bool),
            submitted=np.ones(2, dtype=bool),
            transactions_per_block=2)
        touched = graph.ingest(ledger, min_value=1.0)
        assert quiet not in touched
        assert loud in touched

    def test_frozen_graph_refuses_ingest_with_new_rows(self):
        ledger = fresh_ledger(seed=6)
        graph = build_transaction_graph(ledger)
        graph.freeze()
        assert graph.ingest(ledger) == []              # clean: no-op even frozen
        append_block_touching(ledger, ledger.store.addresses[:1])
        with pytest.raises(RuntimeError, match="frozen"):
            graph.ingest(ledger)


class TestFeatureTableRefresh:
    def test_incremental_refresh_matches_cold_extractor(self):
        ledger = fresh_ledger(seed=7)
        warm = DeepFeatureExtractor(ledger).warm()
        stale_table = warm._table_features
        append_block_touching(ledger, ledger.store.addresses[:3])
        warm.warm()                                    # incremental path
        assert warm._table_features is not stale_table
        cold = DeepFeatureExtractor(ledger).warm()
        np.testing.assert_array_equal(warm._table_features, cold._table_features)
        assert warm._table_key == cold._table_key

    def test_untouched_account_rows_are_copied_not_recomputed(self):
        """The refresh recomputes only touched accounts; every other row is a
        verbatim copy of the previous table (same bits, not just close)."""
        ledger = fresh_ledger(seed=8)
        warm = DeepFeatureExtractor(ledger).warm()
        before = warm._table_features.copy()
        targets = ledger.store.addresses[:2]
        append_block_touching(ledger, targets, include_noise=False)
        warm.warm()
        cols = ledger.tx_columns()
        n_old = len(before)
        touched = np.zeros(n_old, dtype=bool)
        for address in targets:
            touched[ledger.store.address_id(address)] = True
        after = warm._table_features[:n_old]
        np.testing.assert_array_equal(after[~touched], before[~touched])
        assert not np.array_equal(after[touched], before[touched])
        assert len(cols) == ledger.num_transactions

    def test_extract_reflects_appended_transactions(self):
        ledger = fresh_ledger(seed=3)
        extractor = DeepFeatureExtractor(ledger)
        address = ledger.store.addresses[0]
        stale = extractor.extract(address).copy()
        append_block_touching(ledger, [address])
        fresh = extractor.extract(address)
        assert not np.array_equal(fresh, stale)
        np.testing.assert_array_equal(
            fresh, DeepFeatureExtractor(ledger).extract(address))


class TestServingRefresh:
    def test_refresh_evicts_only_touched_samples(self):
        ledger = fresh_ledger(seed=10)
        deanon = DeAnonymizer(ledger, dataset_config=DATASET_CONFIG)
        builder_graph = deanon.builder.graph
        kept, touched_target = builder_graph.nodes[0], builder_graph.nodes[1]
        deanon.sample_for(kept)
        deanon.sample_for(touched_target)
        assert deanon.refresh() == []                  # no growth: O(1) no-op
        append_block_touching(ledger, [touched_target])
        touched = deanon.refresh()
        assert touched_target in touched
        assert kept not in touched
        assert kept in deanon._samples
        assert touched_target not in deanon._samples
        stats = deanon.stats()["serving"]["sample_cache"]
        assert stats["invalidations"] >= 1
        # The graph was ingested incrementally, not rebuilt.
        assert deanon.builder.graph_if_built() is builder_graph
        assert builder_graph.ingested_rows == ledger.num_transactions

    def test_rescore_after_append_matches_cold_pipeline(self):
        """The ISSUE's stale-cache acceptance test: score, append a block
        touching the cached address, rescore — the new score must reflect the
        new transactions and equal a cold rebuild over the grown ledger."""
        ledger = fresh_ledger(seed=11)
        deanon = DeAnonymizer(ledger, dataset_config=DATASET_CONFIG,
                              model_config=micro_config)
        deanon.fit(["exchange"])
        address = deanon.dataset[0].center
        stale_score = deanon.score([address])[address]["exchange"]
        stale_sample = deanon._samples[address]

        append_block_touching(ledger, [address], n_per_address=20)
        rescored = deanon.score([address])[address]["exchange"]

        fresh_sample = deanon._samples[address]
        assert fresh_sample is not stale_sample
        assert not np.array_equal(fresh_sample.node_features,
                                  stale_sample.node_features)

        # Cold path: a brand-new builder over the grown ledger, scored by the
        # very same fitted head.
        cold_builder = SubgraphDatasetBuilder(ledger, DATASET_CONFIG)
        cold_sample = cold_builder.build_sample(address)
        cold_score = float(
            deanon.head("exchange").predict_proba([cold_sample])[0])
        assert rescored == cold_score
        np.testing.assert_array_equal(fresh_sample.node_features,
                                      cold_sample.node_features)
        assert stale_score != rescored or not np.array_equal(
            stale_sample.node_features, fresh_sample.node_features)

    def test_warm_refreshes_before_freezing(self):
        ledger = fresh_ledger(seed=12)
        deanon = DeAnonymizer(ledger, dataset_config=DATASET_CONFIG)
        graph = deanon.builder.graph
        append_block_touching(ledger, [graph.nodes[0]])
        deanon.warm(freeze=True)                       # must not seal stale state
        assert graph.ingested_rows == ledger.num_transactions
        assert graph.frozen
