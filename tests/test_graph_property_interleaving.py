"""Property tests: interleaved add_edge / add_edges_bulk vs a dict reference.

Hypothesis drives arbitrary interleavings of single ``add_edge`` calls and
``add_edges_bulk`` batches — with duplicate rows, self-loops, zero counts and
pairs repeated both within and across calls — and requires the columnar
``TxGraph`` to be **bit-identical** to :class:`DictGraphReference`, which only
ever sees the flattened sequential row stream: same node order, same edge
iteration order, same left-fold amounts, counts and iterative count-weighted
timestamp means, and the same per-node out/in iteration order.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.graph import TxGraph

from tests._dict_reference import DictGraphReference

# One row: (src, dst, amount, count, timestamp) over a small node universe so
# duplicates, self-loops and cross-batch pair repeats are frequent.
row = st.tuples(
    st.integers(0, 5), st.integers(0, 5),
    st.floats(0.0, 100.0, allow_nan=False),
    st.integers(0, 3),
    st.floats(0.0, 1000.0, allow_nan=False))

# A program: sequence of batches, each applied via add_edges_bulk (True) or a
# sequential add_edge loop (False).
program = st.lists(
    st.tuples(st.booleans(), st.lists(row, min_size=1, max_size=20)),
    min_size=1, max_size=6)


def apply_program(graph: TxGraph, batches) -> None:
    for bulk, rows in batches:
        if bulk:
            graph.add_edges_bulk(
                np.array([r[0] for r in rows], dtype=np.int64),
                np.array([r[1] for r in rows], dtype=np.int64),
                amounts=np.array([r[2] for r in rows]),
                counts=np.array([r[3] for r in rows], dtype=np.int64),
                timestamps=np.array([r[4] for r in rows]))
        else:
            for src, dst, amount, count, ts in rows:
                graph.add_edge(src, dst, amount=amount, count=count, timestamp=ts)


def apply_sequential(reference: DictGraphReference, batches) -> None:
    for _bulk, rows in batches:
        for src, dst, amount, count, ts in rows:
            reference.add_edge(src, dst, amount=amount, count=count, timestamp=ts)


def edge_tuples(edges) -> list[tuple]:
    return [(e.src, e.dst, e.amount, e.count, e.timestamp) for e in edges]


def assert_bit_identical(graph: TxGraph, reference: DictGraphReference) -> None:
    assert graph.nodes == reference.nodes
    # Global edge iteration order and payloads, bitwise (no approx).
    assert edge_tuples(graph.edges) == edge_tuples(reference.edges)
    for node in reference.nodes:
        assert edge_tuples(graph.out_edges(node)) == \
            edge_tuples(reference.out_edges(node))
        assert edge_tuples(graph.in_edges(node)) == \
            edge_tuples(reference.in_edges(node))
        assert graph.neighbors(node) == reference.neighbors(node)
        assert graph.degree(node) == reference.degree(node)
        for other in reference.nodes:
            assert edge_tuples(graph.edges_between(node, other)) == \
                edge_tuples(reference.edges_between(node, other))


@settings(max_examples=60, deadline=None)
@given(program)
def test_interleaved_programs_match_sequential_reference(batches):
    graph = TxGraph()
    reference = DictGraphReference()
    apply_program(graph, batches)
    apply_sequential(reference, batches)
    assert_bit_identical(graph, reference)


@settings(max_examples=30, deadline=None)
@given(program, st.integers(0, 2 ** 31 - 1))
def test_interleaved_subgraphs_match_sequential_reference(batches, seed):
    graph = TxGraph()
    reference = DictGraphReference()
    apply_program(graph, batches)
    apply_sequential(reference, batches)
    rng = np.random.default_rng(seed)
    nodes = reference.nodes
    keep = [n for n in nodes if rng.random() < 0.5]
    sub = graph.subgraph(keep)
    ref_sub = reference.subgraph(keep)
    assert sub.nodes == ref_sub.nodes
    assert edge_tuples(sub.edges) == edge_tuples(ref_sub.edges)


@settings(max_examples=30, deadline=None)
@given(st.lists(row, min_size=1, max_size=30))
def test_bulk_with_node_keys_matches_sequential_reference(rows):
    node_keys = [f"0x{i:02d}" for i in range(6)]
    graph = TxGraph()
    graph.add_edges_bulk(
        np.array([r[0] for r in rows], dtype=np.int64),
        np.array([r[1] for r in rows], dtype=np.int64),
        amounts=np.array([r[2] for r in rows]),
        counts=np.array([r[3] for r in rows], dtype=np.int64),
        timestamps=np.array([r[4] for r in rows]),
        node_keys=node_keys)
    reference = DictGraphReference()
    for src, dst, amount, count, ts in rows:
        reference.add_edge(node_keys[src], node_keys[dst], amount=amount,
                           count=count, timestamp=ts)
    assert_bit_identical(graph, reference)
