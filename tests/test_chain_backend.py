"""Durability tests: ``LedgerBackend`` sync/open round-trips, bit for bit.

The contract under test (ISSUE: durable ledger backend): ``Ledger.open(path)``
after ``ledger.sync(path)`` reproduces the column arrays, the interning order,
the block bounds, the sparse explicit-hash table, the submitted timespan and
the ``data_version`` epoch exactly — including after append → sync → reopen →
append → sync cycles — and a later sync appends only the new entries.
"""

import json
import tempfile

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chain import (
    Account,
    AccountCategory,
    AccountType,
    BackendFormatError,
    Block,
    Ledger,
    LedgerBackend,
    LedgerConfig,
    Transaction,
    generate_ledger,
)
from repro.chain.txstore import _COLUMN_DTYPES

COLUMNS = tuple(name for name, _ in _COLUMN_DTYPES)


def assert_ledger_equal(actual: Ledger, expected: Ledger) -> None:
    """Bit-for-bit equality over everything the backend persists."""
    a_cols, e_cols = actual.tx_columns(), expected.tx_columns()
    assert actual.num_transactions == expected.num_transactions
    for name in COLUMNS:
        np.testing.assert_array_equal(
            np.asarray(getattr(a_cols, name)), np.asarray(getattr(e_cols, name)),
            err_msg=f"column {name!r} diverged")
    assert actual.store.addresses == expected.store.addresses
    assert actual.store._explicit_hash_by_row == expected.store._explicit_hash_by_row
    assert actual.store._row_by_explicit_hash == expected.store._row_by_explicit_hash
    assert actual.store.submitted_timespan() == expected.store.submitted_timespan()
    assert actual.data_version == expected.data_version
    assert actual._block_numbers == expected._block_numbers
    assert actual._block_timestamps == expected._block_timestamps
    assert ([tuple(b) for b in actual._block_bounds]
            == [tuple(b) for b in expected._block_bounds])
    assert actual.block_interval == expected.block_interval
    assert actual.genesis_timestamp == expected.genesis_timestamp
    assert ([(a.address, a.account_type, a.balance, a.nonce)
             for a in actual.accounts]
            == [(a.address, a.account_type, a.balance, a.nonce)
                for a in expected.accounts])
    assert list(actual.labels.items()) == list(expected.labels.items())


def small_generated_ledger(seed: int = 3) -> Ledger:
    config = LedgerConfig().scaled(0.05)
    config.seed = seed
    return generate_ledger(config)


def append_growth(ledger: Ledger, seed: int, n: int = 40) -> None:
    """Append ``n`` more transactions in new blocks (mixed old/new addresses)."""
    rng = np.random.default_rng(seed)
    existing = ledger.store.addresses
    senders = [existing[rng.integers(len(existing))] if rng.random() < 0.7
               else f"0xgrow{seed}_{i}" for i in range(n)]
    receivers = [existing[rng.integers(len(existing))] if rng.random() < 0.7
                 else f"0xgrow{seed}_r{i}" for i in range(n)]
    start_ts = ledger.timespan()[1] + ledger.block_interval
    ledger.append_blocks_columnar(
        senders, receivers,
        values=rng.uniform(0.1, 10.0, n),
        gas_prices=rng.uniform(10.0, 50.0, n),
        gas_used=np.full(n, 21_000, dtype=np.int64),
        timestamps=start_ts + np.arange(n, dtype=np.float64),
        is_contract_call=np.zeros(n, dtype=bool),
        submitted=rng.random(n) > 0.05,
        transactions_per_block=16)


class TestRoundTrip:
    def test_generated_ledger_round_trips(self, tmp_path):
        ledger = small_generated_ledger()
        manifest = ledger.sync(tmp_path / "chain")
        assert manifest["num_rows"] == ledger.num_transactions
        reopened = Ledger.open(tmp_path / "chain")
        assert_ledger_equal(reopened, ledger)
        assert reopened.summary() == ledger.summary()
        assert reopened.backend is not None
        assert reopened.backend.path == ledger.backend.path

    def test_sync_attaches_backend_once(self, tmp_path):
        ledger = small_generated_ledger()
        with pytest.raises(RuntimeError, match="no backend"):
            ledger.sync()
        ledger.sync(tmp_path / "chain")
        append_growth(ledger, seed=1)
        ledger.sync()                       # reuses the attached backend
        assert_ledger_equal(Ledger.open(tmp_path / "chain"), ledger)

    def test_explicit_hashes_round_trip_sparsely(self, tmp_path):
        ledger = Ledger()
        txs = [Transaction(tx_hash="0xfeed", sender="0xaa", receiver="0xbb",
                           value=1.5, gas_price=20.0, gas_used=21_000,
                           timestamp=1000.0),
               Transaction(tx_hash=f"0x{1:064x}", sender="0xbb", receiver="0xcc",
                           value=2.5, gas_price=20.0, gas_used=21_000,
                           timestamp=1012.0)]
        ledger.append_block(Block(0, 1012.0, txs))
        ledger.sync(tmp_path / "chain")
        reopened = Ledger.open(tmp_path / "chain")
        # Only the deviating hash occupies a dict entry; the derived one stays free.
        assert reopened.store._explicit_hash_by_row == {0: "0xfeed"}
        assert reopened.get_transaction("0xfeed").sender == "0xaa"
        assert reopened.get_transaction(f"0x{1:064x}").sender == "0xbb"

    def test_accounts_and_labels_round_trip(self, tmp_path):
        ledger = Ledger()
        ledger.add_account(Account("0xaa", balance=7.5, nonce=3))
        ledger.add_account(Account("0xcontract", AccountType.CONTRACT))
        ledger.labels.add("0xaa", AccountCategory.EXCHANGE)
        ledger.append_block(Block(0, 1000.0, [Transaction(
            tx_hash=f"0x{0:064x}", sender="0xaa", receiver="0xcontract",
            value=1.0, gas_price=1.0, gas_used=21_000, timestamp=1000.0,
            is_contract_call=True)]))
        ledger.sync(tmp_path / "chain")
        reopened = Ledger.open(tmp_path / "chain")
        assert reopened.is_contract("0xcontract")
        assert not reopened.is_contract("0xaa")
        assert reopened.get_account("0xaa").balance == 7.5
        assert reopened.labels.get("0xaa") is AccountCategory.EXCHANGE

    def test_empty_ledger_round_trips(self, tmp_path):
        ledger = Ledger(block_interval=15.0, genesis_timestamp=123.0)
        ledger.sync(tmp_path / "chain")
        reopened = Ledger.open(tmp_path / "chain")
        assert_ledger_equal(reopened, ledger)
        assert reopened.timespan() == (123.0, 123.0)


class TestAppendReopenAppend:
    def test_append_reopen_append_matches_in_memory_shadow(self, tmp_path):
        ledger = small_generated_ledger()
        shadow = small_generated_ledger()
        ledger.sync(tmp_path / "chain")

        append_growth(ledger, seed=2)
        append_growth(shadow, seed=2)
        ledger.sync()
        reopened = Ledger.open(tmp_path / "chain")
        assert_ledger_equal(reopened, shadow)

        # The restarted ledger keeps growing the same directory.
        append_growth(reopened, seed=3)
        append_growth(shadow, seed=3)
        reopened.sync()
        assert_ledger_equal(Ledger.open(tmp_path / "chain"), shadow)

    def test_reopened_ledger_serves_address_queries(self, tmp_path):
        ledger = small_generated_ledger()
        ledger.sync(tmp_path / "chain")
        reopened = Ledger.open(tmp_path / "chain")
        address = ledger.store.addresses[0]
        assert (reopened.store.rows_for_address(address).tolist()
                == ledger.store.rows_for_address(address).tolist())
        # Appends on top of memory-mapped columns extend the index too.
        append_growth(reopened, seed=4)
        expected = reopened.tx_columns()
        rows = reopened.store.rows_for_address(address)
        mask = ((expected.sender_id[rows] == 0)
                | (expected.receiver_id[rows] == 0))
        assert mask.all()

    def test_later_sync_appends_only_the_delta(self, tmp_path):
        ledger = small_generated_ledger()
        ledger.sync(tmp_path / "chain")
        sizes = {p.name: p.stat().st_size
                 for p in (tmp_path / "chain").iterdir()
                 if p.name.startswith("col_")}
        n_before = ledger.num_transactions
        append_growth(ledger, seed=5, n=24)
        ledger.sync()
        for name, dtype in _COLUMN_DTYPES:
            path = tmp_path / "chain" / f"col_{name}.bin"
            itemsize = np.dtype(dtype).itemsize
            assert path.stat().st_size - sizes[path.name] == 24 * itemsize, name
        manifest = LedgerBackend(tmp_path / "chain").read_manifest()
        assert manifest["num_rows"] == n_before + 24

    def test_sync_of_shorter_ledger_is_refused(self, tmp_path):
        ledger = small_generated_ledger()
        ledger.sync(tmp_path / "chain")
        fresh = Ledger()
        with pytest.raises(BackendFormatError, match="refusing to sync"):
            fresh.sync(tmp_path / "chain")


class TestCrashConsistencyAndErrors:
    def test_open_missing_directory_raises(self, tmp_path):
        with pytest.raises(BackendFormatError, match="no committed manifest"):
            Ledger.open(tmp_path / "nothing")

    def test_format_version_mismatch_raises(self, tmp_path):
        ledger = small_generated_ledger()
        ledger.sync(tmp_path / "chain")
        manifest_path = tmp_path / "chain" / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = 99
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(BackendFormatError, match="format 99"):
            Ledger.open(tmp_path / "chain")

    def test_truncated_column_file_raises(self, tmp_path):
        ledger = small_generated_ledger()
        ledger.sync(tmp_path / "chain")
        path = tmp_path / "chain" / "col_value.bin"
        with open(path, "r+b") as f:
            f.truncate(path.stat().st_size - 8)
        with pytest.raises(BackendFormatError, match="shorter than"):
            Ledger.open(tmp_path / "chain")

    def test_torn_trailing_bytes_are_invisible_and_healed(self, tmp_path):
        """Bytes beyond the manifest's committed prefix (a torn write from a
        crashed sync) are never observed and are truncated by the next sync."""
        ledger = small_generated_ledger()
        shadow = small_generated_ledger()
        ledger.sync(tmp_path / "chain")
        for name in ("col_value.bin", "addresses.txt", "blocks.bin",
                     "accounts.jsonl", "labels.jsonl"):
            with open(tmp_path / "chain" / name, "ab") as f:
                f.write(b"\xde\xad\xbe\xef")
        assert_ledger_equal(Ledger.open(tmp_path / "chain", mmap=False), shadow)
        append_growth(ledger, seed=6)
        append_growth(shadow, seed=6)
        ledger.sync()                       # truncates the garbage, then appends
        assert_ledger_equal(Ledger.open(tmp_path / "chain"), shadow)

    def test_mmap_false_survives_directory_removal(self, tmp_path):
        import shutil

        ledger = small_generated_ledger()
        ledger.sync(tmp_path / "chain")
        reopened = Ledger.open(tmp_path / "chain", mmap=False)
        shutil.rmtree(tmp_path / "chain")
        cols = reopened.tx_columns()
        np.testing.assert_array_equal(
            np.asarray(cols.value), np.asarray(ledger.tx_columns().value))


# ---------------------------------------------------------------- property test

# One transaction: (sender idx, receiver idx, value, timestamp, submitted,
# wants an explicit hash) over a small address universe so interning-order
# collisions across segments are frequent.
tx_record = st.tuples(
    st.integers(0, 5), st.integers(0, 5),
    st.floats(0.0, 100.0, allow_nan=False),
    st.floats(1.0, 1000.0, allow_nan=False),
    st.booleans(), st.booleans())

# One segment: (use the columnar bulk path?, transactions, reopen afterwards?).
segment = st.tuples(st.booleans(),
                    st.lists(tx_record, min_size=1, max_size=6),
                    st.booleans())
program = st.lists(segment, min_size=1, max_size=5)


def _apply_segment(ledger: Ledger, columnar: bool, records, counter: int) -> None:
    """Append one block of ``records``; ``counter`` makes hashes/blocks unique."""
    senders = [f"0xacct{r[0]}" for r in records]
    receivers = [f"0xacct{r[1]}" for r in records]
    hashes = [f"0xexplicit{counter}_{i}" if r[5] else f"0x{ledger.num_transactions + i:064x}"
              for i, r in enumerate(records)]
    if columnar:
        n = len(records)
        ledger.append_blocks_columnar(
            senders, receivers,
            values=np.array([r[2] for r in records]),
            gas_prices=np.full(n, 20.0),
            gas_used=np.full(n, 21_000, dtype=np.int64),
            timestamps=np.array([r[3] for r in records]),
            is_contract_call=np.zeros(n, dtype=bool),
            submitted=np.array([r[4] for r in records]),
            transactions_per_block=n,
            tx_hashes=hashes)
    else:
        number = ledger._block_numbers[-1] + 1 if ledger._block_numbers else 0
        ledger.append_block(Block(number, records[-1][3], [
            Transaction(tx_hash=hashes[i], sender=senders[i],
                        receiver=receivers[i], value=r[2], gas_price=20.0,
                        gas_used=21_000, timestamp=r[3], submitted=r[4])
            for i, r in enumerate(records)]))


@settings(max_examples=30, deadline=None)
@given(program)
def test_sync_open_cycles_preserve_every_ledger_bit(segments):
    """Arbitrary append/sync/reopen interleavings equal the in-memory shadow.

    The live ledger is persisted after every segment and sometimes replaced by
    ``Ledger.open`` of its own directory; the shadow only ever sees the
    in-memory appends.  Whatever the interleaving, the final reopened state
    must be bit-identical — columns, interning order, block bounds, sparse
    hashes, timespan and the ``data_version`` epoch.
    """
    with tempfile.TemporaryDirectory() as tmp:
        path = f"{tmp}/chain"
        live = Ledger()
        shadow = Ledger()
        for counter, (columnar, records, reopen) in enumerate(segments):
            _apply_segment(live, columnar, records, counter)
            _apply_segment(shadow, columnar, records, counter)
            live.sync(path)
            if reopen:
                live = Ledger.open(path)
        assert_ledger_equal(Ledger.open(path, mmap=False), shadow)
        assert_ledger_equal(live, shadow)
