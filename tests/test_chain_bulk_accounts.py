"""Tests for vectorised account registration: bulk paths and lazy placeholders."""

import pytest

from repro.chain import Account, AccountType, Ledger
from repro.chain.accounts import make_address, make_addresses


class TestMakeAddresses:
    def test_matches_scalar_function(self):
        assert make_addresses(5) == [make_address(i) for i in range(5)]

    def test_matches_scalar_with_prefix_and_start(self):
        assert make_addresses(7, prefix="ex", start=100) == \
            [make_address(i, prefix="ex") for i in range(100, 107)]

    def test_large_indices_keep_width(self):
        start = 16 ** 12
        for address in make_addresses(3, prefix="phish", start=start):
            assert address.startswith("0x") and len(address) == 42

    def test_empty_and_negative_counts(self):
        assert make_addresses(0) == []
        assert make_addresses(-3) == []


class TestAddAccountsBulk:
    def test_parity_with_scalar_loop(self):
        addresses = make_addresses(10, prefix="ex")
        bulk, scalar = Ledger(), Ledger()
        bulk.add_accounts_bulk(addresses, AccountType.CONTRACT)
        for address in addresses:
            scalar.add_account(Account(address, AccountType.CONTRACT))
        assert bulk.num_accounts == scalar.num_accounts
        assert [a.address for a in bulk.accounts] == \
            [a.address for a in scalar.accounts]
        for address in addresses:
            assert bulk.get_account(address) == scalar.get_account(address)

    def test_duplicate_within_batch_is_all_or_nothing(self):
        ledger = Ledger()
        with pytest.raises(ValueError, match="duplicate"):
            ledger.add_accounts_bulk(["0xaa", "0xbb", "0xaa"], AccountType.EOA)
        assert ledger.num_accounts == 0

    def test_duplicate_against_registry_is_all_or_nothing(self):
        ledger = Ledger()
        ledger.add_account(Account("0xbb"))
        with pytest.raises(ValueError, match="0xbb"):
            ledger.add_accounts_bulk(["0xaa", "0xbb"], AccountType.EOA)
        assert ledger.num_accounts == 1
        assert not ledger.has_account("0xaa")

    def test_registration_order_preserved_across_batches(self):
        ledger = Ledger()
        ledger.add_accounts_bulk(["0xcc", "0xaa"], AccountType.EOA)
        ledger.add_account(Account("0xbb"))
        assert [a.address for a in ledger.accounts] == ["0xcc", "0xaa", "0xbb"]


class TestLazyMaterialisation:
    def test_get_account_materialises_once(self):
        ledger = Ledger()
        ledger.add_accounts_bulk(["0xaa"], AccountType.CONTRACT)
        account = ledger.get_account("0xaa")
        assert isinstance(account, Account)
        assert account.account_type is AccountType.CONTRACT
        assert account.balance == 0.0 and account.nonce == 0
        assert ledger.get_account("0xaa") is account

    def test_is_contract_reads_placeholders(self):
        ledger = Ledger()
        ledger.add_accounts_bulk(["0xcc"], AccountType.CONTRACT)
        ledger.add_accounts_bulk(["0xee"], AccountType.EOA)
        assert ledger.is_contract("0xcc")
        assert not ledger.is_contract("0xee")
        # Reading the kind must not have materialised Account objects.
        assert not any(isinstance(entry, Account)
                       for entry in ledger._accounts.values())

    def test_contract_set_and_summary_skip_materialisation(self):
        ledger = Ledger()
        ledger.add_accounts_bulk(make_addresses(4, prefix="ct"),
                                 AccountType.CONTRACT)
        ledger.add_accounts_bulk(make_addresses(3, prefix="us", start=50),
                                 AccountType.EOA)
        assert ledger.contract_address_set() == \
            frozenset(make_addresses(4, prefix="ct"))
        assert ledger.summary()["num_contracts"] == 4
        assert not any(isinstance(entry, Account)
                       for entry in ledger._accounts.values())


class TestAccountRecords:
    def test_placeholders_yield_default_rows(self):
        ledger = Ledger()
        ledger.add_accounts_bulk(["0xaa"], AccountType.CONTRACT)
        ledger.add_account(Account("0xbb", balance=2.5, nonce=7))
        records = list(ledger.account_records())
        assert records == [("0xaa", "contract", 0.0, 0),
                           ("0xbb", "eoa", 2.5, 7)]
        # The persistence view must not materialise placeholder objects.
        assert not isinstance(ledger._accounts["0xaa"], Account)

    def test_bulk_registered_ledger_round_trips(self, tmp_path):
        ledger = Ledger()
        ledger.add_accounts_bulk(make_addresses(5, prefix="ex"),
                                 AccountType.CONTRACT)
        ledger.add_accounts_bulk(make_addresses(5, prefix="us", start=10),
                                 AccountType.EOA)
        ledger.sync(tmp_path / "chain")
        reopened = Ledger.open(tmp_path / "chain")
        assert list(reopened.account_records()) == list(ledger.account_records())
        for address in make_addresses(5, prefix="ex"):
            assert reopened.is_contract(address)
        for address in make_addresses(5, prefix="us", start=10):
            assert not reopened.is_contract(address)
