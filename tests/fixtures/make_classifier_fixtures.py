"""Regenerate the golden classifier-state fixtures.

The fixtures under ``tests/fixtures/classifier_states/`` pin the PR-3-era
``get_state`` format (preorder node arrays for every tree head, weight lists
for the MLP) together with the exact predictions each fitted head produced
when the fixtures were written.  ``tests/test_ensemble_persistence.py`` loads
them through the current engine and asserts bit-for-bit prediction parity, so
any change to the state layout or to ``set_state`` semantics that would break
deployed PR-3 model directories fails loudly.

They were generated from the pre-histogram-engine recursive tree code and
must NOT be regenerated casually — rewriting them with a newer engine would
silently drop the backward-compatibility guarantee they exist to enforce.

Run from the repo root::

    PYTHONPATH=src python tests/fixtures/make_classifier_fixtures.py
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.api.persistence import save_state
from repro.core.classifier import CLASSIFIER_FACTORIES, AccountClassificationModule

FIXTURE_DIR = Path(__file__).resolve().parent / "classifier_states"
SEED = 7


def calibrated_dataset(n: int = 240, seed: int = SEED):
    """A deterministic stand-in for the calibrated ``[P_g, P_l]`` pairs."""
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 2, size=n)
    gsg = np.clip(0.5 + 0.35 * (labels * 2 - 1) + rng.normal(scale=0.22, size=n), 0.0, 1.0)
    ldg = np.clip(0.5 + 0.28 * (labels * 2 - 1) + rng.normal(scale=0.3, size=n), 0.0, 1.0)
    calibrated = np.column_stack([gsg, ldg])
    eval_rng = np.random.default_rng(seed + 1)
    X_eval = eval_rng.uniform(0.0, 1.0, size=(64, 2))
    return calibrated, labels, X_eval


def main() -> None:
    calibrated, labels, X_eval = calibrated_dataset()
    FIXTURE_DIR.mkdir(parents=True, exist_ok=True)
    golden: dict[str, np.ndarray] = {
        "X_fit": calibrated, "labels": labels, "X_eval": X_eval}
    for name in sorted(CLASSIFIER_FACTORIES):
        module = AccountClassificationModule(name, seed=SEED).fit(calibrated, labels)
        save_state(FIXTURE_DIR / name, module.get_state())
        golden[f"{name}_proba"] = module.predict_proba(X_eval)
        golden[f"{name}_predict"] = module.predict(X_eval)
    np.savez(FIXTURE_DIR / "golden_predictions.npz", **golden)
    print(f"wrote {len(CLASSIFIER_FACTORIES)} state dirs + golden predictions "
          f"to {FIXTURE_DIR}")


if __name__ == "__main__":
    main()
