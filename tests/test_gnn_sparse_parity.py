"""Dense-vs-sparse parity suite pinning the CSR message-passing refactor.

Every sparse code path is compared against the faithful seed implementations
preserved in :mod:`repro.gnn.dense_reference`, on randomized Erdős–Rényi
adjacencies, hand-built corner cases (isolated nodes, self loops, empty
graphs) and real ego-subgraph samples, to an absolute tolerance of 1e-9.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.augmentation import AugmentationConfig, adaptive_augmentation
from repro.core.gsg import GSGConfig, _GSGNetwork
from repro.core.ldg import LDGConfig, _LDGNetwork
from repro.data.slicing import time_slice_adjacency, time_slice_csr
from repro.gnn import (
    APPNPPropagation,
    GATLayer,
    GCNLayer,
    GINLayer,
    GraphSAGELayer,
    HierarchicalAttentionEncoder,
    SparseAdjacency,
    normalize_adjacency,
)
from repro.gnn import dense_reference as dense_ref
from repro.gnn.pooling import DiffPool
from repro.nn import Adam, Tensor
from repro.nn.losses import binary_cross_entropy_with_logits

ATOL = 1e-9

LAYER_REFS = [
    (GCNLayer, dense_ref.gcn_forward),
    (GATLayer, dense_ref.gat_forward),
    (GINLayer, dense_ref.gin_forward),
    (GraphSAGELayer, dense_ref.sage_forward),
]


def erdos_renyi(n: int, p: float, rng: np.random.Generator, weighted: bool = True,
                self_loops: bool = False) -> np.ndarray:
    """Symmetric random adjacency with optional weights and self loops."""
    adj = (rng.random((n, n)) < p).astype(float)
    if weighted:
        adj *= rng.lognormal(0.0, 1.0, size=(n, n))
    adj = np.maximum(adj, adj.T)
    if not self_loops:
        np.fill_diagonal(adj, 0.0)
    return adj


def random_cases(rng):
    """A spread of adjacency corner cases: ER graphs, isolated nodes, loops."""
    cases = []
    for n, p in [(1, 0.0), (2, 1.0), (6, 0.4), (13, 0.25), (30, 0.12)]:
        cases.append(erdos_renyi(n, p, rng))
    cases.append(erdos_renyi(9, 0.3, rng, self_loops=True))       # self loops
    cases.append(np.zeros((5, 5)))                                # empty graph
    isolated = erdos_renyi(8, 0.5, rng)
    isolated[3, :] = isolated[:, 3] = 0.0                         # isolated node
    cases.append(isolated)
    return cases


@pytest.fixture()
def ego_adjacencies(small_dataset):
    """Unweighted symmetric adjacencies of real sampled ego subgraphs."""
    samples = sorted(small_dataset.samples, key=lambda s: -s.num_nodes)[:3]
    return [s.adjacency() for s in samples]


class TestSparseAdjacencyType:
    def test_dense_roundtrip(self, rng):
        for adj in random_cases(rng):
            sp = SparseAdjacency.from_dense(adj)
            np.testing.assert_array_equal(sp.to_dense(), adj)

    def test_from_graph_matches_adjacency_matrix(self, toy_graph):
        for weighted in (False, True):
            for symmetric in (False, True):
                sp = SparseAdjacency.from_graph(toy_graph, weighted=weighted,
                                                symmetric=symmetric)
                dense = toy_graph.adjacency_matrix(weighted=weighted,
                                                   symmetric=symmetric)
                np.testing.assert_array_equal(sp.to_dense(), dense)

    def test_from_coo_sums_duplicates(self):
        sp = SparseAdjacency.from_coo([0, 0, 1], [1, 1, 0], [2.0, 3.0, 4.0], 2)
        np.testing.assert_array_equal(sp.to_dense(), [[0.0, 5.0], [4.0, 0.0]])

    def test_with_self_loops_and_binarized(self, rng):
        adj = erdos_renyi(7, 0.4, rng)
        sp = SparseAdjacency.from_dense(adj)
        np.testing.assert_allclose(sp.with_self_loops().to_dense(),
                                   adj + np.eye(7), atol=ATOL, rtol=0)
        np.testing.assert_array_equal(sp.binarized().to_dense(),
                                      (adj > 0).astype(float))

    def test_matmul_and_rmatmul(self, rng):
        adj = erdos_renyi(11, 0.3, rng)
        adj[2, 5] = 0.7   # break symmetry so matmul vs rmatmul differ
        sp = SparseAdjacency.from_dense(adj)
        x = rng.normal(size=(11, 4))
        np.testing.assert_allclose(sp.matmul(x), adj @ x, atol=ATOL, rtol=0)
        np.testing.assert_allclose(sp.rmatmul(x), adj.T @ x, atol=ATOL, rtol=0)
        v = rng.normal(size=11)
        np.testing.assert_allclose(sp.matmul(v), adj @ v, atol=ATOL, rtol=0)
        np.testing.assert_allclose(sp.rmatmul(v), adj.T @ v, atol=ATOL, rtol=0)

    def test_symmetrized_max(self, rng):
        adj = np.triu(erdos_renyi(6, 0.5, rng), k=1)
        sp = SparseAdjacency.from_dense(adj)
        np.testing.assert_allclose(sp.symmetrized_max().to_dense(),
                                   np.maximum(adj, adj.T), atol=ATOL, rtol=0)

    def test_pruned_drops_explicit_zeros(self):
        sp = SparseAdjacency(np.array([0, 2, 2]), np.array([0, 1]),
                             np.array([0.0, 3.0]))
        pruned = sp.pruned()
        assert pruned.nnz == 1
        np.testing.assert_array_equal(pruned.to_dense(), sp.to_dense())


class TestNormalizeAdjacencyParity:
    def test_randomized_parity(self, rng):
        for adj in random_cases(rng):
            expected = dense_ref.normalize_adjacency_dense(adj)
            got = normalize_adjacency(SparseAdjacency.from_dense(adj))
            assert isinstance(got, SparseAdjacency)
            np.testing.assert_allclose(got.to_dense(), expected, atol=ATOL, rtol=0)

    def test_dense_input_keeps_dense_output(self, rng):
        adj = erdos_renyi(6, 0.4, rng)
        got = normalize_adjacency(adj)
        assert isinstance(got, np.ndarray)
        np.testing.assert_allclose(got, dense_ref.normalize_adjacency_dense(adj))

    @pytest.mark.parametrize("add_self_loops", [True, False])
    def test_zero_degree_rows_guarded(self, add_self_loops):
        """Satellite fix: isolated rows must yield zeros, not divide-by-zero."""
        adj = np.zeros((4, 4))
        adj[0, 1] = adj[1, 0] = 2.0   # rows 2 and 3 are zero-degree
        with np.errstate(divide="raise", invalid="raise"):
            dense_out = normalize_adjacency(adj, add_self_loops=add_self_loops)
            sparse_out = normalize_adjacency(SparseAdjacency.from_dense(adj),
                                             add_self_loops=add_self_loops)
        assert np.all(np.isfinite(dense_out))
        assert np.all(np.isfinite(sparse_out.data))
        np.testing.assert_allclose(sparse_out.to_dense(), dense_out,
                                   atol=ATOL, rtol=0)
        if not add_self_loops:
            np.testing.assert_array_equal(dense_out[2], np.zeros(4))


class TestLayerParity:
    @pytest.mark.parametrize("layer_cls,ref", LAYER_REFS,
                             ids=[cls.__name__ for cls, _ in LAYER_REFS])
    def test_randomized_forward_and_grad_parity(self, layer_cls, ref, rng):
        for case, adj in enumerate(random_cases(rng)):
            layer = layer_cls(6, 5, rng=np.random.default_rng(case))
            x = rng.normal(size=(adj.shape[0], 6))
            xs, xd = Tensor(x, requires_grad=True), Tensor(x, requires_grad=True)
            out_sparse = layer(xs, SparseAdjacency.from_dense(adj))
            out_dense = ref(layer, xd, adj)
            np.testing.assert_allclose(out_sparse.data, out_dense.data,
                                       atol=ATOL, rtol=0)
            layer.zero_grad()
            out_sparse.sum().backward()
            grads_sparse = [p.grad.copy() for p in layer.parameters()]
            layer.zero_grad()
            out_dense.sum().backward()
            for gs, gd in zip(grads_sparse, (p.grad for p in layer.parameters())):
                np.testing.assert_allclose(gs, gd, atol=ATOL, rtol=0)
            np.testing.assert_allclose(xs.grad, xd.grad, atol=ATOL, rtol=0)

    @pytest.mark.parametrize("layer_cls,ref", LAYER_REFS,
                             ids=[cls.__name__ for cls, _ in LAYER_REFS])
    def test_ego_subgraph_parity(self, layer_cls, ref, ego_adjacencies, rng):
        for adj in ego_adjacencies:
            layer = layer_cls(6, 5, rng=np.random.default_rng(1))
            x = Tensor(rng.normal(size=(adj.shape[0], 6)))
            np.testing.assert_allclose(
                layer(x, SparseAdjacency.from_dense(adj)).data,
                ref(layer, x, adj).data, atol=ATOL, rtol=0)

    def test_dense_input_matches_sparse_input(self, rng):
        """Dense arrays keep working through the coercion path."""
        adj = erdos_renyi(10, 0.3, rng)
        for layer_cls, _ in LAYER_REFS:
            layer = layer_cls(6, 5, rng=np.random.default_rng(0))
            x = Tensor(rng.normal(size=(10, 6)))
            np.testing.assert_array_equal(
                layer(x, adj).data,
                layer(x, SparseAdjacency.from_dense(adj)).data)

    def test_multi_head_gat_parity(self, rng):
        adj = erdos_renyi(12, 0.3, rng)
        layer = GATLayer(6, 5, num_heads=3, rng=np.random.default_rng(2))
        x = Tensor(rng.normal(size=(12, 6)))
        np.testing.assert_allclose(
            layer(x, SparseAdjacency.from_dense(adj)).data,
            dense_ref.gat_forward(layer, x, adj).data, atol=ATOL, rtol=0)

    def test_appnp_parity(self, rng):
        for adj in random_cases(rng):
            module = APPNPPropagation(k=6, alpha=0.15)
            h0 = Tensor(rng.normal(size=(adj.shape[0], 4)))
            np.testing.assert_allclose(
                module(h0, SparseAdjacency.from_dense(adj)).data,
                dense_ref.appnp_forward(module, h0, adj).data, atol=ATOL, rtol=0)

    def test_diffpool_parity(self, rng):
        adj = erdos_renyi(14, 0.3, rng)
        pool = DiffPool(5, 3, rng=np.random.default_rng(4))
        x = Tensor(rng.normal(size=(14, 5)))
        feat_s, adj_s, assign_s = pool(x, SparseAdjacency.from_dense(adj))
        feat_d, adj_d, assign_d = dense_ref.diffpool_forward(pool, x, adj)
        np.testing.assert_allclose(feat_s.data, feat_d.data, atol=ATOL, rtol=0)
        np.testing.assert_allclose(adj_s, adj_d, atol=ATOL, rtol=0)
        np.testing.assert_allclose(assign_s.data, assign_d.data, atol=ATOL, rtol=0)

    def test_hierarchical_encoder_parity(self, rng):
        adj = erdos_renyi(16, 0.25, rng)
        encoder = HierarchicalAttentionEncoder(6, 8, num_layers=2,
                                               rng=np.random.default_rng(5))
        x = Tensor(rng.normal(size=(16, 6)))
        np.testing.assert_allclose(
            encoder(x, SparseAdjacency.from_dense(adj)).data,
            dense_ref.hierarchical_encode(encoder, x, adj).data, atol=ATOL, rtol=0)


class TestTimeSliceParity:
    def slicer_cases(self, small_dataset, toy_graph):
        samples = sorted(small_dataset.samples, key=lambda s: -s.num_edges)[:3]
        return [toy_graph] + [s.graph for s in samples]

    @pytest.mark.parametrize("weighted", [False, True])
    @pytest.mark.parametrize("cumulative", [False, True])
    def test_csr_slicer_matches_dense(self, small_dataset, toy_graph,
                                      weighted, cumulative):
        for graph in self.slicer_cases(small_dataset, toy_graph):
            dense = time_slice_adjacency(graph, 5, weighted=weighted,
                                         cumulative=cumulative)
            sparse = time_slice_csr(graph, 5, weighted=weighted,
                                    cumulative=cumulative)
            assert len(sparse) == len(dense) == 5
            for sp, dn in zip(sparse, dense):
                assert sp.shape == dn.shape
                np.testing.assert_allclose(sp.to_dense(), dn, atol=ATOL, rtol=0)

    def test_all_edges_in_one_slice(self):
        """Uniform timestamps put every edge in slot 0; later slices are empty."""
        from repro.graph.txgraph import TxGraph

        graph = TxGraph()
        graph.add_edge("a", "b", amount=1.0, timestamp=50.0)
        graph.add_edge("b", "c", amount=2.0, timestamp=50.0)
        dense = time_slice_adjacency(graph, 4)
        sparse = time_slice_csr(graph, 4)
        assert sparse[0].nnz == 4   # two undirected edges, both directions
        for sp, dn in zip(sparse, dense):
            np.testing.assert_allclose(sp.to_dense(), dn, atol=ATOL, rtol=0)
        for sp in sparse[1:]:
            assert sp.nnz == 0

    def test_empty_graph_slices(self):
        from repro.graph.txgraph import TxGraph

        graph = TxGraph()
        graph.add_node("solo")
        sparse = time_slice_csr(graph, 3)
        assert [sp.shape for sp in sparse] == [(1, 1)] * 3
        assert all(sp.nnz == 0 for sp in sparse)

    def test_self_loop_counts_twice(self):
        """The seed slicer adds a self loop to [i, i] twice; the CSR twin must too."""
        from repro.graph.txgraph import TxGraph

        graph = TxGraph()
        graph.add_edge("a", "a", amount=3.0, timestamp=1.0)
        graph.add_edge("a", "b", amount=1.0, timestamp=2.0)
        dense = time_slice_adjacency(graph, 2)
        sparse = time_slice_csr(graph, 2)
        assert dense[0][0, 0] == pytest.approx(6.0)
        for sp, dn in zip(sparse, dense):
            np.testing.assert_allclose(sp.to_dense(), dn, atol=ATOL, rtol=0)

    def test_num_slices_validation(self, toy_graph):
        with pytest.raises(ValueError):
            time_slice_csr(toy_graph, 0)

    def test_sample_sparse_slices_cached(self, small_dataset):
        sample = small_dataset[0]
        first = sample.time_slices(4, weighted=False, sparse=True)
        assert first is sample.time_slices(4, weighted=False, sparse=True)
        dense = sample.time_slices(4, weighted=False)
        for sp, dn in zip(first, dense):
            np.testing.assert_allclose(sp.to_dense(), dn, atol=ATOL, rtol=0)


class TestAugmentationParity:
    def test_sparse_matches_dense_with_same_seed(self, rng):
        adj = erdos_renyi(15, 0.3, rng)
        features = rng.normal(size=(15, 7))
        for measure in ("degree", "eigenvector", "pagerank"):
            config = AugmentationConfig(0.4, 0.2, centrality_measure=measure)
            dense_adj, dense_feat = adaptive_augmentation(
                adj, features, config, np.random.default_rng(3))
            sparse_adj, sparse_feat = adaptive_augmentation(
                SparseAdjacency.from_dense(adj), features, config,
                np.random.default_rng(3))
            assert isinstance(sparse_adj, SparseAdjacency)
            np.testing.assert_allclose(sparse_adj.to_dense(), dense_adj,
                                       atol=ATOL, rtol=0)
            np.testing.assert_allclose(sparse_feat, dense_feat, atol=ATOL, rtol=0)

    def test_sparse_zero_probabilities_identity(self, rng):
        adj = erdos_renyi(8, 0.4, rng)
        sp = SparseAdjacency.from_dense(adj)
        aug, _ = adaptive_augmentation(sp, rng.normal(size=(8, 3)),
                                       AugmentationConfig(0.0, 0.0), rng)
        np.testing.assert_array_equal(aug.to_dense(), adj)


def _train_one_step_gsg(samples, labels, prepare_dense: bool):
    """One seeded GSG epoch; dense path runs the preserved seed forward."""
    cfg = GSGConfig(epochs=1, use_contrastive=False, seed=0)
    rng = np.random.default_rng(cfg.seed)
    stacked = np.vstack([s.node_features for s in samples])
    mean, std = stacked.mean(axis=0), stacked.std(axis=0)
    std = std.copy()
    std[std < 1e-12] = 1.0
    network = _GSGNetwork(samples[0].node_features.shape[1], 2, cfg, rng)
    optimizer = Adam(network.parameters(), lr=cfg.learning_rate)
    indices = np.arange(len(samples))
    rng.shuffle(indices)
    losses = []
    for idx in indices:
        sample = samples[idx]
        features = (sample.node_features - mean) / std
        edge_features = np.log1p(np.abs(sample.node_edge_features()))
        optimizer.zero_grad()
        if prepare_dense:
            logit = dense_ref.gsg_forward(network, features, edge_features,
                                          sample.adjacency())
        else:
            logit = network(features, edge_features, sample.adjacency_sparse())
        loss = binary_cross_entropy_with_logits(logit.reshape(1),
                                                [float(labels[idx])])
        losses.append(loss.item())
        loss.backward()
        optimizer.step()
    logits = []
    for sample in samples:
        features = (sample.node_features - mean) / std
        edge_features = np.log1p(np.abs(sample.node_edge_features()))
        if prepare_dense:
            out = dense_ref.gsg_forward(network, features, edge_features,
                                        sample.adjacency())
        else:
            out = network(features, edge_features, sample.adjacency_sparse())
        logits.append(out.data.item())
    return np.array(losses), np.array(logits)


def _train_one_step_ldg(samples, labels, prepare_dense: bool):
    """One seeded LDG epoch; dense path runs the preserved seed forward."""
    cfg = LDGConfig(epochs=1, num_slices=4, seed=0)
    rng = np.random.default_rng(cfg.seed)
    stacked = np.vstack([s.node_features for s in samples])
    mean, std = stacked.mean(axis=0), stacked.std(axis=0).copy()
    std[std < 1e-12] = 1.0
    network = _LDGNetwork(samples[0].node_features.shape[1], cfg, rng)
    optimizer = Adam(network.parameters(), lr=cfg.learning_rate)
    indices = np.arange(len(samples))
    rng.shuffle(indices)
    losses = []

    def forward(sample):
        features = (sample.node_features - mean) / std
        if prepare_dense:
            slices = sample.time_slices(cfg.num_slices, weighted=False)
            return dense_ref.ldg_forward(network, features, slices)
        slices = sample.time_slices(cfg.num_slices, weighted=False, sparse=True)
        return network(features, slices)

    for idx in indices:
        optimizer.zero_grad()
        logit = forward(samples[idx])
        loss = binary_cross_entropy_with_logits(logit.reshape(1),
                                                [float(labels[idx])])
        losses.append(loss.item())
        loss.backward()
        optimizer.step()
    logits = np.array([forward(s).data.item() for s in samples])
    return np.array(losses), logits


class TestEndToEndRegression:
    """Seeded one-epoch training parity on a small generated ledger."""

    def test_gsg_training_step_dense_vs_sparse(self, exchange_task):
        samples, labels = exchange_task
        samples, labels = samples[:6], labels[:6]
        losses_dense, logits_dense = _train_one_step_gsg(samples, labels, True)
        losses_sparse, logits_sparse = _train_one_step_gsg(samples, labels, False)
        np.testing.assert_allclose(losses_sparse, losses_dense, atol=ATOL, rtol=0)
        np.testing.assert_allclose(logits_sparse, logits_dense, atol=ATOL, rtol=0)

    def test_ldg_training_step_dense_vs_sparse(self, exchange_task):
        samples, labels = exchange_task
        samples, labels = samples[:6], labels[:6]
        losses_dense, logits_dense = _train_one_step_ldg(samples, labels, True)
        losses_sparse, logits_sparse = _train_one_step_ldg(samples, labels, False)
        np.testing.assert_allclose(losses_sparse, losses_dense, atol=ATOL, rtol=0)
        np.testing.assert_allclose(logits_sparse, logits_dense, atol=ATOL, rtol=0)
