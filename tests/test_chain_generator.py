"""Tests for the synthetic ledger generator and the behavioural archetypes."""

import numpy as np
import pytest

from repro.chain import AccountCategory, LedgerConfig, LedgerGenerator, generate_ledger
from repro.chain.behaviors import (
    BEHAVIORS,
    airdrop_farming_behavior,
    behavior_for,
    bridge_behavior,
    defi_behavior,
    exchange_behavior,
    ico_wallet_behavior,
    mining_behavior,
    mixer_behavior,
    phish_hack_behavior,
    wash_trading_behavior,
)
from repro.chain.scenarios import MIXER_DENOMINATIONS


@pytest.fixture()
def behavior_env(rng):
    users = [f"0xu{i:02d}" for i in range(60)]
    contracts = [f"0xc{i:02d}" for i in range(10)]
    return users, contracts, rng, 1_000_000.0, 1_000_000.0


class TestBehaviors:
    def test_registry_covers_all_categories(self):
        assert set(BEHAVIORS) == set(AccountCategory)

    def test_behavior_for_accepts_strings(self):
        assert behavior_for("defi") is defi_behavior

    def test_exchange_has_bidirectional_flow(self, behavior_env):
        users, contracts, rng, start, span = behavior_env
        txs = exchange_behavior("0xex", users, contracts, rng, start, span)
        senders = {t[0] for t in txs}
        receivers = {t[1] for t in txs}
        assert "0xex" in senders and "0xex" in receivers
        assert len(senders | receivers) > 20

    def test_ico_wallet_inflow_precedes_disbursement(self, behavior_env):
        users, contracts, rng, start, span = behavior_env
        txs = ico_wallet_behavior("0xico", users, contracts, rng, start, span)
        inflow_times = [t[5] for t in txs if t[1] == "0xico"]
        outflow_times = [t[5] for t in txs if t[0] == "0xico"]
        assert max(inflow_times) < min(outflow_times)
        assert len(inflow_times) > len(outflow_times)

    def test_mining_rewards_are_periodic_and_constant(self, behavior_env):
        users, contracts, rng, start, span = behavior_env
        txs = mining_behavior("0xminer", users, contracts, rng, start, span)
        rewards = [t[2] for t in txs if t[1] == "0xminer"]
        assert len(rewards) >= 30
        assert np.std(rewards) / np.mean(rewards) < 0.1

    def test_phish_sweeps_most_of_the_stolen_funds(self, behavior_env):
        users, contracts, rng, start, span = behavior_env
        txs = phish_hack_behavior("0xbad", users, contracts, rng, start, span)
        stolen = sum(t[2] for t in txs if t[1] == "0xbad")
        swept = sum(t[2] for t in txs if t[0] == "0xbad")
        assert swept == pytest.approx(stolen * 0.98, rel=1e-6)

    def test_phish_burst_is_short(self, behavior_env):
        users, contracts, rng, start, span = behavior_env
        txs = phish_hack_behavior("0xbad", users, contracts, rng, start, span)
        times = [t[5] for t in txs]
        assert (max(times) - min(times)) < span * 0.2

    def test_bridge_pairs_match_amounts(self, behavior_env):
        users, contracts, rng, start, span = behavior_env
        txs = bridge_behavior("0xbridge", users, contracts, rng, start, span)
        inflows = sorted(t for t in txs if t[1] == "0xbridge")
        outflows = sorted(t for t in txs if t[0] == "0xbridge")
        assert len(inflows) == len(outflows)
        assert all(t[6] for t in txs)  # every leg is a contract call

    def test_defi_is_contract_call_heavy(self, behavior_env):
        users, contracts, rng, start, span = behavior_env
        txs = defi_behavior("0xdefi", users, contracts, rng, start, span)
        assert all(t[6] for t in txs)
        counterparties = {t[0] for t in txs} | {t[1] for t in txs}
        assert counterparties - {"0xdefi"} <= set(contracts)

    def test_wash_trading_round_trips_balance(self, behavior_env):
        users, contracts, rng, start, span = behavior_env
        txs = wash_trading_behavior("0xwash", users, contracts, rng, start, span)
        inflow = sum(t[2] for t in txs if t[1] == "0xwash")
        outflow = sum(t[2] for t in txs if t[0] == "0xwash")
        assert abs(inflow - outflow) / max(inflow, outflow) < 0.05
        clique = ({t[0] for t in txs} | {t[1] for t in txs}) - {"0xwash"}
        assert len(clique) <= 6

    def test_airdrop_claims_are_near_identical_and_bursty(self, behavior_env):
        users, contracts, rng, start, span = behavior_env
        txs = airdrop_farming_behavior("0xfarm", users, contracts, rng, start, span)
        claims = [t for t in txs if t[1] == "0xfarm"]
        values = [t[2] for t in claims]
        assert len(claims) >= 40
        assert np.std(values) / np.mean(values) < 0.1
        times = [t[5] for t in txs]
        assert (max(times) - min(times)) < span * 0.1

    def test_mixer_uses_fixed_denominations(self, behavior_env):
        users, contracts, rng, start, span = behavior_env
        txs = mixer_behavior("0xmix", users, contracts, rng, start, span)
        assert all(t[6] for t in txs)
        deposits = {t[2] for t in txs if t[1] == "0xmix"}
        assert deposits <= set(MIXER_DENOMINATIONS.tolist())
        withdrawals = [t for t in txs if t[0] == "0xmix"]
        assert len(withdrawals) == len(txs) - len(withdrawals)


class TestLedgerConfig:
    def test_scaled_reduces_counts(self):
        config = LedgerConfig().scaled(0.1)
        assert config.labeled_per_category[AccountCategory.PHISH_HACK] \
            < LedgerConfig().labeled_per_category[AccountCategory.PHISH_HACK]

    def test_scaled_keeps_minimum_of_two(self):
        config = LedgerConfig().scaled(0.0001)
        assert all(v >= 2 for v in config.labeled_per_category.values())

    def test_with_scenarios_restricts_categories(self):
        config = LedgerConfig().with_scenarios(["exchange", "mixer"])
        assert set(config.labeled_per_category) == \
            {AccountCategory.EXCHANGE, AccountCategory.MIXER}
        ledger = LedgerGenerator(config.scaled(0.2)).generate()
        assert set(ledger.labels.counts()) == \
            {AccountCategory.EXCHANGE, AccountCategory.MIXER}

    def test_with_scenarios_rejects_empty(self):
        with pytest.raises(ValueError):
            LedgerConfig().with_scenarios([])

    def test_validate_scenarios_passes_at_default_scale(self):
        config = LedgerConfig()
        config.validate_scenarios = True
        ledger = LedgerGenerator(config).generate()
        assert ledger.num_transactions > 0


class TestColumnarObjectParity:
    """The columnar and object assembly paths must build identical ledgers."""

    @pytest.mark.parametrize("scale,seed", [(0.1, 7), (0.25, 11)])
    def test_paths_produce_identical_ledgers(self, scale, seed):
        from repro.chain import LedgerGenerator

        config = LedgerConfig().scaled(scale)
        config.seed = seed
        columnar = LedgerGenerator(config, columnar=True).generate()
        objects = LedgerGenerator(config, columnar=False).generate()
        cc, co = columnar.tx_columns(), objects.tx_columns()
        for name in ("sender_id", "receiver_id", "value", "gas_price", "gas_used",
                     "timestamp", "is_contract_call", "submitted", "block_number"):
            np.testing.assert_array_equal(getattr(cc, name), getattr(co, name),
                                          err_msg=name)
        assert columnar.store.addresses == objects.store.addresses
        assert columnar.num_blocks == objects.num_blocks
        assert [b.number for b in columnar.blocks] == [b.number for b in objects.blocks]
        assert [b.timestamp for b in columnar.blocks] \
            == [b.timestamp for b in objects.blocks]
        first = next(columnar.transactions())
        assert first == next(objects.transactions())

    def test_default_path_is_columnar(self):
        from repro.chain import LedgerGenerator

        assert LedgerGenerator().columnar is True


class TestLedgerGenerator:
    def test_generation_is_deterministic(self):
        config = LedgerConfig().scaled(0.1)
        a = LedgerGenerator(config).generate()
        b = LedgerGenerator(config).generate()
        assert a.num_transactions == b.num_transactions
        assert [t.tx_hash for t in a.transactions()][:10] == \
            [t.tx_hash for t in b.transactions()][:10]

    def test_different_seeds_differ(self):
        a = generate_ledger(LedgerConfig().scaled(0.1), seed=1)
        b = generate_ledger(LedgerConfig().scaled(0.1), seed=2)
        assert a.num_transactions != b.num_transactions or \
            [t.value for t in a.transactions()][:20] != [t.value for t in b.transactions()][:20]

    def test_all_categories_are_labelled(self, small_ledger):
        counts = small_ledger.labels.counts()
        assert set(counts) == set(AccountCategory)
        assert all(v >= 2 for v in counts.values())

    def test_every_labeled_account_has_transactions(self, small_ledger):
        for address, _category in small_ledger.labels.items():
            assert len(small_ledger.transactions_for(address)) > 0

    def test_blocks_are_ordered_by_timestamp(self, small_ledger):
        timestamps = [b.timestamp for b in small_ledger.blocks]
        assert timestamps == sorted(timestamps)

    def test_transactions_within_configured_timespan(self, small_ledger):
        config = LedgerConfig()
        low, high = small_ledger.timespan()
        assert low >= config.start_timestamp - 1e4
        assert high <= config.start_timestamp + config.timespan + 1e5

    def test_some_contract_calls_exist(self, small_ledger):
        assert any(tx.is_contract_call for tx in small_ledger.transactions())

    def test_unsubmitted_fraction_is_small(self, small_ledger):
        all_txs = list(small_ledger.transactions(include_unsubmitted=True))
        unsubmitted = [t for t in all_txs if not t.submitted]
        assert len(unsubmitted) < 0.05 * len(all_txs)

    def test_registered_accounts_cover_transaction_endpoints(self, small_ledger):
        for tx in list(small_ledger.transactions())[:200]:
            assert small_ledger.has_account(tx.sender)
            assert small_ledger.has_account(tx.receiver)
