"""Tests for classification metrics, ROC/AUC and expected calibration error."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics import (
    accuracy,
    auc_score,
    classification_report,
    confusion_matrix,
    expected_calibration_error,
    f1_score,
    precision,
    recall,
    roc_curve,
)


class TestClassificationMetrics:
    def test_perfect_prediction(self):
        y = np.array([0, 1, 1, 0])
        assert accuracy(y, y) == 1.0
        assert precision(y, y) == 1.0
        assert recall(y, y) == 1.0
        assert f1_score(y, y) == 1.0

    def test_all_wrong(self):
        y_true = np.array([0, 1, 0, 1])
        y_pred = 1 - y_true
        assert accuracy(y_true, y_pred) == 0.0
        assert f1_score(y_true, y_pred) == 0.0

    def test_known_binary_case(self):
        y_true = np.array([1, 1, 1, 0, 0, 0])
        y_pred = np.array([1, 1, 0, 1, 0, 0])
        # Positive class: TP=2 FP=1 FN=1 -> P=R=F1=2/3; negative symmetric.
        assert precision(y_true, y_pred, average="binary") == pytest.approx(2 / 3)
        assert recall(y_true, y_pred, average="binary") == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred, average="binary") == pytest.approx(2 / 3)
        assert accuracy(y_true, y_pred) == pytest.approx(4 / 6)

    def test_macro_average_over_three_classes(self):
        y_true = np.array([0, 1, 2, 0, 1, 2])
        y_pred = np.array([0, 1, 2, 0, 2, 1])
        assert precision(y_true, y_pred) == pytest.approx((1.0 + 0.5 + 0.5) / 3)

    def test_zero_division_gives_zero_not_nan(self):
        y_true = np.array([0, 0, 0])
        y_pred = np.array([0, 0, 0])
        assert np.isfinite(f1_score(y_true, y_pred))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            accuracy([0, 1], [0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            accuracy([], [])

    def test_confusion_matrix_entries(self):
        y_true = [0, 0, 1, 1, 1]
        y_pred = [0, 1, 1, 1, 0]
        cm = confusion_matrix(y_true, y_pred)
        assert cm[0, 0] == 1 and cm[0, 1] == 1 and cm[1, 1] == 2 and cm[1, 0] == 1
        assert cm.sum() == 5

    def test_classification_report_keys(self):
        report = classification_report([0, 1, 1], [0, 1, 0])
        assert set(report) == {"precision", "recall", "f1", "accuracy"}


class TestROC:
    def test_perfect_separation_auc_is_one(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert auc_score(y, scores) == pytest.approx(1.0)

    def test_inverted_scores_auc_is_zero(self):
        y = np.array([0, 0, 1, 1])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert auc_score(y, scores) == pytest.approx(0.0)

    def test_random_scores_auc_near_half(self):
        rng = np.random.default_rng(0)
        y = rng.integers(0, 2, size=2000)
        scores = rng.random(2000)
        assert abs(auc_score(y, scores) - 0.5) < 0.05

    def test_curve_starts_at_origin_and_ends_at_one(self):
        y = np.array([0, 1, 0, 1, 1])
        fpr, tpr, _thresholds = roc_curve(y, np.array([0.2, 0.6, 0.4, 0.8, 0.3]))
        assert fpr[0] == 0.0 and tpr[0] == 0.0
        assert fpr[-1] == pytest.approx(1.0) and tpr[-1] == pytest.approx(1.0)

    def test_curve_is_monotone(self):
        rng = np.random.default_rng(1)
        y = rng.integers(0, 2, size=50)
        y[0], y[1] = 0, 1
        fpr, tpr, _ = roc_curve(y, rng.random(50))
        assert np.all(np.diff(fpr) >= 0) and np.all(np.diff(tpr) >= 0)

    def test_single_class_raises(self):
        with pytest.raises(ValueError):
            roc_curve(np.ones(5), np.linspace(0, 1, 5))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            roc_curve(np.array([0, 1]), np.array([0.5]))


class TestECE:
    def test_perfectly_calibrated_confident_predictions(self):
        y = np.array([1, 1, 1, 0, 0, 0])
        probs = np.array([1.0, 1.0, 1.0, 0.0, 0.0, 0.0])
        assert expected_calibration_error(y, probs) == pytest.approx(0.0)

    def test_overconfident_wrong_predictions_have_high_ece(self):
        y = np.array([0, 0, 0, 0])
        probs = np.array([0.99, 0.99, 0.99, 0.99])
        assert expected_calibration_error(y, probs) > 0.9

    def test_ece_is_bounded(self):
        rng = np.random.default_rng(2)
        y = rng.integers(0, 2, size=200)
        probs = rng.random(200)
        ece = expected_calibration_error(y, probs)
        assert 0.0 <= ece <= 1.0

    def test_ece_detects_miscalibration_better_than_calibrated(self):
        rng = np.random.default_rng(3)
        probs = rng.random(3000)
        calibrated_y = (rng.random(3000) < probs).astype(int)
        miscalibrated_y = (rng.random(3000) < np.clip(probs - 0.3, 0, 1)).astype(int)
        assert expected_calibration_error(calibrated_y, probs) < \
            expected_calibration_error(miscalibrated_y, probs)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            expected_calibration_error([], [])

    def test_invalid_bins_raises(self):
        with pytest.raises(ValueError):
            expected_calibration_error([1], [0.5], num_bins=0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            expected_calibration_error([1, 0], [0.5])


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 1), min_size=4, max_size=40))
def test_accuracy_between_zero_and_one(labels):
    labels = np.array(labels)
    predictions = np.roll(labels, 1)
    assert 0.0 <= accuracy(labels, predictions) <= 1.0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.integers(0, 1), min_size=2, max_size=40).filter(lambda ls: 0 < sum(ls) < len(ls)),
       st.integers(0, 10_000))
def test_auc_is_invariant_to_monotone_score_transform(labels, seed):
    labels = np.array(labels)
    rng = np.random.default_rng(seed)
    scores = rng.random(len(labels))
    original = auc_score(labels, scores)
    transformed = auc_score(labels, scores * 10 + 3)
    assert original == pytest.approx(transformed)
