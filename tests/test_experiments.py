"""Tests for the experiment harness (runners, figure studies, formatting)."""

import numpy as np
import pytest

from repro.core import DBG4ETH, DBG4ETHConfig, GSGConfig, LDGConfig, CalibrationConfig
from repro.core.augmentation import AugmentationConfig
from repro.experiments import (
    ExperimentConfig,
    build_experiment_dataset,
    calibration_weight_table,
    category_feature_summary,
    classifier_roc_study,
    feature_correlation_matrix,
    format_metrics_row,
    format_table,
    run_ablation,
    run_baseline_comparison,
    run_category_experiment,
    run_training_size_sweep,
    sensitivity_study,
)
from repro.experiments.runner import fast_dbg4eth_config


def micro_config(**overrides) -> DBG4ETHConfig:
    """The smallest usable DBG4ETH configuration for harness tests."""
    config = DBG4ETHConfig(
        gsg=GSGConfig(hidden_dim=8, epochs=2, contrastive_batch=4),
        ldg=LDGConfig(hidden_dim=8, epochs=2, num_slices=3, first_pool_clusters=4),
        calibration=CalibrationConfig(),
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def micro_sensitivity_config(edge_drop=None, feature_mask=None, pooling_layers=None):
    config = micro_config()
    if edge_drop is not None:
        config.gsg.view1 = AugmentationConfig(edge_drop, feature_mask or 0.0)
        config.gsg.view2 = AugmentationConfig(edge_drop, 0.0)
    if pooling_layers is not None:
        config.ldg.pooling_layers = pooling_layers
    return config


class TestSetup:
    def test_experiment_config_scales_ledger(self):
        config = ExperimentConfig(scale=0.2)
        ledger_config = config.ledger_config()
        assert sum(ledger_config.labeled_per_category.values()) < 60

    def test_build_experiment_dataset(self, tmp_path):
        dataset, ledger = build_experiment_dataset(
            ExperimentConfig(scale=0.15, top_k=20, max_nodes_per_subgraph=25))
        assert len(dataset) > 10
        assert ledger.num_transactions > 0


class TestRunners:
    def test_run_category_experiment_reports_metrics(self, small_dataset):
        report = run_category_experiment(small_dataset, "exchange",
                                         lambda: DBG4ETH(micro_config()))
        assert set(report) == {"precision", "recall", "f1", "accuracy"}
        assert all(0.0 <= v <= 1.0 for v in report.values())

    def test_fast_config_override(self):
        config = fast_dbg4eth_config(epochs=2, classifier="mlp")
        assert config.classifier == "mlp"
        assert config.gsg.epochs == 2

    def test_fast_config_rejects_unknown_override(self):
        with pytest.raises(TypeError, match="use_ldgg"):
            fast_dbg4eth_config(epochs=2, use_ldgg=False)   # typo must not pass silently

    def test_fast_config_rejects_nested_field_names(self):
        # gsg/ldg sub-fields are not top-level DBG4ETHConfig fields.
        with pytest.raises(TypeError, match="hidden_dim"):
            fast_dbg4eth_config(hidden_dim=64)

    def test_run_baseline_comparison_structure(self, small_dataset):
        baselines = {"GCN": __import__("repro.baselines", fromlist=["GCNClassifier"])
                     .GCNClassifier(hidden_dim=8, epochs=2)}
        results = run_baseline_comparison(small_dataset, ["mining"], baselines=baselines,
                                          include_dbg4eth=True,
                                          dbg4eth_config=micro_config())
        assert set(results) == {"GCN", "DBG4ETH"}
        assert "mining" in results["GCN"]
        assert set(results["GCN"]["mining"]) == {"precision", "recall", "f1", "accuracy"}

    def test_run_ablation_has_all_variants(self, small_dataset):
        results = run_ablation(small_dataset, ["defi"], base_config=micro_config)
        expected = {"w/o GSG", "w/o LDG", "w/o calibration", "w/o Param. calibration",
                    "w/o Non-param. calibration", "w/o Ada. calibration", "w/o LightGBM",
                    "DBG4ETH"}
        assert set(results) == expected
        assert all("defi" in row for row in results.values())

    def test_run_training_size_sweep(self, small_dataset):
        results = run_training_size_sweep(small_dataset, "bridge", fractions=(0.3, 0.5),
                                          config_factory=micro_config)
        assert set(results) == {0.3, 0.5}
        assert all(set(v) == {"precision", "recall", "f1", "accuracy"} for v in results.values())


class TestFigureStudies:
    def test_feature_correlation_matrix(self, small_dataset):
        matrix, names = feature_correlation_matrix(small_dataset)
        assert matrix.shape == (15, 15)
        assert len(names) == 15
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-12)
        assert np.all(matrix <= 1.0 + 1e-9) and np.all(matrix >= -1.0 - 1e-9)

    def test_category_feature_summary(self, small_dataset):
        summary = category_feature_summary(small_dataset)
        assert set(summary) == set(small_dataset.categories())
        for row in summary.values():
            assert set(row) == {"SAF", "RAF", "TFF", "CF"}
            assert all(0.0 <= v <= 1.0 for v in row.values())

    def test_calibration_weight_table(self, small_dataset):
        weights = calibration_weight_table(small_dataset, ["mining"], micro_config)
        assert set(weights) == {"mining"}
        assert set(weights["mining"]) == {"gsg", "ldg"}
        assert len(weights["mining"]["gsg"]) == 6

    def test_classifier_roc_study(self, small_dataset):
        study = classifier_roc_study(small_dataset, "phish/hack", micro_config)
        assert set(study) == {"lightgbm", "xgboost", "random_forest", "adaboost", "mlp"}
        for entry in study.values():
            assert 0.0 <= entry["auc"] <= 1.0
            assert len(entry["fpr"]) == len(entry["tpr"])

    def test_sensitivity_study(self, small_dataset):
        study = sensitivity_study(small_dataset, "exchange", micro_sensitivity_config,
                                  augmentation_probs=(0.1, 0.8), pooling_layers=(1, 2))
        assert set(study) == {"augmentation", "pooling"}
        assert set(study["augmentation"]) == {0.1, 0.8}
        assert set(study["pooling"]) == {1, 2}


class TestFormatting:
    def test_format_metrics_row(self):
        row = format_metrics_row("GCN", {"f1": 0.5, "accuracy": 0.75})
        assert "GCN" in row and "50.00" in row and "75.00" in row

    def test_format_table_with_nested_metrics(self):
        results = {"GCN": {"exchange": {"f1": 0.8}}, "DBG4ETH": {"exchange": {"f1": 0.99}}}
        table = format_table(results, title="Table III", metric="f1")
        assert "Table III" in table
        assert "99.00%" in table and "80.00%" in table

    def test_format_table_with_flat_floats(self):
        table = format_table({"w/o GSG": {"defi": 0.5}}, metric=None)
        assert "50.00%" in table

    def test_format_table_handles_missing_cells(self):
        table = format_table({"A": {"x": 0.1}, "B": {"y": 0.2}})
        assert "-" in table
