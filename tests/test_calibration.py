"""Tests for the six calibration methods and the adaptive combiner."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.calibration import (
    AdaptiveCalibrator,
    BBQCalibration,
    BetaCalibration,
    HistogramBinning,
    IsotonicCalibration,
    LogisticCalibration,
    NONPARAMETRIC_METHODS,
    PARAMETRIC_METHODS,
    TemperatureScaling,
    confidence_scale,
    default_calibrators,
)
from repro.metrics import expected_calibration_error

ALL_CALIBRATORS = [
    TemperatureScaling,
    LogisticCalibration,
    BetaCalibration,
    HistogramBinning,
    IsotonicCalibration,
    BBQCalibration,
]


def overconfident_data(n=400, seed=0):
    """Labels drawn from a weaker signal than the stated confidence implies."""
    rng = np.random.default_rng(seed)
    confidences = rng.uniform(0.05, 0.95, size=n)
    # True positive probability is pulled towards 0.5: the model is overconfident.
    true_prob = 0.5 + 0.5 * (confidences - 0.5)
    labels = (rng.random(n) < true_prob).astype(float)
    return confidences, labels


class TestConfidenceScale:
    def test_output_in_unit_interval(self, rng):
        scaled = confidence_scale(rng.normal(size=100) * 10)
        assert np.all(scaled > 0.0) and np.all(scaled < 1.0)

    def test_constant_input_maps_to_half(self):
        np.testing.assert_allclose(confidence_scale(np.full(5, 3.0)), np.full(5, 0.5))

    def test_monotone(self, rng):
        scores = np.sort(rng.normal(size=50))
        scaled = confidence_scale(scores)
        assert np.all(np.diff(scaled) >= 0)

    def test_empty_input(self):
        assert confidence_scale(np.array([])).size == 0

    def test_reusing_statistics(self):
        scores = np.array([0.0, 1.0, 2.0])
        a = confidence_scale(scores, mean=1.0, std=1.0)
        b = confidence_scale(scores + 10, mean=11.0, std=1.0)
        np.testing.assert_allclose(a, b)


class TestIndividualCalibrators:
    @pytest.mark.parametrize("calibrator_cls", ALL_CALIBRATORS)
    def test_outputs_are_probabilities(self, calibrator_cls):
        confidences, labels = overconfident_data()
        calibrated = calibrator_cls().fit_transform(confidences, labels)
        assert np.all(calibrated >= 0.0) and np.all(calibrated <= 1.0)

    @pytest.mark.parametrize("calibrator_cls", ALL_CALIBRATORS)
    def test_reduces_ece_on_overconfident_data(self, calibrator_cls):
        confidences, labels = overconfident_data(n=800)
        before = expected_calibration_error(labels, confidences)
        calibrated = calibrator_cls().fit_transform(confidences, labels)
        after = expected_calibration_error(labels, calibrated)
        assert after <= before + 0.02

    @pytest.mark.parametrize("calibrator_cls", ALL_CALIBRATORS)
    def test_transform_before_fit_raises(self, calibrator_cls):
        calibrator = calibrator_cls()
        if hasattr(calibrator, "_bin_values") or hasattr(calibrator, "_x") \
                or hasattr(calibrator, "_models"):
            with pytest.raises(RuntimeError):
                calibrator.transform(np.array([0.5]))

    @pytest.mark.parametrize("calibrator_cls", ALL_CALIBRATORS)
    def test_shape_mismatch_raises(self, calibrator_cls):
        with pytest.raises(ValueError):
            calibrator_cls().fit(np.array([0.1, 0.9]), np.array([1.0]))

    def test_temperature_scaling_learns_positive_temperature(self):
        confidences, labels = overconfident_data()
        calibrator = TemperatureScaling().fit(confidences, labels)
        assert calibrator.temperature > 0.0

    def test_temperature_softens_overconfident_scores(self):
        confidences, labels = overconfident_data(n=1000, seed=3)
        calibrator = TemperatureScaling().fit(confidences, labels)
        calibrated = calibrator.transform(np.array([0.95]))
        assert calibrated[0] < 0.95

    def test_logistic_calibration_is_monotone(self):
        confidences, labels = overconfident_data()
        calibrator = LogisticCalibration().fit(confidences, labels)
        grid = np.linspace(0.01, 0.99, 50)
        out = calibrator.transform(grid)
        assert np.all(np.diff(out) >= -1e-9) or np.all(np.diff(out) <= 1e-9)

    def test_histogram_binning_constant_within_bin(self):
        confidences, labels = overconfident_data()
        calibrator = HistogramBinning(num_bins=10).fit(confidences, labels)
        out = calibrator.transform(np.array([0.11, 0.19]))
        assert out[0] == pytest.approx(out[1])

    def test_histogram_invalid_bins_raises(self):
        with pytest.raises(ValueError):
            HistogramBinning(num_bins=0)

    def test_isotonic_output_is_monotone(self):
        confidences, labels = overconfident_data()
        calibrator = IsotonicCalibration().fit(confidences, labels)
        out = calibrator.transform(np.linspace(0, 1, 100))
        assert np.all(np.diff(out) >= -1e-9)

    def test_isotonic_fits_monotone_data_exactly(self):
        confidences = np.array([0.1, 0.2, 0.3, 0.4])
        labels = np.array([0.0, 0.0, 1.0, 1.0])
        calibrator = IsotonicCalibration().fit(confidences, labels)
        np.testing.assert_allclose(calibrator.transform(confidences), labels, atol=1e-9)

    def test_bbq_weights_sum_to_one(self):
        confidences, labels = overconfident_data()
        calibrator = BBQCalibration().fit(confidences, labels)
        assert sum(w for _e, _p, w in calibrator._models) == pytest.approx(1.0)


class TestAdaptiveCalibrator:
    def test_default_method_pool(self):
        assert set(default_calibrators()) == set(PARAMETRIC_METHODS) | set(NONPARAMETRIC_METHODS)

    def test_weights_sum_to_one(self):
        confidences, labels = overconfident_data()
        calibrator = AdaptiveCalibrator().fit(confidences, labels)
        assert sum(calibrator.weights().values()) == pytest.approx(1.0)

    def test_combined_output_in_unit_interval(self):
        confidences, labels = overconfident_data()
        combined = AdaptiveCalibrator().fit_transform(confidences, labels)
        assert np.all(combined >= 0.0) and np.all(combined <= 1.0)

    def test_combined_ece_not_worse_than_uncalibrated(self):
        confidences, labels = overconfident_data(n=800, seed=5)
        combined = AdaptiveCalibrator().fit_transform(confidences, labels)
        assert expected_calibration_error(labels, combined) <= \
            expected_calibration_error(labels, confidences) + 0.02

    def test_report_contains_every_method(self):
        confidences, labels = overconfident_data()
        calibrator = AdaptiveCalibrator().fit(confidences, labels)
        assert set(calibrator.report.method_ece) == set(default_calibrators())

    def test_better_methods_get_larger_weights(self):
        confidences, labels = overconfident_data()
        calibrator = AdaptiveCalibrator().fit(confidences, labels)
        reductions = calibrator.report.ece_reduction
        weights = calibrator.weights()
        best = max(reductions, key=reductions.get)
        worst = min(reductions, key=reductions.get)
        assert weights[best] >= weights[worst]

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            AdaptiveCalibrator().transform(np.array([0.5]))

    def test_empty_calibrator_pool_raises(self):
        with pytest.raises(ValueError):
            AdaptiveCalibrator(calibrators={})

    def test_restricted_pool_only_uses_named_methods(self):
        confidences, labels = overconfident_data()
        pool = {name: cal for name, cal in default_calibrators().items()
                if name in NONPARAMETRIC_METHODS}
        calibrator = AdaptiveCalibrator(pool).fit(confidences, labels)
        assert set(calibrator.weights()) == set(NONPARAMETRIC_METHODS)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 10_000))
def test_adaptive_calibration_outputs_valid_probabilities_for_any_seed(seed):
    confidences, labels = overconfident_data(n=120, seed=seed)
    if labels.sum() in (0, len(labels)):
        labels[0] = 1 - labels[0]
    combined = AdaptiveCalibrator().fit_transform(confidences, labels)
    assert np.all(np.isfinite(combined))
    assert np.all(combined >= 0.0) and np.all(combined <= 1.0)
