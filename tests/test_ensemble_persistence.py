"""Persistence regression tests for the ensemble heads.

The golden fixtures under ``tests/fixtures/classifier_states/`` were written
by the PR-3-era recursive tree engine (see
``tests/fixtures/make_classifier_fixtures.py``).  Loading them through the
current flat histogram engine must reproduce the recorded predictions bit for
bit — that is the backward-compatibility contract deployed model directories
rely on.  Fresh fits must also survive a save/load round trip losslessly,
including every tree hyperparameter.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.api.persistence import load_state, save_state
from repro.core.classifier import CLASSIFIER_FACTORIES, AccountClassificationModule
from repro.ensemble import GradientBoostingClassifier, LightGBMClassifier

FIXTURE_DIR = Path(__file__).resolve().parent / "fixtures" / "classifier_states"
HEAD_NAMES = sorted(CLASSIFIER_FACTORIES)


@pytest.fixture(scope="module")
def golden():
    return np.load(FIXTURE_DIR / "golden_predictions.npz")


class TestGoldenStates:
    """PR-3-format state directories must load and predict bit-identically."""

    @pytest.mark.parametrize("name", HEAD_NAMES)
    def test_golden_state_predicts_bitwise(self, name, golden):
        module = AccountClassificationModule(name).set_state(
            load_state(FIXTURE_DIR / name))
        X_eval = golden["X_eval"]
        assert np.array_equal(module.predict_proba(X_eval), golden[f"{name}_proba"])
        assert np.array_equal(module.predict(X_eval), golden[f"{name}_predict"])

    @pytest.mark.parametrize("name", HEAD_NAMES)
    def test_golden_state_survives_resave(self, name, golden, tmp_path):
        """Loading a PR-3 state and saving it again must not change predictions."""
        module = AccountClassificationModule(name).set_state(
            load_state(FIXTURE_DIR / name))
        save_state(tmp_path / name, module.get_state())
        reloaded = AccountClassificationModule(name).set_state(
            load_state(tmp_path / name))
        X_eval = golden["X_eval"]
        assert np.array_equal(reloaded.predict_proba(X_eval),
                              golden[f"{name}_proba"])

    def test_golden_lightgbm_state_is_binned_space(self):
        """PR-3 LightGBM trees split on binned inputs; the loader must honour it."""
        module = AccountClassificationModule("lightgbm").set_state(
            load_state(FIXTURE_DIR / "lightgbm"))
        assert module._model._input_space == "binned"


class TestFreshRoundTrip:
    """New-engine fits must round-trip through save_state/load_state losslessly."""

    @pytest.mark.parametrize("name", HEAD_NAMES)
    def test_round_trip_bitwise(self, name, golden, tmp_path):
        module = AccountClassificationModule(name, seed=3).fit(
            golden["X_fit"], golden["labels"])
        save_state(tmp_path / name, module.get_state())
        reloaded = AccountClassificationModule(name).set_state(
            load_state(tmp_path / name))
        X_eval = golden["X_eval"]
        assert np.array_equal(module.predict_proba(X_eval),
                              reloaded.predict_proba(X_eval))
        assert np.array_equal(module.predict(X_eval), reloaded.predict(X_eval))

    def test_fresh_lightgbm_state_is_raw_space(self, golden):
        module = AccountClassificationModule("lightgbm", seed=3).fit(
            golden["X_fit"], golden["labels"])
        state = module.get_state()["model"]
        assert state["input_space"] == "raw"


class TestHyperparameterRestore:
    """Regression: set_state used to silently reset every tree hyperparameter
    except max_depth (min_samples_leaf / max_features came back as defaults)."""

    def test_boosted_state_restores_tree_params(self, golden):
        fitted = GradientBoostingClassifier(
            n_estimators=4, max_depth=5, min_samples_leaf=7, max_features=1,
            seed=3).fit(golden["X_fit"], golden["labels"])
        loaded = GradientBoostingClassifier().set_state(fitted.get_state())
        assert loaded.max_depth == 5
        assert loaded.min_samples_leaf == 7
        assert loaded.max_features == 1
        assert loaded.learning_rate == fitted.learning_rate

    def test_lightgbm_state_restores_tree_params(self, golden):
        fitted = LightGBMClassifier(
            n_estimators=4, max_depth=6, min_samples_leaf=3, seed=3,
        ).fit(golden["X_fit"], golden["labels"])
        loaded = LightGBMClassifier().set_state(fitted.get_state())
        assert loaded.max_depth == 6
        assert loaded.min_samples_leaf == 3
        assert loaded.max_features is None

    def test_legacy_state_without_tree_params_keeps_constructor_values(self, golden):
        """Old states lack ``tree_params``; the host's settings must survive."""
        fitted = GradientBoostingClassifier(n_estimators=4, seed=3).fit(
            golden["X_fit"], golden["labels"])
        state = fitted.get_state()
        del state["tree_params"]
        loaded = GradientBoostingClassifier(max_depth=9,
                                            min_samples_leaf=5).set_state(state)
        assert loaded.max_depth == 9
        assert loaded.min_samples_leaf == 5
        X_eval = golden["X_eval"]
        assert np.array_equal(loaded.predict_proba(X_eval),
                              fitted.predict_proba(X_eval))
