"""Centrality tests, cross-validated against networkx where applicable."""

import networkx as nx
import numpy as np
import pytest

from repro.graph import (
    TxGraph,
    degree_centrality,
    edge_centrality,
    eigenvector_centrality,
    pagerank_centrality,
)


@pytest.fixture()
def star_graph():
    """Hub node 0 connected to 4 leaves."""
    g = TxGraph()
    for leaf in range(1, 5):
        g.add_edge(0, leaf, amount=1.0)
    return g


class TestDegreeCentrality:
    def test_hub_has_highest_score(self, star_graph):
        scores = degree_centrality(star_graph)
        assert scores[0] == max(scores.values())

    def test_matches_networkx(self, star_graph):
        ours = degree_centrality(star_graph)
        theirs = nx.degree_centrality(star_graph.to_networkx().to_undirected())
        for node in star_graph.nodes:
            assert ours[node] == pytest.approx(theirs[node])

    def test_single_node_graph(self):
        g = TxGraph()
        g.add_node("only")
        assert degree_centrality(g) == {"only": 0.0}

    def test_empty_graph(self):
        assert degree_centrality(TxGraph()) == {}


class TestEigenvectorCentrality:
    def test_hub_dominates(self, star_graph):
        scores = eigenvector_centrality(star_graph)
        assert scores[0] == max(scores.values())

    def test_close_to_networkx(self, star_graph):
        ours = eigenvector_centrality(star_graph)
        theirs = nx.eigenvector_centrality_numpy(star_graph.to_networkx().to_undirected())
        ours_vec = np.array([ours[n] for n in star_graph.nodes])
        theirs_vec = np.array([theirs[n] for n in star_graph.nodes])
        ours_vec /= np.linalg.norm(ours_vec)
        theirs_vec /= np.linalg.norm(theirs_vec)
        np.testing.assert_allclose(ours_vec, np.abs(theirs_vec), atol=1e-3)

    def test_scores_are_nonnegative(self, toy_graph):
        assert all(v >= 0 for v in eigenvector_centrality(toy_graph).values())

    def test_empty_graph(self):
        assert eigenvector_centrality(TxGraph()) == {}


class TestPageRank:
    def test_scores_sum_to_one(self, toy_graph):
        scores = pagerank_centrality(toy_graph)
        assert sum(scores.values()) == pytest.approx(1.0, abs=1e-6)

    def test_close_to_networkx(self, toy_graph):
        ours = pagerank_centrality(toy_graph)
        theirs = nx.pagerank(toy_graph.to_networkx(), alpha=0.85)
        for node in toy_graph.nodes:
            assert ours[node] == pytest.approx(theirs[node], abs=0.02)

    def test_sink_node_gets_rank(self, star_graph):
        scores = pagerank_centrality(star_graph)
        assert all(v > 0 for v in scores.values())

    def test_empty_graph(self):
        assert pagerank_centrality(TxGraph()) == {}


class TestEdgeCentrality:
    def test_one_score_per_edge(self, toy_graph):
        scores = edge_centrality(toy_graph)
        assert len(scores) == toy_graph.num_edges

    def test_is_mean_of_endpoint_scores(self, star_graph):
        node_scores = degree_centrality(star_graph)
        edge_scores = edge_centrality(star_graph, measure="degree")
        for (src, dst), value in edge_scores.items():
            assert value == pytest.approx(0.5 * (node_scores[src] + node_scores[dst]))

    @pytest.mark.parametrize("measure", ["degree", "eigenvector", "pagerank"])
    def test_all_measures_supported(self, toy_graph, measure):
        scores = edge_centrality(toy_graph, measure=measure)
        assert all(np.isfinite(v) for v in scores.values())

    def test_unknown_measure_raises(self, toy_graph):
        with pytest.raises(ValueError):
            edge_centrality(toy_graph, measure="betweenness")
