"""Tests for the end-to-end DBG4ETH model and its ablation switches."""

import numpy as np
import pytest

from repro.core import CalibrationConfig, DBG4ETH, DBG4ETHConfig, GSGConfig, LDGConfig
from repro.data import train_test_split
from repro.metrics import accuracy, f1_score


def tiny_config(**overrides) -> DBG4ETHConfig:
    config = DBG4ETHConfig(
        gsg=GSGConfig(hidden_dim=8, epochs=8, contrastive_batch=4),
        ldg=LDGConfig(hidden_dim=8, epochs=8, num_slices=3, first_pool_clusters=4),
        calibration=CalibrationConfig(),
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


@pytest.fixture(scope="module")
def split_task(small_dataset):
    samples, labels = small_dataset.binary_task("phish/hack", rng=np.random.default_rng(2))
    return train_test_split(samples, labels, test_fraction=0.3, seed=2)


class TestConfig:
    def test_both_branches_disabled_raises(self):
        with pytest.raises(ValueError):
            DBG4ETHConfig(use_gsg=False, use_ldg=False)

    def test_default_classifier_is_lightgbm(self):
        assert DBG4ETHConfig().classifier == "lightgbm"


class TestDBG4ETH:
    def test_predict_before_fit_raises(self, split_task):
        _train_s, _train_y, test_s, _test_y = split_task
        with pytest.raises(RuntimeError):
            DBG4ETH(tiny_config()).predict(test_s)

    def test_fit_empty_raises(self):
        with pytest.raises(ValueError):
            DBG4ETH(tiny_config()).fit([], [])

    def test_fit_length_mismatch_raises(self, split_task):
        train_s, train_y, _test_s, _test_y = split_task
        with pytest.raises(ValueError):
            DBG4ETH(tiny_config()).fit(train_s, train_y[:-1])

    def test_end_to_end_beats_chance(self, split_task):
        train_s, train_y, test_s, test_y = split_task
        model = DBG4ETH(tiny_config()).fit(train_s, train_y)
        predictions = model.predict(test_s)
        assert predictions.shape == (len(test_s),)
        assert accuracy(test_y, predictions) >= 0.6
        assert f1_score(test_y, predictions) > 0.0

    def test_predict_proba_valid(self, split_task):
        train_s, train_y, test_s, _test_y = split_task
        model = DBG4ETH(tiny_config()).fit(train_s, train_y)
        probs = model.predict_proba(test_s)
        assert probs.shape == (len(test_s),)
        assert np.all(probs >= 0.0) and np.all(probs <= 1.0)

    def test_calibration_weights_exposed(self, split_task):
        train_s, train_y, _test_s, _test_y = split_task
        model = DBG4ETH(tiny_config()).fit(train_s, train_y)
        weights = model.calibration_weights()
        assert set(weights) == {"gsg", "ldg"}
        assert sum(weights["gsg"].values()) == pytest.approx(1.0)

    def test_without_gsg_branch(self, split_task):
        train_s, train_y, test_s, _test_y = split_task
        model = DBG4ETH(tiny_config(use_gsg=False)).fit(train_s, train_y)
        assert model.gsg_branch is None
        assert model.predict(test_s).shape == (len(test_s),)

    def test_without_ldg_branch(self, split_task):
        train_s, train_y, test_s, _test_y = split_task
        model = DBG4ETH(tiny_config(use_ldg=False)).fit(train_s, train_y)
        assert model.ldg_branch is None
        assert model.predict(test_s).shape == (len(test_s),)

    def test_without_calibration(self, split_task):
        train_s, train_y, test_s, _test_y = split_task
        config = tiny_config()
        config.calibration = CalibrationConfig(use_calibration=False)
        model = DBG4ETH(config).fit(train_s, train_y)
        assert model.calibration_weights() == {"gsg": {}, "ldg": {}}
        assert model.predict(test_s).shape == (len(test_s),)

    def test_mlp_classifier_variant(self, split_task):
        train_s, train_y, test_s, _test_y = split_task
        model = DBG4ETH(tiny_config(classifier="mlp")).fit(train_s, train_y)
        probs = model.predict_proba(test_s)
        assert np.all(np.isfinite(probs))

    def test_deterministic_given_seed(self, split_task):
        train_s, train_y, test_s, _test_y = split_task
        a = DBG4ETH(tiny_config()).fit(train_s, train_y).predict_proba(test_s)
        b = DBG4ETH(tiny_config()).fit(train_s, train_y).predict_proba(test_s)
        np.testing.assert_allclose(a, b)
