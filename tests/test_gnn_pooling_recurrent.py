"""Tests for pooling operators, DiffPool, the GRU cell and the hierarchical encoder."""

import numpy as np
import pytest

from repro.gnn import (
    DiffPool,
    GRUCell,
    GraphAttentionReadout,
    HierarchicalAttentionEncoder,
    global_max_pool,
    global_mean_pool,
    global_sum_pool,
)
from repro.nn import Tensor


class TestGlobalPooling:
    def test_mean_pool(self, rng):
        x = rng.normal(size=(5, 3))
        np.testing.assert_allclose(global_mean_pool(Tensor(x)).data, x.mean(axis=0, keepdims=True))

    def test_max_pool(self, rng):
        x = rng.normal(size=(5, 3))
        np.testing.assert_allclose(global_max_pool(Tensor(x)).data, x.max(axis=0, keepdims=True))

    def test_sum_pool(self, rng):
        x = rng.normal(size=(5, 3))
        np.testing.assert_allclose(global_sum_pool(Tensor(x)).data, x.sum(axis=0, keepdims=True))

    def test_pool_outputs_are_row_vectors(self, rng):
        x = Tensor(rng.normal(size=(7, 4)))
        for pool in (global_mean_pool, global_max_pool, global_sum_pool):
            assert pool(x).shape == (1, 4)


class TestDiffPool:
    def test_shapes(self, rng):
        adjacency = (rng.random((8, 8)) > 0.5).astype(float)
        adjacency = np.maximum(adjacency, adjacency.T)
        pool = DiffPool(in_dim=5, num_clusters=3, rng=rng)
        features, pooled_adj, assignment = pool(Tensor(rng.normal(size=(8, 5))), adjacency)
        assert features.shape == (3, 5)
        assert pooled_adj.shape == (3, 3)
        assert assignment.shape == (8, 3)

    def test_assignment_rows_are_distributions(self, rng):
        adjacency = np.eye(6)
        pool = DiffPool(in_dim=4, num_clusters=2, rng=rng)
        _f, _a, assignment = pool(Tensor(rng.normal(size=(6, 4))), adjacency)
        np.testing.assert_allclose(assignment.data.sum(axis=1), np.ones(6), atol=1e-9)

    def test_single_cluster_collapses_graph(self, rng):
        adjacency = np.ones((5, 5)) - np.eye(5)
        pool = DiffPool(in_dim=4, num_clusters=1, rng=rng)
        features, pooled_adj, _ = pool(Tensor(rng.normal(size=(5, 4))), adjacency)
        assert features.shape == (1, 4)
        assert pooled_adj.shape == (1, 1)

    def test_invalid_cluster_count_raises(self):
        with pytest.raises(ValueError):
            DiffPool(in_dim=4, num_clusters=0)

    def test_gradient_flows_through_pooled_features(self, rng):
        adjacency = np.ones((4, 4)) - np.eye(4)
        pool = DiffPool(in_dim=3, num_clusters=2, rng=rng)
        features, _adj, _assign = pool(Tensor(rng.normal(size=(4, 3))), adjacency)
        features.sum().backward()
        assert all(p.grad is not None for p in pool.parameters())


class TestGRUCell:
    def test_output_shape(self, rng):
        gru = GRUCell(4, 6, rng=rng)
        out = gru(Tensor(rng.normal(size=(5, 4))), Tensor(rng.normal(size=(5, 6))))
        assert out.shape == (5, 6)

    def test_initial_state_is_zero(self):
        gru = GRUCell(4, 6)
        np.testing.assert_allclose(gru.initial_state(3).data, np.zeros((3, 6)))

    def test_output_bounded_by_tanh_dynamics(self, rng):
        gru = GRUCell(4, 4, rng=rng)
        hidden = gru.initial_state(5)
        for _ in range(10):
            hidden = gru(Tensor(rng.normal(size=(5, 4))), hidden)
        assert np.all(np.abs(hidden.data) <= 1.0 + 1e-9)

    def test_state_carries_information(self, rng):
        gru = GRUCell(3, 3, rng=rng)
        inputs = Tensor(rng.normal(size=(2, 3)))
        from_zero = gru(inputs, gru.initial_state(2)).data
        from_nonzero = gru(inputs, Tensor(np.ones((2, 3)))).data
        assert not np.allclose(from_zero, from_nonzero)

    def test_gradients_reach_all_parameters(self, rng):
        gru = GRUCell(3, 3, rng=rng)
        out = gru(Tensor(rng.normal(size=(2, 3))), Tensor(rng.normal(size=(2, 3))))
        out.sum().backward()
        assert all(p.grad is not None for p in gru.parameters())

    def test_parameter_count(self):
        gru = GRUCell(4, 6)
        # 3 input matrices (4x6) + 3 hidden matrices (6x6) + 3 biases (6).
        assert gru.num_parameters() == 3 * 24 + 3 * 36 + 3 * 6


class TestHierarchicalAttention:
    def test_readout_shape(self, rng):
        readout = GraphAttentionReadout(8, rng=rng)
        assert readout(Tensor(rng.normal(size=(6, 8)))).shape == (1, 8)

    def test_encoder_shape(self, rng):
        adjacency = (rng.random((7, 7)) > 0.5).astype(float)
        adjacency = np.maximum(adjacency, adjacency.T)
        encoder = HierarchicalAttentionEncoder(5, 8, num_layers=2, rng=rng)
        out = encoder(Tensor(rng.normal(size=(7, 5))), adjacency)
        assert out.shape == (1, 8)

    def test_node_embeddings_shape(self, rng):
        adjacency = np.ones((4, 4)) - np.eye(4)
        encoder = HierarchicalAttentionEncoder(3, 6, num_layers=2, rng=rng)
        assert encoder.node_embeddings(Tensor(rng.normal(size=(4, 3))), adjacency).shape == (4, 6)

    def test_zero_layers_raises(self):
        with pytest.raises(ValueError):
            HierarchicalAttentionEncoder(3, 6, num_layers=0)

    def test_different_graphs_get_different_embeddings(self, rng):
        encoder = HierarchicalAttentionEncoder(3, 6, num_layers=2, rng=np.random.default_rng(0))
        features = rng.normal(size=(5, 3))
        dense = np.ones((5, 5)) - np.eye(5)
        sparse = np.zeros((5, 5))
        out_dense = encoder(Tensor(features), dense).data
        out_sparse = encoder(Tensor(features), sparse).data
        assert not np.allclose(out_dense, out_sparse)

    def test_gradients_reach_every_parameter(self, rng):
        adjacency = np.ones((4, 4)) - np.eye(4)
        encoder = HierarchicalAttentionEncoder(3, 6, num_layers=2, rng=rng)
        encoder(Tensor(rng.normal(size=(4, 3))), adjacency).sum().backward()
        assert all(p.grad is not None for p in encoder.parameters())
