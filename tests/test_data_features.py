"""Tests for the 15-dimensional deep features (Table I)."""

import numpy as np
import pytest

from repro.chain import Account, Block, Ledger, Transaction
from repro.data import FEATURE_GROUPS, FEATURE_NAMES, DeepFeatureExtractor, category_feature_matrix


def build_ledger_with_known_activity() -> Ledger:
    """A tiny ledger where every feature of account 0xaa can be computed by hand."""
    ledger = Ledger()
    for address in ("0xaa", "0xbb", "0xcc"):
        ledger.add_account(Account(address))
    txs = [
        # 0xaa sends twice: values 2 and 4, 100s apart, gas fee 21000 * 50 gwei each.
        Transaction("0x1", "0xaa", "0xbb", 2.0, 50.0, 21_000, 1000.0),
        Transaction("0x2", "0xaa", "0xcc", 4.0, 50.0, 21_000, 1100.0),
        # 0xaa receives three times: values 1, 1, 7 at 2000/2500/2600.
        Transaction("0x3", "0xbb", "0xaa", 1.0, 20.0, 21_000, 2000.0),
        Transaction("0x4", "0xcc", "0xaa", 1.0, 20.0, 21_000, 2500.0),
        Transaction("0x5", "0xbb", "0xaa", 7.0, 20.0, 90_000, 2600.0, is_contract_call=True),
    ]
    ledger.append_block(Block(0, 3000.0, txs))
    return ledger


@pytest.fixture()
def known_features():
    ledger = build_ledger_with_known_activity()
    extractor = DeepFeatureExtractor(ledger)
    vector = extractor.extract("0xaa")
    return dict(zip(FEATURE_NAMES, vector))


class TestFeatureDefinitions:
    def test_fifteen_features(self):
        assert len(FEATURE_NAMES) == 15
        assert sum(len(v) for v in FEATURE_GROUPS.values()) == 15

    def test_sender_counts_and_values(self, known_features):
        assert known_features["NTS"] == 2
        assert known_features["STV"] == pytest.approx(6.0)
        assert known_features["SAV"] == pytest.approx(3.0)

    def test_send_intervals(self, known_features):
        assert known_features["min_STI"] == pytest.approx(100.0)
        assert known_features["max_STI"] == pytest.approx(100.0)

    def test_receiver_counts_and_values(self, known_features):
        assert known_features["NTR"] == 3
        assert known_features["RTV"] == pytest.approx(9.0)
        assert known_features["RAV"] == pytest.approx(3.0)

    def test_receive_intervals(self, known_features):
        assert known_features["min_RTI"] == pytest.approx(100.0)
        assert known_features["max_RTI"] == pytest.approx(500.0)

    def test_send_fees(self, known_features):
        expected = 2 * (50.0 * 21_000 / 1e9)
        assert known_features["SETF"] == pytest.approx(expected)
        assert known_features["SAETF"] == pytest.approx(expected / 2)

    def test_receive_fees(self, known_features):
        expected = 2 * (20.0 * 21_000 / 1e9) + 20.0 * 90_000 / 1e9
        assert known_features["RETF"] == pytest.approx(expected)
        assert known_features["RAETF"] == pytest.approx(expected / 3)

    def test_contract_calls(self, known_features):
        assert known_features["NC"] == 1

    def test_inactive_account_is_all_zero(self):
        ledger = build_ledger_with_known_activity()
        ledger.add_account(Account("0xdd"))
        vector = DeepFeatureExtractor(ledger).extract("0xdd")
        np.testing.assert_allclose(vector, np.zeros(15))

    def test_single_transaction_has_zero_intervals(self):
        ledger = build_ledger_with_known_activity()
        features = dict(zip(FEATURE_NAMES, DeepFeatureExtractor(ledger).extract("0xcc")))
        assert features["min_STI"] == 0.0 and features["max_STI"] == 0.0

    def test_extract_many_stacks_rows(self):
        ledger = build_ledger_with_known_activity()
        matrix = DeepFeatureExtractor(ledger).extract_many(["0xaa", "0xbb"])
        assert matrix.shape == (2, 15)

    def test_extract_many_empty(self):
        ledger = build_ledger_with_known_activity()
        assert DeepFeatureExtractor(ledger).extract_many([]).shape == (0, 15)

    def test_restricted_transaction_list(self):
        ledger = build_ledger_with_known_activity()
        extractor = DeepFeatureExtractor(ledger)
        subset = ledger.transactions_for("0xaa")[:1]
        vector = extractor.extract("0xaa", transactions=subset)
        assert dict(zip(FEATURE_NAMES, vector))["NTS"] == 1


class TestSelfTransferCounting:
    """Regression: self-transfers were double-counted per role (they used to
    appear twice in ``Ledger.transactions_for``)."""

    @staticmethod
    def build_self_transfer_ledger() -> Ledger:
        ledger = Ledger()
        for address in ("0xaa", "0xbb"):
            ledger.add_account(Account(address))
        ledger.append_block(Block(0, 3000.0, [
            # One self-transfer (a contract call) and one ordinary send.
            Transaction("0x1", "0xaa", "0xaa", 3.0, 50.0, 90_000, 1000.0,
                        is_contract_call=True),
            Transaction("0x2", "0xaa", "0xbb", 5.0, 40.0, 21_000, 1500.0),
        ]))
        return ledger

    def test_self_transfer_counts_once_per_role(self):
        ledger = self.build_self_transfer_ledger()
        features = dict(zip(FEATURE_NAMES, DeepFeatureExtractor(ledger).extract("0xaa")))
        assert features["NTS"] == 2            # the self-transfer + the send
        assert features["STV"] == pytest.approx(8.0)
        assert features["NTR"] == 1            # the self-transfer, once
        assert features["RTV"] == pytest.approx(3.0)
        assert features["NC"] == 1             # one contract-call transaction
        self_fee = 50.0 * 90_000 / 1e9
        send_fee = 40.0 * 21_000 / 1e9
        assert features["SETF"] == pytest.approx(self_fee + send_fee)
        assert features["RETF"] == pytest.approx(self_fee)

    def test_extract_many_parity_with_self_transfers(self):
        ledger = self.build_self_transfer_ledger()
        extractor = DeepFeatureExtractor(ledger)
        looped = np.vstack([extractor.extract(a) for a in ("0xaa", "0xbb")])
        batched = DeepFeatureExtractor(ledger).extract_many(["0xaa", "0xbb"])
        np.testing.assert_array_equal(looped, batched)

    def test_intervals_see_self_transfer_once(self):
        ledger = self.build_self_transfer_ledger()
        features = dict(zip(FEATURE_NAMES, DeepFeatureExtractor(ledger).extract("0xaa")))
        # Send timestamps are [1000, 1500]: one 500s gap (a duplicated
        # self-transfer would have produced a spurious 0s minimum gap).
        assert features["min_STI"] == pytest.approx(500.0)
        assert features["max_STI"] == pytest.approx(500.0)


class TestCategoryFeatureMatrix:
    def test_output_shape(self, small_dataset):
        grouped = category_feature_matrix(small_dataset.feature_matrix())
        assert grouped.shape == (len(small_dataset), 4)

    def test_values_in_unit_interval(self, small_dataset):
        grouped = category_feature_matrix(small_dataset.feature_matrix())
        assert grouped.min() >= 0.0 and grouped.max() <= 1.0

    def test_wrong_width_raises(self):
        with pytest.raises(ValueError):
            category_feature_matrix(np.zeros((3, 7)))

    def test_constant_column_maps_to_zero(self):
        features = np.ones((4, 15))
        grouped = category_feature_matrix(features)
        np.testing.assert_allclose(grouped, np.zeros((4, 4)))
