"""End-to-end integration tests: ledger -> dataset -> DBG4ETH -> evaluation.

These mirror the paper's headline claims in miniature:

* the double-graph model beats each single-branch ablation (Table IV shape),
* it beats a representative simpler baseline (Table III shape),
* calibration yields probabilities whose ECE is not worse than raw confidences.
"""

import numpy as np
import pytest

from repro.baselines import DeepWalkClassifier
from repro.chain import AccountCategory, LedgerConfig, generate_ledger
from repro.core import CalibrationConfig, DBG4ETH, DBG4ETHConfig, GSGConfig, LDGConfig
from repro.data import DatasetConfig, SubgraphDatasetBuilder, train_test_split
from repro.metrics import expected_calibration_error, f1_score


def integration_config(**overrides) -> DBG4ETHConfig:
    config = DBG4ETHConfig(
        gsg=GSGConfig(hidden_dim=12, epochs=6, contrastive_batch=6),
        ldg=LDGConfig(hidden_dim=12, epochs=6, num_slices=4, first_pool_clusters=5),
        calibration=CalibrationConfig(),
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


@pytest.fixture(scope="module")
def pipeline_split(small_dataset):
    samples, labels = small_dataset.binary_task("phish/hack", rng=np.random.default_rng(9))
    return train_test_split(samples, labels, test_fraction=0.3, seed=9)


@pytest.mark.slow
class TestFullPipeline:
    def test_ledger_to_dataset_to_model(self):
        """The entire pipeline runs end to end starting from raw block generation."""
        config = LedgerConfig().scaled(0.15)
        config.seed = 23
        ledger = generate_ledger(config)
        dataset = SubgraphDatasetBuilder(
            ledger, DatasetConfig(top_k=25, max_nodes_per_subgraph=30)).build()
        samples, labels = dataset.binary_task(AccountCategory.PHISH_HACK)
        train_s, train_y, test_s, test_y = train_test_split(samples, labels, 0.3, seed=0)
        model = DBG4ETH(integration_config()).fit(train_s, train_y)
        predictions = model.predict(test_s)
        assert predictions.shape == (len(test_s),)
        # The held-out split is tiny at this scale, so assert on the whole task
        # (train + test) which still fails if the model learned nothing.
        overall = f1_score(labels, model.predict(samples))
        assert overall >= 0.6

    def test_double_graph_not_worse_than_single_branches(self, pipeline_split):
        train_s, train_y, test_s, test_y = pipeline_split
        full = DBG4ETH(integration_config()).fit(train_s, train_y)
        gsg_only = DBG4ETH(integration_config(use_ldg=False)).fit(train_s, train_y)
        ldg_only = DBG4ETH(integration_config(use_gsg=False)).fit(train_s, train_y)
        f1_full = f1_score(test_y, full.predict(test_s))
        f1_gsg = f1_score(test_y, gsg_only.predict(test_s))
        f1_ldg = f1_score(test_y, ldg_only.predict(test_s))
        assert f1_full >= min(f1_gsg, f1_ldg) - 1e-9

    def test_dbg4eth_beats_walk_embedding_baseline(self, pipeline_split):
        train_s, train_y, test_s, test_y = pipeline_split
        # The nine-category negative pool includes airdrop-farming, whose
        # fan-out mimics phish/hack by design; at this tiny scale the head
        # needs a few more epochs than the other integration tests to
        # separate them (F1 0.83 vs the baseline's 0.33 at 10 epochs).
        config = integration_config()
        config.gsg.epochs = config.ldg.epochs = 10
        dbg = DBG4ETH(config).fit(train_s, train_y)
        baseline = DeepWalkClassifier(dim=8, walk_length=6, walks_per_node=1, seed=0)
        baseline.fit(train_s, train_y)
        assert f1_score(test_y, dbg.predict(test_s)) >= \
            f1_score(test_y, baseline.predict(test_s))

    def test_calibrated_probabilities_are_not_less_calibrated_than_raw(self, pipeline_split):
        train_s, train_y, test_s, test_y = pipeline_split
        model = DBG4ETH(integration_config()).fit(train_s, train_y)
        gsg_scores, ldg_scores = model._branch_scores(test_s, None, training=False)
        from repro.calibration import confidence_scale

        raw = confidence_scale(gsg_scores)
        calibrated = model.calibration.transform(gsg_scores, ldg_scores)[:, 0]
        assert np.all((calibrated >= 0.0) & (calibrated <= 1.0))
        # The held-out split is only a handful of graphs, so the ECE comparison
        # carries a wide tolerance; the strict property is covered on larger
        # synthetic data in tests/test_calibration.py.
        assert expected_calibration_error(test_y, calibrated) <= \
            expected_calibration_error(test_y, raw) + 0.35

    def test_model_handles_novel_account_types(self, small_dataset):
        """Bridge and DeFi (the RQ4 novel categories) train end to end."""
        for category in (AccountCategory.BRIDGE, AccountCategory.DEFI):
            samples, labels = small_dataset.binary_task(category)
            train_s, train_y, _test_s, _test_y = train_test_split(samples, labels, 0.4, seed=1)
            model = DBG4ETH(integration_config()).fit(train_s, train_y)
            # Only a handful of bridge/defi accounts exist at test scale, so
            # evaluate over the whole task; random guessing would stay near 0.5.
            overall = f1_score(labels, model.predict(samples))
            assert overall >= 0.6
