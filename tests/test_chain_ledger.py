"""Tests for the Ledger container, transactions, blocks and the label cloud."""

import pytest

from repro.chain import (
    Account,
    AccountCategory,
    AccountType,
    Block,
    LabelCloud,
    Ledger,
    Transaction,
)


def make_tx(i: int, sender="0xaa", receiver="0xbb", submitted=True, **kwargs) -> Transaction:
    defaults = dict(value=1.0, gas_price=20.0, gas_used=21_000, timestamp=1000.0 + i,
                    is_contract_call=False)
    defaults.update(kwargs)
    return Transaction(tx_hash=f"0x{i:04x}", sender=sender, receiver=receiver,
                       submitted=submitted, **defaults)


class TestTransaction:
    def test_fee_conversion_from_gwei(self):
        tx = make_tx(0, gas_price=50.0, gas_used=21_000)
        assert tx.fee_eth == pytest.approx(50.0 * 21_000 / 1e9)

    def test_value_wei(self):
        assert make_tx(0, value=1.5).value_wei == int(1.5e18)


class TestBlock:
    def test_counts_and_total(self):
        block = Block(0, 1000.0, [make_tx(0, value=1.0), make_tx(1, value=2.0)])
        assert block.num_transactions == 2
        assert block.total_value() == pytest.approx(3.0)


class TestLedgerAccounts:
    def test_add_and_get(self):
        ledger = Ledger()
        ledger.add_account(Account("0xaa"))
        assert ledger.get_account("0xaa").address == "0xaa"
        assert ledger.has_account("0xaa")

    def test_duplicate_address_raises(self):
        ledger = Ledger()
        ledger.add_account(Account("0xaa"))
        with pytest.raises(ValueError):
            ledger.add_account(Account("0xaa"))

    def test_is_contract(self):
        ledger = Ledger()
        ledger.add_account(Account("0xcc", AccountType.CONTRACT))
        ledger.add_account(Account("0xee"))
        assert ledger.is_contract("0xcc")
        assert not ledger.is_contract("0xee")
        assert not ledger.is_contract("0xunknown")


class TestLedgerBlocks:
    def test_append_and_query(self):
        ledger = Ledger()
        ledger.append_block(Block(0, 1000.0, [make_tx(0), make_tx(1)]))
        ledger.append_block(Block(1, 1012.0, [make_tx(2)]))
        assert ledger.num_blocks == 2
        assert ledger.num_transactions == 3

    def test_block_numbers_must_increase(self):
        ledger = Ledger()
        ledger.append_block(Block(1, 1000.0, []))
        with pytest.raises(ValueError):
            ledger.append_block(Block(1, 1012.0, []))

    def test_transactions_iterates_in_block_order(self):
        ledger = Ledger()
        ledger.append_block(Block(0, 1000.0, [make_tx(0), make_tx(1)]))
        hashes = [tx.tx_hash for tx in ledger.transactions()]
        assert hashes == ["0x0000", "0x0001"]

    def test_unsubmitted_excluded_by_default(self):
        ledger = Ledger()
        ledger.append_block(Block(0, 1000.0, [make_tx(0), make_tx(1, submitted=False)]))
        assert len(list(ledger.transactions())) == 1
        assert len(list(ledger.transactions(include_unsubmitted=True))) == 2

    def test_transactions_for_address(self):
        ledger = Ledger()
        ledger.append_block(Block(0, 1000.0, [
            make_tx(0, sender="0xaa", receiver="0xbb"),
            make_tx(1, sender="0xcc", receiver="0xaa"),
            make_tx(2, sender="0xcc", receiver="0xdd"),
        ]))
        assert len(ledger.transactions_for("0xaa")) == 2
        assert ledger.transactions_for("0xzz") == []

    def test_get_transaction_by_hash(self):
        ledger = Ledger()
        ledger.append_block(Block(0, 1000.0, [make_tx(0)]))
        assert ledger.get_transaction("0x0000").sender == "0xaa"

    def test_timespan(self):
        ledger = Ledger()
        ledger.append_block(Block(0, 1000.0, [make_tx(0), make_tx(5)]))
        low, high = ledger.timespan()
        assert low == pytest.approx(1000.0)
        assert high == pytest.approx(1005.0)

    def test_timespan_empty_ledger(self):
        ledger = Ledger(genesis_timestamp=42.0)
        assert ledger.timespan() == (42.0, 42.0)

    def test_timespan_unsubmitted_only_falls_back_to_genesis(self):
        ledger = Ledger(genesis_timestamp=42.0)
        ledger.append_block(Block(0, 1000.0, [make_tx(0, submitted=False)]))
        assert ledger.timespan() == (42.0, 42.0)

    def test_timespan_is_incremental_across_blocks(self):
        ledger = Ledger()
        ledger.append_block(Block(0, 1000.0, [make_tx(0, timestamp=500.0)]))
        assert ledger.timespan() == (500.0, 500.0)
        ledger.append_block(Block(1, 1012.0, [make_tx(1, timestamp=100.0),
                                              make_tx(2, timestamp=900.0, submitted=False)]))
        # The unsubmitted timestamp (900.0) must not widen the span.
        assert ledger.timespan() == (100.0, 500.0)

    def test_self_transfer_returned_once(self):
        """Regression: a self-transfer used to be indexed under both roles and
        returned twice by ``transactions_for``."""
        ledger = Ledger()
        ledger.append_block(Block(0, 1000.0, [
            make_tx(0, sender="0xaa", receiver="0xaa"),
            make_tx(1, sender="0xaa", receiver="0xbb"),
        ]))
        txs = ledger.transactions_for("0xaa")
        assert [tx.tx_hash for tx in txs] == ["0x0000", "0x0001"]
        assert len(ledger.transactions_for("0xaa", include_unsubmitted=True)) == 2

    def test_summary_keys(self, small_ledger):
        summary = small_ledger.summary()
        assert {"num_accounts", "num_transactions", "num_labeled", "label_counts"} <= set(summary)


class TestLabelCloud:
    def test_add_and_get(self):
        cloud = LabelCloud()
        cloud.add("0xaa", AccountCategory.EXCHANGE)
        assert cloud.get("0xaa") is AccountCategory.EXCHANGE
        assert "0xaa" in cloud
        assert len(cloud) == 1

    def test_conflicting_label_raises(self):
        cloud = LabelCloud()
        cloud.add("0xaa", AccountCategory.EXCHANGE)
        with pytest.raises(ValueError):
            cloud.add("0xaa", AccountCategory.MINING)

    def test_same_label_twice_is_fine(self):
        cloud = LabelCloud()
        cloud.add("0xaa", AccountCategory.DEFI)
        cloud.add("0xaa", AccountCategory.DEFI)
        assert len(cloud) == 1

    def test_addresses_filter_by_category(self):
        cloud = LabelCloud()
        cloud.update([("0xaa", AccountCategory.BRIDGE), ("0xbb", AccountCategory.DEFI)])
        assert cloud.addresses(AccountCategory.BRIDGE) == ["0xaa"]
        assert set(cloud.addresses()) == {"0xaa", "0xbb"}

    def test_counts(self):
        cloud = LabelCloud()
        cloud.update([("0xaa", AccountCategory.DEFI), ("0xbb", AccountCategory.DEFI)])
        assert cloud.counts()[AccountCategory.DEFI] == 2

    def test_category_helpers(self):
        assert len(AccountCategory.core_four()) == 4
        assert AccountCategory.BRIDGE in AccountCategory.novel_two()
        assert AccountCategory("phish/hack") is AccountCategory.PHISH_HACK
