"""Tests for the serving facade (`repro.api`): persistence, batching, errors."""

import numpy as np
import pytest

import repro.data.dataset as dataset_module
from repro.api import (
    DeAnonymizer,
    StateFormatError,
    UnknownAddressError,
    dumps_state,
    load_state,
    loads_state,
    save_state,
)
from repro.core import CalibrationConfig, DBG4ETH, DBG4ETHConfig, GSGConfig, LDGConfig
from repro.data import DatasetConfig

CATEGORIES = ["exchange", "mining"]


def micro_config() -> DBG4ETHConfig:
    return DBG4ETHConfig(
        gsg=GSGConfig(hidden_dim=8, epochs=2, contrastive_batch=4),
        ldg=LDGConfig(hidden_dim=8, epochs=2, num_slices=3, first_pool_clusters=4),
        calibration=CalibrationConfig(),
    )


@pytest.fixture(scope="module")
def facade(small_ledger, small_dataset):
    """A fitted facade over the shared session dataset (two category heads)."""
    deanon = DeAnonymizer.from_dataset(
        small_dataset, ledger=small_ledger,
        dataset_config=DatasetConfig(top_k=40, max_nodes_per_subgraph=40, seed=3),
        model_config=micro_config)
    deanon.fit(CATEGORIES)
    return deanon


@pytest.fixture(scope="module")
def dataset_only_facade(small_dataset):
    """A facade constructed from a dataset alone (no ledger attached)."""
    deanon = DeAnonymizer.from_dataset(small_dataset, model_config=micro_config)
    deanon.fit_category("exchange")
    return deanon


@pytest.fixture()
def fresh_addresses(facade):
    """Graph addresses that are not dataset centres (never sampled yet)."""
    centres = {s.center for s in facade.dataset}
    return [node for node in facade.builder.graph.nodes if node not in centres][:4]


class TestScoring:
    def test_score_structure(self, facade):
        addresses = [s.center for s in list(facade.dataset)[:3]]
        scores = facade.score(addresses)
        assert list(scores) == addresses
        for per_category in scores.values():
            assert set(per_category) == set(CATEGORIES)
            assert all(0.0 <= p <= 1.0 for p in per_category.values())

    def test_score_accepts_single_address(self, facade):
        address = facade.dataset[0].center
        scores = facade.score(address)
        assert set(scores) == {address}

    def test_score_matches_manual_sample_then_predict(self, facade, fresh_addresses):
        """The facade's end-to-end path equals hand-gluing builder + head."""
        address = fresh_addresses[0]
        scores = facade.score([address])
        for category in CATEGORIES:
            manual_sample = facade.builder.build_sample(address)
            manual = float(facade.head(category).predict_proba([manual_sample])[0])
            assert scores[address][category] == manual

    def test_unknown_address_raises_clear_error(self, facade):
        with pytest.raises(UnknownAddressError, match="0xNOSUCHADDRESS"):
            facade.score(["0xNOSUCHADDRESS"])

    def test_unknown_addresses_aggregated_across_batch(self, facade):
        """One error lists every unsampleable address, not just the first."""
        known = facade.dataset[0].center
        with pytest.raises(UnknownAddressError) as excinfo:
            facade.score(["0xBAD1", known, "0xBAD2", "0xBAD3"])
        assert excinfo.value.addresses == ("0xBAD1", "0xBAD2", "0xBAD3")
        assert excinfo.value.address == "0xBAD1"   # back-compat single accessor
        message = str(excinfo.value)
        assert "3 addresses" in message
        for bad in ("0xBAD1", "0xBAD2", "0xBAD3"):
            assert bad in message

    def test_skip_unknown_returns_partial_results(self, facade):
        addresses = [s.center for s in list(facade.dataset)[:2]]
        scores = facade.score(addresses + ["0xBAD1"], skip_unknown=True)
        assert list(scores) == addresses
        assert scores == facade.score(addresses)

    def test_skip_unknown_all_unknown_returns_empty(self, facade):
        assert facade.score(["0xBAD1", "0xBAD2"], skip_unknown=True) == {}

    def test_unfitted_facade_raises(self, small_ledger):
        deanon = DeAnonymizer(small_ledger)
        with pytest.raises(RuntimeError, match="fit"):
            deanon.score(["0xanything"])

    def test_predict_returns_fitted_category(self, facade):
        addresses = [s.center for s in list(facade.dataset)[:3]]
        predictions = facade.predict(addresses, threshold=0.0)
        assert set(predictions) == set(addresses)
        assert all(category in CATEGORIES for category in predictions.values())

    def test_predict_threshold_filters(self, facade):
        address = facade.dataset[0].center
        # No probability can reach an impossible threshold.
        assert facade.predict([address], threshold=1.1)[address] is None

    def test_score_all_without_ledger_covers_dataset(self, dataset_only_facade,
                                                     small_dataset):
        scores = dataset_only_facade.score_all()
        assert set(scores) == {s.center for s in small_dataset}

    def test_scoring_new_address_without_ledger_raises(self, dataset_only_facade):
        with pytest.raises(RuntimeError, match="ledger"):
            dataset_only_facade.score(["0xnever-seen"])


class TestBatching:
    def test_sampling_runs_once_per_address_not_per_head(self, facade, fresh_addresses,
                                                         monkeypatch):
        """N addresses x 2 heads must ego-sample exactly N times."""
        facade.clear_sample_cache()
        calls = []
        original = dataset_module.ego_subgraph

        def counting_ego_subgraph(graph, center, *args, **kwargs):
            calls.append(center)
            return original(graph, center, *args, **kwargs)

        monkeypatch.setattr(dataset_module, "ego_subgraph", counting_ego_subgraph)
        scores = facade.score(fresh_addresses)
        assert len(scores) == len(fresh_addresses)
        assert sorted(calls) == sorted(fresh_addresses)

    def test_cached_addresses_are_not_resampled(self, facade, fresh_addresses,
                                                monkeypatch):
        facade.score(fresh_addresses)            # populate the cache

        def forbidden(*_args, **_kwargs):
            raise AssertionError("resampled a cached address")

        monkeypatch.setattr(dataset_module, "ego_subgraph", forbidden)
        scores = facade.score(fresh_addresses)
        assert set(scores) == set(fresh_addresses)

    def test_duplicate_addresses_sampled_once(self, facade, fresh_addresses, monkeypatch):
        facade.clear_sample_cache()
        calls = []
        original = dataset_module.ego_subgraph

        def counting_ego_subgraph(graph, center, *args, **kwargs):
            calls.append(center)
            return original(graph, center, *args, **kwargs)

        monkeypatch.setattr(dataset_module, "ego_subgraph", counting_ego_subgraph)
        address = fresh_addresses[0]
        scores = facade.score([address, address, address])
        assert calls == [address]
        assert set(scores) == {address}


class TestPersistence:
    def test_facade_save_load_roundtrip_bit_for_bit(self, facade, fresh_addresses,
                                                    small_ledger, tmp_path):
        addresses = [facade.dataset[0].center] + fresh_addresses[:2]
        before = facade.score(addresses)
        facade.save(tmp_path / "model")
        restored = DeAnonymizer.load(tmp_path / "model", small_ledger)
        assert restored.categories == sorted(CATEGORIES)
        after = restored.score(addresses)
        for address in addresses:
            for category in CATEGORIES:
                assert before[address][category] == after[address][category]

    def test_loaded_facade_needs_ledger_for_new_addresses(self, facade, tmp_path,
                                                          small_ledger, fresh_addresses):
        facade.save(tmp_path / "model")
        restored = DeAnonymizer.load(tmp_path / "model")
        with pytest.raises(RuntimeError, match="attach_ledger"):
            restored.score(fresh_addresses[:1])
        restored.attach_ledger(small_ledger)
        assert set(restored.score(fresh_addresses[:1])) == set(fresh_addresses[:1])

    def test_dbg4eth_state_roundtrip_bit_for_bit(self, facade, exchange_task):
        samples, _labels = exchange_task
        head = facade.head("exchange")
        before = head.predict_proba(samples[:8])
        restored = DBG4ETH.from_state(head.get_state())
        np.testing.assert_array_equal(restored.predict_proba(samples[:8]), before)
        np.testing.assert_array_equal(restored.predict(samples[:8]),
                                      head.predict(samples[:8]))

    def test_dbg4eth_state_survives_disk(self, facade, exchange_task, tmp_path):
        samples, _labels = exchange_task
        head = facade.head("exchange")
        save_state(tmp_path / "head", head.get_state())
        restored = DBG4ETH.from_state(load_state(tmp_path / "head"))
        np.testing.assert_array_equal(restored.predict_proba(samples[:8]),
                                      head.predict_proba(samples[:8]))

    def test_dbg4eth_set_state_replaces_config(self, facade):
        head = facade.head("exchange")
        other = DBG4ETH()                         # default config, unfitted
        other.set_state(head.get_state())
        assert other.config.gsg.hidden_dim == micro_config().gsg.hidden_dim
        assert other._fitted

    def test_unfitted_get_state_raises(self):
        with pytest.raises(RuntimeError):
            DBG4ETH(micro_config()).get_state()
        with pytest.raises(RuntimeError):
            DeAnonymizer().get_state()

    def test_from_dataset_with_ledger_requires_config(self, small_dataset, small_ledger):
        with pytest.raises(ValueError, match="dataset_config"):
            DeAnonymizer.from_dataset(small_dataset, ledger=small_ledger)

    def test_attach_ledger_drops_stale_samples(self, small_dataset, small_ledger):
        deanon = DeAnonymizer.from_dataset(
            small_dataset, ledger=small_ledger,
            dataset_config=DatasetConfig(top_k=40, max_nodes_per_subgraph=40, seed=3))
        assert deanon._samples                   # seeded from the dataset
        deanon.attach_ledger(small_ledger)
        assert deanon._samples == {} and deanon._dataset is None

    def test_set_state_drops_stale_samples(self, facade, small_dataset, small_ledger):
        target = DeAnonymizer.from_dataset(
            small_dataset, ledger=small_ledger,
            dataset_config=DatasetConfig(top_k=40, max_nodes_per_subgraph=40, seed=3))
        assert target._samples
        target.set_state(facade.get_state())
        # Subgraphs cached under the previous config must not survive the swap.
        assert target._samples == {}
        assert target.categories == sorted(CATEGORIES)


class TestStateBlobs:
    def test_dumps_loads_roundtrip_bit_for_bit(self, facade, exchange_task):
        samples, _labels = exchange_task
        blob = dumps_state(facade.get_state())
        assert isinstance(blob, bytes)
        restored = DeAnonymizer().set_state(loads_state(blob))
        for category in CATEGORIES:
            np.testing.assert_array_equal(
                restored.head(category).predict_proba(samples[:6]),
                facade.head(category).predict_proba(samples[:6]))

    def test_blob_matches_directory_state(self, facade, tmp_path):
        facade.save(tmp_path / "model")
        from_disk = load_state(tmp_path / "model")
        from_blob = loads_state(dumps_state(facade.get_state()))
        assert from_disk.keys() == from_blob.keys()
        assert from_disk["dataset_config"] == from_blob["dataset_config"]

    def test_truncated_blob_raises(self, facade):
        blob = dumps_state(facade.get_state())
        with pytest.raises(StateFormatError, match="truncated"):
            loads_state(blob[:4])
        with pytest.raises(StateFormatError, match="truncated"):
            loads_state(blob[:20])


class TestStateFiles:
    def test_roundtrip_preserves_types(self, tmp_path):
        state = {
            "scalars": {"i": 3, "f": 0.1 + 0.2, "b": True, "none": None, "s": "x"},
            "tuple": (1, (2.5, "three")),
            "list": [np.arange(4), {"nested": np.eye(2)}],
        }
        save_state(tmp_path / "m", state)
        loaded = load_state(tmp_path / "m")
        assert loaded["scalars"] == state["scalars"]
        assert loaded["tuple"] == (1, (2.5, "three"))
        assert isinstance(loaded["tuple"], tuple)
        np.testing.assert_array_equal(loaded["list"][0], np.arange(4))
        np.testing.assert_array_equal(loaded["list"][1]["nested"], np.eye(2))

    def test_floats_roundtrip_exactly(self, tmp_path):
        values = [0.1, 1e-300, np.pi, 2.0 ** -1074]
        save_state(tmp_path / "m", {"values": values})
        assert load_state(tmp_path / "m")["values"] == values

    def test_non_string_keys_rejected(self, tmp_path):
        with pytest.raises(StateFormatError):
            save_state(tmp_path / "m", {1: "not allowed"})

    def test_unserializable_value_rejected(self, tmp_path):
        with pytest.raises(StateFormatError):
            save_state(tmp_path / "m", {"fn": lambda: None})

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(StateFormatError):
            load_state(tmp_path / "does-not-exist")

    def test_version_mismatch_raises(self, tmp_path):
        save_state(tmp_path / "m", {"x": 1})
        state_file = tmp_path / "m" / "state.json"
        state_file.write_text(state_file.read_text().replace(
            '"format_version": 1', '"format_version": 999'))
        with pytest.raises(StateFormatError, match="version"):
            load_state(tmp_path / "m")


class TestStats:
    def test_stats_without_ledger(self, dataset_only_facade):
        stats = dataset_only_facade.stats()
        assert stats["ledger"] is None
        assert stats["fitted_heads"] == ["exchange"]
        assert stats["cached_samples"] == len(dataset_only_facade._samples)

    def test_stats_reports_ledger_counters(self, facade, small_ledger):
        stats = facade.stats()
        assert stats["ledger"]["num_transactions"] == small_ledger.num_transactions
        assert stats["ledger"]["num_accounts"] == small_ledger.num_accounts
        assert stats["ledger"]["timespan"] == small_ledger.timespan()
        assert set(stats["fitted_heads"]) == set(CATEGORIES)

    def test_stats_does_not_force_graph_build(self, small_ledger):
        deanon = DeAnonymizer(small_ledger)
        stats = deanon.stats()
        assert stats["graph"] is None
        assert stats["dataset_built"] is False
        # After touching the builder's graph the sizes show up.
        _ = deanon.builder.graph
        assert deanon.stats()["graph"]["num_nodes"] > 0

    def test_stats_serving_section(self, facade):
        addresses = [s.center for s in list(facade.dataset)[:3]]
        facade.score(addresses)
        serving = facade.stats()["serving"]
        cache = serving["sample_cache"]
        assert cache["size"] == len(facade._samples)
        assert cache["max_size"] is None
        assert cache["hits"] + cache["misses"] > 0
        assert serving["counters"]["score.calls"] >= 1
        assert serving["stages"]["score.sample"]["count"] >= 1
        assert serving["stages"]["score.heads"]["count"] >= 1
        assert serving["stages"]["score.batch_size"]["max"] >= 3

    def test_warm_prebuilds_and_freeze_seals(self, small_ledger):
        deanon = DeAnonymizer(small_ledger)
        deanon.warm()
        graph = deanon.builder.graph_if_built()
        assert graph is not None and not graph.frozen
        deanon.warm(freeze=True)
        assert graph.frozen
        stages = deanon.stats()["serving"]["stages"]
        assert stages["warm"]["count"] == 2
