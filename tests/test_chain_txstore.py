"""Tests for the columnar transaction store backing the ledger."""

import numpy as np
import pytest

from repro.chain import Account, Block, ColumnarTxStore, Ledger, Transaction


def make_tx(i, sender="0xaa", receiver="0xbb", submitted=True, **kwargs):
    defaults = dict(value=1.0 + i, gas_price=20.0, gas_used=21_000,
                    timestamp=1000.0 + i, is_contract_call=False)
    defaults.update(kwargs)
    return Transaction(tx_hash=f"0x{i:04x}", sender=sender, receiver=receiver,
                       submitted=submitted, **defaults)


class TestInterning:
    def test_intern_assigns_dense_ids(self):
        store = ColumnarTxStore()
        assert store.intern("0xaa") == 0
        assert store.intern("0xbb") == 1
        assert store.intern("0xaa") == 0
        assert store.addresses == ["0xaa", "0xbb"]
        assert store.num_addresses == 2

    def test_intern_pairs_interleaves_first_appearance(self):
        store = ColumnarTxStore()
        sender_ids, receiver_ids = store.intern_pairs(
            ["0xs1", "0xs2"], ["0xr1", "0xs1"])
        # Scan order: s1, r1, s2, s1 -> ids 0, 1, 2, 0.
        assert sender_ids.tolist() == [0, 2]
        assert receiver_ids.tolist() == [1, 0]
        assert store.addresses == ["0xs1", "0xr1", "0xs2"]

    def test_address_id_of_unknown_is_none(self):
        assert ColumnarTxStore().address_id("0xnope") is None


class TestAppendPaths:
    def test_object_and_chunk_paths_agree(self):
        object_store = ColumnarTxStore()
        txs = [make_tx(0), make_tx(1, sender="0xcc", value=2.5),
               make_tx(2, receiver="0xcc", submitted=False)]
        for tx in txs:
            object_store.append_tx(tx)

        chunk_store = ColumnarTxStore()
        sender_ids, receiver_ids = chunk_store.intern_pairs(
            [t.sender for t in txs], [t.receiver for t in txs])
        chunk_store.append_chunk(
            sender_ids, receiver_ids,
            np.array([t.value for t in txs]),
            np.array([t.gas_price for t in txs]),
            np.array([t.gas_used for t in txs]),
            np.array([t.timestamp for t in txs]),
            np.array([t.is_contract_call for t in txs]),
            np.array([t.submitted for t in txs]),
            np.array([t.block_number for t in txs]),
            tx_hashes=[t.tx_hash for t in txs])

        a, b = object_store.columns(), chunk_store.columns()
        for name in ("sender_id", "receiver_id", "value", "gas_price", "gas_used",
                     "timestamp", "is_contract_call", "submitted", "block_number"):
            np.testing.assert_array_equal(getattr(a, name), getattr(b, name))
        assert object_store.materialize_rows(range(3)) == chunk_store.materialize_rows(range(3))

    def test_materialize_round_trips_transactions(self):
        store = ColumnarTxStore()
        tx = make_tx(5, value=3.25, gas_price=42.5, is_contract_call=True,
                     block_number=9)
        store.append_tx(tx)
        assert store.materialize(0) == tx

    def test_chunk_requires_interned_ids(self):
        store = ColumnarTxStore()
        with pytest.raises(ValueError):
            store.append_chunk(
                np.array([0]), np.array([1]), np.ones(1), np.ones(1),
                np.ones(1, dtype=np.int64), np.ones(1), np.zeros(1, dtype=bool),
                np.ones(1, dtype=bool), np.zeros(1, dtype=np.int64))

    def test_mixed_paths_keep_row_order(self):
        store = ColumnarTxStore()
        store.append_tx(make_tx(0))
        sender_ids, receiver_ids = store.intern_pairs(["0xcc"], ["0xdd"])
        store.append_chunk(sender_ids, receiver_ids, np.array([9.0]),
                           np.array([30.0]), np.array([21_000]),
                           np.array([2000.0]), np.array([False]),
                           np.array([True]), np.array([1]))
        store.append_tx(make_tx(2, timestamp=3000.0))
        cols = store.columns()
        assert cols.timestamp.tolist() == [1000.0, 2000.0, 3000.0]
        assert store.num_rows == 3


class TestHashes:
    def test_derived_hashes_cost_no_storage(self):
        store = ColumnarTxStore()
        sender_ids, receiver_ids = store.intern_pairs(["0xaa"] * 3, ["0xbb"] * 3)
        store.append_chunk(sender_ids, receiver_ids, np.ones(3), np.ones(3),
                           np.full(3, 21_000), np.arange(3, dtype=float),
                           np.zeros(3, dtype=bool), np.ones(3, dtype=bool),
                           np.zeros(3, dtype=np.int64))
        assert store.tx_hash(2) == f"0x{2:064x}"
        assert store.row_of_hash(f"0x{1:064x}") == 1
        assert store._explicit_hash_by_row == {}

    def test_explicit_hashes_round_trip(self):
        store = ColumnarTxStore()
        store.append_tx(make_tx(0))
        assert store.tx_hash(0) == "0x0000"
        assert store.row_of_hash("0x0000") == 0

    def test_unknown_hash_raises(self):
        store = ColumnarTxStore()
        store.append_tx(make_tx(0))
        with pytest.raises(KeyError):
            store.row_of_hash("0xmissing")
        # A derived-pattern hash beyond the row count is also unknown.
        with pytest.raises(KeyError):
            store.row_of_hash(f"0x{99:064x}")

    def test_non_canonical_derived_spelling_is_unknown(self):
        """Only the canonical lowercase zero-padded spelling resolves."""
        store = ColumnarTxStore()
        sender_ids, receiver_ids = store.intern_pairs(["0xaa"] * 300, ["0xbb"] * 300)
        store.append_chunk(sender_ids, receiver_ids, np.ones(300), np.ones(300),
                           np.full(300, 21_000), np.arange(300, dtype=float),
                           np.zeros(300, dtype=bool), np.ones(300, dtype=bool),
                           np.zeros(300, dtype=np.int64))
        assert store.row_of_hash(f"0x{255:064x}") == 255
        with pytest.raises(KeyError):
            store.row_of_hash("0x" + "0" * 62 + "FF")   # uppercase spelling of 255

    def test_explicit_hash_shadows_derived_pattern(self):
        """A row with an explicit hash must not be reachable via its derived one."""
        store = ColumnarTxStore()
        tx = Transaction(tx_hash="0xfeed", sender="0xaa", receiver="0xbb",
                         value=1.0, gas_price=1.0, gas_used=21_000, timestamp=1.0)
        store.append_tx(tx)
        assert store.row_of_hash("0xfeed") == 0
        with pytest.raises(KeyError):
            store.row_of_hash(f"0x{0:064x}")


class TestAddressIndex:
    def test_rows_in_block_order(self):
        store = ColumnarTxStore()
        store.append_tx(make_tx(0, sender="0xaa", receiver="0xbb"))
        store.append_tx(make_tx(1, sender="0xcc", receiver="0xaa"))
        store.append_tx(make_tx(2, sender="0xcc", receiver="0xdd"))
        assert store.rows_for_address("0xaa").tolist() == [0, 1]
        assert store.rows_for_address("0xcc").tolist() == [1, 2]
        assert store.rows_for_address("0xzz").tolist() == []

    def test_self_transfer_indexed_once(self):
        store = ColumnarTxStore()
        store.append_tx(make_tx(0, sender="0xaa", receiver="0xaa"))
        store.append_tx(make_tx(1, sender="0xaa", receiver="0xbb"))
        assert store.rows_for_address("0xaa").tolist() == [0, 1]

    def test_index_extends_after_append(self):
        store = ColumnarTxStore()
        store.append_tx(make_tx(0, sender="0xaa", receiver="0xbb"))
        assert store.rows_for_address("0xaa").tolist() == [0]
        store.append_tx(make_tx(1, sender="0xbb", receiver="0xaa"))
        assert store.rows_for_address("0xaa").tolist() == [0, 1]

    def test_intern_after_index_built_then_query(self):
        """Regression: an address interned *after* the index was built used to
        index past the CSR indptr (IndexError) — the validity key only watched
        the row count, and ``intern`` adds no rows."""
        store = ColumnarTxStore()
        store.append_tx(make_tx(0, sender="0xaa", receiver="0xbb"))
        assert store.rows_for_address("0xaa").tolist() == [0]   # builds the index
        store.intern("0xlate")              # widens the table, no new rows
        assert store.rows_for_address("0xlate").tolist() == []
        assert store.rows_for_address("0xaa").tolist() == [0]

    def test_intern_then_append_then_query(self):
        """Regression companion: query between interning and the chunk append,
        and again after the rows land."""
        store = ColumnarTxStore()
        store.append_tx(make_tx(0, sender="0xaa", receiver="0xbb"))
        store.rows_for_address("0xbb")                          # builds the index
        sender_ids, receiver_ids = store.intern_pairs(["0xcc"], ["0xdd"])
        assert store.rows_for_address("0xdd").tolist() == []    # was IndexError
        store.append_chunk(sender_ids, receiver_ids, np.array([9.0]),
                           np.array([30.0]), np.array([21_000]),
                           np.array([2000.0]), np.array([False]),
                           np.array([True]), np.array([1]))
        assert store.rows_for_address("0xdd").tolist() == [1]
        assert store.rows_for_address("0xaa").tolist() == [0]


class TestDataVersion:
    def test_every_append_call_bumps_the_epoch(self):
        store = ColumnarTxStore()
        assert store.data_version == 0
        store.append_tx(make_tx(0))
        assert store.data_version == 1
        sender_ids, receiver_ids = store.intern_pairs(["0xcc", "0xcc"],
                                                      ["0xdd", "0xee"])
        store.append_chunk(sender_ids, receiver_ids, np.ones(2), np.ones(2),
                           np.full(2, 21_000), np.array([10.0, 20.0]),
                           np.zeros(2, dtype=bool), np.ones(2, dtype=bool),
                           np.zeros(2, dtype=np.int64))
        assert store.data_version == 2      # one bump per append *call*

    def test_reads_do_not_bump_the_epoch(self):
        store = ColumnarTxStore()
        store.append_tx(make_tx(0))
        before = store.data_version
        store.columns()
        store.rows_for_address("0xaa")
        store.intern("0xreader")            # interning alone is not ledger growth
        store.materialize(0)
        assert store.data_version == before


class TestTimespan:
    def test_submitted_timespan_tracks_min_max(self):
        store = ColumnarTxStore()
        assert store.submitted_timespan() is None
        store.append_tx(make_tx(0, timestamp=500.0))
        store.append_tx(make_tx(1, timestamp=100.0))
        assert store.submitted_timespan() == (100.0, 500.0)

    def test_unsubmitted_rows_do_not_count(self):
        store = ColumnarTxStore()
        store.append_tx(make_tx(0, timestamp=500.0, submitted=False))
        assert store.submitted_timespan() is None


class TestLedgerBoundary:
    def test_blocks_materialise_lazily_and_equal_object_path(self):
        ledger = Ledger()
        ledger.add_account(Account("0xaa"))
        block = Block(3, 1010.0, [make_tx(0), make_tx(1)])
        ledger.append_block(block)
        [rebuilt] = ledger.blocks
        assert rebuilt.number == 3
        assert rebuilt.timestamp == 1010.0
        assert rebuilt.transactions == block.transactions

    def test_columnar_blocks_continue_numbering(self):
        ledger = Ledger()
        ledger.append_block(Block(4, 1000.0, [make_tx(0)]))
        ledger.append_blocks_columnar(
            ["0xaa"] * 3, ["0xbb"] * 3, np.ones(3), np.ones(3),
            np.full(3, 21_000), np.array([1100.0, 1200.0, 1300.0]),
            np.zeros(3, dtype=bool), np.ones(3, dtype=bool),
            transactions_per_block=2)
        numbers = [b.number for b in ledger.blocks]
        assert numbers == [4, 5, 6]
        assert [b.timestamp for b in ledger.blocks][1:] == [1200.0, 1300.0]
        assert ledger.num_transactions == 4
