"""Parity tests: the indexed TxGraph must agree with reference implementations.

Property-style checks on randomized graphs compare every indexed traversal
(``neighbors``, ``degree``, ``out_edges``, ``in_edges``, ``subgraph``,
``to_csr``) against the :meth:`TxGraph.to_networkx` view and the dense
adjacency, and a regression test pins ``extract_many`` to the per-account
``extract`` loop bit for bit.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.features import DeepFeatureExtractor
from repro.graph import TxGraph


edge_lists = st.lists(
    st.tuples(st.integers(0, 12), st.integers(0, 12),
              st.floats(0.0, 100.0, allow_nan=False),
              st.floats(0.0, 1000.0, allow_nan=False)),
    min_size=1, max_size=60)


def build_graph(edges) -> TxGraph:
    g = TxGraph()
    for src, dst, amount, ts in edges:
        g.add_edge(src, dst, amount=amount, timestamp=ts)
    return g


@settings(max_examples=60, deadline=None)
@given(edge_lists)
def test_neighbors_and_degree_match_networkx(edges):
    g = build_graph(edges)
    nx_graph = g.to_networkx()
    for node in g.nodes:
        nx_nbrs = set(nx_graph.successors(node)) | set(nx_graph.predecessors(node))
        assert g.neighbors(node) == nx_nbrs
        assert g.degree(node) == nx_graph.out_degree(node) + nx_graph.in_degree(node) \
            - (1 if nx_graph.has_edge(node, node) else 0)
        assert g.out_degree(node) == nx_graph.out_degree(node)
        assert g.in_degree(node) == nx_graph.in_degree(node)


@settings(max_examples=60, deadline=None)
@given(edge_lists)
def test_out_in_edges_match_networkx(edges):
    g = build_graph(edges)
    nx_graph = g.to_networkx()
    for node in g.nodes:
        out_pairs = {(e.src, e.dst) for e in g.out_edges(node)}
        in_pairs = {(e.src, e.dst) for e in g.in_edges(node)}
        assert out_pairs == set(nx_graph.out_edges(node))
        assert in_pairs == set(nx_graph.in_edges(node))
        for edge in g.out_edges(node):
            attrs = nx_graph.edges[edge.src, edge.dst]
            assert attrs["amount"] == pytest.approx(edge.amount)
            assert attrs["count"] == edge.count


@settings(max_examples=60, deadline=None)
@given(edge_lists, st.integers(0, 2 ** 31 - 1))
def test_subgraph_matches_networkx_induced_view(edges, seed):
    g = build_graph(edges)
    rng = np.random.default_rng(seed)
    nodes = g.nodes
    keep = [n for n in nodes if rng.random() < 0.5] or nodes[:1]
    sub = g.subgraph(keep)
    nx_sub = g.to_networkx().subgraph(keep)
    assert set(sub.nodes) == set(nx_sub.nodes)
    assert {(e.src, e.dst) for e in sub.edges} == set(nx_sub.edges)
    # Node and edge order must follow the parent graph's insertion order.
    parent_rank = {n: i for i, n in enumerate(nodes)}
    assert sub.nodes == sorted(sub.nodes, key=parent_rank.__getitem__)
    parent_edge_rank = {(e.src, e.dst): i for i, e in enumerate(g.edges)}
    sub_keys = [(e.src, e.dst) for e in sub.edges]
    assert sub_keys == sorted(sub_keys, key=parent_edge_rank.__getitem__)
    # Merged edge payloads survive unchanged.
    for e in sub.edges:
        parent = g.get_edge(e.src, e.dst)
        assert (e.amount, e.count, e.timestamp) == (
            parent.amount, parent.count, parent.timestamp)


def _csr_to_dense(n, indptr, indices, data):
    dense = np.zeros((n, n))
    for i in range(n):
        for j, v in zip(indices[indptr[i]:indptr[i + 1]], data[indptr[i]:indptr[i + 1]]):
            dense[i, j] = v
    return dense


@settings(max_examples=60, deadline=None)
@given(edge_lists, st.booleans(), st.booleans())
def test_to_csr_matches_dense_adjacency(edges, weighted, symmetric):
    g = build_graph(edges)
    indptr, indices, data = g.to_csr(weighted=weighted, symmetric=symmetric)
    dense = g.adjacency_matrix(weighted=weighted, symmetric=symmetric)
    assert len(indptr) == g.num_nodes + 1
    np.testing.assert_array_equal(
        _csr_to_dense(g.num_nodes, indptr, indices, data), dense)
    # Column indices must be sorted within each row (CSR canonical form).
    for i in range(g.num_nodes):
        row = indices[indptr[i]:indptr[i + 1]]
        assert np.all(np.diff(row) > 0)


def test_to_csr_empty_graph():
    g = TxGraph()
    indptr, indices, data = g.to_csr()
    assert indptr.tolist() == [0]
    assert len(indices) == 0 and len(data) == 0
    g.add_node("isolated")
    indptr, indices, data = g.to_csr()
    assert indptr.tolist() == [0, 0]


class TestEdgeAPI:
    def test_contains(self, toy_graph):
        assert "a" in toy_graph
        assert "zz" not in toy_graph

    def test_edges_between_directions(self, toy_graph):
        forward = toy_graph.edges_between("a", "b")
        assert [(e.src, e.dst) for e in forward] == [("a", "b")]
        # Queried from the other side the same single edge comes back.
        assert [(e.src, e.dst) for e in toy_graph.edges_between("b", "a")] == [("a", "b")]

    def test_edges_between_both_directions(self):
        g = TxGraph()
        g.add_edge("u", "v", amount=1.0)
        g.add_edge("v", "u", amount=2.0)
        pairs = [(e.src, e.dst) for e in g.edges_between("u", "v")]
        assert pairs == [("u", "v"), ("v", "u")]

    def test_edges_between_self_loop_not_duplicated(self):
        g = TxGraph()
        g.add_edge("u", "u", amount=1.0)
        assert len(g.edges_between("u", "u")) == 1

    def test_edges_between_missing(self, toy_graph):
        assert toy_graph.edges_between("a", "c") == []

    def test_add_edge_zero_count_merge_keeps_timestamp(self):
        g = TxGraph()
        g.add_edge("a", "b", amount=1.0, count=0, timestamp=50.0)
        g.add_edge("a", "b", amount=2.0, count=0, timestamp=99.0)
        edge = g.get_edge("a", "b")
        assert edge.count == 0
        assert edge.amount == pytest.approx(3.0)
        assert edge.timestamp == pytest.approx(50.0)

    def test_add_edge_zero_count_then_real_count(self):
        g = TxGraph()
        g.add_edge("a", "b", amount=1.0, count=0, timestamp=50.0)
        g.add_edge("a", "b", amount=2.0, count=2, timestamp=100.0)
        edge = g.get_edge("a", "b")
        assert edge.count == 2
        assert edge.timestamp == pytest.approx(100.0)


class TestExtractManyParity:
    def test_extract_many_bit_identical_to_loop(self, small_ledger):
        extractor = DeepFeatureExtractor(small_ledger)
        addresses = [account.address for account in small_ledger.accounts]
        looped = np.vstack([extractor.extract(a) for a in addresses])
        batched = DeepFeatureExtractor(small_ledger).extract_many(addresses)
        np.testing.assert_array_equal(looped, batched)

    def test_extract_many_handles_unknown_and_duplicate_addresses(self, small_ledger):
        extractor = DeepFeatureExtractor(small_ledger)
        known = small_ledger.accounts[0].address
        batched = extractor.extract_many([known, "0xunknown", known])
        np.testing.assert_array_equal(batched[0], batched[2])
        np.testing.assert_array_equal(batched[1], np.zeros(15))
        np.testing.assert_array_equal(batched[0], extractor.extract(known))

    def test_extract_many_cache_invalidates_on_ledger_growth(self, small_ledger):
        import copy

        from repro.chain.transactions import Block, Transaction

        ledger = copy.deepcopy(small_ledger)
        extractor = DeepFeatureExtractor(ledger)
        addresses = [account.address for account in ledger.accounts[:5]]
        before = extractor.extract_many(addresses).copy()
        last_number = ledger.blocks[-1].number
        t_max = ledger.timespan()[1]
        ledger.append_block(Block(number=last_number + 1, timestamp=t_max + 60.0, transactions=[
            Transaction(tx_hash="0xfeed", sender=addresses[0], receiver=addresses[1],
                        value=5.0, gas_price=3.0, gas_used=21000,
                        timestamp=t_max + 60.0, block_number=last_number + 1)]))
        after = extractor.extract_many(addresses)
        assert not np.array_equal(before, after)
        looped = np.vstack([extractor.extract(a) for a in addresses])
        np.testing.assert_array_equal(after, looped)
