"""Tests for the SGD and Adam optimizers."""

import numpy as np
import pytest

from repro.nn import Adam, Linear, SGD, Tensor, mse_loss
from repro.nn.layers import Parameter


def quadratic_loss(param: Parameter) -> Tensor:
    """Simple convex objective ``sum((x - 3)^2)`` with minimum at 3."""
    diff = param - Tensor(np.full(param.shape, 3.0))
    return (diff * diff).sum()


class TestSGD:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(4))
        optimizer = SGD([param], lr=0.1)
        for _ in range(100):
            optimizer.zero_grad()
            quadratic_loss(param).backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, np.full(4, 3.0), atol=1e-3)

    def test_momentum_accelerates(self):
        plain, momentum = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        opt_plain = SGD([plain], lr=0.01)
        opt_momentum = SGD([momentum], lr=0.01, momentum=0.9)
        for _ in range(30):
            for param, opt in ((plain, opt_plain), (momentum, opt_momentum)):
                opt.zero_grad()
                quadratic_loss(param).backward()
                opt.step()
        assert abs(momentum.data[0] - 3.0) < abs(plain.data[0] - 3.0)

    def test_weight_decay_shrinks_weights(self):
        param = Parameter(np.full(3, 5.0))
        optimizer = SGD([param], lr=0.1, weight_decay=0.5)
        optimizer.zero_grad()
        (param * 0.0).sum().backward()
        optimizer.step()
        assert np.all(np.abs(param.data) < 5.0)

    def test_skips_parameters_without_gradients(self):
        used, unused = Parameter(np.ones(2)), Parameter(np.ones(2))
        optimizer = SGD([used, unused], lr=0.1)
        quadratic_loss(used).backward()
        optimizer.step()
        np.testing.assert_allclose(unused.data, np.ones(2))

    def test_empty_parameter_list_raises(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestAdam:
    def test_converges_on_quadratic(self):
        param = Parameter(np.zeros(4))
        optimizer = Adam([param], lr=0.2)
        for _ in range(200):
            optimizer.zero_grad()
            quadratic_loss(param).backward()
            optimizer.step()
        np.testing.assert_allclose(param.data, np.full(4, 3.0), atol=1e-2)

    def test_trains_a_linear_regression(self, rng):
        true_w = np.array([[2.0], [-1.0], [0.5]])
        X = rng.normal(size=(64, 3))
        y = X @ true_w
        layer = Linear(3, 1, rng=rng)
        optimizer = Adam(layer.parameters(), lr=0.05)
        for _ in range(300):
            optimizer.zero_grad()
            loss = mse_loss(layer(Tensor(X)), y)
            loss.backward()
            optimizer.step()
        np.testing.assert_allclose(layer.weight.data, true_w, atol=0.05)

    def test_zero_grad_resets(self):
        param = Parameter(np.zeros(2))
        optimizer = Adam([param], lr=0.1)
        quadratic_loss(param).backward()
        optimizer.zero_grad()
        assert param.grad is None

    def test_step_counter_advances(self):
        param = Parameter(np.zeros(2))
        optimizer = Adam([param], lr=0.1)
        quadratic_loss(param).backward()
        optimizer.step()
        optimizer.step()
        assert optimizer._step == 2

    def test_weight_decay_changes_update(self):
        a, b = Parameter(np.full(2, 2.0)), Parameter(np.full(2, 2.0))
        opt_a = Adam([a], lr=0.1)
        opt_b = Adam([b], lr=0.1, weight_decay=1.0)
        for param, opt in ((a, opt_a), (b, opt_b)):
            quadratic_loss(param).backward()
            opt.step()
        assert not np.allclose(a.data, b.data)
