"""Tests for layers, the Module container and parameter management."""

import numpy as np
import pytest

from repro.nn import Embedding, LayerNorm, Linear, Module, Parameter, Sequential, Tensor
from repro.nn.functional import relu


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(5, 3, rng=rng)
        out = layer(Tensor(rng.normal(size=(7, 5))))
        assert out.shape == (7, 3)

    def test_no_bias(self, rng):
        layer = Linear(4, 2, bias=False, rng=rng)
        assert layer.bias is None
        out = layer(Tensor(np.zeros((3, 4))))
        np.testing.assert_allclose(out.data, np.zeros((3, 2)))

    def test_bias_initialised_to_zero(self, rng):
        layer = Linear(4, 2, rng=rng)
        np.testing.assert_allclose(layer.bias.data, np.zeros(2))

    def test_glorot_weights_within_limit(self, rng):
        layer = Linear(10, 10, rng=rng)
        limit = np.sqrt(6.0 / 20)
        assert np.all(np.abs(layer.weight.data) <= limit)

    def test_gradients_reach_parameters(self, rng):
        layer = Linear(3, 2, rng=rng)
        out = layer(Tensor(rng.normal(size=(4, 3)))).sum()
        out.backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None

    def test_deterministic_given_rng_seed(self):
        a = Linear(4, 4, rng=np.random.default_rng(5))
        b = Linear(4, 4, rng=np.random.default_rng(5))
        np.testing.assert_allclose(a.weight.data, b.weight.data)


class TestModule:
    def test_parameters_found_in_nested_structures(self, rng):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.layers = [Linear(2, 2, rng=rng), Linear(2, 2, rng=rng)]
                self.extra = {"head": Linear(2, 1, rng=rng)}
                self.scale = Parameter(np.ones(1))

        net = Net()
        params = list(net.parameters())
        # 3 linear layers x (weight + bias) + 1 scale = 7
        assert len(params) == 7

    def test_num_parameters(self, rng):
        layer = Linear(3, 4, rng=rng)
        assert layer.num_parameters() == 3 * 4 + 4

    def test_zero_grad_clears_all(self, rng):
        layer = Linear(3, 2, rng=rng)
        layer(Tensor(rng.normal(size=(2, 3)))).sum().backward()
        layer.zero_grad()
        assert all(p.grad is None for p in layer.parameters())

    def test_train_eval_propagates(self, rng):
        seq = Sequential(Linear(2, 2, rng=rng), Linear(2, 2, rng=rng))
        seq.eval()
        assert not seq.training
        assert all(not s.training for s in seq.steps)
        seq.train()
        assert seq.training

    def test_state_dict_roundtrip(self, rng):
        layer = Linear(3, 3, rng=rng)
        state = layer.state_dict()
        layer.weight.data[...] = 0.0
        layer.load_state_dict(state)
        assert not np.allclose(layer.weight.data, 0.0)

    def test_load_state_dict_shape_mismatch_raises(self, rng):
        layer = Linear(3, 3, rng=rng)
        with pytest.raises(ValueError):
            layer.load_state_dict([np.zeros((2, 2)), np.zeros(3)])

    def test_load_state_dict_length_mismatch_raises(self, rng):
        layer = Linear(3, 3, rng=rng)
        with pytest.raises(ValueError):
            layer.load_state_dict([np.zeros((3, 3))])

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestSequential:
    def test_applies_in_order(self, rng):
        seq = Sequential(Linear(3, 4, rng=rng), relu, Linear(4, 2, rng=rng))
        out = seq(Tensor(rng.normal(size=(5, 3))))
        assert out.shape == (5, 2)

    def test_collects_parameters_from_all_steps(self, rng):
        seq = Sequential(Linear(3, 4, rng=rng), relu, Linear(4, 2, rng=rng))
        assert len(list(seq.parameters())) == 4


class TestLayerNorm:
    def test_output_is_normalised(self, rng):
        layer = LayerNorm(8)
        out = layer(Tensor(rng.normal(size=(5, 8)) * 10 + 3))
        np.testing.assert_allclose(out.data.mean(axis=-1), np.zeros(5), atol=1e-6)
        np.testing.assert_allclose(out.data.std(axis=-1), np.ones(5), atol=1e-2)

    def test_has_learnable_gain_and_bias(self):
        layer = LayerNorm(4)
        assert len(list(layer.parameters())) == 2

    def test_gradient_flows(self, rng):
        layer = LayerNorm(4)
        layer(Tensor(rng.normal(size=(2, 4)), requires_grad=True)).sum().backward()
        assert layer.gamma.grad is not None


class TestEmbedding:
    def test_lookup_shape(self, rng):
        emb = Embedding(10, 6, rng=rng)
        out = emb([1, 3, 5])
        assert out.shape == (3, 6)

    def test_same_id_same_vector(self, rng):
        emb = Embedding(10, 4, rng=rng)
        out = emb([2, 2])
        np.testing.assert_allclose(out.data[0], out.data[1])

    def test_gradient_accumulates_per_row(self, rng):
        emb = Embedding(5, 3, rng=rng)
        emb([0, 0, 1]).sum().backward()
        # Row 0 was used twice so its gradient is twice row 1's.
        np.testing.assert_allclose(emb.weight.grad[0], 2 * emb.weight.grad[1])
        np.testing.assert_allclose(emb.weight.grad[2], np.zeros(3))
