"""Tests for train/test splitting utilities."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data import one_vs_rest_labels, stratified_kfold, train_test_split


class TestTrainTestSplit:
    def test_partitions_are_disjoint_and_cover(self):
        samples = list(range(20))
        labels = np.array([0, 1] * 10)
        train_s, train_y, test_s, test_y = train_test_split(samples, labels, 0.3, seed=1)
        assert sorted(train_s + test_s) == samples
        assert len(train_y) == len(train_s) and len(test_y) == len(test_s)

    def test_stratification_keeps_both_classes_in_test(self):
        samples = list(range(30))
        labels = np.array([0] * 25 + [1] * 5)
        _train_s, _train_y, _test_s, test_y = train_test_split(samples, labels, 0.3, seed=0)
        assert (test_y == 1).any() and (test_y == 0).any()

    def test_test_fraction_roughly_respected(self):
        samples = list(range(100))
        labels = np.array([0, 1] * 50)
        _ts, _ty, test_s, _tey = train_test_split(samples, labels, 0.25, seed=0)
        assert 20 <= len(test_s) <= 30

    def test_non_stratified_mode(self):
        samples = list(range(10))
        labels = np.zeros(10)
        _ts, _ty, test_s, _tey = train_test_split(samples, labels, 0.2, stratify=False)
        assert len(test_s) == 2

    def test_deterministic_given_seed(self):
        samples = list(range(20))
        labels = np.array([0, 1] * 10)
        a = train_test_split(samples, labels, 0.3, seed=7)
        b = train_test_split(samples, labels, 0.3, seed=7)
        assert a[2] == b[2]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            train_test_split([1, 2, 3], np.array([0, 1]))

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            train_test_split([1, 2], np.array([0, 1]), test_fraction=1.5)

    def test_labels_follow_their_samples(self):
        samples = [f"s{i}" for i in range(12)]
        labels = np.array([int(i >= 6) for i in range(12)])
        train_s, train_y, test_s, test_y = train_test_split(samples, labels, 0.3, seed=2)
        for sample, label in zip(train_s, train_y):
            assert label == int(int(sample[1:]) >= 6)
        for sample, label in zip(test_s, test_y):
            assert label == int(int(sample[1:]) >= 6)


class TestStratifiedKFold:
    def test_folds_partition_all_indices(self):
        labels = np.array([0, 1] * 15)
        splits = stratified_kfold(labels, n_splits=3, seed=0)
        all_test = np.concatenate([test for _train, test in splits])
        assert sorted(all_test) == list(range(30))

    def test_each_fold_has_both_classes(self):
        labels = np.array([0] * 20 + [1] * 10)
        for _train, test in stratified_kfold(labels, n_splits=5):
            assert (labels[test] == 1).any() and (labels[test] == 0).any()

    def test_train_and_test_disjoint(self):
        labels = np.array([0, 1, 2] * 8)
        for train, test in stratified_kfold(labels, n_splits=4):
            assert set(train).isdisjoint(set(test))

    def test_invalid_split_count_raises(self):
        with pytest.raises(ValueError):
            stratified_kfold(np.array([0, 1]), n_splits=1)


class TestOneVsRest:
    def test_basic(self):
        labels = one_vs_rest_labels(["a", "b", "a", None], positive="a")
        np.testing.assert_array_equal(labels, [1, 0, 1, 0])

    def test_no_positives(self):
        assert one_vs_rest_labels(["b", "c"], positive="a").sum() == 0


@settings(max_examples=30, deadline=None)
@given(st.integers(6, 60), st.floats(0.1, 0.5))
def test_split_sizes_add_up(n, fraction):
    samples = list(range(n))
    labels = np.array([i % 2 for i in range(n)])
    train_s, _ty, test_s, _tey = train_test_split(samples, labels, fraction, seed=0)
    assert len(train_s) + len(test_s) == n
    assert len(train_s) > 0 and len(test_s) > 0
