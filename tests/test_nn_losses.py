"""Tests for the loss functions."""

import numpy as np
import pytest

from repro.nn import (
    Tensor,
    binary_cross_entropy,
    cross_entropy,
    mse_loss,
    nt_xent_loss,
)


class TestCrossEntropy:
    def test_perfect_prediction_has_low_loss(self):
        logits = Tensor([[10.0, -10.0], [-10.0, 10.0]])
        loss = cross_entropy(logits, [0, 1])
        assert loss.item() < 1e-4

    def test_uniform_prediction_equals_log_num_classes(self):
        logits = Tensor(np.zeros((4, 3)))
        loss = cross_entropy(logits, [0, 1, 2, 0])
        assert loss.item() == pytest.approx(np.log(3))

    def test_loss_is_nonnegative(self, rng):
        logits = Tensor(rng.normal(size=(6, 4)))
        assert cross_entropy(logits, rng.integers(0, 4, size=6)).item() >= 0.0

    def test_gradient_shape(self, rng):
        logits = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
        cross_entropy(logits, [0, 1, 2, 1, 0]).backward()
        assert logits.grad.shape == (5, 3)

    def test_gradient_matches_softmax_minus_onehot(self):
        logits = Tensor(np.array([[1.0, 2.0, 0.5]]), requires_grad=True)
        cross_entropy(logits, [1]).backward()
        exp = np.exp(logits.data - logits.data.max())
        probs = exp / exp.sum()
        expected = probs.copy()
        expected[0, 1] -= 1.0
        np.testing.assert_allclose(logits.grad, expected, atol=1e-10)


class TestBinaryCrossEntropy:
    def test_perfect_probabilities(self):
        loss = binary_cross_entropy(Tensor([0.9999, 0.0001]), [1, 0])
        assert loss.item() < 1e-3

    def test_half_probability(self):
        loss = binary_cross_entropy(Tensor([0.5, 0.5]), [1, 0])
        assert loss.item() == pytest.approx(np.log(2), abs=1e-6)

    def test_clipping_prevents_infinite_loss(self):
        loss = binary_cross_entropy(Tensor([0.0, 1.0]), [1, 0])
        assert np.isfinite(loss.item())

    def test_gradient_direction(self):
        probs = Tensor([0.3], requires_grad=True)
        binary_cross_entropy(probs, [1]).backward()
        # Increasing the probability of a positive sample must reduce the loss.
        assert probs.grad[0] < 0.0


class TestMSE:
    def test_zero_for_identical_inputs(self, rng):
        x = rng.normal(size=(4, 2))
        assert mse_loss(Tensor(x), x).item() == pytest.approx(0.0)

    def test_known_value(self):
        assert mse_loss(Tensor([1.0, 3.0]), [0.0, 0.0]).item() == pytest.approx(5.0)

    def test_gradient(self):
        pred = Tensor([2.0], requires_grad=True)
        mse_loss(pred, [0.0]).backward()
        np.testing.assert_allclose(pred.grad, [4.0])


class TestNTXent:
    def test_identical_views_give_lower_loss_than_random(self, rng):
        z = rng.normal(size=(6, 8))
        loss_same = nt_xent_loss(Tensor(z), Tensor(z)).item()
        loss_random = nt_xent_loss(Tensor(z), Tensor(rng.normal(size=(6, 8)))).item()
        assert loss_same < loss_random

    def test_shape_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            nt_xent_loss(Tensor(rng.normal(size=(3, 4))), Tensor(rng.normal(size=(4, 4))))

    def test_loss_is_finite_and_positive(self, rng):
        loss = nt_xent_loss(Tensor(rng.normal(size=(5, 16))),
                            Tensor(rng.normal(size=(5, 16))))
        assert np.isfinite(loss.item()) and loss.item() > 0.0

    def test_temperature_changes_loss(self, rng):
        z1, z2 = rng.normal(size=(4, 8)), rng.normal(size=(4, 8))
        loss_a = nt_xent_loss(Tensor(z1), Tensor(z2), temperature=0.1).item()
        loss_b = nt_xent_loss(Tensor(z1), Tensor(z2), temperature=1.0).item()
        assert loss_a != pytest.approx(loss_b)

    def test_gradient_flows_to_both_views(self, rng):
        z1 = Tensor(rng.normal(size=(4, 8)), requires_grad=True)
        z2 = Tensor(rng.normal(size=(4, 8)), requires_grad=True)
        nt_xent_loss(z1, z2).backward()
        assert z1.grad is not None and z2.grad is not None
