"""Tests for top-K neighbour ranking and ego-subgraph sampling (Eq. 2)."""

import pytest

from repro.graph import TxGraph, ego_subgraph, top_k_neighbors


@pytest.fixture()
def ranked_graph():
    """Centre 'c' with neighbours of known average transaction value."""
    g = TxGraph()
    g.add_edge("c", "high", amount=100.0)                  # avg 100
    g.add_edge("c", "mid", amount=10.0)                    # avg 10
    g.add_edge("low", "c", amount=1.0)                     # avg 1
    g.add_edge("mid", "far", amount=50.0)                  # 2-hop from c
    return g


class TestTopKNeighbors:
    def test_ranking_by_average_value(self, ranked_graph):
        assert top_k_neighbors(ranked_graph, "c", k=3) == ["high", "mid", "low"]

    def test_k_limits_result(self, ranked_graph):
        assert top_k_neighbors(ranked_graph, "c", k=1) == ["high"]

    def test_includes_incoming_neighbours(self, ranked_graph):
        assert "low" in top_k_neighbors(ranked_graph, "c", k=10)

    def test_merged_edges_use_average_not_total(self):
        g = TxGraph()
        # 'many' has 10 transactions of 1.0 (avg 1); 'single' has one of 5.0 (avg 5).
        for _ in range(10):
            g.add_edge("c", "many", amount=1.0)
        g.add_edge("c", "single", amount=5.0)
        assert top_k_neighbors(g, "c", k=1) == ["single"]

    def test_node_without_neighbours(self):
        g = TxGraph()
        g.add_node("isolated")
        assert top_k_neighbors(g, "isolated", k=5) == []

    def test_self_loops_are_ignored(self):
        g = TxGraph()
        g.add_edge("c", "c", amount=100.0)
        g.add_edge("c", "other", amount=1.0)
        assert top_k_neighbors(g, "c", k=5) == ["other"]

    def test_best_direction_average_ranks_not_combined_average(self):
        g = TxGraph()
        # 'split': two directed edges, averages 9 and 1 -> best average 9.
        g.add_edge("c", "split", amount=9.0)
        g.add_edge("split", "c", amount=1.0)
        # 'flat': one edge of average 6 but a larger total (12 > 10).
        g.add_edge("c", "flat", amount=12.0)
        g.add_edge("c", "flat", amount=0.0)   # merges: total 12, avg 6
        assert top_k_neighbors(g, "c", k=2) == ["split", "flat"]

    def test_equal_averages_tie_break_on_total(self):
        g = TxGraph()
        # Both neighbours have best average 5.0; 'big' moved more in total.
        g.add_edge("c", "small", amount=5.0)
        g.add_edge("c", "big", amount=5.0)
        g.add_edge("big", "c", amount=3.0)    # raises total to 8, avg stays 5
        assert top_k_neighbors(g, "c", k=2) == ["big", "small"]

    def test_equal_scores_tie_break_on_node_id(self):
        g = TxGraph()
        # Insert in non-lexicographic order; identical (avg, total) scores.
        for other in ("nb", "na", "nc"):
            g.add_edge("c", other, amount=5.0)
        assert top_k_neighbors(g, "c", k=3) == ["na", "nb", "nc"]


class TestEgoSubgraph:
    def test_one_hop_excludes_two_hop_nodes(self, ranked_graph):
        sub = ego_subgraph(ranked_graph, "c", hops=1, k=10)
        assert sub.has_node("high") and not sub.has_node("far")

    def test_two_hops_reach_far_node(self, ranked_graph):
        sub = ego_subgraph(ranked_graph, "c", hops=2, k=10)
        assert sub.has_node("far")

    def test_center_is_always_included(self, ranked_graph):
        sub = ego_subgraph(ranked_graph, "c", hops=1, k=1)
        assert sub.has_node("c")

    def test_k_caps_frontier_size(self, ranked_graph):
        sub = ego_subgraph(ranked_graph, "c", hops=1, k=1)
        assert sub.num_nodes == 2  # centre + its single best neighbour

    def test_missing_center_raises(self, ranked_graph):
        with pytest.raises(KeyError):
            ego_subgraph(ranked_graph, "nope", hops=1, k=1)

    def test_subgraph_of_ledger_graph_contains_center(self, small_ledger):
        from repro.data import build_transaction_graph

        graph = build_transaction_graph(small_ledger)
        center = next(addr for addr, _ in small_ledger.labels.items() if graph.has_node(addr))
        sub = ego_subgraph(graph, center, hops=2, k=20)
        assert sub.has_node(center)
        assert sub.num_nodes <= graph.num_nodes
