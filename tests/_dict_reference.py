"""Pure-sequential dict-backed reference graph for parity testing.

``DictGraphReference`` re-implements the pre-columnar ``TxGraph`` semantics
with the simplest possible data structures: one merged ``Edge`` per ordered
pair in a global insertion-ordered dict plus per-node out/in dicts, fed only
by sequential ``add_edge`` calls.  The property tests replay arbitrary
interleavings of ``add_edge`` / ``add_edges_bulk`` against it and require the
columnar graph to be bit-identical — including edge iteration order.

``benchmarks/perf_graph.py`` carries a separate, fuller snapshot of the PR 4
store (``DictTxGraph``, including the vectorised bulk path) for timing.  Both
references pin the same semantics; they stay in sync transitively because
each is asserted bit-identical to ``TxGraph`` on its own suite.
"""

from __future__ import annotations

from typing import Hashable

from repro.graph.txgraph import Edge

__all__ = ["DictGraphReference"]


class DictGraphReference:
    def __init__(self):
        self._nodes: dict[Hashable, int] = {}
        self._node_order: list[Hashable] = []
        self._node_attrs: dict[Hashable, dict] = {}
        self._edges: dict[tuple[Hashable, Hashable], Edge] = {}
        self._out: dict[Hashable, dict[Hashable, Edge]] = {}
        self._in: dict[Hashable, dict[Hashable, Edge]] = {}

    def add_node(self, node: Hashable, **attrs) -> None:
        if node not in self._nodes:
            self._nodes[node] = len(self._node_order)
            self._node_order.append(node)
            self._node_attrs[node] = {}
            self._out[node] = {}
            self._in[node] = {}
        if attrs:
            self._node_attrs[node].update(attrs)

    def add_edge(self, src: Hashable, dst: Hashable, amount: float = 0.0,
                 count: int = 1, timestamp: float = 0.0) -> None:
        self.add_node(src)
        self.add_node(dst)
        key = (src, dst)
        existing = self._edges.get(key)
        if existing is None:
            edge = Edge(src, dst, amount, count, timestamp)
        else:
            total = existing.count + count
            if total > 0:
                mean_ts = (existing.timestamp * existing.count
                           + timestamp * count) / total
            else:
                mean_ts = existing.timestamp
            edge = Edge(src, dst, existing.amount + amount, total, mean_ts)
        # Re-assigning an existing key keeps its dict position, so edge
        # iteration order is stable under merges.
        self._edges[key] = edge
        self._out[src][dst] = edge
        self._in[dst][src] = edge

    @property
    def nodes(self) -> list[Hashable]:
        return list(self._node_order)

    @property
    def edges(self) -> list[Edge]:
        return list(self._edges.values())

    @property
    def num_nodes(self) -> int:
        return len(self._node_order)

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def out_edges(self, node: Hashable):
        return list(self._out.get(node, {}).values())

    def in_edges(self, node: Hashable):
        return list(self._in.get(node, {}).values())

    def neighbors(self, node: Hashable) -> set[Hashable]:
        return set(self._out.get(node, ())) | set(self._in.get(node, ()))

    def degree(self, node: Hashable) -> int:
        out_nbrs = self._out.get(node)
        in_nbrs = self._in.get(node)
        if out_nbrs is None and in_nbrs is None:
            return 0
        loop = 1 if out_nbrs and node in out_nbrs else 0
        return len(out_nbrs or ()) + len(in_nbrs or ()) - loop

    def edges_between(self, u: Hashable, v: Hashable) -> list[Edge]:
        edges = []
        forward = self._edges.get((u, v))
        if forward is not None:
            edges.append(forward)
        if u != v:
            backward = self._edges.get((v, u))
            if backward is not None:
                edges.append(backward)
        return edges

    def subgraph(self, nodes) -> "DictGraphReference":
        keep = {node for node in nodes if node in self._nodes}
        sub = DictGraphReference()
        for node in self._node_order:
            if node in keep:
                sub.add_node(node, **self._node_attrs[node])
        for (src, dst), edge in self._edges.items():
            if src in keep and dst in keep:
                sub._edges[(src, dst)] = edge
                sub._out[src][dst] = edge
                sub._in[dst][src] = edge
        return sub
