"""Property tests for the scenario synthesis engine.

Every registered scenario must uphold the hard invariants of the
:class:`~repro.chain.scenarios.Scenario` contract for *any* seed and pool
shape — timestamps inside the observation window, strictly positive values
and gas, no self-transfers, the centre on exactly one side of every row —
and its statistical envelope must hold on non-degenerate pools.  A slow
end-to-end smoke verifies the three new attack families survive the full
labelcloud → features → classification pipeline.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chain import AccountCategory
from repro.chain.scenarios import (
    RawTxBlock,
    ScenarioCheckError,
    registered_scenarios,
    scenario_for,
    segment_arange,
)

CATEGORIES = sorted(registered_scenarios(), key=lambda c: c.value)

START = 1_438_900_000.0
SPAN = 3600.0 * 24 * 365


def make_pools(n_centers: int, n_users: int = 60, n_contracts: int = 12):
    users = np.arange(n_users, dtype=np.int64)
    contracts = np.arange(n_users, n_users + n_contracts, dtype=np.int64)
    centers = np.arange(n_users + n_contracts,
                        n_users + n_contracts + n_centers, dtype=np.int64)
    return centers, users, contracts


def assert_hard_invariants(block: RawTxBlock, centers: np.ndarray,
                           start: float, span: float) -> None:
    assert np.all(block.value > 0)
    assert np.all(block.gas_price > 0)
    assert np.all(block.gas_used > 0)
    assert np.all(block.sender_id != block.receiver_id)
    low = start - 0.01 * span
    high = start + span + max(3600.0, 0.05 * span)
    assert np.all((block.timestamp >= low) & (block.timestamp <= high))
    # The labelled centre sits on exactly one side of every transaction.
    sender_is_center = np.isin(block.sender_id, centers)
    receiver_is_center = np.isin(block.receiver_id, centers)
    assert np.all(sender_is_center ^ receiver_is_center)


class TestScenarioProperties:
    @given(category=st.sampled_from(CATEGORIES),
           seed=st.integers(0, 2**16),
           n_centers=st.integers(1, 6))
    @settings(max_examples=60, deadline=None, derandomize=True)
    def test_hard_invariants(self, category, seed, n_centers):
        centers, users, contracts = make_pools(n_centers)
        block = scenario_for(category).synthesize(
            centers, users, contracts, np.random.default_rng(seed), START, SPAN)
        assert len(block) > 0
        assert_hard_invariants(block, centers, START, SPAN)

    @given(category=st.sampled_from(CATEGORIES), seed=st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None, derandomize=True)
    def test_synthesis_is_deterministic(self, category, seed):
        centers, users, contracts = make_pools(3)
        scenario = scenario_for(category)
        a = scenario.synthesize(centers, users, contracts,
                                np.random.default_rng(seed), START, SPAN)
        b = scenario.synthesize(centers, users, contracts,
                                np.random.default_rng(seed), START, SPAN)
        for name in ("sender_id", "receiver_id", "value", "gas_price",
                     "gas_used", "timestamp", "is_contract_call"):
            np.testing.assert_array_equal(getattr(a, name), getattr(b, name),
                                          err_msg=name)

    @given(category=st.sampled_from(CATEGORIES),
           seed=st.integers(0, 64),
           n_centers=st.integers(3, 8))
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_self_check_passes_on_healthy_pools(self, category, seed, n_centers):
        centers, users, contracts = make_pools(n_centers)
        scenario = scenario_for(category)
        block = scenario.synthesize(centers, users, contracts,
                                    np.random.default_rng(seed), START, SPAN)
        scenario.self_check(block, centers, START, SPAN)

    @given(category=st.sampled_from(CATEGORIES),
           seed=st.integers(0, 256),
           n_users=st.integers(0, 1),
           n_contracts=st.integers(0, 1))
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_degenerate_pools_do_not_raise(self, category, seed, n_users,
                                           n_contracts):
        centers, users, contracts = make_pools(2, n_users=n_users,
                                               n_contracts=n_contracts)
        block = scenario_for(category).synthesize(
            centers, users, contracts, np.random.default_rng(seed), START, SPAN)
        if len(block):
            assert_hard_invariants(block, centers, START, SPAN)

    def test_empty_centers_give_empty_block(self):
        centers, users, contracts = make_pools(0)
        for category, scenario in registered_scenarios().items():
            block = scenario.synthesize(centers, users, contracts,
                                        np.random.default_rng(0), START, SPAN)
            assert len(block) == 0, category


class TestRegistry:
    def test_covers_every_account_category(self):
        assert set(registered_scenarios()) == set(AccountCategory)

    def test_scenario_for_accepts_value_strings(self):
        for category in AccountCategory:
            assert scenario_for(category.value) is scenario_for(category)

    def test_scenario_categories_match_registry_keys(self):
        for category, scenario in registered_scenarios().items():
            assert AccountCategory(scenario.category) is category


class TestRawTxBlock:
    def test_concat_of_empties_is_empty(self):
        assert len(RawTxBlock.concat([])) == 0
        assert len(RawTxBlock.concat([RawTxBlock.empty(), RawTxBlock.empty()])) == 0

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            RawTxBlock(np.zeros(2, dtype=np.int64), np.ones(3, dtype=np.int64),
                       np.ones(2), np.ones(2), np.ones(2, dtype=np.int64),
                       np.ones(2), np.zeros(2, dtype=bool))

    def test_take_reorders_all_columns(self):
        centers, users, contracts = make_pools(2)
        block = scenario_for("exchange").synthesize(
            centers, users, contracts, np.random.default_rng(1), START, SPAN)
        order = np.argsort(block.timestamp, kind="stable")
        taken = block.take(order)
        assert np.all(np.diff(taken.timestamp) >= 0)
        assert len(taken) == len(block)
        assert taken.value.sum() == pytest.approx(block.value.sum())


class TestSelfCheckCatchesViolations:
    def test_self_transfer_is_rejected(self):
        centers, users, contracts = make_pools(1)
        scenario = scenario_for("exchange")
        block = scenario.synthesize(centers, users, contracts,
                                    np.random.default_rng(0), START, SPAN)
        block.receiver_id[:] = block.sender_id
        with pytest.raises(ScenarioCheckError):
            scenario.self_check(block, centers, START, SPAN)

    def test_out_of_window_timestamp_is_rejected(self):
        centers, users, contracts = make_pools(1)
        scenario = scenario_for("exchange")
        block = scenario.synthesize(centers, users, contracts,
                                    np.random.default_rng(0), START, SPAN)
        block.timestamp[0] = START + SPAN * 10
        with pytest.raises(ScenarioCheckError):
            scenario.self_check(block, centers, START, SPAN)


class TestSegmentArange:
    @given(counts=st.lists(st.integers(0, 7), min_size=0, max_size=10))
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_matches_python_reference(self, counts):
        expected = [i for c in counts for i in range(c)]
        got = segment_arange(np.asarray(counts, dtype=np.int64))
        assert got.tolist() == expected


@pytest.mark.slow
def test_new_families_classify_end_to_end():
    """The three new attack families flow through the full pipeline."""
    from repro.core import DBG4ETH
    from repro.experiments import ExperimentConfig, build_experiment_dataset, \
        run_category_experiment
    from repro.experiments.runner import fast_dbg4eth_config

    dataset, _ledger = build_experiment_dataset(
        ExperimentConfig(scale=0.35, top_k=40, max_nodes_per_subgraph=40, seed=7))
    for category in AccountCategory.attack_families():
        report = run_category_experiment(
            dataset, category,
            model_factory=lambda: DBG4ETH(fast_dbg4eth_config(epochs=6)),
            seed=7)
        assert report["accuracy"] >= 0.5, (category, report)
        assert report["f1"] >= 0.3, (category, report)
