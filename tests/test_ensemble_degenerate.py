"""Degenerate-input coverage for every tree-based ensemble head.

Four regimes that used to be easy to crash on: single-class labels, constant
feature columns, fewer samples than ``min_samples_split``, and subsample
masks that select fewer than two rows.  Each head must fit without error and
fall back to predicting the majority class.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ensemble import (
    AdaBoostClassifier,
    GradientBoostingClassifier,
    LightGBMClassifier,
    RandomForestClassifier,
    XGBoostClassifier,
)

HEADS = {
    "gbm": lambda **kw: GradientBoostingClassifier(n_estimators=5, **kw),
    "lightgbm": lambda **kw: LightGBMClassifier(n_estimators=5, **kw),
    "xgboost": lambda **kw: XGBoostClassifier(n_estimators=5, **kw),
    "adaboost": lambda **kw: AdaBoostClassifier(n_estimators=5, **kw),
    "random_forest": lambda **kw: RandomForestClassifier(n_estimators=5, **kw),
}


def _fit_and_check_majority(model, X, y):
    model.fit(X, y)
    majority = int(np.bincount(np.asarray(y).astype(int), minlength=2).argmax())
    predictions = model.predict(X)
    assert predictions.shape == (len(X),)
    assert np.all(predictions == majority)
    proba = model.predict_proba(X)
    # Boosted heads always emit two columns; the forest emits one per
    # observed class (a single column when only one class was seen).
    assert proba.ndim == 2 and proba.shape[0] == len(X)
    assert np.all(np.isfinite(proba))


@pytest.mark.parametrize("name", sorted(HEADS))
@pytest.mark.parametrize("label", [0, 1])
def test_single_class_labels(name, label):
    rng = np.random.default_rng(0)
    X = rng.normal(size=(30, 3))
    y = np.full(30, label)
    _fit_and_check_majority(HEADS[name](seed=0), X, y)


@pytest.mark.parametrize("name", sorted(HEADS))
def test_constant_feature_columns(name):
    """All-constant features leave nothing to split on: majority prediction."""
    X = np.full((24, 3), 1.5)
    y = np.array([0, 1] * 11 + [1, 1])
    _fit_and_check_majority(HEADS[name](seed=0), X, y)


@pytest.mark.parametrize("name", sorted(HEADS))
def test_fewer_samples_than_min_samples_split(name):
    X = np.array([[0.1, 0.9]])
    y = np.array([1])
    _fit_and_check_majority(HEADS[name](seed=0), X, y)


@pytest.mark.parametrize("factory", [GradientBoostingClassifier, LightGBMClassifier],
                         ids=["gbm", "lightgbm"])
def test_tiny_subsample_mask_falls_back_to_all_rows(factory):
    """``subsample`` so small the mask picks <2 rows must not crash the fit."""
    rng = np.random.default_rng(1)
    X = rng.normal(size=(40, 2))
    y = (X[:, 0] > 0).astype(int)
    model = factory(n_estimators=40, seed=0, subsample=1e-9).fit(X, y)
    predictions = model.predict(X)
    assert predictions.shape == (40,)
    # With the full-rows fallback the head still actually learns the signal.
    assert (predictions == y).mean() > 0.8


@pytest.mark.parametrize("name", sorted(HEADS))
@pytest.mark.parametrize("tree_method", ["hist", "exact"])
def test_degenerate_regimes_in_both_engines(name, tree_method):
    """Single-class + constant-column combined, on both splitters."""
    X = np.zeros((6, 2))
    y = np.ones(6)
    _fit_and_check_majority(HEADS[name](seed=0, tree_method=tree_method), X, y)
