"""Tests for the Ethereum account model."""

import pytest

from repro.chain import Account, AccountType
from repro.chain.accounts import make_address


class TestAccount:
    def test_default_is_eoa(self):
        account = Account("0x" + "0" * 40)
        assert account.account_type is AccountType.EOA
        assert not account.is_contract

    def test_contract_flag(self):
        account = Account("0x" + "1" * 40, AccountType.CONTRACT)
        assert account.is_contract

    def test_credit_increases_balance(self):
        account = Account("0x" + "0" * 40)
        account.credit(2.5)
        assert account.balance == pytest.approx(2.5)

    def test_credit_negative_raises(self):
        with pytest.raises(ValueError):
            Account("0x" + "0" * 40).credit(-1.0)

    def test_debit_reduces_balance(self):
        account = Account("0x" + "0" * 40, balance=5.0)
        account.debit(3.0)
        assert account.balance == pytest.approx(2.0)

    def test_debit_overdraw_raises(self):
        account = Account("0x" + "0" * 40, balance=1.0)
        with pytest.raises(ValueError):
            account.debit(2.0)

    def test_debit_negative_raises(self):
        with pytest.raises(ValueError):
            Account("0x" + "0" * 40, balance=1.0).debit(-0.5)

    def test_nonce_advances(self):
        account = Account("0x" + "0" * 40)
        assert account.next_nonce() == 0
        assert account.next_nonce() == 1
        assert account.nonce == 2


class TestMakeAddress:
    def test_format(self):
        address = make_address(7, prefix="ex")
        assert address.startswith("0x") and len(address) == 42

    def test_is_hex(self):
        int(make_address(123, prefix="L")[2:], 16)

    def test_distinct_indices_give_distinct_addresses(self):
        assert make_address(1, "u") != make_address(2, "u")

    def test_distinct_prefixes_give_distinct_addresses(self):
        assert make_address(1, "u") != make_address(1, "c")
