"""Concurrency tests for the serving tier.

Three layers under test:

* lazy-structure thread safety — many threads hammering the graph/feature
  caches of a *cold* object must observe exactly the structures a
  single-threaded warm-up builds, bit for bit;
* the facade's LRU sample cache and aggregated unknown-address semantics;
* the :class:`ParallelScorer` fan-out and the asyncio
  :class:`ScoringService` micro-batcher, both of which must reproduce
  sequential ``score()`` results exactly while demonstrably parallelising /
  coalescing.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.api import (
    DeAnonymizer,
    ParallelScorer,
    ScoringService,
    UnknownAddressError,
)
from repro.core import CalibrationConfig, DBG4ETHConfig, GSGConfig, LDGConfig
from repro.data import DatasetConfig, SubgraphDatasetBuilder

DATASET_CONFIG = DatasetConfig(top_k=40, max_nodes_per_subgraph=40, seed=3)
N_THREADS = 8


def micro_config() -> DBG4ETHConfig:
    return DBG4ETHConfig(
        gsg=GSGConfig(hidden_dim=8, epochs=2, contrastive_batch=4),
        ldg=LDGConfig(hidden_dim=8, epochs=2, num_slices=3, first_pool_clusters=4),
        calibration=CalibrationConfig(),
    )


def _hammer(n_threads, work):
    """Run ``work(thread_index)`` on ``n_threads`` barrier-synchronised threads.

    Returns the per-thread results; re-raises the first worker exception.
    """
    barrier = threading.Barrier(n_threads)
    results = [None] * n_threads
    errors = []

    def runner(i):
        try:
            barrier.wait()
            results[i] = work(i)
        except BaseException as exc:  # noqa: BLE001 - surfaced to the test
            errors.append(exc)

    threads = [threading.Thread(target=runner, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return results


@pytest.fixture(scope="module")
def facade(small_ledger, small_dataset):
    """A fitted facade sharing the session dataset (one head keeps fit cheap)."""
    deanon = DeAnonymizer.from_dataset(
        small_dataset, ledger=small_ledger, dataset_config=DATASET_CONFIG,
        model_config=micro_config)
    deanon.fit(["exchange"])
    return deanon


@pytest.fixture(scope="module")
def served_addresses(small_dataset):
    return [sample.center for sample in small_dataset][:24]


# --------------------------------------------------------------------------
# Lazy-structure thread safety
# --------------------------------------------------------------------------

def _csr_arrays(graph, weighted, symmetric):
    return graph.to_csr(weighted=weighted, symmetric=symmetric)


def test_txgraph_concurrent_csr_builds_match_warm(small_ledger):
    """Racing first-builds of every lazy TxGraph structure are bit-identical
    to a single-threaded warm() on an identical graph."""
    reference = SubgraphDatasetBuilder(small_ledger, DATASET_CONFIG).graph
    reference.warm()
    cold = SubgraphDatasetBuilder(small_ledger, DATASET_CONFIG).graph
    nodes = cold.nodes[:N_THREADS]

    def work(i):
        node = nodes[i % len(nodes)]
        return (_csr_arrays(cold, False, True), _csr_arrays(cold, True, True),
                cold.out_slots(node), cold.in_slots(node), cold.degree(node))

    results = _hammer(N_THREADS, work)
    for key in ((False, True), (True, True)):
        want = _csr_arrays(reference, *key)
        got = _csr_arrays(cold, *key)
        for w, g in zip(want, got):
            np.testing.assert_array_equal(w, g)
    # Every thread observed the same memoized CSR objects (built exactly once).
    for i in range(1, N_THREADS):
        assert results[i][0][0] is results[0][0][0]
        assert results[i][1][0] is results[0][1][0]


def test_txgraph_freeze_blocks_mutation(small_ledger):
    graph = SubgraphDatasetBuilder(small_ledger, DATASET_CONFIG).graph
    assert not graph.frozen
    graph.freeze()
    assert graph.frozen
    with pytest.raises(RuntimeError, match="frozen"):
        graph.add_node("0xNEW")
    with pytest.raises(RuntimeError, match="frozen"):
        graph.add_edge(graph.nodes[0], graph.nodes[1])
    # freeze() is idempotent and scoring reads still work.
    graph.freeze()
    indptr, indices, data = graph.to_csr(False, True)
    assert indptr[-1] == len(indices) == len(data)


def test_sparse_adjacency_concurrent_memo_single_instance(small_dataset):
    """Concurrent normalisations memoize exactly one instance, equal to a
    single-threaded compute on an identical cold adjacency."""
    sample = small_dataset[0]
    cold = sample.adjacency_sparse(weighted=True)
    warm = sample.adjacency_sparse(weighted=True)
    assert cold is warm  # AccountSubgraph memoizes the CSR itself

    def work(_):
        return (cold.gcn_normalized(), cold.mean_normalized(), cold.transpose(),
                cold.rows)

    results = _hammer(N_THREADS, work)
    for i in range(1, N_THREADS):
        for j in range(4):
            assert results[i][j] is results[0][j]
    # Parity with a fresh single-threaded computation.
    fresh = type(cold)(cold.indptr.copy(), cold.indices.copy(), cold.data.copy())
    np.testing.assert_array_equal(results[0][0].data, fresh.gcn_normalized().data)
    np.testing.assert_array_equal(results[0][1].data, fresh.mean_normalized().data)


def test_feature_table_concurrent_build_matches_sequential(small_ledger):
    from repro.data.features import DeepFeatureExtractor

    reference = DeepFeatureExtractor(small_ledger)
    addresses = [a.address for a in small_ledger.accounts[:40]]
    want = reference.extract_many(addresses)

    cold = DeepFeatureExtractor(small_ledger)
    results = _hammer(N_THREADS, lambda _: cold.extract_many(addresses))
    for got in results:
        np.testing.assert_array_equal(want, got)


def test_sample_for_concurrent_hammer_bit_identical(small_ledger, served_addresses):
    """Many threads sampling overlapping addresses on a cold facade produce
    exactly the samples a sequential facade builds."""
    sequential = DeAnonymizer(small_ledger, dataset_config=DATASET_CONFIG)
    expected = {a: sequential.sample_for(a) for a in served_addresses}

    concurrent = DeAnonymizer(small_ledger, dataset_config=DATASET_CONFIG)

    def work(i):
        rotated = served_addresses[i:] + served_addresses[:i]
        return [concurrent.sample_for(a) for a in rotated]

    _hammer(N_THREADS, work)
    assert len(concurrent._samples) == len(served_addresses)
    for address, want in expected.items():
        got = concurrent.sample_for(address)
        assert got.center == want.center
        np.testing.assert_array_equal(got.node_features, want.node_features)
        np.testing.assert_array_equal(got.adjacency(weighted=True),
                                      want.adjacency(weighted=True))


# --------------------------------------------------------------------------
# LRU sample cache
# --------------------------------------------------------------------------

def test_sample_cache_unbounded_by_default(small_ledger, served_addresses):
    deanon = DeAnonymizer(small_ledger, dataset_config=DATASET_CONFIG)
    assert deanon.sample_cache_size is None
    for address in served_addresses:
        deanon.sample_for(address)
    cache = deanon.stats()["serving"]["sample_cache"]
    assert cache["size"] == len(served_addresses)
    assert cache["evictions"] == 0


def test_sample_cache_lru_bound_and_counters(small_ledger, served_addresses):
    deanon = DeAnonymizer(small_ledger, dataset_config=DATASET_CONFIG,
                          sample_cache_size=2)
    a, b, c = served_addresses[:3]
    deanon.sample_for(a)
    deanon.sample_for(b)
    deanon.sample_for(a)          # a is now most recent
    deanon.sample_for(c)          # evicts b (least recently served)
    assert set(deanon._samples) == {a, c}
    cache = deanon.stats()["serving"]["sample_cache"]
    assert cache == {"size": 2, "max_size": 2, "hits": 1, "misses": 3,
                     "evictions": 1, "invalidations": 0}
    deanon.sample_for(b)          # miss again: b was evicted
    assert deanon.stats()["serving"]["sample_cache"]["misses"] == 4
    assert len(deanon._samples) == 2


def test_sample_cache_size_validation(small_ledger):
    with pytest.raises(ValueError, match="sample_cache_size"):
        DeAnonymizer(small_ledger, sample_cache_size=0)


# --------------------------------------------------------------------------
# ParallelScorer
# --------------------------------------------------------------------------

def test_parallel_scorer_thread_parity(facade, served_addresses):
    expected = facade.score(served_addresses)
    with ParallelScorer(facade, max_workers=4, mode="thread", chunk_size=3) as scorer:
        got = scorer.score(served_addresses)
    assert list(got) == list(expected)
    for address in expected:
        assert got[address] == expected[address]
    snap = facade.metrics.snapshot()
    assert snap["counters"]["parallel.calls"] >= 1
    assert snap["stages"]["parallel.sample"]["count"] >= 1


def test_parallel_scorer_unknown_semantics(facade, served_addresses):
    request = served_addresses[:3] + ["0xMISSING1", "0xMISSING2"]
    with ParallelScorer(facade, max_workers=2, chunk_size=2) as scorer:
        with pytest.raises(UnknownAddressError) as excinfo:
            scorer.score(request)
        assert set(excinfo.value.addresses) == {"0xMISSING1", "0xMISSING2"}
        partial = scorer.score(request, skip_unknown=True)
    assert list(partial) == served_addresses[:3]


def test_parallel_scorer_single_address_delegates(facade, served_addresses):
    scorer = ParallelScorer(facade, max_workers=2)
    got = scorer.score(served_addresses[0])
    assert got == facade.score(served_addresses[0])
    assert scorer._executor is None  # no pool was spun up for one address
    scorer.close()


def test_parallel_scorer_validation(facade):
    with pytest.raises(ValueError, match="mode"):
        ParallelScorer(facade, mode="fiber")
    with pytest.raises(ValueError, match="max_workers"):
        ParallelScorer(facade, max_workers=0)
    with pytest.raises(ValueError, match="chunk_size"):
        ParallelScorer(facade, chunk_size=0)


def test_parallel_scorer_process_parity(facade, served_addresses):
    expected = facade.score(served_addresses)
    with ParallelScorer(facade, max_workers=2, mode="process") as scorer:
        got = scorer.score(served_addresses)
    assert list(got) == list(expected)
    for address in expected:
        assert got[address] == expected[address]


def test_parallel_scorer_process_unknown_semantics(facade, served_addresses):
    request = served_addresses[:4] + ["0xMISSING"]
    with ParallelScorer(facade, max_workers=2, mode="process", chunk_size=2) as scorer:
        with pytest.raises(UnknownAddressError) as excinfo:
            scorer.score(request)
        assert excinfo.value.addresses == ("0xMISSING",)
        partial = scorer.score(request, skip_unknown=True)
    assert list(partial) == served_addresses[:4]


# --------------------------------------------------------------------------
# ScoringService (asyncio micro-batcher)
# --------------------------------------------------------------------------

def test_scoring_service_coalesces_and_matches_sequential(facade, served_addresses):
    """N concurrent callers are served in fewer batched passes, and each
    caller's result equals the sequential facade score."""
    expected = facade.score(served_addresses)
    before = facade.metrics.counter("service.batches")

    async def main():
        async with ScoringService(facade, batch_window=0.05, max_batch=64) as svc:
            return await svc.score_many(served_addresses)

    results = asyncio.run(main())
    for address, result in zip(served_addresses, results):
        assert result == expected[address]
    batches = facade.metrics.counter("service.batches") - before
    assert 1 <= batches < len(served_addresses)
    assert facade.metrics.counter("service.requests") >= len(served_addresses)


def test_scoring_service_unknown_is_per_request(facade, served_addresses):
    async def main():
        async with ScoringService(facade, batch_window=0.05) as svc:
            return await svc.score_many([served_addresses[0], "0xMISSING",
                                         served_addresses[1]])

    good0, bad, good1 = asyncio.run(main())
    expected = facade.score(served_addresses[:2])
    assert good0 == expected[served_addresses[0]]
    assert good1 == expected[served_addresses[1]]
    assert isinstance(bad, UnknownAddressError)
    assert bad.addresses == ("0xMISSING",)


def test_scoring_service_batch_wide_failure_propagates(facade, served_addresses):
    class Boom(RuntimeError):
        pass

    class BrokenScorer:
        deanonymizer = facade

        def score(self, addresses, skip_unknown=False):
            raise Boom("backend down")

    async def main():
        async with ScoringService(BrokenScorer(), batch_window=0.01) as svc:
            return await svc.score_many(served_addresses[:3])

    results = asyncio.run(main())
    assert all(isinstance(r, Boom) for r in results)


def test_scoring_service_timeout(facade, served_addresses):
    release = threading.Event()

    class SlowScorer:
        deanonymizer = facade

        def score(self, addresses, skip_unknown=False):
            release.wait(5.0)
            return facade.score(addresses, skip_unknown=skip_unknown)

    async def main():
        async with ScoringService(SlowScorer(), batch_window=0.0) as svc:
            try:
                with pytest.raises(asyncio.TimeoutError):
                    await svc.score(served_addresses[0], timeout=0.05)
            finally:
                release.set()

    asyncio.run(main())


def test_scoring_service_requires_start(facade, served_addresses):
    svc = ScoringService(facade)

    async def main():
        with pytest.raises(RuntimeError, match="not running"):
            await svc.score(served_addresses[0])

    asyncio.run(main())


def test_scoring_service_validation(facade):
    with pytest.raises(ValueError, match="batch_window"):
        ScoringService(facade, batch_window=-0.1)
    with pytest.raises(ValueError, match="max_batch"):
        ScoringService(facade, max_batch=0)
    with pytest.raises(ValueError, match="max_queue"):
        ScoringService(facade, max_queue=0)


def test_scoring_service_over_parallel_scorer(facade, served_addresses):
    """Coalescer over fan-out: the composed stack still matches sequential."""
    expected = facade.score(served_addresses)

    async def main():
        with ParallelScorer(facade, max_workers=2, chunk_size=4) as scorer:
            async with ScoringService(scorer, batch_window=0.05) as svc:
                return await svc.score_many(served_addresses)

    results = asyncio.run(main())
    for address, result in zip(served_addresses, results):
        assert result == expected[address]
