"""Regression tests for gradient-buffer ownership and fused kernel plans.

The autograd engine lets backward functions that allocate a fresh gradient
buffer hand it over with ``_accumulate(..., owned=True)`` instead of being
defensively copied.  These tests pin the aliasing contracts that adoption
must not break: shared buffers (``__add__``), views of a node's gradient
(``reshape``/``concat``/broadcasting ``sum``), and tensors consumed multiple
times in one graph.
"""

import numpy as np
import pytest

from repro.graph.sparse import SparseAdjacency
from repro.gnn.sparse_ops import (_segment_index, segment_mean_batch,
                                  segment_sum_batch)
from repro.nn import Tensor, concat


class TestOwnedGradAliasing:
    def test_add_shares_buffer_without_corruption(self):
        x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
        y = Tensor(np.array([3.0, 4.0]), requires_grad=True)
        ((x + y) * 2.0).sum().backward()
        np.testing.assert_array_equal(x.grad, [2.0, 2.0])
        np.testing.assert_array_equal(y.grad, [2.0, 2.0])
        # __add__ forwards one shared buffer to both parents — the stored
        # gradients must be private copies, not two references to it.
        assert x.grad is not y.grad
        x.grad[0] = 99.0
        assert y.grad[0] == 2.0

    def test_tensor_used_twice_accumulates_both_paths(self):
        x = Tensor(np.array([2.0, 3.0]), requires_grad=True)
        (x * x).sum().backward()            # both mul parents are x itself
        np.testing.assert_array_equal(x.grad, [4.0, 6.0])

    def test_concat_diamond_keeps_grads_independent(self):
        x = Tensor(np.array([1.0, -2.0]), requires_grad=True)
        s = concat([x, x], axis=0)
        (s * s).sum().backward()
        # d/dx of sum(concat(x, x)^2) accumulates 2x from each copy.
        np.testing.assert_array_equal(x.grad, [4.0, -8.0])

    def test_reshape_view_grad_is_private(self):
        x = Tensor(np.arange(4.0), requires_grad=True)
        y = x.reshape(2, 2)
        z = y * 3.0
        z.sum().backward()
        np.testing.assert_array_equal(x.grad, np.full(4, 3.0))
        np.testing.assert_array_equal(y.grad, np.full((2, 2), 3.0))
        x.grad[0] = 0.0                     # must not write through to y.grad
        assert y.grad[0, 0] == 3.0

    def test_broadcast_sum_grad_is_private(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        out = x.sum(axis=0, keepdims=True)  # backward broadcasts its grad
        two = out * 2.0
        two.sum().backward()
        np.testing.assert_array_equal(x.grad, np.full((3, 2), 2.0))
        assert x.grad.flags.writeable
        x.grad[0, 0] = -1.0                 # in-place edits stay local
        np.testing.assert_array_equal(out.grad, np.full((1, 2), 2.0))

    def test_getitem_with_repeated_indices(self):
        x = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
        x[np.array([0, 0, 2])].sum().backward()
        np.testing.assert_array_equal(x.grad, [2.0, 0.0, 1.0])

    def test_segment_ops_on_shared_input(self):
        offsets = np.array([0, 2, 3], dtype=np.int64)
        x = Tensor(np.arange(6.0).reshape(3, 2), requires_grad=True)
        total = segment_sum_batch(x, offsets) + segment_mean_batch(x, offsets)
        total.sum().backward()
        expected = np.array([[1.5, 1.5], [1.5, 1.5], [2.0, 2.0]])
        np.testing.assert_array_equal(x.grad, expected)


class TestSegmentIndexCache:
    def test_matches_diff_and_repeat(self):
        for offsets in ([0, 3], [0, 1, 4, 4, 9], [0, 2, 2, 5]):
            offsets = np.asarray(offsets, dtype=np.int64)
            counts, batch = _segment_index(offsets)
            np.testing.assert_array_equal(counts, np.diff(offsets))
            np.testing.assert_array_equal(
                batch, np.repeat(np.arange(len(offsets) - 1), np.diff(offsets)))

    def test_equal_content_shares_cache_entry(self):
        a = np.array([0, 2, 5], dtype=np.int64)
        b = np.array([0, 2, 5], dtype=np.int64)
        assert _segment_index(a)[1] is _segment_index(b)[1]


class TestRmatmulPlan:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_fused_gather_is_bit_identical(self, seed):
        rng = np.random.default_rng(seed)
        dense = rng.random((12, 12)) * (rng.random((12, 12)) < 0.3)
        sp = SparseAdjacency.from_dense(dense)
        g = rng.standard_normal((12, 4))
        perm, t_indptr = sp._transpose_plan()
        contrib = (g[sp.rows] * sp.data[:, None])[perm]
        expected = np.add.reduceat(contrib, t_indptr[:-1], axis=0) \
            if (t_indptr[1:] > t_indptr[:-1]).all() else dense.T @ g
        if (t_indptr[1:] > t_indptr[:-1]).all():
            np.testing.assert_array_equal(sp.rmatmul(g), expected)
        np.testing.assert_allclose(sp.rmatmul(g), dense.T @ g, atol=1e-12)

    def test_plan_is_memoized(self):
        sp = SparseAdjacency.from_dense(np.eye(4))
        assert sp._rmatmul_plan()[0] is sp._rmatmul_plan()[0]

    def test_empty_columns_fall_back(self):
        dense = np.zeros((3, 3))
        dense[0, 1] = 2.0                   # column 0 and 2 empty
        sp = SparseAdjacency.from_dense(dense)
        np.testing.assert_array_equal(sp.rmatmul(np.ones(3)), dense.T @ np.ones(3))
