"""Golden-fixture regression: pinned SHA-256 digests of graph and feature bits.

The digests below were produced by the scenario-engine generator of PR 8
(vectorised RNG layout, nine categories) on a small seeded ledger and pin
three artefacts bit-for-bit:

* the serialized edge columns of the global transaction graph (node order,
  src/dst indices, amounts, counts, merged timestamps),
* the single-pass deep-feature table over every graph node, and
* the node sets of 2-hop top-K ego samples around deterministic centres.

Any refactor of the graph or feature layers that changes a single bit — an
edge reordered, a timestamp mean computed in a different association order, a
sampling frontier resolved differently — flips a digest and fails loudly here
instead of silently drifting model inputs.
"""

import hashlib

import numpy as np
import pytest

from repro.chain import LedgerConfig, generate_ledger
from repro.data.features import DeepFeatureExtractor
from repro.data.pipeline import build_transaction_graph
from repro.graph.sampling import ego_subgraph

#: Ledger generation parameters behind the pinned digests.  Changing any of
#: these (or the behaviours' RNG layout) is an intentional data regeneration
#: and must re-pin the digests below.
GOLDEN_SCALE = 0.25
GOLDEN_SEED = 11

GOLDEN_EDGE_COLUMNS_SHA = \
    "772ce7e3852ca7097cfb26b3b834e75d31860a3732474adf2ce7a88c5d886293"
GOLDEN_FEATURE_TABLE_SHA = \
    "773a338e9008f55dcb91cbe5fa386ab327f77a851861763a7dd5ccf2e009a8bb"
GOLDEN_EGO_SAMPLES_SHA = \
    "9e52d333cf13d9200abfc48cfc85a519b1b5e790e70826709f37556898dae6a0"


@pytest.fixture(scope="module")
def golden_ledger():
    config = LedgerConfig().scaled(GOLDEN_SCALE)
    config.seed = GOLDEN_SEED
    return generate_ledger(config)


@pytest.fixture(scope="module")
def golden_graph(golden_ledger):
    return build_transaction_graph(golden_ledger)


def serialize_edge_columns(graph) -> bytes:
    """Node order plus every edge column, in edge-insertion order."""
    blob = hashlib.sha256()
    blob.update("\n".join(str(node) for node in graph.nodes).encode())
    edges = graph.edges
    src = np.array([graph.node_index(e.src) for e in edges], dtype=np.int64)
    dst = np.array([graph.node_index(e.dst) for e in edges], dtype=np.int64)
    amount = np.array([e.amount for e in edges], dtype=np.float64)
    count = np.array([e.count for e in edges], dtype=np.int64)
    timestamp = np.array([e.timestamp for e in edges], dtype=np.float64)
    for column in (src, dst, amount, count, timestamp):
        blob.update(column.tobytes())
    return blob.hexdigest().encode()


def test_edge_columns_digest(golden_graph):
    assert serialize_edge_columns(golden_graph).decode() == GOLDEN_EDGE_COLUMNS_SHA


def test_feature_table_digest(golden_ledger, golden_graph):
    extractor = DeepFeatureExtractor(golden_ledger)
    table = extractor.extract_many(golden_graph.nodes)
    assert table.dtype == np.float64
    digest = hashlib.sha256(table.tobytes()).hexdigest()
    assert digest == GOLDEN_FEATURE_TABLE_SHA


def test_ego_sample_node_sets_digest(golden_ledger, golden_graph):
    # Deterministic centres: the first four labelled addresses present in the
    # graph plus the two highest-degree nodes (ties broken by address).
    labelled = [addr for addr, _cat in golden_ledger.labels.items()
                if golden_graph.has_node(addr)][:4]
    hubs = sorted(golden_graph.nodes,
                  key=lambda n: (-golden_graph.degree(n), str(n)))[:2]
    blob = hashlib.sha256()
    for center in labelled + hubs:
        sub = ego_subgraph(golden_graph, center, hops=2, k=2000)
        blob.update(f"{center}->{','.join(str(n) for n in sub.nodes)};".encode())
        blob.update(str(sub.num_edges).encode())
    assert blob.hexdigest() == GOLDEN_EGO_SAMPLES_SHA
