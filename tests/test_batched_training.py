"""Block-diagonal batched training: structure, segment ops, end-to-end parity.

Three layers of pinning for the batched training path:

* hypothesis property suites over arbitrary sample mixes (including 1-node and
  empty-edge subgraphs) check that :meth:`SparseAdjacency.block_diagonal`
  stacking, its block-wise derived forms and the segment readout ops agree
  with per-sample computation bit-for-bit / to machine precision;
* module-level tests pin the batched GraphAttentionReadout and DiffPool twins
  against the per-sample forwards, gradients included;
* end-to-end tests train GSG/LDG with the stacked kernel and with the looped
  reference (same minibatch schedule, per-sample forwards) and require final
  weights and scores to agree to ``<= 1e-9``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import GSGBranch, GSGConfig, LDGBranch, LDGConfig
from repro.gnn.hierarchical import GraphAttentionReadout
from repro.gnn.pooling import DiffPool
from repro.gnn.sparse_ops import (segment_matmul, segment_max_batch,
                                  segment_mean_batch, segment_sum_batch)
from repro.graph.sparse import BatchedAdjacency, SparseAdjacency
from repro.nn import Tensor, concat

PARITY_ATOL = 1e-9

# Sample descriptors: (num_nodes, [(src, dst, value), ...]); endpoints are
# reduced mod num_nodes, so 1-node subgraphs (self-loop-only) and empty edge
# lists are both reachable.
sample_lists = st.lists(
    st.tuples(
        st.integers(1, 8),
        st.lists(st.tuples(st.integers(0, 7), st.integers(0, 7),
                           st.floats(0.1, 10.0, allow_nan=False)),
                 max_size=16)),
    min_size=1, max_size=6)


def build_samples(descriptors) -> list[SparseAdjacency]:
    samples = []
    for n, edges in descriptors:
        rows = np.array([r % n for r, _, _ in edges], dtype=np.int64)
        cols = np.array([c % n for _, c, _ in edges], dtype=np.int64)
        vals = np.array([v for _, _, v in edges], dtype=np.float64)
        samples.append(SparseAdjacency.from_coo(rows, cols, vals, n))
    return samples


def assert_same_matrix(a: SparseAdjacency, b: SparseAdjacency) -> None:
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert np.array_equal(a.data, b.data)


class TestBlockDiagonal:
    @settings(max_examples=60, deadline=None)
    @given(sample_lists)
    def test_structure_and_blocks_roundtrip(self, descriptors):
        samples = build_samples(descriptors)
        stacked = SparseAdjacency.block_diagonal(samples)
        assert isinstance(stacked, BatchedAdjacency)
        assert stacked.num_graphs == len(samples)
        assert stacked.num_nodes == sum(s.num_nodes for s in samples)
        assert stacked.nnz == sum(s.nnz for s in samples)
        assert np.array_equal(stacked.node_counts(),
                              [s.num_nodes for s in samples])
        for original, block in zip(samples, stacked.blocks()):
            assert_same_matrix(original, block)

    @settings(max_examples=60, deadline=None)
    @given(sample_lists, st.integers(0, 2 ** 32 - 1))
    def test_stacked_matmul_equals_per_sample(self, descriptors, seed):
        samples = build_samples(descriptors)
        stacked = SparseAdjacency.block_diagonal(samples)
        x = np.random.default_rng(seed).standard_normal((stacked.num_nodes, 3))
        result = stacked.matmul(x)
        offsets = stacked.node_offsets
        for b, sample in enumerate(samples):
            lo, hi = offsets[b], offsets[b + 1]
            assert np.array_equal(result[lo:hi], sample.matmul(x[lo:hi]))

    @settings(max_examples=40, deadline=None)
    @given(sample_lists)
    def test_derived_forms_compose_blockwise(self, descriptors):
        samples = build_samples(descriptors)
        stacked = SparseAdjacency.block_diagonal(samples)
        for name in SparseAdjacency._BLOCKWISE_DERIVED:
            derived = getattr(stacked, name)()
            expected = SparseAdjacency.block_diagonal(
                [getattr(s, name)() for s in samples])
            assert_same_matrix(derived, expected)

    @settings(max_examples=40, deadline=None)
    @given(sample_lists)
    def test_memo_seeding_matches_direct_computation(self, descriptors):
        samples = build_samples(descriptors)
        seeded = SparseAdjacency.block_diagonal(
            samples, derived=("gcn_normalized", "attention_structure"))
        direct = SparseAdjacency.block_diagonal(samples)
        assert_same_matrix(seeded.gcn_normalized(), direct.gcn_normalized())
        assert_same_matrix(seeded.attention_structure(),
                           direct.attention_structure())

    def test_empty_sample_list_rejected(self):
        with pytest.raises(ValueError):
            SparseAdjacency.block_diagonal([])

    def test_pickle_preserves_offsets(self):
        import pickle

        samples = [SparseAdjacency.empty(2),
                   SparseAdjacency.from_dense(np.eye(3))]
        stacked = SparseAdjacency.block_diagonal(samples)
        clone = pickle.loads(pickle.dumps(stacked))
        assert isinstance(clone, BatchedAdjacency)
        assert np.array_equal(clone.node_offsets, stacked.node_offsets)
        assert np.array_equal(clone.edge_offsets, stacked.edge_offsets)
        assert_same_matrix(clone, stacked)


def looped_readout(kind: str, x: Tensor, offsets: np.ndarray) -> Tensor:
    """Reference segment readout: per-segment dense Tensor reductions."""
    pieces = []
    for b in range(len(offsets) - 1):
        segment = x[np.arange(offsets[b], offsets[b + 1])]
        pieces.append(getattr(segment, kind)(axis=0, keepdims=True))
    return concat(pieces, axis=0)


class TestSegmentReadouts:
    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(1, 7), min_size=1, max_size=6),
           st.integers(0, 2 ** 32 - 1),
           st.sampled_from(["sum", "mean", "max"]))
    def test_forward_and_grad_match_looped_reference(self, counts, seed, kind):
        offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        rng = np.random.default_rng(seed)
        values = rng.standard_normal((offsets[-1], 4))

        op = {"sum": segment_sum_batch, "mean": segment_mean_batch,
              "max": segment_max_batch}[kind]
        x_batched = Tensor(values, requires_grad=True)
        out = op(x_batched, offsets)
        x_looped = Tensor(values, requires_grad=True)
        ref = looped_readout(kind, x_looped, offsets)

        np.testing.assert_allclose(out.data, ref.data, atol=PARITY_ATOL, rtol=0)
        upstream = rng.standard_normal(out.data.shape)
        (out * Tensor(upstream)).sum().backward()
        (ref * Tensor(upstream)).sum().backward()
        np.testing.assert_allclose(x_batched.grad, x_looped.grad,
                                   atol=PARITY_ATOL, rtol=0)

    def test_max_splits_gradient_between_ties(self):
        offsets = np.array([0, 3], dtype=np.int64)
        x = Tensor(np.array([[2.0], [2.0], [1.0]]), requires_grad=True)
        segment_max_batch(x, offsets).sum().backward()
        np.testing.assert_allclose(x.grad, [[0.5], [0.5], [0.0]])

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.integers(1, 6), min_size=1, max_size=5),
           st.integers(0, 2 ** 32 - 1))
    def test_segment_matmul_matches_per_block(self, counts, seed):
        offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        rng = np.random.default_rng(seed)
        a_data = rng.standard_normal((offsets[-1], 3))
        b_data = rng.standard_normal((offsets[-1], 2))

        a1, b1 = Tensor(a_data, requires_grad=True), Tensor(b_data, requires_grad=True)
        out = segment_matmul(a1, b1, offsets)
        a2, b2 = Tensor(a_data, requires_grad=True), Tensor(b_data, requires_grad=True)
        ref = concat([
            a2[np.arange(offsets[g], offsets[g + 1])].T
            @ b2[np.arange(offsets[g], offsets[g + 1])]
            for g in range(len(counts))], axis=0)

        np.testing.assert_array_equal(out.data, ref.data)
        upstream = rng.standard_normal(out.data.shape)
        (out * Tensor(upstream)).sum().backward()
        (ref * Tensor(upstream)).sum().backward()
        np.testing.assert_allclose(a1.grad, a2.grad, atol=PARITY_ATOL, rtol=0)
        np.testing.assert_allclose(b1.grad, b2.grad, atol=PARITY_ATOL, rtol=0)


class TestBatchedModules:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(1, 7), min_size=1, max_size=5),
           st.integers(0, 2 ** 32 - 1))
    def test_graph_attention_readout_matches_loop(self, counts, seed):
        rng = np.random.default_rng(seed)
        offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        embeddings = rng.standard_normal((offsets[-1], 6))
        readout = GraphAttentionReadout(6, rng=np.random.default_rng(0))

        x = Tensor(embeddings, requires_grad=True)
        batched = readout.forward_batched(x, offsets)
        looped = concat([
            readout(Tensor(embeddings[offsets[b]:offsets[b + 1]]))
            for b in range(len(counts))], axis=0)
        np.testing.assert_allclose(batched.data, looped.data,
                                   atol=PARITY_ATOL, rtol=0)

        # Gradients through the shared score/out linear layers must agree too.
        for p in readout.parameters():
            p.zero_grad()
        batched.sum().backward()
        batched_grads = [p.grad.copy() for p in readout.parameters()]
        for p in readout.parameters():
            p.zero_grad()
        looped.sum().backward()
        for got, expected in zip(batched_grads,
                                 [p.grad for p in readout.parameters()]):
            np.testing.assert_allclose(got, expected, atol=PARITY_ATOL, rtol=0)

    @settings(max_examples=25, deadline=None)
    @given(sample_lists, st.integers(0, 2 ** 32 - 1))
    def test_diffpool_matches_loop(self, descriptors, seed):
        samples = [s.symmetrized_max() for s in build_samples(descriptors)]
        stacked = SparseAdjacency.block_diagonal(samples)
        rng = np.random.default_rng(seed)
        features = rng.standard_normal((stacked.num_nodes, 5))
        pool = DiffPool(5, 3, rng=np.random.default_rng(1))

        pooled, pooled_adj, assignment = pool.forward_batched(
            Tensor(features), stacked)
        assert isinstance(pooled_adj, BatchedAdjacency)
        assert pooled_adj.num_graphs == len(samples)
        offsets = stacked.node_offsets
        for b, sample in enumerate(samples):
            lo, hi = offsets[b], offsets[b + 1]
            ref_pooled, ref_adj, ref_assign = pool(Tensor(features[lo:hi]), sample)
            np.testing.assert_allclose(pooled.data[3 * b:3 * (b + 1)],
                                       ref_pooled.data, atol=PARITY_ATOL, rtol=0)
            np.testing.assert_allclose(assignment.data[lo:hi], ref_assign.data,
                                       atol=PARITY_ATOL, rtol=0)
            block = pooled_adj.blocks()[b]
            expected = SparseAdjacency.coerce(ref_adj)
            np.testing.assert_array_equal(block.indptr, expected.indptr)
            np.testing.assert_array_equal(block.indices, expected.indices)
            np.testing.assert_allclose(block.data, expected.data,
                                       atol=PARITY_ATOL, rtol=0)


def tiny_gsg_config(**overrides) -> GSGConfig:
    config = GSGConfig(hidden_dim=8, epochs=3, contrastive_batch=4)
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def tiny_ldg_config(**overrides) -> LDGConfig:
    config = LDGConfig(hidden_dim=8, epochs=3, num_slices=3, first_pool_clusters=4)
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


def fit_twice(branch_cls, config_factory, samples, labels):
    """Fit with the stacked kernel and with the looped reference."""
    results = []
    for batched_kernel in (True, False):
        branch = branch_cls(config_factory())
        branch._batched_kernel = batched_kernel
        branch.fit(samples, labels)
        results.append((branch.predict_scores(samples),
                        [p.data.copy() for p in branch._network.parameters()]))
    return results


class TestEndToEndParity:
    """Batched fit/predict vs the per-sample reference, `<= 1e-9` end to end."""

    def test_default_batch_size_is_legacy_loop(self):
        assert GSGConfig().batch_size == 1
        assert LDGConfig().batch_size == 1

    @pytest.mark.parametrize("batch_size", [5, 32])
    def test_gsg_batched_matches_looped_reference(self, tiny_task, batch_size):
        samples, labels = tiny_task
        (scores_b, weights_b), (scores_r, weights_r) = fit_twice(
            GSGBranch, lambda: tiny_gsg_config(batch_size=batch_size),
            samples, labels)
        for got, expected in zip(weights_b, weights_r):
            np.testing.assert_allclose(got, expected, atol=PARITY_ATOL, rtol=0)
        np.testing.assert_allclose(scores_b, scores_r, atol=PARITY_ATOL, rtol=0)

    @pytest.mark.parametrize("batch_size", [5, 32])
    def test_ldg_batched_matches_looped_reference(self, tiny_task, batch_size):
        samples, labels = tiny_task
        (scores_b, weights_b), (scores_r, weights_r) = fit_twice(
            LDGBranch, lambda: tiny_ldg_config(batch_size=batch_size),
            samples, labels)
        for got, expected in zip(weights_b, weights_r):
            np.testing.assert_allclose(got, expected, atol=PARITY_ATOL, rtol=0)
        np.testing.assert_allclose(scores_b, scores_r, atol=PARITY_ATOL, rtol=0)

    def test_gsg_batched_predict_matches_sequential_predict(self, tiny_task):
        samples, labels = tiny_task
        branch = GSGBranch(tiny_gsg_config(batch_size=6)).fit(samples, labels)
        batched = branch.predict_scores(samples)
        branch._batched_kernel = False
        sequential = branch.predict_scores(samples)
        np.testing.assert_allclose(batched, sequential, atol=PARITY_ATOL, rtol=0)

    def test_ldg_batched_predict_matches_sequential_predict(self, tiny_task):
        samples, labels = tiny_task
        branch = LDGBranch(tiny_ldg_config(batch_size=6)).fit(samples, labels)
        batched = branch.predict_scores(samples)
        branch._batched_kernel = False
        sequential = branch.predict_scores(samples)
        np.testing.assert_allclose(batched, sequential, atol=PARITY_ATOL, rtol=0)

    def test_gsg_batch_size_one_unchanged_by_kernel_flag(self, tiny_task):
        """batch_size=1 must take the legacy path whatever the flag says."""
        samples, labels = tiny_task
        a = GSGBranch(tiny_gsg_config()).fit(samples, labels).predict_scores(samples)
        branch = GSGBranch(tiny_gsg_config())
        branch._batched_kernel = False
        b = branch.fit(samples, labels).predict_scores(samples)
        np.testing.assert_array_equal(a, b)


@pytest.fixture(scope="module")
def tiny_task(small_dataset):
    samples, labels = small_dataset.binary_task(
        "exchange", rng=np.random.default_rng(0))
    return samples[:14], labels[:14]


def assert_same_dataset(a, b) -> None:
    assert len(a) == len(b)
    for left, right in zip(a.samples, b.samples):
        assert left.center == right.center
        assert left.category == right.category
        assert left.center_index == right.center_index
        assert left.graph.nodes == right.graph.nodes
        np.testing.assert_array_equal(left.node_features, right.node_features)
        np.testing.assert_array_equal(left.adjacency(weighted=True),
                                      right.adjacency(weighted=True))


class TestParallelBuild:
    """`build(workers=N)` must be bit-identical to the sequential build."""

    @pytest.fixture(scope="class")
    def builder_factory(self, small_ledger):
        from repro.data import DatasetConfig, SubgraphDatasetBuilder

        def factory():
            return SubgraphDatasetBuilder(
                small_ledger,
                DatasetConfig(top_k=40, max_nodes_per_subgraph=40, seed=3))
        return factory

    def test_thread_mode_bit_identical(self, builder_factory, small_dataset):
        parallel = builder_factory().build(workers=4, mode="thread")
        assert_same_dataset(parallel, small_dataset)

    @pytest.mark.slow
    def test_process_mode_bit_identical(self, builder_factory, small_dataset):
        parallel = builder_factory().build(workers=2, mode="process")
        assert_same_dataset(parallel, small_dataset)

    def test_single_worker_is_sequential_path(self, builder_factory, small_dataset):
        assert_same_dataset(builder_factory().build(workers=1), small_dataset)

    def test_unknown_mode_rejected(self, builder_factory):
        with pytest.raises(ValueError, match="mode"):
            builder_factory().build(workers=2, mode="bogus")


class TestTaskIndexCache:
    """Repeated task extraction must return identical arrays (cached indices)."""

    def test_binary_task_repeated_calls_identical(self, small_dataset):
        first = small_dataset.binary_task("exchange", rng=np.random.default_rng(5))
        second = small_dataset.binary_task("exchange", rng=np.random.default_rng(5))
        assert [s.center for s in first[0]] == [s.center for s in second[0]]
        np.testing.assert_array_equal(first[1], second[1])

    def test_multiclass_task_repeated_calls_identical(self, small_dataset):
        first = small_dataset.multiclass_task()
        second = small_dataset.multiclass_task()
        assert [s.center for s in first[0]] == [s.center for s in second[0]]
        np.testing.assert_array_equal(first[1], second[1])

    def test_binary_task_missing_category_raises(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.binary_task("no-such-category")
