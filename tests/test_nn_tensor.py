"""Autograd engine tests: correctness of every op's gradient."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Tensor, concat, stack, no_grad


def numerical_gradient(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of a scalar-valued function of an array."""
    grad = np.zeros_like(x, dtype=float)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        plus = fn(x)
        flat[i] = original - eps
        minus = fn(x)
        flat[i] = original
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_gradient(build, x: np.ndarray, atol: float = 1e-5) -> None:
    """Compare autograd gradient of ``build(Tensor).sum()`` against finite differences."""
    tensor = Tensor(x.copy(), requires_grad=True)
    out = build(tensor).sum()
    out.backward()
    numeric = numerical_gradient(lambda arr: float(build(Tensor(arr)).sum().data), x.copy())
    np.testing.assert_allclose(tensor.grad, numeric, atol=atol)


class TestBasicProperties:
    def test_shape_and_size(self):
        t = Tensor(np.zeros((3, 4)))
        assert t.shape == (3, 4)
        assert t.ndim == 2
        assert t.size == 12
        assert len(t) == 3

    def test_repr_mentions_shape(self):
        assert "(2, 2)" in repr(Tensor(np.zeros((2, 2))))

    def test_item_on_scalar(self):
        assert Tensor(np.array(3.5)).item() == pytest.approx(3.5)

    def test_detach_breaks_graph(self):
        t = Tensor([1.0, 2.0], requires_grad=True)
        d = (t * 2).detach()
        assert not d.requires_grad

    def test_backward_requires_scalar(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with pytest.raises(ValueError):
            (t * 2).backward()

    def test_no_grad_context(self):
        t = Tensor(np.ones(3), requires_grad=True)
        with no_grad():
            out = t * 2
        assert not out.requires_grad

    def test_zero_grad(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 2).sum().backward()
        assert t.grad is not None
        t.zero_grad()
        assert t.grad is None

    def test_grad_accumulates_across_backwards(self):
        t = Tensor(np.ones(3), requires_grad=True)
        (t * 2).sum().backward()
        (t * 2).sum().backward()
        np.testing.assert_allclose(t.grad, np.full(3, 4.0))


class TestArithmeticGradients:
    def test_add(self, rng):
        check_gradient(lambda t: t + 3.0, rng.normal(size=(3, 4)))

    def test_add_broadcast(self, rng):
        other = Tensor(rng.normal(size=(1, 4)))
        check_gradient(lambda t: t + other, rng.normal(size=(3, 4)))

    def test_sub(self, rng):
        check_gradient(lambda t: 5.0 - t, rng.normal(size=(2, 3)))

    def test_mul(self, rng):
        other = Tensor(rng.normal(size=(2, 3)))
        check_gradient(lambda t: t * other, rng.normal(size=(2, 3)))

    def test_div(self, rng):
        other = Tensor(rng.normal(size=(2, 3)) + 3.0)
        check_gradient(lambda t: t / other, rng.normal(size=(2, 3)))

    def test_rdiv(self, rng):
        check_gradient(lambda t: 2.0 / t, rng.normal(size=(2, 3)) + 3.0)

    def test_pow(self, rng):
        check_gradient(lambda t: t ** 3, rng.normal(size=(2, 3)))

    def test_neg(self, rng):
        check_gradient(lambda t: -t, rng.normal(size=(4,)))

    def test_matmul(self, rng):
        other = Tensor(rng.normal(size=(4, 2)))
        check_gradient(lambda t: t @ other, rng.normal(size=(3, 4)))

    def test_matmul_gradient_flows_to_both_sides(self, rng):
        a = Tensor(rng.normal(size=(3, 4)), requires_grad=True)
        b = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        (a @ b).sum().backward()
        assert a.grad is not None and a.grad.shape == (3, 4)
        assert b.grad is not None and b.grad.shape == (4, 2)


class TestReductionGradients:
    def test_sum_all(self, rng):
        check_gradient(lambda t: t.sum(), rng.normal(size=(3, 4)))

    def test_sum_axis(self, rng):
        check_gradient(lambda t: t.sum(axis=1), rng.normal(size=(3, 4)))

    def test_sum_keepdims(self, rng):
        check_gradient(lambda t: t.sum(axis=0, keepdims=True), rng.normal(size=(3, 4)))

    def test_mean(self, rng):
        check_gradient(lambda t: t.mean(axis=1), rng.normal(size=(3, 4)))

    def test_max(self, rng):
        # Use well-separated values so finite differences do not cross ties.
        x = np.arange(12, dtype=float).reshape(3, 4) * 0.7
        check_gradient(lambda t: t.max(axis=1), x)

    def test_max_gradient_splits_ties(self):
        t = Tensor(np.array([[1.0, 1.0]]), requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.5, 0.5]])


class TestElementwiseGradients:
    def test_exp(self, rng):
        check_gradient(lambda t: t.exp(), rng.normal(size=(2, 3)))

    def test_log(self, rng):
        check_gradient(lambda t: t.log(), rng.random((2, 3)) + 0.5)

    def test_sqrt(self, rng):
        check_gradient(lambda t: t.sqrt(), rng.random((2, 3)) + 0.5)

    def test_tanh(self, rng):
        check_gradient(lambda t: t.tanh(), rng.normal(size=(2, 3)))

    def test_sigmoid(self, rng):
        check_gradient(lambda t: t.sigmoid(), rng.normal(size=(2, 3)))

    def test_clip(self, rng):
        x = rng.normal(size=(3, 3)) * 2
        x = x[np.abs(np.abs(x) - 1.0) > 1e-2]  # keep away from the clip boundary
        check_gradient(lambda t: t.clip(-1.0, 1.0), x)


class TestShapeOps:
    def test_reshape(self, rng):
        check_gradient(lambda t: t.reshape(6, 2), rng.normal(size=(3, 4)))

    def test_transpose(self, rng):
        check_gradient(lambda t: t.T, rng.normal(size=(3, 4)))

    def test_getitem_rows(self, rng):
        check_gradient(lambda t: t[1:3], rng.normal(size=(4, 3)))

    def test_getitem_fancy(self, rng):
        idx = np.array([0, 2])
        check_gradient(lambda t: t[idx], rng.normal(size=(4, 3)))

    def test_concat(self, rng):
        other = Tensor(rng.normal(size=(2, 3)))
        check_gradient(lambda t: concat([t, other], axis=0), rng.normal(size=(2, 3)))

    def test_concat_axis1(self, rng):
        other = Tensor(rng.normal(size=(2, 3)))
        check_gradient(lambda t: concat([t, other], axis=1), rng.normal(size=(2, 2)))

    def test_stack(self, rng):
        other = Tensor(rng.normal(size=(2, 3)))
        check_gradient(lambda t: stack([t, other], axis=0), rng.normal(size=(2, 3)))


class TestGraphTraversal:
    def test_diamond_graph_gradient_counted_once_per_path(self):
        # y = x*x + x*x should give dy/dx = 4x, exercising shared subexpressions.
        x = Tensor(np.array([3.0]), requires_grad=True)
        y = x * x
        z = (y + y).sum()
        z.backward()
        np.testing.assert_allclose(x.grad, [12.0])

    def test_long_chain(self):
        x = Tensor(np.array([0.5]), requires_grad=True)
        y = x
        for _ in range(50):
            y = y * 1.01
        y.sum().backward()
        np.testing.assert_allclose(x.grad, [1.01 ** 50], rtol=1e-10)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(-5, 5), min_size=2, max_size=8),
       st.lists(st.floats(-5, 5), min_size=2, max_size=8))
def test_add_commutes(a, b):
    n = min(len(a), len(b))
    ta, tb = Tensor(a[:n]), Tensor(b[:n])
    np.testing.assert_allclose((ta + tb).data, (tb + ta).data)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.floats(-3, 3), min_size=1, max_size=10))
def test_exp_log_roundtrip(values):
    t = Tensor(values)
    np.testing.assert_allclose(t.exp().log().data, t.data, atol=1e-9)


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 6), st.integers(2, 6))
def test_matmul_shape(n, m):
    a = Tensor(np.ones((n, m)))
    b = Tensor(np.ones((m, 3)))
    assert (a @ b).shape == (n, 3)
