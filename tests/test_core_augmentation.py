"""Tests for adaptive graph augmentation (contrastive views)."""

import numpy as np
import pytest

from repro.core import AugmentationConfig, adaptive_augmentation


@pytest.fixture()
def graph_inputs(rng):
    adjacency = (rng.random((12, 12)) > 0.6).astype(float)
    adjacency = np.maximum(adjacency, adjacency.T)
    np.fill_diagonal(adjacency, 0.0)
    features = rng.normal(size=(12, 15))
    return adjacency, features


class TestAugmentationConfig:
    def test_invalid_edge_probability(self):
        with pytest.raises(ValueError):
            AugmentationConfig(edge_drop_prob=1.5)

    def test_invalid_feature_probability(self):
        with pytest.raises(ValueError):
            AugmentationConfig(feature_mask_prob=-0.1)

    def test_defaults_match_paper_view1(self):
        config = AugmentationConfig()
        assert config.edge_drop_prob == pytest.approx(0.3)
        assert config.feature_mask_prob == pytest.approx(0.1)


class TestAdaptiveAugmentation:
    def test_shapes_preserved(self, graph_inputs, rng):
        adjacency, features = graph_inputs
        aug_adj, aug_feat = adaptive_augmentation(adjacency, features,
                                                  AugmentationConfig(0.3, 0.2), rng)
        assert aug_adj.shape == adjacency.shape
        assert aug_feat.shape == features.shape

    def test_zero_probabilities_are_identity(self, graph_inputs, rng):
        adjacency, features = graph_inputs
        aug_adj, aug_feat = adaptive_augmentation(adjacency, features,
                                                  AugmentationConfig(0.0, 0.0), rng)
        np.testing.assert_allclose(aug_adj, adjacency)
        np.testing.assert_allclose(aug_feat, features)

    def test_edges_only_removed_never_added(self, graph_inputs, rng):
        adjacency, features = graph_inputs
        aug_adj, _ = adaptive_augmentation(adjacency, features,
                                           AugmentationConfig(0.5, 0.0), rng)
        assert np.all((aug_adj > 0) <= (adjacency > 0))

    def test_some_edges_dropped_at_high_probability(self, graph_inputs, rng):
        adjacency, features = graph_inputs
        aug_adj, _ = adaptive_augmentation(adjacency, features,
                                           AugmentationConfig(0.8, 0.0), rng)
        assert (aug_adj > 0).sum() < (adjacency > 0).sum()

    def test_feature_masking_zeroes_whole_columns(self, graph_inputs):
        adjacency, features = graph_inputs
        features = features + 10.0  # keep away from zero so masking is detectable
        rng = np.random.default_rng(1)
        _, aug_feat = adaptive_augmentation(adjacency, features,
                                            AugmentationConfig(0.0, 0.8), rng)
        masked_columns = np.flatnonzero((aug_feat == 0.0).all(axis=0))
        assert masked_columns.size > 0
        untouched = np.setdiff1d(np.arange(features.shape[1]), masked_columns)
        np.testing.assert_allclose(aug_feat[:, untouched], features[:, untouched])

    def test_original_arrays_not_mutated(self, graph_inputs, rng):
        adjacency, features = graph_inputs
        adjacency_copy, features_copy = adjacency.copy(), features.copy()
        adaptive_augmentation(adjacency, features, AugmentationConfig(0.5, 0.5), rng)
        np.testing.assert_allclose(adjacency, adjacency_copy)
        np.testing.assert_allclose(features, features_copy)

    def test_deterministic_given_rng(self, graph_inputs):
        adjacency, features = graph_inputs
        a = adaptive_augmentation(adjacency, features, AugmentationConfig(0.4, 0.2),
                                  np.random.default_rng(7))
        b = adaptive_augmentation(adjacency, features, AugmentationConfig(0.4, 0.2),
                                  np.random.default_rng(7))
        np.testing.assert_allclose(a[0], b[0])
        np.testing.assert_allclose(a[1], b[1])

    @pytest.mark.parametrize("measure", ["degree", "eigenvector", "pagerank"])
    def test_all_centrality_measures_work(self, graph_inputs, rng, measure):
        adjacency, features = graph_inputs
        config = AugmentationConfig(0.3, 0.1, centrality_measure=measure)
        aug_adj, aug_feat = adaptive_augmentation(adjacency, features, config, rng)
        assert np.all(np.isfinite(aug_adj)) and np.all(np.isfinite(aug_feat))

    def test_unknown_centrality_raises(self, graph_inputs, rng):
        adjacency, features = graph_inputs
        config = AugmentationConfig(0.3, 0.1, centrality_measure="katz")
        with pytest.raises(ValueError):
            adaptive_augmentation(adjacency, features, config, rng)

    def test_high_centrality_edges_survive_more_often(self):
        """Edges attached to the hub should be dropped less often than leaf-leaf edges."""
        rng_master = np.random.default_rng(0)
        # Star around node 0 plus a peripheral chain of low-degree edges.
        n = 10
        adjacency = np.zeros((n, n))
        for leaf in range(1, 6):
            adjacency[0, leaf] = adjacency[leaf, 0] = 1.0
        for i in range(6, 9):
            adjacency[i, i + 1] = adjacency[i + 1, i] = 1.0
        features = np.ones((n, 3))
        config = AugmentationConfig(0.5, 0.0)
        hub_kept = chain_kept = 0
        for trial in range(200):
            aug, _ = adaptive_augmentation(adjacency, features, config,
                                           np.random.default_rng(trial))
            hub_kept += int(aug[0, 1] > 0)
            chain_kept += int(aug[6, 7] > 0)
        assert hub_kept > chain_kept
