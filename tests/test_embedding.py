"""Tests for random walks, skip-gram and the walk-embedding models."""

import numpy as np
import pytest

from repro.embedding import (
    DeepWalk,
    Node2Vec,
    SkipGramModel,
    Trans2Vec,
    node2vec_walks,
    random_walks,
    trans2vec_walks,
)
from repro.graph import TxGraph


@pytest.fixture()
def two_cluster_graph():
    """Two dense 4-cliques joined by a single bridge edge."""
    g = TxGraph()
    for cluster, offset in (("a", 0), ("b", 10)):
        for i in range(4):
            for j in range(i + 1, 4):
                g.add_edge(f"{cluster}{offset + i}", f"{cluster}{offset + j}",
                           amount=1.0, timestamp=100.0 + i)
    g.add_edge("a0", "b10", amount=0.1, timestamp=500.0)
    return g


class TestWalks:
    def test_walks_start_at_every_node(self, toy_graph):
        walks = random_walks(toy_graph, walk_length=5, walks_per_node=2, seed=0)
        starts = {walk[0] for walk in walks}
        assert starts == set(toy_graph.nodes)
        assert len(walks) == 2 * toy_graph.num_nodes

    def test_walk_steps_follow_edges(self, toy_graph):
        for walk in random_walks(toy_graph, walk_length=6, walks_per_node=1, seed=1):
            for current, nxt in zip(walk, walk[1:]):
                assert nxt in toy_graph.neighbors(current)

    def test_walk_length_respected(self, toy_graph):
        walks = random_walks(toy_graph, walk_length=7, walks_per_node=1, seed=0)
        assert all(len(walk) <= 7 for walk in walks)

    def test_isolated_node_walk_has_length_one(self):
        g = TxGraph()
        g.add_node("solo")
        walks = random_walks(g, walk_length=5, walks_per_node=1)
        assert walks == [["solo"]]

    def test_node2vec_low_q_explores_farther(self, two_cluster_graph):
        def mean_unique(walks):
            return np.mean([len(set(w)) for w in walks])

        dfs_like = node2vec_walks(two_cluster_graph, walk_length=10, walks_per_node=5,
                                  p=1.0, q=0.2, seed=0)
        bfs_like = node2vec_walks(two_cluster_graph, walk_length=10, walks_per_node=5,
                                  p=1.0, q=5.0, seed=0)
        assert mean_unique(dfs_like) >= mean_unique(bfs_like) - 0.5

    def test_node2vec_steps_follow_edges(self, toy_graph):
        for walk in node2vec_walks(toy_graph, walk_length=6, walks_per_node=1, seed=2):
            for current, nxt in zip(walk, walk[1:]):
                assert nxt in toy_graph.neighbors(current)

    def test_trans2vec_prefers_high_amount_edges(self):
        g = TxGraph()
        g.add_edge("c", "rich", amount=1000.0, timestamp=100.0)
        g.add_edge("c", "poor", amount=0.001, timestamp=100.0)
        walks = trans2vec_walks(g, walk_length=2, walks_per_node=200, amount_bias=1.0, seed=0)
        second_steps = [w[1] for w in walks if w[0] == "c" and len(w) > 1]
        assert second_steps.count("rich") > 0.9 * len(second_steps)

    def test_trans2vec_invalid_bias_raises(self, toy_graph):
        with pytest.raises(ValueError):
            trans2vec_walks(toy_graph, amount_bias=1.5)

    def test_walks_deterministic_given_seed(self, toy_graph):
        a = random_walks(toy_graph, walk_length=5, walks_per_node=2, seed=9)
        b = random_walks(toy_graph, walk_length=5, walks_per_node=2, seed=9)
        assert a == b


class TestSkipGram:
    def test_embedding_dimensions(self):
        walks = [["a", "b", "c", "a"], ["b", "c", "a", "b"]]
        model = SkipGramModel(dim=8, epochs=2, seed=0).fit(walks)
        assert model.embedding("a").shape == (8,)
        assert model.embeddings(["a", "b"]).shape == (2, 8)

    def test_out_of_vocabulary_is_zero_vector(self):
        model = SkipGramModel(dim=4, epochs=1).fit([["a", "b"]])
        np.testing.assert_allclose(model.embedding("zzz"), np.zeros(4))

    def test_unfitted_model_raises(self):
        with pytest.raises(RuntimeError):
            SkipGramModel().embedding("a")

    def test_empty_corpus_raises(self):
        with pytest.raises(ValueError):
            SkipGramModel().fit([])

    def test_cooccurring_tokens_are_closer_than_non_cooccurring(self):
        # 'a' and 'b' always co-occur; 'x' and 'y' occur in a separate context.
        walks = [["a", "b"] * 10, ["x", "y"] * 10] * 20
        model = SkipGramModel(dim=16, window=2, epochs=3, seed=1).fit(walks)

        def cosine(u, v):
            return float(u @ v / (np.linalg.norm(u) * np.linalg.norm(v) + 1e-12))

        close = cosine(model.embedding("a"), model.embedding("b"))
        far = cosine(model.embedding("a"), model.embedding("y"))
        assert close > far

    def test_embeddings_empty_list(self):
        model = SkipGramModel(dim=4, epochs=1).fit([["a", "b"]])
        assert model.embeddings([]).shape == (0, 4)


class TestEmbeddingModels:
    @pytest.mark.parametrize("model_cls", [DeepWalk, Node2Vec, Trans2Vec])
    def test_graph_embedding_shape(self, model_cls, toy_graph):
        model = model_cls(dim=8, walk_length=5, walks_per_node=2, epochs=1)
        assert model.embed_graph(toy_graph).shape == (8,)

    def test_embed_graphs_stacks(self, toy_graph):
        model = DeepWalk(dim=8, walk_length=5, walks_per_node=2, epochs=1)
        out = model.embed_graphs([toy_graph, toy_graph])
        assert out.shape == (2, 8)

    def test_embed_nodes_covers_all_nodes(self, toy_graph):
        model = DeepWalk(dim=8, walk_length=5, walks_per_node=2, epochs=1)
        vectors = model.embed_nodes(toy_graph)
        assert set(vectors) == set(toy_graph.nodes)

    def test_deterministic_given_seed(self, toy_graph):
        a = DeepWalk(dim=8, walk_length=5, walks_per_node=2, epochs=1, seed=4)
        b = DeepWalk(dim=8, walk_length=5, walks_per_node=2, epochs=1, seed=4)
        np.testing.assert_allclose(a.embed_graph(toy_graph), b.embed_graph(toy_graph))
