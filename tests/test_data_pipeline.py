"""Tests for transaction filtering, graph building and time slicing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chain import Transaction
from repro.data import (
    build_transaction_graph,
    filter_transactions,
    time_slice_adjacency,
    transaction_evolution_times,
)
from repro.graph import TxGraph


def make_tx(i, sender="0xaa", receiver="0xbb", value=1.0, submitted=True):
    return Transaction(f"0x{i}", sender, receiver, value, 20.0, 21_000,
                       1000.0 + i, submitted=submitted)


class TestFilterTransactions:
    def test_drops_unsubmitted(self):
        kept = filter_transactions([make_tx(0), make_tx(1, submitted=False)])
        assert len(kept) == 1

    def test_drops_self_transfers(self):
        kept = filter_transactions([make_tx(0, sender="0xaa", receiver="0xaa")])
        assert kept == []

    def test_min_value_threshold(self):
        kept = filter_transactions([make_tx(0, value=0.001), make_tx(1, value=5.0)],
                                   min_value=0.01)
        assert len(kept) == 1 and kept[0].value == 5.0

    def test_keeps_order(self):
        kept = filter_transactions([make_tx(i) for i in range(5)])
        assert [t.tx_hash for t in kept] == [f"0x{i}" for i in range(5)]


class TestBuildTransactionGraph:
    def test_nodes_and_edges_from_ledger(self, small_ledger):
        graph = build_transaction_graph(small_ledger)
        assert graph.num_nodes > 0 and graph.num_edges > 0

    def test_labels_attached_as_node_attributes(self, small_ledger):
        graph = build_transaction_graph(small_ledger)
        labelled = [n for n in graph.nodes if graph.node_attr(n, "label") is not None]
        assert len(labelled) > 0

    def test_contract_flag_attached(self, small_ledger):
        graph = build_transaction_graph(small_ledger)
        assert any(graph.node_attr(n, "is_contract") for n in graph.nodes)

    def test_repeated_transfers_merge(self, small_ledger):
        graph = build_transaction_graph(small_ledger)
        assert any(edge.count > 1 for edge in graph.edges)

    def test_no_unsubmitted_edges(self, small_ledger):
        graph = build_transaction_graph(small_ledger)
        submitted_value = sum(t.value for t in small_ledger.transactions()
                              if t.sender != t.receiver)
        graph_value = sum(e.amount for e in graph.edges)
        assert graph_value == pytest.approx(submitted_value, rel=1e-6)


class TestColumnarGraphParity:
    """The columnar bulk ingest must produce a bit-identical graph."""

    def test_bit_identical_to_object_path(self, small_ledger):
        columnar = build_transaction_graph(small_ledger, columnar=True)
        objects = build_transaction_graph(small_ledger, columnar=False)
        assert columnar.nodes == objects.nodes
        assert [(e.src, e.dst) for e in columnar.edges] \
            == [(e.src, e.dst) for e in objects.edges]
        for ec, eo in zip(columnar.edges, objects.edges):
            assert ec.amount == eo.amount        # bitwise, no approx
            assert ec.count == eo.count
            assert ec.timestamp == eo.timestamp
        for node in columnar.nodes:
            assert columnar.node_attr(node, "is_contract") \
                == objects.node_attr(node, "is_contract")
            assert columnar.node_attr(node, "label") == objects.node_attr(node, "label")

    def test_min_value_filter_matches(self, small_ledger):
        columnar = build_transaction_graph(small_ledger, min_value=0.5, columnar=True)
        objects = build_transaction_graph(small_ledger, min_value=0.5, columnar=False)
        assert columnar.nodes == objects.nodes
        assert columnar.num_edges == objects.num_edges

    def test_nodes_are_plain_strings(self, small_ledger):
        graph = build_transaction_graph(small_ledger)
        assert all(type(node) is str for node in graph.nodes)


class TestEvolutionTimes:
    def test_values_in_unit_interval(self, toy_graph):
        times = transaction_evolution_times(toy_graph)
        assert all(0.0 <= v <= 1.0 for v in times.values())

    def test_earliest_is_zero_latest_is_one(self, toy_graph):
        times = transaction_evolution_times(toy_graph)
        assert min(times.values()) == pytest.approx(0.0)
        assert max(times.values()) == pytest.approx(1.0)

    def test_single_timestamp_graph(self):
        g = TxGraph()
        g.add_edge("a", "b", amount=1.0, timestamp=50.0)
        g.add_edge("b", "c", amount=1.0, timestamp=50.0)
        assert set(transaction_evolution_times(g).values()) == {0.0}

    def test_empty_graph(self):
        assert transaction_evolution_times(TxGraph()) == {}


class TestTimeSlices:
    def test_number_and_shape_of_slices(self, toy_graph):
        slices = time_slice_adjacency(toy_graph, 4)
        assert len(slices) == 4
        assert all(s.shape == (5, 5) for s in slices)

    def test_slices_are_symmetric(self, toy_graph):
        for matrix in time_slice_adjacency(toy_graph, 3):
            np.testing.assert_allclose(matrix, matrix.T)

    def test_every_edge_lands_in_exactly_one_slice(self, toy_graph):
        slices = time_slice_adjacency(toy_graph, 4, weighted=False)
        total_mass = sum(s.sum() for s in slices)
        assert total_mass == pytest.approx(2 * toy_graph.num_edges)  # symmetrised

    def test_union_matches_static_adjacency(self, toy_graph):
        slices = time_slice_adjacency(toy_graph, 5, weighted=True)
        combined = (np.sum(slices, axis=0) > 0).astype(float)
        static = toy_graph.adjacency_matrix(symmetric=True)
        np.testing.assert_allclose(combined, (static > 0).astype(float))

    def test_cumulative_slices_grow_monotonically(self, toy_graph):
        slices = time_slice_adjacency(toy_graph, 4, cumulative=True)
        for earlier, later in zip(slices[:-1], slices[1:]):
            assert np.all(later >= earlier)

    def test_single_slice_equals_full_graph(self, toy_graph):
        matrix = time_slice_adjacency(toy_graph, 1, weighted=True)[0]
        expected = toy_graph.adjacency_matrix(weighted=True, symmetric=False)
        np.testing.assert_allclose(matrix, expected + expected.T)

    def test_zero_slices_raises(self, toy_graph):
        with pytest.raises(ValueError):
            time_slice_adjacency(toy_graph, 0)


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 8))
def test_slice_mass_is_conserved_for_any_slice_count(num_slices):
    g = TxGraph()
    g.add_edge("a", "b", amount=2.0, timestamp=10.0)
    g.add_edge("b", "c", amount=3.0, timestamp=20.0)
    g.add_edge("c", "a", amount=4.0, timestamp=30.0)
    slices = time_slice_adjacency(g, num_slices, weighted=True)
    assert sum(s.sum() for s in slices) == pytest.approx(2 * (2.0 + 3.0 + 4.0))
