"""Tests for activation functions and their gradients."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Tensor
from repro.nn.functional import (
    dropout,
    elu,
    leaky_relu,
    log_softmax,
    relu,
    sigmoid,
    softmax,
    tanh,
)
from tests.test_nn_tensor import check_gradient


class TestForwardValues:
    def test_relu_zeroes_negatives(self):
        out = relu(Tensor([-1.0, 0.0, 2.0]))
        np.testing.assert_allclose(out.data, [0.0, 0.0, 2.0])

    def test_leaky_relu_keeps_scaled_negatives(self):
        out = leaky_relu(Tensor([-2.0, 3.0]), negative_slope=0.1)
        np.testing.assert_allclose(out.data, [-0.2, 3.0])

    def test_elu_negative_branch(self):
        out = elu(Tensor([-1.0]), alpha=1.0)
        np.testing.assert_allclose(out.data, [np.exp(-1.0) - 1.0])

    def test_elu_positive_identity(self):
        out = elu(Tensor([2.5]))
        np.testing.assert_allclose(out.data, [2.5])

    def test_sigmoid_at_zero(self):
        np.testing.assert_allclose(sigmoid(Tensor([0.0])).data, [0.5])

    def test_tanh_matches_numpy(self):
        x = np.linspace(-2, 2, 7)
        np.testing.assert_allclose(tanh(Tensor(x)).data, np.tanh(x))

    def test_softmax_rows_sum_to_one(self):
        out = softmax(Tensor(np.random.default_rng(0).normal(size=(4, 5))), axis=1)
        np.testing.assert_allclose(out.data.sum(axis=1), np.ones(4))

    def test_softmax_is_shift_invariant(self):
        x = np.array([[1.0, 2.0, 3.0]])
        np.testing.assert_allclose(softmax(Tensor(x)).data, softmax(Tensor(x + 100)).data)

    def test_log_softmax_matches_log_of_softmax(self):
        x = Tensor(np.random.default_rng(1).normal(size=(3, 4)))
        np.testing.assert_allclose(log_softmax(x).data, np.log(softmax(x).data), atol=1e-12)

    def test_softmax_handles_large_values(self):
        out = softmax(Tensor([[1000.0, 1000.0]]))
        np.testing.assert_allclose(out.data, [[0.5, 0.5]])


class TestGradients:
    def test_relu_gradient(self, rng):
        x = rng.normal(size=(3, 3))
        x[np.abs(x) < 1e-3] = 0.5  # avoid the kink
        check_gradient(relu, x)

    def test_leaky_relu_gradient(self, rng):
        x = rng.normal(size=(3, 3))
        x[np.abs(x) < 1e-3] = 0.5
        check_gradient(lambda t: leaky_relu(t, 0.1), x)

    def test_elu_gradient(self, rng):
        x = rng.normal(size=(3, 3))
        x[np.abs(x) < 1e-3] = 0.5
        check_gradient(elu, x)

    def test_softmax_gradient(self, rng):
        weights = Tensor(rng.normal(size=(3, 4)))
        check_gradient(lambda t: softmax(t, axis=1) * weights, rng.normal(size=(3, 4)))

    def test_log_softmax_gradient(self, rng):
        weights = Tensor(rng.normal(size=(2, 5)))
        check_gradient(lambda t: log_softmax(t, axis=1) * weights, rng.normal(size=(2, 5)))


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        x = Tensor(rng.normal(size=(10, 10)))
        out = dropout(x, p=0.5, training=False)
        np.testing.assert_allclose(out.data, x.data)

    def test_zero_probability_is_identity(self, rng):
        x = Tensor(rng.normal(size=(5, 5)))
        out = dropout(x, p=0.0, training=True)
        np.testing.assert_allclose(out.data, x.data)

    def test_invalid_probability_raises(self):
        with pytest.raises(ValueError):
            dropout(Tensor([1.0]), p=1.0)

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((2000,)))
        out = dropout(x, p=0.5, training=True, rng=rng)
        assert abs(out.data.mean() - 1.0) < 0.1

    def test_some_units_are_dropped(self):
        rng = np.random.default_rng(0)
        out = dropout(Tensor(np.ones(100)), p=0.5, training=True, rng=rng)
        assert (out.data == 0.0).any()


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(-20, 20), min_size=2, max_size=10))
def test_softmax_outputs_are_probabilities(values):
    probs = softmax(Tensor([values]), axis=1).data
    assert np.all(probs >= 0.0)
    assert probs.sum() == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(-10, 10), min_size=1, max_size=10))
def test_relu_is_idempotent(values):
    once = relu(Tensor(values)).data
    twice = relu(Tensor(once)).data
    np.testing.assert_allclose(once, twice)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(-10, 10), min_size=1, max_size=10))
def test_sigmoid_bounded(values):
    out = sigmoid(Tensor(values)).data
    assert np.all(out > 0.0) and np.all(out < 1.0)
