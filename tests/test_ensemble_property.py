"""Property-based tests for the flat histogram-GBDT engine.

Three invariants the engine must hold for *any* input, checked with
Hypothesis over randomly generated datasets:

* the histogram splitter's chosen split never has lower gain than any
  bin-boundary split found by brute force with the same criterion;
* batched flat-array prediction is bit-identical to the recursive ``_Node``
  descent of the exact reference trees;
* fitting is deterministic per seed — same seed, same data → bitwise
  identical states and predictions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ensemble import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    GrowthParams,
    HistogramBinner,
    LightGBMClassifier,
    RandomForestClassifier,
)
from repro.ensemble.engine import MIN_GAIN, best_histogram_split, newton_gain

SETTINGS = settings(max_examples=40, deadline=None)


def _dataset(seed: int, n: int, n_features: int, n_unique: int):
    """Deterministic random dataset with controllable feature cardinality."""
    rng = np.random.default_rng(seed)
    levels = rng.normal(size=(n_features, n_unique))
    X = levels[np.arange(n_features), rng.integers(0, n_unique, size=(n, n_features))]
    g = rng.normal(size=n)
    h = np.abs(rng.normal(size=n)) + 0.1
    y = rng.integers(0, 2, size=n)
    return X, g, h, y


def _brute_force_best_gain(codes, g, h, n_edges, params):
    """Score every (feature, bin) boundary directly from the raw rows."""
    best = -np.inf
    n = len(codes)
    g_total, h_total = float(g.sum()), float(h.sum())
    for feature in range(codes.shape[1]):
        for bin_idx in range(int(n_edges[feature])):
            mask = codes[:, feature] <= bin_idx
            n_left = int(mask.sum())
            if n_left < params.min_samples_leaf or n - n_left < params.min_samples_leaf:
                continue
            gain = float(newton_gain(
                np.array(float(g[mask].sum())), np.array(float(h[mask].sum())),
                g_total, h_total, params.reg_lambda))
            best = max(best, gain)
    return best


class TestSplitGainDominance:
    """The vectorised splitter never picks a worse split than brute force."""

    @SETTINGS
    @given(seed=st.integers(0, 10_000), n=st.integers(4, 60),
           n_features=st.integers(1, 4), n_unique=st.integers(1, 12),
           reg_lambda=st.sampled_from([0.0, 1e-3, 1.0]))
    def test_histogram_split_matches_brute_force(self, seed, n, n_features,
                                                 n_unique, reg_lambda):
        X, g, h, _ = _dataset(seed, n, n_features, n_unique)
        binner = HistogramBinner(max_bins=8).fit(X)
        codes = binner.transform(X)
        n_edges = np.asarray([len(e) for e in binner.edges_])
        params = GrowthParams(min_samples_leaf=2, reg_lambda=reg_lambda)
        chosen = best_histogram_split(codes, np.arange(n), g, h, n_edges,
                                      8, params)
        brute = _brute_force_best_gain(codes, g, h, n_edges, params)
        if chosen is None:
            # No usable split — brute force must agree nothing clears the bar.
            assert brute <= MIN_GAIN + 1e-9
        else:
            _, _, gain = chosen
            tolerance = 1e-9 * max(1.0, abs(brute))
            assert gain >= brute - tolerance

    @SETTINGS
    @given(seed=st.integers(0, 10_000), n=st.integers(4, 60),
           n_unique=st.integers(2, 12))
    def test_chosen_split_gain_is_achievable(self, seed, n, n_unique):
        """The reported gain equals the gain recomputed from the partition."""
        X, g, h, _ = _dataset(seed, n, 2, n_unique)
        binner = HistogramBinner(max_bins=8).fit(X)
        codes = binner.transform(X)
        n_edges = np.asarray([len(e) for e in binner.edges_])
        params = GrowthParams(min_samples_leaf=1)
        chosen = best_histogram_split(codes, np.arange(n), g, h, n_edges, 8, params)
        if chosen is None:
            return
        feature, bin_idx, gain = chosen
        mask = codes[:, feature] <= bin_idx
        recomputed = float(newton_gain(
            np.array(float(g[mask].sum())), np.array(float(h[mask].sum())),
            float(g.sum()), float(h.sum()), 0.0))
        assert gain == pytest.approx(recomputed, rel=1e-9, abs=1e-9)


class TestFlatRecursiveBitIdentity:
    """Batched flat descent must reproduce the recursive walk bit for bit."""

    @SETTINGS
    @given(seed=st.integers(0, 10_000), n=st.integers(5, 80),
           n_features=st.integers(1, 4), max_depth=st.integers(1, 5))
    def test_regressor_predict(self, seed, n, n_features, max_depth):
        X, g, _, _ = _dataset(seed, n, n_features, 10)
        tree = DecisionTreeRegressor(max_depth=max_depth).fit(X, g)
        X_eval = np.random.default_rng(seed + 1).normal(size=(32, n_features))
        assert np.array_equal(tree.predict(X_eval), tree.predict_recursive(X_eval))

    @SETTINGS
    @given(seed=st.integers(0, 10_000), n=st.integers(5, 80),
           n_features=st.integers(1, 4), max_depth=st.integers(1, 5))
    def test_classifier_predict_proba(self, seed, n, n_features, max_depth):
        X, _, _, y = _dataset(seed, n, n_features, 10)
        tree = DecisionTreeClassifier(max_depth=max_depth).fit(X, y)
        X_eval = np.random.default_rng(seed + 1).normal(size=(32, n_features))
        assert np.array_equal(tree.predict_proba(X_eval),
                              tree.predict_proba_recursive(X_eval))

    @SETTINGS
    @given(seed=st.integers(0, 10_000))
    def test_eval_points_on_thresholds(self, seed):
        """Rows landing exactly on split thresholds route identically."""
        X, g, _, _ = _dataset(seed, 40, 2, 6)
        tree = DecisionTreeRegressor(max_depth=4).fit(X, g)
        thresholds = tree.flat.threshold[tree.flat.feature >= 0]
        if not len(thresholds):
            return
        X_eval = np.column_stack([np.resize(thresholds, 16), np.resize(thresholds, 16)])
        assert np.array_equal(tree.predict(X_eval), tree.predict_recursive(X_eval))


class TestDeterminism:
    """Same seed + same data → bitwise identical fits."""

    HEADS = [
        lambda seed: GradientBoostingClassifier(n_estimators=8, seed=seed,
                                                subsample=0.8, max_features=1),
        lambda seed: LightGBMClassifier(n_estimators=8, seed=seed),
        lambda seed: RandomForestClassifier(n_estimators=8, seed=seed),
    ]

    @SETTINGS
    @given(seed=st.integers(0, 10_000), head=st.integers(0, 2))
    def test_refit_is_bitwise_identical(self, seed, head):
        X, _, _, y = _dataset(seed, 50, 2, 10)
        X_eval = np.random.default_rng(seed + 1).normal(size=(16, 2))
        first = self.HEADS[head](seed).fit(X, y)
        second = self.HEADS[head](seed).fit(X, y)
        assert np.array_equal(first.predict_proba(X_eval),
                              second.predict_proba(X_eval))
        for tree_a, tree_b in zip(first.get_state()["trees"],
                                  second.get_state()["trees"]):
            for key in ("feature", "threshold", "left", "right", "values"):
                assert np.array_equal(tree_a[key], tree_b[key], equal_nan=True)
