"""Shared fixtures: a small synthetic ledger and subgraph dataset.

The heavier fixtures are session-scoped so the ~40 test modules share one
ledger/dataset build instead of regenerating them per test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.chain import LedgerConfig, generate_ledger
from repro.data import DatasetConfig, SubgraphDatasetBuilder
from repro.graph import TxGraph


@pytest.fixture(scope="session")
def small_ledger():
    """A small but complete synthetic ledger covering all six categories."""
    config = LedgerConfig().scaled(0.25)
    config.seed = 11
    return generate_ledger(config)


@pytest.fixture(scope="session")
def small_dataset(small_ledger):
    """Account-centred subgraph dataset built from :func:`small_ledger`."""
    builder = SubgraphDatasetBuilder(
        small_ledger, DatasetConfig(top_k=40, max_nodes_per_subgraph=40, seed=3))
    return builder.build()


@pytest.fixture(scope="session")
def exchange_task(small_dataset):
    """(samples, labels) for the exchange one-vs-rest task."""
    return small_dataset.binary_task("exchange", rng=np.random.default_rng(1))


@pytest.fixture()
def toy_graph():
    """A hand-built 5-node transaction graph with known structure."""
    graph = TxGraph()
    graph.add_edge("a", "b", amount=3.0, timestamp=100.0)
    graph.add_edge("a", "b", amount=1.0, timestamp=200.0)   # merges with the first
    graph.add_edge("b", "c", amount=5.0, timestamp=300.0)
    graph.add_edge("c", "d", amount=0.5, timestamp=400.0)
    graph.add_edge("d", "a", amount=2.0, timestamp=500.0)
    graph.add_edge("a", "e", amount=10.0, timestamp=600.0)
    return graph


@pytest.fixture()
def rng():
    return np.random.default_rng(0)
