"""Tests for the from-scratch tree, boosting, forest and MLP classifiers."""

import numpy as np
import pytest

from repro.ensemble import (
    AdaBoostClassifier,
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    GradientBoostingClassifier,
    LightGBMClassifier,
    MLPClassifier,
    RandomForestClassifier,
    XGBoostClassifier,
)
from repro.metrics import accuracy, auc_score

BINARY_MODELS = [
    GradientBoostingClassifier,
    LightGBMClassifier,
    XGBoostClassifier,
    AdaBoostClassifier,
]
ALL_MODELS = BINARY_MODELS + [RandomForestClassifier, MLPClassifier, DecisionTreeClassifier]


def two_moons_like(n=200, seed=0):
    """A linearly-inseparable binary dataset (XOR-ish blobs)."""
    rng = np.random.default_rng(seed)
    centers = np.array([[0, 0], [3, 3], [0, 3], [3, 0]])
    labels = np.array([0, 0, 1, 1])
    idx = rng.integers(0, 4, size=n)
    X = centers[idx] + rng.normal(scale=0.4, size=(n, 2))
    return X, labels[idx]


class TestDecisionTreeRegressor:
    def test_fits_piecewise_constant_function(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float) * 2.0
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        predictions = tree.predict(X)
        assert np.mean((predictions - y) ** 2) < 0.01

    def test_depth_zero_behaviour_single_leaf(self):
        X = np.array([[0.0], [1.0]])
        tree = DecisionTreeRegressor(max_depth=0).fit(X, np.array([1.0, 3.0]))
        np.testing.assert_allclose(tree.predict(X), [2.0, 2.0])

    def test_depth_property(self):
        X = np.linspace(0, 1, 50).reshape(-1, 1)
        y = np.sin(X[:, 0] * 6)
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert 1 <= tree.depth() <= 3

    def test_constant_target_gives_single_leaf(self):
        X = np.random.default_rng(0).normal(size=(20, 3))
        tree = DecisionTreeRegressor(max_depth=5).fit(X, np.ones(20))
        assert tree.depth() == 0

    def test_non_2d_input_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.ones(5), np.ones(5))

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            DecisionTreeRegressor().fit(np.ones((5, 2)), np.ones(4))


class TestDecisionTreeClassifier:
    def test_separable_data(self):
        X, y = two_moons_like()
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert accuracy(y, tree.predict(X)) > 0.9

    def test_predict_proba_rows_sum_to_one(self):
        X, y = two_moons_like()
        tree = DecisionTreeClassifier(max_depth=3).fit(X, y)
        np.testing.assert_allclose(tree.predict_proba(X).sum(axis=1), np.ones(len(X)))

    def test_multiclass(self):
        rng = np.random.default_rng(0)
        X = np.vstack([rng.normal(loc=c, scale=0.3, size=(30, 2)) for c in (0, 3, 6)])
        y = np.repeat([0, 1, 2], 30)
        tree = DecisionTreeClassifier(max_depth=4).fit(X, y)
        assert accuracy(y, tree.predict(X)) > 0.9

    def test_string_labels_supported(self):
        X = np.array([[0.0], [0.1], [1.0], [1.1]])
        y = np.array(["neg", "neg", "pos", "pos"])
        tree = DecisionTreeClassifier(max_depth=2).fit(X, y)
        assert list(tree.predict(X)) == list(y)


class TestBoostedModels:
    @pytest.mark.parametrize("model_cls", BINARY_MODELS)
    def test_fits_nonlinear_boundary(self, model_cls):
        X, y = two_moons_like(300)
        # Depth-3 trees are needed because the blobs form an XOR-style layout.
        model = model_cls(n_estimators=30, max_depth=3).fit(X, y)
        assert accuracy(y, model.predict(X)) > 0.85

    @pytest.mark.parametrize("model_cls", BINARY_MODELS)
    def test_probabilities_valid(self, model_cls):
        X, y = two_moons_like(150)
        model = model_cls(n_estimators=15).fit(X, y)
        probs = model.predict_proba(X)
        assert probs.shape == (len(X), 2)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(len(X)), atol=1e-9)
        assert np.all(probs >= 0.0) and np.all(probs <= 1.0)

    @pytest.mark.parametrize("model_cls", BINARY_MODELS)
    def test_auc_beats_chance(self, model_cls):
        X, y = two_moons_like(300, seed=2)
        model = model_cls(n_estimators=25, max_depth=3).fit(X, y)
        assert auc_score(y, model.predict_proba(X)[:, 1]) > 0.9

    @pytest.mark.parametrize("model_cls", BINARY_MODELS)
    def test_non_binary_labels_raise(self, model_cls):
        with pytest.raises(ValueError):
            model_cls().fit(np.ones((6, 2)), np.array([0, 1, 2, 0, 1, 2]))

    def test_more_estimators_do_not_hurt_training_fit(self):
        X, y = two_moons_like(200, seed=4)
        small = GradientBoostingClassifier(n_estimators=3).fit(X, y)
        large = GradientBoostingClassifier(n_estimators=40).fit(X, y)
        assert accuracy(y, large.predict(X)) >= accuracy(y, small.predict(X)) - 1e-9

    def test_lightgbm_binning_is_fitted(self):
        X, y = two_moons_like(100)
        model = LightGBMClassifier(n_estimators=5, max_bins=8).fit(X, y)
        assert len(model._bin_edges) == X.shape[1]

    def test_xgboost_regularisation_changes_predictions(self):
        X, y = two_moons_like(150, seed=1)
        weak_reg = XGBoostClassifier(n_estimators=10, reg_lambda=0.0).fit(X, y)
        strong_reg = XGBoostClassifier(n_estimators=10, reg_lambda=50.0).fit(X, y)
        assert not np.allclose(weak_reg.decision_function(X), strong_reg.decision_function(X))

    def test_adaboost_alphas_are_finite(self):
        X, y = two_moons_like(100)
        model = AdaBoostClassifier(n_estimators=10).fit(X, y)
        assert all(np.isfinite(a) for a in model._alphas)


class TestRandomForest:
    def test_accuracy_on_separable_data(self):
        X, y = two_moons_like(300)
        forest = RandomForestClassifier(n_estimators=20, max_depth=5).fit(X, y)
        assert accuracy(y, forest.predict(X)) > 0.9

    def test_probabilities_are_valid(self):
        X, y = two_moons_like(100)
        forest = RandomForestClassifier(n_estimators=10).fit(X, y)
        probs = forest.predict_proba(X)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(len(X)), atol=1e-9)

    def test_multiclass_support(self):
        rng = np.random.default_rng(1)
        X = np.vstack([rng.normal(loc=c, scale=0.3, size=(25, 2)) for c in (0, 4, 8)])
        y = np.repeat([0, 1, 2], 25)
        forest = RandomForestClassifier(n_estimators=15, max_depth=4).fit(X, y)
        assert accuracy(y, forest.predict(X)) > 0.9

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            RandomForestClassifier().predict_proba(np.ones((2, 2)))

    def test_invalid_max_features_raises(self):
        with pytest.raises(ValueError):
            RandomForestClassifier(max_features="bogus").fit(np.ones((4, 2)), np.array([0, 1, 0, 1]))

    @pytest.mark.parametrize("tree_method", ["hist", "exact"])
    def test_rare_class_missing_from_bootstraps(self, tree_method):
        """Regression: bootstraps that miss a rare class used to crash the stack.

        Trees grown on a resample without the minority class have narrower
        ``values`` rows than the rest; stacking them for batched predict must
        class-align first, not concatenate raw arrays.
        """
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 4))
        y = np.zeros(60, dtype=int)
        y[:2] = 1
        forest = RandomForestClassifier(n_estimators=30, max_depth=4, seed=0,
                                        tree_method=tree_method).fit(X, y)
        # The scenario only bites if some (not all) trees missed the rare class.
        widths = {len(tree.classes_) for tree in forest._trees}
        assert widths == {1, 2}
        probs = forest.predict_proba(X)
        assert probs.shape == (60, 2)
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(60), atol=1e-9)

    def test_rare_class_state_round_trip(self):
        """Persisted states holding subset-class trees must predict after load."""
        rng = np.random.default_rng(0)
        X = rng.normal(size=(60, 4))
        y = np.zeros(60, dtype=int)
        y[:2] = 1
        forest = RandomForestClassifier(n_estimators=30, max_depth=4, seed=0).fit(X, y)
        assert {len(tree.classes_) for tree in forest._trees} == {1, 2}
        restored = RandomForestClassifier().set_state(forest.get_state())
        np.testing.assert_array_equal(restored.predict_proba(X),
                                      forest.predict_proba(X))


class TestNativeBackendGuards:
    """``backend="native"`` must raise, not silently fall back, without the package."""

    @pytest.mark.parametrize("factory", [LightGBMClassifier, XGBoostClassifier],
                             ids=["lightgbm", "xgboost"])
    def test_native_backend_raises_without_package(self, factory):
        from repro.ensemble import native
        name = "lightgbm" if factory is LightGBMClassifier else "xgboost"
        if getattr(native, f"HAS_{name.upper()}"):
            pytest.skip(f"{name} is installed; the guard cannot fire")
        X, y = two_moons_like(40)
        with pytest.raises(RuntimeError, match=name):
            factory(n_estimators=2, backend="native").fit(X, y)


class TestMLP:
    def test_learns_xor_like_data(self):
        X, y = two_moons_like(300)
        mlp = MLPClassifier(hidden_dim=16, epochs=300, learning_rate=0.02).fit(X, y)
        assert accuracy(y, mlp.predict(X)) > 0.85

    def test_probabilities_sum_to_one(self):
        X, y = two_moons_like(60)
        mlp = MLPClassifier(hidden_dim=8, epochs=50).fit(X, y)
        np.testing.assert_allclose(mlp.predict_proba(X).sum(axis=1), np.ones(len(X)), atol=1e-9)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            MLPClassifier().predict_proba(np.ones((2, 2)))

    def test_multiclass(self):
        rng = np.random.default_rng(2)
        X = np.vstack([rng.normal(loc=c, scale=0.3, size=(30, 2)) for c in (0, 4, 8)])
        y = np.repeat([0, 1, 2], 30)
        mlp = MLPClassifier(hidden_dim=16, epochs=200).fit(X, y)
        assert accuracy(y, mlp.predict(X)) > 0.85


class TestDeterminism:
    @pytest.mark.parametrize("model_cls", ALL_MODELS)
    def test_same_seed_same_predictions(self, model_cls):
        X, y = two_moons_like(120, seed=6)
        kwargs = {"seed": 0} if model_cls is not DecisionTreeClassifier else {}
        a = model_cls(**kwargs).fit(X, y).predict(X)
        b = model_cls(**kwargs).fit(X, y).predict(X)
        np.testing.assert_array_equal(a, b)
