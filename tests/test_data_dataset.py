"""Tests for the account-centred subgraph dataset builder."""

import numpy as np
import pytest

from repro.chain import AccountCategory
from repro.data import DatasetConfig, SubgraphDatasetBuilder


class TestDatasetBuilder:
    def test_every_labelled_account_becomes_a_sample(self, small_ledger, small_dataset):
        labelled = {s.center for s in small_dataset.samples if s.category is not None}
        expected = {addr for addr, _ in small_ledger.labels.items()}
        assert labelled <= expected
        assert len(labelled) >= 0.9 * len(expected)

    def test_negative_samples_present(self, small_dataset):
        negatives = [s for s in small_dataset.samples if s.category is None]
        positives = [s for s in small_dataset.samples if s.category is not None]
        assert len(negatives) >= 0.5 * len(positives)

    def test_center_index_points_at_center(self, small_dataset):
        for sample in small_dataset.samples[:20]:
            assert sample.graph.nodes[sample.center_index] == sample.center

    def test_feature_matrix_width_is_15(self, small_dataset):
        for sample in small_dataset.samples[:20]:
            assert sample.node_features.shape == (sample.num_nodes, 15)

    def test_max_nodes_respected(self, small_ledger):
        builder = SubgraphDatasetBuilder(
            small_ledger, DatasetConfig(top_k=40, max_nodes_per_subgraph=25))
        dataset = builder.build()
        assert all(s.num_nodes <= 25 for s in dataset.samples)

    def test_truncation_keeps_center(self, small_ledger):
        builder = SubgraphDatasetBuilder(
            small_ledger, DatasetConfig(top_k=40, max_nodes_per_subgraph=10))
        dataset = builder.build()
        for sample in dataset.samples:
            assert sample.graph.has_node(sample.center)

    def test_deterministic_given_seed(self, small_ledger):
        config = DatasetConfig(top_k=20, max_nodes_per_subgraph=20, seed=5)
        a = SubgraphDatasetBuilder(small_ledger, config).build()
        b = SubgraphDatasetBuilder(small_ledger, config).build()
        assert [s.center for s in a.samples] == [s.center for s in b.samples]


class TestAccountSubgraph:
    def test_adjacency_is_symmetric(self, small_dataset):
        sample = small_dataset.samples[0]
        adjacency = sample.adjacency()
        np.testing.assert_allclose(adjacency, adjacency.T)

    def test_edge_features_two_columns(self, small_dataset):
        sample = small_dataset.samples[0]
        assert sample.edge_features().shape[1] == 2

    def test_node_edge_features_shape(self, small_dataset):
        sample = small_dataset.samples[0]
        assert sample.node_edge_features().shape == (sample.num_nodes, 2)

    def test_time_slices_match_node_count(self, small_dataset):
        sample = small_dataset.samples[0]
        slices = sample.time_slices(6)
        assert len(slices) == 6
        assert all(m.shape == (sample.num_nodes, sample.num_nodes) for m in slices)


class TestTasks:
    def test_binary_task_is_balanced(self, small_dataset):
        samples, labels = small_dataset.binary_task("exchange")
        assert labels.sum() == (labels == 0).sum()
        assert len(samples) == len(labels)

    def test_binary_task_positive_categories_match(self, small_dataset):
        samples, labels = small_dataset.binary_task(AccountCategory.MINING)
        for sample, label in zip(samples, labels):
            if label == 1:
                assert sample.category == "mining"
            else:
                assert sample.category != "mining"

    def test_binary_task_unknown_category_raises(self, small_dataset):
        with pytest.raises(ValueError):
            small_dataset.binary_task("not-a-category")

    def test_binary_task_shuffles_deterministically(self, small_dataset):
        a = small_dataset.binary_task("defi", rng=np.random.default_rng(3))
        b = small_dataset.binary_task("defi", rng=np.random.default_rng(3))
        assert [s.center for s in a[0]] == [s.center for s in b[0]]

    def test_multiclass_task_covers_all_categories(self, small_dataset):
        _samples, labels, classes = small_dataset.multiclass_task()
        assert len(classes) == len(AccountCategory)
        assert set(labels) == set(range(len(AccountCategory)))

    def test_statistics_structure(self, small_dataset):
        stats = small_dataset.statistics()
        assert set(stats) == {c.value for c in AccountCategory}
        for row in stats.values():
            assert row["avg_nodes"] > 1
            assert row["avg_edges"] > 0
            assert row["num_graphs"] >= row["num_positive"]

    def test_feature_matrix_shape(self, small_dataset):
        assert small_dataset.feature_matrix().shape == (len(small_dataset), 15)

    def test_indexing_and_iteration(self, small_dataset):
        assert small_dataset[0] is small_dataset.samples[0]
        assert len(list(iter(small_dataset))) == len(small_dataset)
