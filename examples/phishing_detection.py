"""Phishing-account detection: facade-served DBG4ETH vs ablations and a baseline.

The paper's motivating workload is flagging illicit accounts (phish/hack is the
largest labelled category).  This example trains the full double-graph model,
its two single-branch ablations and a GCN baseline on the phish/hack
one-vs-rest task — the DBG4ETH variants through the :class:`repro.DeAnonymizer`
facade — then asks the fitted facade the production question directly:
``score(addresses)`` on the held-out accounts, ranked by predicted risk.

Run with::

    python examples/phishing_detection.py
"""

from __future__ import annotations

import numpy as np

from repro import DeAnonymizer, LedgerConfig, generate_ledger
from repro.baselines import GCNClassifier
from repro.data import DatasetConfig, train_test_split
from repro.experiments.runner import fast_dbg4eth_config
from repro.metrics import auc_score, classification_report

CATEGORY = "phish/hack"


def build_task():
    ledger = generate_ledger(LedgerConfig().scaled(0.35))
    deanon = DeAnonymizer(ledger,
                          dataset_config=DatasetConfig(top_k=50, max_nodes_per_subgraph=45))
    samples, labels = deanon.dataset.binary_task(CATEGORY)
    return deanon, train_test_split(samples, labels, test_fraction=0.3, seed=1)


def main() -> None:
    deanon, (train_s, train_y, test_s, test_y) = build_task()
    print(f"Training on {len(train_s)} subgraphs, evaluating on {len(test_s)}.\n")

    dbg4eth_variants = {
        "DBG4ETH (double graph)": lambda: fast_dbg4eth_config(epochs=8),
        "GSG branch only": lambda: fast_dbg4eth_config(epochs=8, use_ldg=False),
        "LDG branch only": lambda: fast_dbg4eth_config(epochs=8, use_gsg=False),
    }

    scored: dict[str, np.ndarray] = {}
    print(f"{'model':<28} {'precision':>9} {'recall':>9} {'f1':>9} {'accuracy':>9} {'auc':>7}")
    facades: dict[str, DeAnonymizer] = {}
    for name, config_factory in dbg4eth_variants.items():
        facade = DeAnonymizer.from_dataset(deanon.dataset, ledger=deanon.ledger,
                                           dataset_config=deanon.dataset_config,
                                           model_config=config_factory)
        facade.fit_category(CATEGORY, train_s, train_y)
        facades[name] = facade
        report = classification_report(test_y, facade.predict_samples(CATEGORY, test_s))
        probabilities = facade.score_samples(test_s, category=CATEGORY)
        scored[name] = probabilities
        auc = auc_score(test_y, probabilities)
        print(f"{name:<28} {report['precision'] * 100:9.2f} {report['recall'] * 100:9.2f} "
              f"{report['f1'] * 100:9.2f} {report['accuracy'] * 100:9.2f} {auc:7.3f}")

    baseline = GCNClassifier(hidden_dim=16, epochs=10)
    baseline.fit(train_s, train_y)
    report = classification_report(test_y, baseline.predict(test_s))
    probabilities = baseline.predict_proba(test_s)
    scored["GCN baseline"] = probabilities
    print(f"{'GCN baseline':<28} {report['precision'] * 100:9.2f} {report['recall'] * 100:9.2f} "
          f"{report['f1'] * 100:9.2f} {report['accuracy'] * 100:9.2f} "
          f"{auc_score(test_y, probabilities):7.3f}")

    # The serving question: hand the fitted facade raw addresses and rank them.
    print("\nTop-5 highest-risk accounts according to DBG4ETH (batched score()):")
    addresses = [sample.center for sample in test_s]
    risk_by_address = facades["DBG4ETH (double graph)"].score(addresses)
    truth_by_address = {sample.center: sample.category for sample in test_s}
    ranked = sorted(risk_by_address.items(), key=lambda item: -item[1][CATEGORY])
    for rank, (address, per_category) in enumerate(ranked[:5], start=1):
        truth = truth_by_address[address] or "unlabeled"
        print(f"  {rank}. {address}  risk={per_category[CATEGORY]:.3f}  true category: {truth}")


if __name__ == "__main__":
    main()
