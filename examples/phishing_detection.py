"""Phishing-account detection: DBG4ETH vs single-branch ablations and a baseline.

The paper's motivating workload is flagging illicit accounts (phish/hack is the
largest labelled category).  This example trains the full double-graph model,
its two single-branch ablations and a GCN baseline on the phish/hack
one-vs-rest task, then ranks the held-out accounts by predicted risk.

Run with::

    python examples/phishing_detection.py
"""

from __future__ import annotations

import numpy as np

from repro import DBG4ETH
from repro.baselines import GCNClassifier
from repro.chain import LedgerConfig, generate_ledger
from repro.data import DatasetConfig, SubgraphDatasetBuilder, train_test_split
from repro.experiments.runner import fast_dbg4eth_config
from repro.metrics import auc_score, classification_report


def build_task():
    ledger = generate_ledger(LedgerConfig().scaled(0.35))
    dataset = SubgraphDatasetBuilder(
        ledger, DatasetConfig(top_k=50, max_nodes_per_subgraph=45)).build()
    samples, labels = dataset.binary_task("phish/hack")
    return train_test_split(samples, labels, test_fraction=0.3, seed=1)


def main() -> None:
    train_s, train_y, test_s, test_y = build_task()
    print(f"Training on {len(train_s)} subgraphs, evaluating on {len(test_s)}.\n")

    contenders = {
        "DBG4ETH (double graph)": DBG4ETH(fast_dbg4eth_config(epochs=8)),
        "GSG branch only": DBG4ETH(fast_dbg4eth_config(epochs=8, use_ldg=False)),
        "LDG branch only": DBG4ETH(fast_dbg4eth_config(epochs=8, use_gsg=False)),
        "GCN baseline": GCNClassifier(hidden_dim=16, epochs=10),
    }

    scored: dict[str, np.ndarray] = {}
    print(f"{'model':<28} {'precision':>9} {'recall':>9} {'f1':>9} {'accuracy':>9} {'auc':>7}")
    for name, model in contenders.items():
        model.fit(train_s, train_y)
        report = classification_report(test_y, model.predict(test_s))
        probabilities = model.predict_proba(test_s)
        scored[name] = probabilities
        auc = auc_score(test_y, probabilities)
        print(f"{name:<28} {report['precision'] * 100:9.2f} {report['recall'] * 100:9.2f} "
              f"{report['f1'] * 100:9.2f} {report['accuracy'] * 100:9.2f} {auc:7.3f}")

    print("\nTop-5 highest-risk accounts according to DBG4ETH:")
    risk = scored["DBG4ETH (double graph)"]
    order = np.argsort(-risk)[:5]
    for rank, idx in enumerate(order, start=1):
        sample = test_s[idx]
        truth = "phish/hack" if test_y[idx] == 1 else (sample.category or "unlabeled")
        print(f"  {rank}. {sample.center}  risk={risk[idx]:.3f}  true category: {truth}")


if __name__ == "__main__":
    main()
