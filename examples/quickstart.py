"""Quickstart: address in, prediction out with the `DeAnonymizer` facade.

The serving-grade flow of the reproduction in five steps:

1. generate a small synthetic Ethereum ledger;
2. construct a :class:`repro.DeAnonymizer` from it — the facade owns the whole
   pipeline (global graph build, 2-hop top-K ego sampling, single-pass deep
   feature extraction, GSG + LDG encoding, joint calibration, classification);
3. ``fit()`` a one-vs-rest head for the ``exchange`` category, evaluated on a
   held-out split;
4. ``save()`` the trained model (npz weights + json manifest) and ``load()``
   it into a fresh facade, as a server process would;
5. ``score(addresses)`` raw addresses end-to-end and print the per-category
   probabilities — including for accounts the model never trained on.

Run with::

    python examples/quickstart.py [--scale 0.4]
    python examples/quickstart.py --scenarios exchange mixer wash-trading \
        --category mixer

``--scenarios`` restricts the synthetic ledger to a subset of the registered
scenario families (see ``repro.chain.scenarios``); ``--category`` picks which
one-vs-rest head to train (default: ``exchange``).
"""

from __future__ import annotations

import argparse
import tempfile

from repro import DeAnonymizer, LedgerConfig, generate_ledger
from repro.chain import AccountCategory
from repro.data import DatasetConfig, SubgraphDatasetBuilder, train_test_split
from repro.experiments.runner import fast_dbg4eth_config
from repro.metrics import classification_report


def main(scale: float = 0.4, scenarios: list[str] | None = None,
         category: str = "exchange", batch_size: int = 1,
         build_workers: int = 1) -> None:
    print("1. Generating a synthetic Ethereum ledger ...")
    config = LedgerConfig()
    if scenarios:
        config = config.with_scenarios(scenarios)
        if category not in {c.value for c in config.labeled_per_category}:
            raise SystemExit(f"--category {category!r} is not among "
                             f"--scenarios {scenarios}")
    ledger = generate_ledger(config.scaled(scale))
    summary = ledger.summary()
    print(f"   {summary['num_accounts']} accounts, {summary['num_transactions']} transactions, "
          f"{summary['num_labeled']} labelled accounts")

    print("2. Constructing the DeAnonymizer facade (2-hop, top-K sampling) ...")
    dataset_config = DatasetConfig(top_k=60, max_nodes_per_subgraph=50)
    model_config = lambda: fast_dbg4eth_config(epochs=8, batch_size=batch_size)
    if build_workers > 1:
        print(f"   building the dataset with {build_workers} worker threads "
              "(bit-identical to sequential)")
        builder = SubgraphDatasetBuilder(ledger, dataset_config)
        dataset = builder.build(workers=build_workers, mode="thread")
        deanon = DeAnonymizer.from_dataset(dataset, ledger=ledger,
                                           dataset_config=dataset_config,
                                           model_config=model_config)
    else:
        deanon = DeAnonymizer(ledger, dataset_config=dataset_config,
                              model_config=model_config)
        dataset = deanon.dataset
    print(f"   {len(dataset)} subgraph samples across categories {dataset.categories()}")

    print(f"3. Training the {category!r} one-vs-rest head on a 70% split ...")
    samples, labels = dataset.binary_task(category)
    train_s, train_y, test_s, test_y = train_test_split(samples, labels, test_fraction=0.3)
    deanon.fit_category(category, train_s, train_y)

    print("4. Evaluating on the held-out split ...")
    report = classification_report(test_y, deanon.predict_samples(category, test_s))
    for metric, value in report.items():
        print(f"   {metric:>9}: {value * 100:6.2f}%")

    print("5. save() -> load() round trip, then scoring raw addresses ...")
    with tempfile.TemporaryDirectory() as model_dir:
        deanon.save(model_dir)
        served = DeAnonymizer.load(model_dir, ledger)
        addresses = [sample.center for sample in test_s[:5]]
        scores = served.score(addresses)
        for address, per_category in scores.items():
            truth = ledger.labels.get(address)
            label = truth.value if truth else "unlabeled"
            print(f"   {address}  P({category})={per_category[category]:.3f}  "
                  f"true: {label}")

    print(f"6. Adaptive calibration weights of the {category!r} head (Eq. 24-25):")
    for branch, weights in deanon.head(category).calibration_weights().items():
        formatted = ", ".join(f"{name}={weight:+.2f}" for name, weight in weights.items())
        print(f"   {branch.upper()}: {formatted}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.4,
                        help="ledger scale multiplier (smaller = faster; CI uses 0.15)")
    parser.add_argument("--scenarios", nargs="+", default=None,
                        metavar="FAMILY",
                        choices=[c.value for c in AccountCategory],
                        help="restrict the ledger to these scenario families "
                             "(default: all nine)")
    parser.add_argument("--category", default="exchange",
                        help="which one-vs-rest head to train (default: exchange)")
    parser.add_argument("--batch-size", type=int, default=1,
                        help="training minibatch size for both branches; >1 "
                             "forwards each minibatch as one block-diagonal "
                             "sparse pass (default: 1, the per-sample loop)")
    parser.add_argument("--build-workers", type=int, default=1,
                        help="thread workers for the dataset build; the "
                             "parallel build is bit-identical to the "
                             "sequential one (default: 1)")
    args = parser.parse_args()
    main(args.scale, scenarios=args.scenarios, category=args.category,
         batch_size=args.batch_size, build_workers=args.build_workers)
