"""Quickstart: classify Ethereum accounts with DBG4ETH on a synthetic ledger.

Generates a small synthetic Ethereum ledger, builds the account-centred
subgraph dataset, trains DBG4ETH on the ``exchange`` one-vs-rest task and
prints held-out precision / recall / F1 / accuracy plus the adaptive
calibration weights of both branches.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import DBG4ETH
from repro.chain import LedgerConfig, generate_ledger
from repro.data import DatasetConfig, SubgraphDatasetBuilder, train_test_split
from repro.experiments.runner import fast_dbg4eth_config
from repro.metrics import classification_report


def main() -> None:
    print("1. Generating a synthetic Ethereum ledger ...")
    ledger = generate_ledger(LedgerConfig().scaled(0.4))
    summary = ledger.summary()
    print(f"   {summary['num_accounts']} accounts, {summary['num_transactions']} transactions, "
          f"{summary['num_labeled']} labelled accounts")

    print("2. Building account-centred subgraphs (2-hop, top-K sampling) ...")
    dataset = SubgraphDatasetBuilder(
        ledger, DatasetConfig(top_k=60, max_nodes_per_subgraph=50)).build()
    print(f"   {len(dataset)} subgraph samples across categories {dataset.categories()}")

    print("3. Training DBG4ETH on the 'exchange' one-vs-rest task ...")
    samples, labels = dataset.binary_task("exchange")
    train_s, train_y, test_s, test_y = train_test_split(samples, labels, test_fraction=0.3)
    model = DBG4ETH(fast_dbg4eth_config(epochs=8))
    model.fit(train_s, train_y)

    print("4. Evaluating on the held-out split ...")
    report = classification_report(test_y, model.predict(test_s))
    for metric, value in report.items():
        print(f"   {metric:>9}: {value * 100:6.2f}%")

    print("5. Adaptive calibration weights (Eq. 24-25):")
    for branch, weights in model.calibration_weights().items():
        formatted = ", ".join(f"{name}={weight:+.2f}" for name, weight in weights.items())
        print(f"   {branch.upper()}: {formatted}")


if __name__ == "__main__":
    main()
