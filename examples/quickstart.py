"""Quickstart: address in, prediction out with the `DeAnonymizer` facade.

The serving-grade flow of the reproduction in five steps:

1. generate a small synthetic Ethereum ledger;
2. construct a :class:`repro.DeAnonymizer` from it — the facade owns the whole
   pipeline (global graph build, 2-hop top-K ego sampling, single-pass deep
   feature extraction, GSG + LDG encoding, joint calibration, classification);
3. ``fit()`` a one-vs-rest head for the ``exchange`` category, evaluated on a
   held-out split;
4. ``save()`` the trained model (npz weights + json manifest) and ``load()``
   it into a fresh facade, as a server process would;
5. ``score(addresses)`` raw addresses end-to-end and print the per-category
   probabilities — including for accounts the model never trained on.

Run with::

    python examples/quickstart.py [--scale 0.4]
"""

from __future__ import annotations

import argparse
import tempfile

from repro import DeAnonymizer, LedgerConfig, generate_ledger
from repro.data import DatasetConfig, train_test_split
from repro.experiments.runner import fast_dbg4eth_config
from repro.metrics import classification_report


def main(scale: float = 0.4) -> None:
    print("1. Generating a synthetic Ethereum ledger ...")
    ledger = generate_ledger(LedgerConfig().scaled(scale))
    summary = ledger.summary()
    print(f"   {summary['num_accounts']} accounts, {summary['num_transactions']} transactions, "
          f"{summary['num_labeled']} labelled accounts")

    print("2. Constructing the DeAnonymizer facade (2-hop, top-K sampling) ...")
    deanon = DeAnonymizer(ledger,
                          dataset_config=DatasetConfig(top_k=60, max_nodes_per_subgraph=50),
                          model_config=lambda: fast_dbg4eth_config(epochs=8))
    dataset = deanon.dataset
    print(f"   {len(dataset)} subgraph samples across categories {dataset.categories()}")

    print("3. Training the 'exchange' one-vs-rest head on a 70% split ...")
    samples, labels = dataset.binary_task("exchange")
    train_s, train_y, test_s, test_y = train_test_split(samples, labels, test_fraction=0.3)
    deanon.fit_category("exchange", train_s, train_y)

    print("4. Evaluating on the held-out split ...")
    report = classification_report(test_y, deanon.predict_samples("exchange", test_s))
    for metric, value in report.items():
        print(f"   {metric:>9}: {value * 100:6.2f}%")

    print("5. save() -> load() round trip, then scoring raw addresses ...")
    with tempfile.TemporaryDirectory() as model_dir:
        deanon.save(model_dir)
        served = DeAnonymizer.load(model_dir, ledger)
        addresses = [sample.center for sample in test_s[:5]]
        scores = served.score(addresses)
        for address, per_category in scores.items():
            truth = ledger.labels.get(address)
            label = truth.value if truth else "unlabeled"
            print(f"   {address}  P(exchange)={per_category['exchange']:.3f}  "
                  f"true: {label}")

    print("6. Adaptive calibration weights of the exchange head (Eq. 24-25):")
    for branch, weights in deanon.head("exchange").calibration_weights().items():
        formatted = ", ".join(f"{name}={weight:+.2f}" for name, weight in weights.items())
        print(f"   {branch.upper()}: {formatted}")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.4,
                        help="ledger scale multiplier (smaller = faster; CI uses 0.15)")
    main(parser.parse_args().scale)
