"""Novel account types (RQ4): bridge and DeFi classification with limited labels.

The cryptocurrency market keeps producing new account roles.  The paper adds
two novel categories — cross-chain bridges and DeFi users — and shows that
DBG4ETH reaches near-perfect accuracy with only 20-30% of the labels.  This
example repeats that study on the synthetic ledger through the
:class:`repro.DeAnonymizer` facade: the training-size sweep fits one facade
head per fraction (the Figure 8 experiment), and a final full-data facade
demonstrates the serving path — ``score()`` over bridge/DeFi addresses.

Run with::

    python examples/novel_account_types.py
"""

from __future__ import annotations

from repro import DeAnonymizer, LedgerConfig, generate_ledger
from repro.chain import AccountCategory
from repro.data import DatasetConfig
from repro.experiments.runner import fast_dbg4eth_config, run_training_size_sweep


def main() -> None:
    print("Generating ledger with bridge and DeFi activity ...")
    ledger = generate_ledger(LedgerConfig().scaled(0.4))
    deanon = DeAnonymizer(ledger,
                          dataset_config=DatasetConfig(top_k=50, max_nodes_per_subgraph=45),
                          model_config=lambda: fast_dbg4eth_config(epochs=6))
    dataset = deanon.dataset

    fractions = (0.1, 0.2, 0.3, 0.4, 0.5)
    for category in (AccountCategory.BRIDGE, AccountCategory.DEFI):
        print(f"\n=== {category.value} (training-fraction sweep, Figure 8) ===")
        results = run_training_size_sweep(
            dataset, category, fractions=fractions,
            config_factory=lambda: fast_dbg4eth_config(epochs=6))
        print(f"{'train fraction':>15} {'precision':>10} {'recall':>10} {'f1':>10} {'accuracy':>10}")
        for fraction in fractions:
            report = results[fraction]
            print(f"{fraction:>14.0%} {report['precision'] * 100:10.2f} "
                  f"{report['recall'] * 100:10.2f} {report['f1'] * 100:10.2f} "
                  f"{report['accuracy'] * 100:10.2f}")
        saturation = next((f for f in fractions if results[f]["f1"] >= 0.95 * results[fractions[-1]]["f1"]),
                          fractions[-1])
        print(f"F1 reaches 95% of its final value with only {saturation:.0%} of the labels.")

    print("\nServing both novel categories from one facade (full data) ...")
    deanon.fit([AccountCategory.BRIDGE, AccountCategory.DEFI])
    bridge_addresses = [s.center for s in dataset if s.category == "bridge"][:3]
    defi_addresses = [s.center for s in dataset if s.category == "defi"][:3]
    for address, per_category in deanon.score(bridge_addresses + defi_addresses).items():
        truth = ledger.labels.get(address)
        formatted = ", ".join(f"P({name})={p:.3f}" for name, p in sorted(per_category.items()))
        print(f"  {address}  {formatted}  true: {truth.value if truth else 'unlabeled'}")


if __name__ == "__main__":
    main()
