"""Legacy setup shim so `python setup.py develop` works on offline machines without `wheel`."""
from setuptools import setup

setup()
