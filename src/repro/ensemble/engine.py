"""Flat, array-backed histogram-GBDT engine.

This module is the vectorised core every tree-based head in the ensemble
builds on.  It replaces the two Python-loop hot spots of the recursive
``_Node`` trees:

* **Split finding** — features are pre-binned once into quantile buckets
  (:class:`HistogramBinner`), after which the per-node gradient/hessian (or
  per-class count) sums over *all bins of all candidate features* come from a
  single ``np.bincount`` pass over the node's rows.  Cumulative sums along the
  bin axis then score every candidate threshold at once, so the best split of
  a node is one vectorised reduction instead of a doubly-nested Python loop
  over features × thresholds.
* **Prediction** — fitted trees are stored as parallel preorder arrays
  (``feature`` / ``threshold`` / ``left`` / ``right`` / ``values``,
  :class:`FlatTree`) and predicted by *iterative* descent of all rows at
  once; :class:`FlatTreeStack` concatenates the arrays of a whole ensemble so
  every tree of every row advances one level per numpy step.

The array layout is exactly the preorder ``get_state`` format the persistence
layer has shipped since PR 3, so a :class:`FlatTree` round-trips PR-3-era
model directories bit-for-bit, and descent uses the same ``x <= threshold``
comparisons as the recursive reference — predictions are bit-identical, not
merely close.

Split thresholds are mapped back from bin space to raw feature space
(``threshold = edges[bin]``; ``np.searchsorted(edges, x) <= bin`` iff
``x <= edges[bin]`` with the default ``side='left'``), so fitted trees
predict directly on unbinned inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

import heapq

import numpy as np

__all__ = [
    "HistogramBinner",
    "FlatTree",
    "FlatTreeStack",
    "GrowthParams",
    "grow_regression_tree",
    "grow_classification_tree",
    "best_histogram_split",
    "newton_gain",
]

#: Gains below this are treated as "no usable split" (mirrors the exact
#: splitter's ``best_gain + 1e-15`` guard against splitting on noise).
MIN_GAIN = 1e-12


# --------------------------------------------------------------------------- binning
class HistogramBinner:
    """Quantile feature binning shared by every histogram-grown tree.

    ``fit`` computes at most ``max_bins - 1`` interior bin edges per feature
    (deduplicated quantiles, so constant or low-cardinality columns get fewer
    bins); ``transform`` maps values to integer codes with
    ``np.searchsorted(edges, x)`` — code ``c <= b``  iff  ``x <= edges[b]``,
    which is what lets split thresholds be expressed in raw feature space.
    """

    def __init__(self, max_bins: int = 32):
        if max_bins < 2:
            raise ValueError("max_bins must be at least 2")
        self.max_bins = max_bins
        self.edges_: list[np.ndarray] | None = None

    def fit(self, X: np.ndarray) -> "HistogramBinner":
        X = np.asarray(X, dtype=float)
        quantiles = np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1]
        self.edges_ = [np.unique(np.quantile(X[:, j], quantiles))
                       for j in range(X.shape[1])]
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        if self.edges_ is None:
            raise RuntimeError("binner has not been fitted")
        X = np.asarray(X, dtype=float)
        codes = np.empty(X.shape, dtype=np.int64)
        for j, edges in enumerate(self.edges_):
            codes[:, j] = np.searchsorted(edges, X[:, j])
        return codes

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


# --------------------------------------------------------------------------- flat trees
class FlatTree:
    """A decision tree as parallel preorder arrays with batched predict.

    ``feature[i] == -1`` marks a leaf (``threshold`` is NaN there, children
    are ``-1``); internal nodes route ``x[feature] <= threshold`` to ``left``.
    ``values`` holds one row per node — a scalar for regression trees, a
    class-probability row for classification trees — with internal rows zero,
    matching the PR-3 ``get_state`` layout byte for byte.
    """

    __slots__ = ("feature", "threshold", "left", "right", "values", "n_features")

    def __init__(self, feature, threshold, left, right, values, n_features: int):
        self.feature = np.asarray(feature, dtype=np.int64)
        self.threshold = np.asarray(threshold, dtype=np.float64)
        self.left = np.asarray(left, dtype=np.int64)
        self.right = np.asarray(right, dtype=np.int64)
        self.values = np.asarray(values, dtype=np.float64)
        self.n_features = int(n_features)

    # ----------------------------------------------------------------- state
    def get_state(self) -> dict:
        """The preorder-array state contract shared with PR-3-era models."""
        return {
            "n_features": self.n_features,
            "feature": self.feature,
            "threshold": self.threshold,
            "left": self.left,
            "right": self.right,
            "values": self.values,
        }

    @classmethod
    def from_state(cls, state: dict) -> "FlatTree":
        return cls(state["feature"], state["threshold"], state["left"],
                   state["right"], state["values"], state["n_features"])

    @property
    def n_nodes(self) -> int:
        return len(self.feature)

    @property
    def n_leaves(self) -> int:
        return int((self.feature < 0).sum())

    def depth(self) -> int:
        """Depth of the tree (0 for a single leaf), computed iteratively."""
        depths = np.zeros(self.n_nodes, dtype=np.int64)
        best = 0
        for idx in range(self.n_nodes):          # parents precede children in preorder
            if self.feature[idx] >= 0:
                child_depth = depths[idx] + 1
                depths[self.left[idx]] = child_depth
                depths[self.right[idx]] = child_depth
                best = max(best, int(child_depth))
        return best

    # --------------------------------------------------------------- predict
    def apply(self, X: np.ndarray) -> np.ndarray:
        """Leaf index reached by every row (batched iterative descent)."""
        X = np.asarray(X, dtype=float)
        node = np.zeros(len(X), dtype=np.int64)
        active = np.flatnonzero(self.feature[node] >= 0)
        while active.size:
            current = node[active]
            go_left = X[active, self.feature[current]] <= self.threshold[current]
            node[active] = np.where(go_left, self.left[current], self.right[current])
            active = active[self.feature[node[active]] >= 0]
        return node

    def predict_values(self, X: np.ndarray) -> np.ndarray:
        """Leaf value (row of ``values``) for every input row."""
        return self.values[self.apply(np.atleast_2d(np.asarray(X, dtype=float)))]


class FlatTreeStack:
    """All trees of an ensemble concatenated into one set of node arrays.

    Descent advances *every (tree, row) pair* one level per numpy step, so a
    whole ensemble's ``decision_function`` is ``O(depth)`` array operations
    regardless of tree count.  ``leaf_values`` returns the per-tree leaf rows
    so callers can accumulate them in exactly the same left-to-right order as
    the sequential per-tree loop (keeping results bit-identical to it).
    """

    __slots__ = ("feature", "threshold", "left", "right", "values", "roots", "n_trees")

    def __init__(self, trees: list[FlatTree]):
        if not trees:
            raise ValueError("cannot stack an empty tree list")
        offsets = np.cumsum([0] + [tree.n_nodes for tree in trees[:-1]])
        self.roots = np.asarray(offsets, dtype=np.int64)
        self.n_trees = len(trees)
        self.feature = np.concatenate([tree.feature for tree in trees])
        self.threshold = np.concatenate([tree.threshold for tree in trees])
        self.left = np.concatenate([tree.left + off
                                    for tree, off in zip(trees, offsets)])
        self.right = np.concatenate([tree.right + off
                                     for tree, off in zip(trees, offsets)])
        values = [np.atleast_1d(tree.values) for tree in trees]
        self.values = np.concatenate(values, axis=0)

    def apply(self, X: np.ndarray) -> np.ndarray:
        """(n_trees, n_rows) global node index reached by every pair."""
        X = np.asarray(X, dtype=float)
        n_rows = len(X)
        node = np.repeat(self.roots, n_rows)
        row = np.tile(np.arange(n_rows), self.n_trees)
        active = np.flatnonzero(self.feature[node] >= 0)
        while active.size:
            current = node[active]
            go_left = X[row[active], self.feature[current]] <= self.threshold[current]
            node[active] = np.where(go_left, self.left[current], self.right[current])
            active = active[self.feature[node[active]] >= 0]
        return node.reshape(self.n_trees, n_rows)

    def leaf_values(self, X: np.ndarray) -> np.ndarray:
        """Per-tree leaf values: shape (n_trees, n_rows) or (n_trees, n_rows, k)."""
        return self.values[self.apply(np.atleast_2d(np.asarray(X, dtype=float)))]


# --------------------------------------------------------------------------- split finding
def newton_gain(g_sum: np.ndarray, h_sum: np.ndarray, g_total: float,
                h_total: float, reg_lambda: float) -> np.ndarray:
    """Second-order split gain: GL²/(HL+λ) + GR²/(HR+λ) − G²/(H+λ).

    With unit hessians and λ=0 this reduces to the sum-of-squares reduction,
    which orders splits identically to the exact splitter's variance gain.
    """
    g_right = g_total - g_sum
    h_right = h_total - h_sum
    with np.errstate(divide="ignore", invalid="ignore"):
        gain = (g_sum ** 2 / (h_sum + reg_lambda)
                + g_right ** 2 / (h_right + reg_lambda)
                - g_total ** 2 / (h_total + reg_lambda))
    return np.where(np.isfinite(gain), gain, -np.inf)


@dataclass
class GrowthParams:
    """Hyperparameters shared by the histogram tree growers."""

    max_depth: int = 3
    min_samples_split: int = 2
    min_samples_leaf: int = 1
    max_features: int | None = None
    reg_lambda: float = 0.0
    #: Grow leaf-wise (best-gain-first, LightGBM style) instead of depth-wise.
    leaf_wise: bool = False
    #: Leaf budget for leaf-wise growth; ``None`` means bounded by depth only.
    max_leaves: int | None = None


def _node_histograms(codes: np.ndarray, rows: np.ndarray, features: np.ndarray,
                     max_bins: int, weights: list[np.ndarray]) -> list[np.ndarray]:
    """Per-(feature, bin) sums of each weight array over ``rows``.

    One ``np.bincount`` per weight array covers every candidate feature at
    once: codes are offset into disjoint ``max_bins``-wide slots per feature
    and the flattened counts reshaped to ``(len(features), max_bins)``.
    """
    sub = codes[np.ix_(rows, features)]
    flat = (sub + np.arange(len(features), dtype=np.int64) * max_bins).ravel()
    length = len(features) * max_bins
    out = []
    for w in weights:
        if w is None:
            hist = np.bincount(flat, minlength=length).astype(np.float64)
        else:
            expanded = np.broadcast_to(w[rows, None], sub.shape).ravel()
            hist = np.bincount(flat, weights=expanded, minlength=length)
        out.append(hist.reshape(len(features), max_bins))
    return out


def best_histogram_split(codes: np.ndarray, rows: np.ndarray, g: np.ndarray,
                         h: np.ndarray, n_edges: np.ndarray, max_bins: int,
                         params: GrowthParams,
                         features: np.ndarray | None = None
                         ) -> tuple[int, int, float] | None:
    """Best (feature, bin, gain) over all bins of all candidate features.

    Returns ``None`` when no candidate satisfies ``min_samples_leaf`` on both
    sides with a positive gain.  ``features`` restricts the candidate set
    (per-node feature subsampling); bins at or past a feature's edge count are
    invalid because they have no raw-space threshold.
    """
    if features is None:
        features = np.arange(codes.shape[1])
    cnt, g_hist, h_hist = _node_histograms(codes, rows, features, max_bins,
                                           [None, g, h])
    cum_cnt = np.cumsum(cnt, axis=1)
    cum_g = np.cumsum(g_hist, axis=1)
    cum_h = np.cumsum(h_hist, axis=1)
    n = len(rows)
    g_total = float(cum_g[0, -1]) if len(features) else 0.0
    h_total = float(cum_h[0, -1]) if len(features) else 0.0
    gain = newton_gain(cum_g, cum_h, g_total, h_total, params.reg_lambda)
    left_n = cum_cnt
    valid = ((left_n >= params.min_samples_leaf)
             & (n - left_n >= params.min_samples_leaf)
             & (np.arange(max_bins) < n_edges[features, None]))
    gain = np.where(valid, gain, -np.inf)
    flat_best = int(np.argmax(gain))
    feat_pos, bin_idx = divmod(flat_best, max_bins)
    best_gain = float(gain[feat_pos, bin_idx])
    if not np.isfinite(best_gain) or best_gain <= MIN_GAIN:
        return None
    return int(features[feat_pos]), int(bin_idx), best_gain


def _best_gini_split(codes: np.ndarray, rows: np.ndarray, y_idx: np.ndarray,
                     n_classes: int, n_edges: np.ndarray, max_bins: int,
                     params: GrowthParams, features: np.ndarray | None
                     ) -> tuple[int, int, float] | None:
    """Gini-gain analogue of :func:`best_histogram_split` for classification.

    Per-(feature, bin, class) counts come from one bincount over
    ``slot * n_classes + class``; maximising ``Σc nL_c²/nL + Σc nR_c²/nR`` is
    equivalent to maximising the Gini gain.
    """
    if features is None:
        features = np.arange(codes.shape[1])
    sub = codes[np.ix_(rows, features)]
    slots = sub + np.arange(len(features), dtype=np.int64) * max_bins
    flat = slots.ravel() * n_classes + np.broadcast_to(
        y_idx[rows, None], sub.shape).ravel()
    counts = np.bincount(flat, minlength=len(features) * max_bins * n_classes)
    counts = counts.reshape(len(features), max_bins, n_classes).astype(np.float64)
    cum = np.cumsum(counts, axis=1)                       # left class counts
    total = cum[:, -1:, :]
    n = float(len(rows))
    left_n = cum.sum(axis=2)
    right_n = n - left_n
    with np.errstate(divide="ignore", invalid="ignore"):
        score = ((cum ** 2).sum(axis=2) / left_n
                 + ((total - cum) ** 2).sum(axis=2) / right_n)
    parent_score = float((total[:, 0, :][0] ** 2).sum() / n) if len(features) else 0.0
    gain = np.where(np.isfinite(score), score, -np.inf) - parent_score
    valid = ((left_n >= params.min_samples_leaf)
             & (right_n >= params.min_samples_leaf)
             & (np.arange(max_bins) < n_edges[features, None]))
    gain = np.where(valid, gain, -np.inf)
    flat_best = int(np.argmax(gain))
    feat_pos, bin_idx = divmod(flat_best, max_bins)
    best_gain = float(gain[feat_pos, bin_idx])
    # Normalise to the exact splitter's weighted-Gini-gain scale (divide by n).
    if not np.isfinite(best_gain) or best_gain / n <= MIN_GAIN:
        return None
    return int(features[feat_pos]), int(bin_idx), best_gain / n


# --------------------------------------------------------------------------- growth
class _Growth:
    """Mutable node arrays accumulated during growth, preorder-normalised at the end."""

    def __init__(self, n_features: int, value_width: int | None):
        self.feature: list[int] = []
        self.threshold: list[float] = []
        self.left: list[int] = []
        self.right: list[int] = []
        self.values: list = []
        self.n_features = n_features
        self.value_width = value_width

    def add(self, value) -> int:
        idx = len(self.feature)
        self.feature.append(-1)
        self.threshold.append(np.nan)
        self.left.append(-1)
        self.right.append(-1)
        self.values.append(value)
        return idx

    def split(self, idx: int, feature: int, threshold: float,
              left: int, right: int) -> None:
        self.feature[idx] = feature
        self.threshold[idx] = threshold
        self.left[idx] = left
        self.right[idx] = right
        if self.value_width is None:
            self.values[idx] = 0.0
        else:
            self.values[idx] = np.zeros(self.value_width)

    def to_tree(self) -> FlatTree:
        """Renumber nodes into preorder (the PR-3 state layout) and freeze."""
        order: list[int] = []
        stack = [0]
        while stack:
            idx = stack.pop()
            order.append(idx)
            if self.feature[idx] >= 0:
                stack.append(self.right[idx])   # right pushed first -> left visited first
                stack.append(self.left[idx])
        position = {old: new for new, old in enumerate(order)}
        feature = np.asarray([self.feature[i] for i in order], dtype=np.int64)
        threshold = np.asarray([self.threshold[i] for i in order], dtype=np.float64)
        left = np.asarray([position[self.left[i]] if self.feature[i] >= 0 else -1
                           for i in order], dtype=np.int64)
        right = np.asarray([position[self.right[i]] if self.feature[i] >= 0 else -1
                            for i in order], dtype=np.int64)
        values = np.asarray([self.values[i] for i in order], dtype=np.float64)
        return FlatTree(feature, threshold, left, right, values, self.n_features)


def _candidate_features(n_features: int, params: GrowthParams,
                        rng: np.random.Generator | None) -> np.ndarray | None:
    if params.max_features is None or params.max_features >= n_features:
        return None
    generator = rng or np.random.default_rng(0)
    return generator.choice(n_features, size=params.max_features, replace=False)


def grow_regression_tree(codes: np.ndarray, edges: list[np.ndarray],
                         g: np.ndarray, h: np.ndarray, params: GrowthParams,
                         rng: np.random.Generator | None = None,
                         leaf_sign: float = 1.0) -> FlatTree:
    """Grow a histogram regression tree on gradient/hessian sums.

    Leaf values are ``leaf_sign * G / (H + λ)`` — ``leaf_sign=1`` with unit
    hessians and λ=0 fits the mean of ``g`` (first-order residual boosting);
    ``leaf_sign=-1`` with logistic hessians is the Newton leaf ``-G/(H+λ)``
    of second-order boosting.  Growth is depth-wise, or best-gain-first when
    ``params.leaf_wise`` (bounded by ``params.max_leaves``).
    """
    g = np.asarray(g, dtype=np.float64)
    h = np.asarray(h, dtype=np.float64)
    n_features = codes.shape[1]
    max_bins = max((len(e) for e in edges), default=0) + 1
    n_edges = np.asarray([len(e) for e in edges], dtype=np.int64)
    growth = _Growth(n_features, value_width=None)

    def leaf_value(rows: np.ndarray) -> float:
        g_sum = float(g[rows].sum())
        h_sum = float(h[rows].sum())
        denominator = h_sum + params.reg_lambda
        return float(leaf_sign * g_sum / denominator) if denominator > 0.0 else 0.0

    def find_split(rows: np.ndarray, depth: int):
        if depth >= params.max_depth or len(rows) < params.min_samples_split:
            return None
        features = _candidate_features(n_features, params, rng)
        return best_histogram_split(codes, rows, g, h, n_edges, max_bins,
                                    params, features)

    def partition(rows: np.ndarray, feature: int, bin_idx: int):
        go_left = codes[rows, feature] <= bin_idx
        return rows[go_left], rows[~go_left]

    return _grow(growth, np.arange(len(codes)), edges, params,
                 find_split, partition, leaf_value)


def grow_classification_tree(codes: np.ndarray, edges: list[np.ndarray],
                             y_idx: np.ndarray, n_classes: int,
                             params: GrowthParams,
                             rng: np.random.Generator | None = None) -> FlatTree:
    """Grow a histogram Gini classification tree; leaves hold class proportions."""
    y_idx = np.asarray(y_idx, dtype=np.int64)
    n_features = codes.shape[1]
    max_bins = max((len(e) for e in edges), default=0) + 1
    n_edges = np.asarray([len(e) for e in edges], dtype=np.int64)
    growth = _Growth(n_features, value_width=n_classes)

    def leaf_value(rows: np.ndarray) -> np.ndarray:
        if not len(rows):
            return np.full(n_classes, 1.0 / n_classes)
        counts = np.bincount(y_idx[rows], minlength=n_classes)
        return counts / len(rows)

    def find_split(rows: np.ndarray, depth: int):
        if depth >= params.max_depth or len(rows) < params.min_samples_split:
            return None
        counts = np.bincount(y_idx[rows], minlength=n_classes)
        if (counts > 0).sum() <= 1:                 # pure node
            return None
        features = _candidate_features(n_features, params, rng)
        return _best_gini_split(codes, rows, y_idx, n_classes, n_edges,
                                max_bins, params, features)

    def partition(rows: np.ndarray, feature: int, bin_idx: int):
        go_left = codes[rows, feature] <= bin_idx
        return rows[go_left], rows[~go_left]

    return _grow(growth, np.arange(len(codes)), edges, params,
                 find_split, partition, leaf_value)


def _grow(growth: _Growth, rows: np.ndarray, edges: list[np.ndarray],
          params: GrowthParams, find_split, partition, leaf_value) -> FlatTree:
    """Shared growth loop: depth-wise DFS or leaf-wise best-first."""
    root = growth.add(leaf_value(rows))
    if params.leaf_wise:
        _grow_leaf_wise(growth, root, rows, edges, params, find_split,
                        partition, leaf_value)
    else:
        _grow_depth_wise(growth, root, rows, edges, params, find_split,
                         partition, leaf_value)
    return growth.to_tree()


def _grow_depth_wise(growth, root, rows, edges, params, find_split,
                     partition, leaf_value) -> None:
    stack = [(root, rows, 0)]
    while stack:
        idx, node_rows, depth = stack.pop()
        split = find_split(node_rows, depth)
        if split is None:
            continue
        feature, bin_idx, _ = split
        left_rows, right_rows = partition(node_rows, feature, bin_idx)
        left = growth.add(leaf_value(left_rows))
        right = growth.add(leaf_value(right_rows))
        growth.split(idx, feature, float(edges[feature][bin_idx]), left, right)
        stack.append((right, right_rows, depth + 1))
        stack.append((left, left_rows, depth + 1))


def _grow_leaf_wise(growth, root, rows, edges, params, find_split,
                    partition, leaf_value) -> None:
    """Best-gain-first growth with a leaf budget (LightGBM's growth order)."""
    counter = 0                                    # tie-break: FIFO, keeps heap stable
    heap: list[tuple] = []

    def push(idx: int, node_rows: np.ndarray, depth: int) -> None:
        nonlocal counter
        split = find_split(node_rows, depth)
        if split is not None:
            heapq.heappush(heap, (-split[2], counter, idx, node_rows, depth, split))
            counter += 1

    push(root, rows, 0)
    n_leaves = 1
    budget = params.max_leaves if params.max_leaves is not None else np.inf
    while heap and n_leaves < budget:
        _, _, idx, node_rows, depth, (feature, bin_idx, _) = heapq.heappop(heap)
        left_rows, right_rows = partition(node_rows, feature, bin_idx)
        left = growth.add(leaf_value(left_rows))
        right = growth.add(leaf_value(right_rows))
        growth.split(idx, feature, float(edges[feature][bin_idx]), left, right)
        n_leaves += 1
        push(left, left_rows, depth + 1)
        push(right, right_rows, depth + 1)
