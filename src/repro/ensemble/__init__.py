"""Classical classifiers used as the final account-classification stage.

DBG4ETH feeds the calibrated GSG/LDG probabilities into a LightGBM classifier;
the Figure 7 study also compares random forest, AdaBoost, XGBoost and an MLP.
All of them are reimplemented here from scratch on numpy behind a common
``fit`` / ``predict`` / ``predict_proba`` interface.
"""

from repro.ensemble.tree import DecisionTreeClassifier, DecisionTreeRegressor
from repro.ensemble.boosting import (
    GradientBoostingClassifier,
    LightGBMClassifier,
    XGBoostClassifier,
    AdaBoostClassifier,
)
from repro.ensemble.forest import RandomForestClassifier
from repro.ensemble.mlp import MLPClassifier

__all__ = [
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "GradientBoostingClassifier",
    "LightGBMClassifier",
    "XGBoostClassifier",
    "AdaBoostClassifier",
    "RandomForestClassifier",
    "MLPClassifier",
]
