"""Classical classifiers used as the final account-classification stage.

DBG4ETH feeds the calibrated GSG/LDG probabilities into a LightGBM classifier;
the Figure 7 study also compares random forest, AdaBoost, XGBoost and an MLP.
All of them are reimplemented here from scratch on numpy behind a common
``fit`` / ``predict`` / ``predict_proba`` interface.  The tree-based heads fit
and predict on the flat histogram engine (:mod:`repro.ensemble.engine`); the
recursive exact-splitter trees remain available as the validated reference
(``tree_method="exact"``).
"""

from repro.ensemble.engine import (
    FlatTree,
    FlatTreeStack,
    GrowthParams,
    HistogramBinner,
)
from repro.ensemble.tree import (
    DecisionTreeClassifier,
    DecisionTreeRegressor,
    FlatClassifierTree,
)
from repro.ensemble.boosting import (
    GradientBoostingClassifier,
    LightGBMClassifier,
    XGBoostClassifier,
    AdaBoostClassifier,
)
from repro.ensemble.forest import RandomForestClassifier
from repro.ensemble.mlp import MLPClassifier

__all__ = [
    "FlatTree",
    "FlatTreeStack",
    "GrowthParams",
    "HistogramBinner",
    "DecisionTreeClassifier",
    "DecisionTreeRegressor",
    "FlatClassifierTree",
    "GradientBoostingClassifier",
    "LightGBMClassifier",
    "XGBoostClassifier",
    "AdaBoostClassifier",
    "RandomForestClassifier",
    "MLPClassifier",
]
