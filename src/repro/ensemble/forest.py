"""Random forest classifier (bagged Gini trees with feature subsampling).

Trees are histogram-grown flat trees by default (quantile binning shared by
the whole forest, one vectorised split search per node);
``tree_method="exact"`` fits the recursive exact-splitter reference instead.
Prediction stacks every tree's preorder arrays once
(:class:`~repro.ensemble.engine.FlatTreeStack`) and descends the whole forest
per batch; per-tree class probabilities are pre-aligned to the forest's
global class order, and votes are accumulated tree-by-tree in the same
left-to-right order as the original per-tree loop so results stay
bit-identical to it.
"""

from __future__ import annotations

import numpy as np

from repro.ensemble.engine import FlatTree, FlatTreeStack, GrowthParams, \
    HistogramBinner, grow_classification_tree
from repro.ensemble.tree import DecisionTreeClassifier, FlatClassifierTree

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier:
    """Bootstrap-aggregated decision trees with per-split feature subsampling."""

    def __init__(self, n_estimators: int = 50, max_depth: int = 6,
                 max_features: str | int | None = "sqrt", min_samples_leaf: int = 1,
                 seed: int = 0, max_bins: int = 32, tree_method: str = "hist"):
        if tree_method not in ("hist", "exact"):
            raise ValueError(f"unsupported tree_method: {tree_method!r}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.max_features = max_features
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self.max_bins = max_bins
        self.tree_method = tree_method
        self._trees: list[FlatClassifierTree] = []
        self.classes_: np.ndarray | None = None
        self._stack: FlatTreeStack | None = None
        self._aligned: list[np.ndarray] = []

    def _resolve_max_features(self, n_features: int) -> int | None:
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if isinstance(self.max_features, int):
            return max(1, min(self.max_features, n_features))
        raise ValueError(f"unsupported max_features: {self.max_features!r}")

    def fit(self, X, y) -> "RandomForestClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        rng = np.random.default_rng(self.seed)
        max_features = self._resolve_max_features(X.shape[1])
        self._trees = []
        self._invalidate_stack()
        n = len(y)
        if self.tree_method == "hist":
            binner = HistogramBinner(self.max_bins).fit(X)
            codes = binner.transform(X)
            params = GrowthParams(max_depth=self.max_depth,
                                  min_samples_leaf=self.min_samples_leaf,
                                  max_features=max_features)
        for _ in range(self.n_estimators):
            idx = rng.choice(n, size=n, replace=True)
            tree_rng = np.random.default_rng(rng.integers(1 << 31))
            if self.tree_method == "hist":
                sub_y = y[idx]
                classes = np.unique(sub_y)
                y_idx = np.searchsorted(classes, sub_y)
                grown = grow_classification_tree(codes[idx], binner.edges_,
                                                 y_idx, len(classes),
                                                 params, tree_rng)
                self._trees.append(FlatClassifierTree(grown, classes))
            else:
                reference = DecisionTreeClassifier(
                    max_depth=self.max_depth,
                    min_samples_leaf=self.min_samples_leaf,
                    max_features=max_features,
                    rng=tree_rng,
                )
                reference.fit(X[idx], y[idx])
                self._trees.append(FlatClassifierTree.from_state(reference.get_state()))
        return self

    def _invalidate_stack(self) -> None:
        self._stack = None
        self._aligned = []

    def _build_stack(self) -> None:
        """Stack all trees and pre-align their leaf rows to the global classes.

        Bootstrap samples may miss classes, so each tree's value rows are
        scattered into the forest-wide class columns (disjoint columns — the
        scatter is bitwise-exact, no arithmetic involved).  The stack is built
        from class-aligned tree copies, not the raw trees: per-tree ``values``
        widths differ when a tree saw a class subset, and
        :class:`FlatTreeStack` needs uniform rows to concatenate.
        """
        n_classes = len(self.classes_)
        self._aligned = []
        stackable = []
        for tree in self._trees:
            columns = np.searchsorted(self.classes_, tree.classes_)
            aligned = np.zeros((tree.flat.n_nodes, n_classes))
            aligned[:, columns] = tree.flat.values
            self._aligned.append(aligned)
            stackable.append(FlatTree(tree.flat.feature, tree.flat.threshold,
                                      tree.flat.left, tree.flat.right,
                                      aligned, tree.flat.n_features))
        self._stack = FlatTreeStack(stackable)

    def predict_proba(self, X) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("forest has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if self._stack is None:
            self._build_stack()
        node = self._stack.apply(X)                 # (n_trees, n_rows) global idx
        votes = np.zeros((len(X), len(self.classes_)))
        for t, (aligned, root) in enumerate(zip(self._aligned, self._stack.roots)):
            votes += aligned[node[t] - root]
        return votes / len(self._trees)

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]

    def get_state(self) -> dict:
        """Serializable fitted state: the class labels and every bagged tree."""
        if not self._trees:
            raise RuntimeError("forest has not been fitted")
        return {
            "classes": np.asarray(self.classes_),
            "trees": [tree.get_state() for tree in self._trees],
        }

    def set_state(self, state: dict) -> "RandomForestClassifier":
        self.classes_ = np.asarray(state["classes"])
        self._trees = [FlatClassifierTree.from_state(tree)
                       for tree in state["trees"]]
        self._invalidate_stack()
        return self
