"""Random forest classifier (bagged Gini trees with feature subsampling)."""

from __future__ import annotations

import numpy as np

from repro.ensemble.tree import DecisionTreeClassifier

__all__ = ["RandomForestClassifier"]


class RandomForestClassifier:
    """Bootstrap-aggregated decision trees with per-split feature subsampling."""

    def __init__(self, n_estimators: int = 50, max_depth: int = 6,
                 max_features: str | int | None = "sqrt", min_samples_leaf: int = 1,
                 seed: int = 0):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.max_features = max_features
        self.min_samples_leaf = min_samples_leaf
        self.seed = seed
        self._trees: list[DecisionTreeClassifier] = []
        self.classes_: np.ndarray | None = None

    def _resolve_max_features(self, n_features: int) -> int | None:
        if self.max_features is None:
            return None
        if self.max_features == "sqrt":
            return max(1, int(np.sqrt(n_features)))
        if isinstance(self.max_features, int):
            return max(1, min(self.max_features, n_features))
        raise ValueError(f"unsupported max_features: {self.max_features!r}")

    def fit(self, X, y) -> "RandomForestClassifier":
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        rng = np.random.default_rng(self.seed)
        max_features = self._resolve_max_features(X.shape[1])
        self._trees = []
        n = len(y)
        for _ in range(self.n_estimators):
            idx = rng.choice(n, size=n, replace=True)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=max_features,
                rng=np.random.default_rng(rng.integers(1 << 31)),
            )
            tree.fit(X[idx], y[idx])
            self._trees.append(tree)
        return self

    def predict_proba(self, X) -> np.ndarray:
        if not self._trees:
            raise RuntimeError("forest has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        votes = np.zeros((len(X), len(self.classes_)))
        for tree in self._trees:
            probs = tree.predict_proba(X)
            # Align tree classes (which may be a subset after bootstrap) with ours.
            for j, cls in enumerate(tree.classes_):
                column = np.flatnonzero(self.classes_ == cls)[0]
                votes[:, column] += probs[:, j]
        return votes / len(self._trees)

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]

    def get_state(self) -> dict:
        """Serializable fitted state: the class labels and every bagged tree."""
        if not self._trees:
            raise RuntimeError("forest has not been fitted")
        return {
            "classes": np.asarray(self.classes_),
            "trees": [tree.get_state() for tree in self._trees],
        }

    def set_state(self, state: dict) -> "RandomForestClassifier":
        self.classes_ = np.asarray(state["classes"])
        self._trees = [DecisionTreeClassifier(max_depth=self.max_depth).set_state(tree)
                       for tree in state["trees"]]
        return self
