"""Boosted tree classifiers: gradient boosting, LightGBM-style, XGBoost-style, AdaBoost."""

from __future__ import annotations

import numpy as np

from repro.ensemble.tree import DecisionTreeClassifier, DecisionTreeRegressor

__all__ = [
    "GradientBoostingClassifier",
    "LightGBMClassifier",
    "XGBoostClassifier",
    "AdaBoostClassifier",
]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


def _validate_binary(y: np.ndarray) -> np.ndarray:
    y = np.asarray(y)
    classes = np.unique(y)
    if not np.array_equal(classes, np.array([0, 1])) and not np.array_equal(classes, np.array([0])) \
            and not np.array_equal(classes, np.array([1])):
        raise ValueError("boosted classifiers expect binary labels in {0, 1}")
    return y.astype(float)


class _BoostedTreesState:
    """Shared get_state/set_state for additive regression-tree ensembles.

    Hosts expose ``learning_rate``, ``max_depth``, ``_base_score`` and
    ``_trees`` (a list of :class:`DecisionTreeRegressor`).
    """

    def get_state(self) -> dict:
        """Serializable fitted state: base score, shrinkage and every tree."""
        return {
            "learning_rate": float(self.learning_rate),
            "base_score": float(self._base_score),
            "trees": [tree.get_state() for tree in self._trees],
        }

    def set_state(self, state: dict):
        self.learning_rate = float(state["learning_rate"])
        self._base_score = float(state["base_score"])
        self._trees = [DecisionTreeRegressor(max_depth=self.max_depth).set_state(tree)
                       for tree in state["trees"]]
        return self


class GradientBoostingClassifier(_BoostedTreesState):
    """Binary gradient boosting with logistic loss and regression-tree weak learners."""

    def __init__(self, n_estimators: int = 50, learning_rate: float = 0.1,
                 max_depth: int = 3, subsample: float = 1.0, seed: int = 0):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.seed = seed
        self._trees: list[DecisionTreeRegressor] = []
        self._base_score = 0.0

    def fit(self, X, y) -> "GradientBoostingClassifier":
        X = np.asarray(X, dtype=float)
        y = _validate_binary(y)
        rng = np.random.default_rng(self.seed)
        positive_rate = np.clip(y.mean(), 1e-6, 1.0 - 1e-6)
        self._base_score = float(np.log(positive_rate / (1.0 - positive_rate)))
        raw = np.full(len(y), self._base_score)
        self._trees = []
        for _ in range(self.n_estimators):
            residual = y - _sigmoid(raw)          # negative gradient of logistic loss
            if self.subsample < 1.0:
                idx = rng.random(len(y)) < self.subsample
                if idx.sum() < 2:
                    idx = np.ones(len(y), dtype=bool)
            else:
                idx = np.ones(len(y), dtype=bool)
            tree = DecisionTreeRegressor(max_depth=self.max_depth,
                                         rng=np.random.default_rng(rng.integers(1 << 31)))
            tree.fit(X[idx], residual[idx])
            raw += self.learning_rate * tree.predict(X)
            self._trees.append(tree)
        return self

    def decision_function(self, X) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        raw = np.full(len(X), self._base_score)
        for tree in self._trees:
            raw += self.learning_rate * tree.predict(X)
        return raw

    def predict_proba(self, X) -> np.ndarray:
        positive = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - positive, positive])

    def predict(self, X) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(int)


class LightGBMClassifier(GradientBoostingClassifier):
    """LightGBM-style gradient boosting: histogram feature binning + deeper trees.

    The defining engineering tricks of LightGBM (histogram binning of features,
    leaf-wise growth) are approximated by pre-binning every feature into
    ``max_bins`` quantile buckets before fitting the same logistic-loss boosting
    machinery, which keeps split finding cheap and mirrors its robustness to
    outliers — the property the paper cites for choosing it.
    """

    def __init__(self, n_estimators: int = 60, learning_rate: float = 0.1,
                 max_depth: int = 4, max_bins: int = 32, subsample: float = 0.9, seed: int = 0):
        super().__init__(n_estimators, learning_rate, max_depth, subsample, seed)
        self.max_bins = max_bins
        self._bin_edges: list[np.ndarray] = []

    def _bin(self, X: np.ndarray, fit: bool) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if fit:
            self._bin_edges = []
            for j in range(X.shape[1]):
                quantiles = np.quantile(X[:, j], np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1])
                self._bin_edges.append(np.unique(quantiles))
        binned = np.empty_like(X)
        for j in range(X.shape[1]):
            binned[:, j] = np.searchsorted(self._bin_edges[j], X[:, j])
        return binned

    def fit(self, X, y) -> "LightGBMClassifier":
        binned = self._bin(np.atleast_2d(np.asarray(X, dtype=float)), fit=True)
        super().fit(binned, y)
        return self

    def decision_function(self, X) -> np.ndarray:
        binned = self._bin(np.atleast_2d(np.asarray(X, dtype=float)), fit=False)
        return super().decision_function(binned)

    def get_state(self) -> dict:
        state = super().get_state()
        state["bin_edges"] = [np.asarray(edges, dtype=float) for edges in self._bin_edges]
        return state

    def set_state(self, state: dict) -> "LightGBMClassifier":
        super().set_state(state)
        self._bin_edges = [np.asarray(edges, dtype=float) for edges in state["bin_edges"]]
        return self


class XGBoostClassifier(_BoostedTreesState):
    """Second-order (Newton) boosted trees with L2 leaf regularisation.

    Captures XGBoost's distinguishing feature relative to plain gradient
    boosting: leaf values are fitted to ``-G / (H + lambda)`` using both the
    gradient and the Hessian of the logistic loss.
    """

    def __init__(self, n_estimators: int = 50, learning_rate: float = 0.1,
                 max_depth: int = 3, reg_lambda: float = 1.0, seed: int = 0):
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.reg_lambda = reg_lambda
        self.seed = seed
        self._trees: list[DecisionTreeRegressor] = []
        self._base_score = 0.0

    def fit(self, X, y) -> "XGBoostClassifier":
        X = np.asarray(X, dtype=float)
        y = _validate_binary(y)
        positive_rate = np.clip(y.mean(), 1e-6, 1.0 - 1e-6)
        self._base_score = float(np.log(positive_rate / (1.0 - positive_rate)))
        raw = np.full(len(y), self._base_score)
        rng = np.random.default_rng(self.seed)
        self._trees = []
        for _ in range(self.n_estimators):
            p = _sigmoid(raw)
            gradient = p - y
            hessian = np.maximum(p * (1.0 - p), 1e-6)
            # Newton step target; the Hessian also regularises the leaf values.
            target = -gradient / (hessian + self.reg_lambda / max(len(y), 1))
            tree = DecisionTreeRegressor(max_depth=self.max_depth,
                                         rng=np.random.default_rng(rng.integers(1 << 31)))
            tree.fit(X, target)
            raw += self.learning_rate * tree.predict(X)
            self._trees.append(tree)
        return self

    def decision_function(self, X) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        raw = np.full(len(X), self._base_score)
        for tree in self._trees:
            raw += self.learning_rate * tree.predict(X)
        return raw

    def predict_proba(self, X) -> np.ndarray:
        positive = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - positive, positive])

    def predict(self, X) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(int)


class AdaBoostClassifier:
    """Discrete AdaBoost (SAMME) over depth-1 decision stumps."""

    def __init__(self, n_estimators: int = 50, max_depth: int = 1, seed: int = 0):
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.seed = seed
        self._stumps: list[DecisionTreeClassifier] = []
        self._alphas: list[float] = []

    def fit(self, X, y) -> "AdaBoostClassifier":
        X = np.asarray(X, dtype=float)
        y = _validate_binary(y).astype(int)
        signed = 2 * y - 1
        rng = np.random.default_rng(self.seed)
        n = len(y)
        weights = np.full(n, 1.0 / n)
        self._stumps, self._alphas = [], []
        for _ in range(self.n_estimators):
            # Weighted fitting via weighted resampling (keeps the tree code simple).
            idx = rng.choice(n, size=n, replace=True, p=weights)
            stump = DecisionTreeClassifier(max_depth=self.max_depth,
                                           rng=np.random.default_rng(rng.integers(1 << 31)))
            stump.fit(X[idx], y[idx])
            predictions = 2 * stump.predict(X).astype(int) - 1
            error = float(weights[predictions != signed].sum())
            error = np.clip(error, 1e-10, 1.0 - 1e-10)
            alpha = 0.5 * np.log((1.0 - error) / error)
            weights = weights * np.exp(-alpha * signed * predictions)
            weights /= weights.sum()
            self._stumps.append(stump)
            self._alphas.append(float(alpha))
            if error < 1e-9:
                break
        return self

    def decision_function(self, X) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        score = np.zeros(len(X))
        for stump, alpha in zip(self._stumps, self._alphas):
            score += alpha * (2 * stump.predict(X).astype(int) - 1)
        return score

    def predict_proba(self, X) -> np.ndarray:
        score = self.decision_function(X)
        total = sum(abs(a) for a in self._alphas) or 1.0
        positive = (score / total + 1.0) / 2.0
        return np.column_stack([1.0 - positive, positive])

    def predict(self, X) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(int)

    def get_state(self) -> dict:
        """Serializable fitted state: the weighted stump ensemble."""
        return {
            "alphas": [float(a) for a in self._alphas],
            "stumps": [stump.get_state() for stump in self._stumps],
        }

    def set_state(self, state: dict) -> "AdaBoostClassifier":
        self._alphas = [float(a) for a in state["alphas"]]
        self._stumps = [DecisionTreeClassifier(max_depth=self.max_depth).set_state(stump)
                        for stump in state["stumps"]]
        return self
