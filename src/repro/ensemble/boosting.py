"""Boosted tree classifiers: gradient boosting, LightGBM-style, XGBoost-style, AdaBoost.

All three additive heads fit on the flat histogram engine
(:mod:`repro.ensemble.engine`) by default: features are quantile-binned once
per fit, every node's best split comes from one vectorised bincount pass, and
prediction descends the stacked flat trees of the whole ensemble at once.
``tree_method="exact"`` preserves the original recursive exact-splitter
algorithms bit-for-bit as the reference implementation.

The heads differ in the boosting mathematics, mirroring their namesakes:

* :class:`GradientBoostingClassifier` — first-order logistic boosting; each
  tree fits the residual ``y - sigmoid(raw)`` with mean leaves.
* :class:`XGBoostClassifier` — second-order (Newton) logistic boosting; each
  tree fits gradient/hessian sums with L2-regularised leaves ``-G/(H+λ)``.
* :class:`LightGBMClassifier` — Newton boosting with *leaf-wise* (best-gain
  first) growth under a ``max_leaves`` budget plus row subsampling — the
  engineering profile the paper cites for robustness to outliers.

When the real ``lightgbm``/``xgboost`` packages are installed the LightGBM /
XGBoost heads can delegate to them (``backend="auto"``); in their absence the
heads degrade silently to the built-in engine (see
:mod:`repro.ensemble.native`).
"""

from __future__ import annotations

import base64

import numpy as np

from repro.ensemble import native
from repro.ensemble.engine import (
    FlatTree,
    FlatTreeStack,
    GrowthParams,
    HistogramBinner,
    grow_classification_tree,
    grow_regression_tree,
)
from repro.ensemble.tree import DecisionTreeClassifier, DecisionTreeRegressor, FlatClassifierTree

__all__ = [
    "GradientBoostingClassifier",
    "LightGBMClassifier",
    "XGBoostClassifier",
    "AdaBoostClassifier",
]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


def _validate_binary(y: np.ndarray) -> np.ndarray:
    y = np.asarray(y)
    classes = np.unique(y)
    if not np.array_equal(classes, np.array([0, 1])) and not np.array_equal(classes, np.array([0])) \
            and not np.array_equal(classes, np.array([1])):
        raise ValueError("boosted classifiers expect binary labels in {0, 1}")
    return y.astype(float)


class _BoostedTreesState:
    """Shared machinery for additive regression-tree ensembles.

    Hosts expose ``learning_rate``, ``max_depth``, ``min_samples_leaf``,
    ``max_features``, ``_base_score`` and ``_trees`` (a list of
    :class:`FlatTree`).  Prediction stacks every tree's flat arrays once and
    descends them together; the per-tree leaf contributions are accumulated
    left-to-right so scores stay bit-identical to the sequential loop.
    """

    _input_space = "raw"
    _native_booster = None

    def _transform_inputs(self, X: np.ndarray) -> np.ndarray:
        """Hook for heads whose persisted trees expect preprocessed inputs."""
        return X

    def decision_function(self, X) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if self._native_booster is not None:
            return self._native_raw_scores(X)
        X = self._transform_inputs(X)
        raw = np.full(len(X), self._base_score)
        if self._trees:
            if self._stack is None:
                self._stack = FlatTreeStack(self._trees)
            leaves = self._stack.leaf_values(X)
            for t in range(len(self._trees)):
                raw += self.learning_rate * leaves[t]
        return raw

    def predict_proba(self, X) -> np.ndarray:
        positive = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - positive, positive])

    def predict(self, X) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(int)

    # ------------------------------------------------------------- persistence
    def get_state(self) -> dict:
        """Serializable fitted state: base score, shrinkage and every tree.

        The per-tree payload is the PR-3 preorder-array contract;
        ``tree_params`` additionally records the fitted tree hyperparameters
        so ``set_state`` restores them (older states that lack the key leave
        the host's constructor values untouched).
        """
        if self._native_booster is not None:
            return self._native_get_state()
        return {
            "learning_rate": float(self.learning_rate),
            "base_score": float(self._base_score),
            "tree_params": {
                "max_depth": int(self.max_depth),
                "min_samples_leaf": int(self.min_samples_leaf),
                "max_features": None if self.max_features is None else int(self.max_features),
            },
            "trees": [tree.get_state() for tree in self._trees],
        }

    def set_state(self, state: dict):
        if "native_model" in state:
            self._set_native_state(state)
            return self
        self._native_booster = None
        self.learning_rate = float(state["learning_rate"])
        self._base_score = float(state["base_score"])
        tree_params = state.get("tree_params")
        if tree_params is not None:
            self.max_depth = int(tree_params["max_depth"])
            self.min_samples_leaf = int(tree_params["min_samples_leaf"])
            max_features = tree_params["max_features"]
            self.max_features = None if max_features is None else int(max_features)
        self._trees = [FlatTree.from_state(tree) for tree in state["trees"]]
        self._stack = None
        return self

    # ------------------------------------------------------- native escape hatch
    def _native_raw_scores(self, X: np.ndarray) -> np.ndarray:  # pragma: no cover
        raise NotImplementedError

    def _native_get_state(self) -> dict:  # pragma: no cover
        raise NotImplementedError

    def _set_native_state(self, state: dict) -> None:  # pragma: no cover
        raise NotImplementedError


class GradientBoostingClassifier(_BoostedTreesState):
    """Binary gradient boosting with logistic loss and regression-tree weak learners."""

    def __init__(self, n_estimators: int = 50, learning_rate: float = 0.1,
                 max_depth: int = 3, subsample: float = 1.0, seed: int = 0,
                 min_samples_leaf: int = 1, max_features: int | None = None,
                 max_bins: int = 32, tree_method: str = "hist"):
        if tree_method not in ("hist", "exact"):
            raise ValueError(f"unsupported tree_method: {tree_method!r}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.subsample = subsample
        self.seed = seed
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.max_bins = max_bins
        self.tree_method = tree_method
        self._trees: list[FlatTree] = []
        self._stack: FlatTreeStack | None = None
        self._base_score = 0.0

    def _subsample_mask(self, rng: np.random.Generator, n: int) -> np.ndarray:
        if self.subsample < 1.0:
            idx = rng.random(n) < self.subsample
            if idx.sum() < 2:
                idx = np.ones(n, dtype=bool)
            return idx
        return np.ones(n, dtype=bool)

    def _growth_params(self) -> GrowthParams:
        return GrowthParams(max_depth=self.max_depth,
                            min_samples_leaf=self.min_samples_leaf,
                            max_features=self.max_features)

    def fit(self, X, y) -> "GradientBoostingClassifier":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = _validate_binary(y)
        rng = np.random.default_rng(self.seed)
        positive_rate = np.clip(y.mean(), 1e-6, 1.0 - 1e-6)
        self._base_score = float(np.log(positive_rate / (1.0 - positive_rate)))
        raw = np.full(len(y), self._base_score)
        self._trees = []
        self._stack = None
        self._native_booster = None
        if self.tree_method == "hist":
            self._fit_hist(X, y, raw, rng)
        else:
            self._fit_exact(X, y, raw, rng)
        return self

    def _fit_hist(self, X: np.ndarray, y: np.ndarray, raw: np.ndarray,
                  rng: np.random.Generator) -> None:
        binner = HistogramBinner(self.max_bins).fit(X)
        codes = binner.transform(X)
        params = self._growth_params()
        for _ in range(self.n_estimators):
            residual = y - _sigmoid(raw)          # negative gradient of logistic loss
            idx = self._subsample_mask(rng, len(y))
            tree_rng = np.random.default_rng(rng.integers(1 << 31))
            tree = grow_regression_tree(codes[idx], binner.edges_, residual[idx],
                                        np.ones(int(idx.sum())), params, tree_rng)
            raw += self.learning_rate * tree.predict_values(X)
            self._trees.append(tree)

    def _fit_exact(self, X: np.ndarray, y: np.ndarray, raw: np.ndarray,
                   rng: np.random.Generator) -> None:
        """The original recursive exact-splitter algorithm (reference path)."""
        for _ in range(self.n_estimators):
            residual = y - _sigmoid(raw)
            idx = self._subsample_mask(rng, len(y))
            tree = DecisionTreeRegressor(max_depth=self.max_depth,
                                         min_samples_leaf=self.min_samples_leaf,
                                         max_features=self.max_features,
                                         rng=np.random.default_rng(rng.integers(1 << 31)))
            tree.fit(X[idx], residual[idx])
            raw += self.learning_rate * tree.predict(X)
            self._trees.append(tree.flat)


class LightGBMClassifier(GradientBoostingClassifier):
    """LightGBM-style boosting: histogram bins, Newton steps, leaf-wise growth.

    The defining engineering tricks of LightGBM are reproduced natively:
    features are quantile-binned once (``max_bins``), trees grow *leaf-wise*
    (always splitting the frontier leaf with the best gain, bounded by
    ``max_leaves`` and capped at ``max_depth``), and leaves take second-order
    Newton values ``-G/(H+λ)``.  Row subsampling mirrors bagging.  With
    ``tree_method="exact"`` the original PR-3 algorithm runs instead
    (first-order boosting over the binned feature values with the exact
    splitter) — also the semantics used to score PR-3-era persisted states,
    whose trees split on *binned* inputs (``input_space == "binned"``).

    With ``backend="auto"`` and the real ``lightgbm`` package installed, fit
    and predict delegate to a native booster; otherwise this engine runs.
    """

    def __init__(self, n_estimators: int = 60, learning_rate: float = 0.1,
                 max_depth: int = 4, max_bins: int = 32, subsample: float = 0.9,
                 seed: int = 0, min_samples_leaf: int = 1,
                 max_features: int | None = None, max_leaves: int = 15,
                 reg_lambda: float = 1e-3, tree_method: str = "hist",
                 backend: str = "auto"):
        super().__init__(n_estimators=n_estimators, learning_rate=learning_rate,
                         max_depth=max_depth, subsample=subsample, seed=seed,
                         min_samples_leaf=min_samples_leaf, max_features=max_features,
                         max_bins=max_bins, tree_method=tree_method)
        if backend not in ("auto", "native", "python"):
            raise ValueError(f"unsupported backend: {backend!r}")
        self.max_leaves = max_leaves
        self.reg_lambda = reg_lambda
        self.backend = backend
        self._bin_edges: list[np.ndarray] = []

    def _growth_params(self) -> GrowthParams:
        return GrowthParams(max_depth=self.max_depth,
                            min_samples_leaf=self.min_samples_leaf,
                            max_features=self.max_features,
                            reg_lambda=self.reg_lambda,
                            leaf_wise=True, max_leaves=self.max_leaves)

    def fit(self, X, y) -> "LightGBMClassifier":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        if self.backend in ("auto", "native") and native.HAS_LIGHTGBM:  # pragma: no cover
            self._fit_native(X, _validate_binary(y))
            return self
        if self.backend == "native":
            native.require_lightgbm()
        self._input_space = "raw"
        super().fit(X, y)
        return self

    def _fit_hist(self, X: np.ndarray, y: np.ndarray, raw: np.ndarray,
                  rng: np.random.Generator) -> None:
        binner = HistogramBinner(self.max_bins).fit(X)
        self._bin_edges = binner.edges_
        codes = binner.transform(X)
        params = self._growth_params()
        for _ in range(self.n_estimators):
            p = _sigmoid(raw)
            gradient = p - y
            hessian = np.maximum(p * (1.0 - p), 1e-6)
            idx = self._subsample_mask(rng, len(y))
            tree_rng = np.random.default_rng(rng.integers(1 << 31))
            tree = grow_regression_tree(codes[idx], binner.edges_, gradient[idx],
                                        hessian[idx], params, tree_rng,
                                        leaf_sign=-1.0)
            raw += self.learning_rate * tree.predict_values(X)
            self._trees.append(tree)

    def _fit_exact(self, X: np.ndarray, y: np.ndarray, raw: np.ndarray,
                   rng: np.random.Generator) -> None:
        """PR-3 reference algorithm: exact splits over binned feature values."""
        binned = self._legacy_bin(X, fit=True)
        self._input_space = "binned"
        super()._fit_exact(binned, y, raw, rng)

    def _legacy_bin(self, X: np.ndarray, fit: bool) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if fit:
            self._bin_edges = []
            for j in range(X.shape[1]):
                quantiles = np.quantile(X[:, j], np.linspace(0.0, 1.0, self.max_bins + 1)[1:-1])
                self._bin_edges.append(np.unique(quantiles))
        binned = np.empty_like(X)
        for j in range(X.shape[1]):
            binned[:, j] = np.searchsorted(self._bin_edges[j], X[:, j])
        return binned

    def _transform_inputs(self, X: np.ndarray) -> np.ndarray:
        # PR-3-era states hold trees fitted on binned values; new trees split
        # on raw feature space and need no preprocessing.
        if self._input_space == "binned":
            return self._legacy_bin(X, fit=False)
        return X

    def get_state(self) -> dict:
        state = super().get_state()
        if "native_model" in state:  # pragma: no cover - needs lightgbm
            return state
        state["bin_edges"] = [np.asarray(edges, dtype=float) for edges in self._bin_edges]
        state["input_space"] = self._input_space
        return state

    def set_state(self, state: dict) -> "LightGBMClassifier":
        super().set_state(state)
        if "native_model" in state:  # pragma: no cover - needs lightgbm
            return self
        self._bin_edges = [np.asarray(edges, dtype=float) for edges in state["bin_edges"]]
        # States predating the histogram engine carry binned-space trees.
        self._input_space = state.get("input_space", "binned")
        return self

    # ------------------------------------------------------- native delegation
    def _fit_native(self, X, y) -> None:  # pragma: no cover - needs lightgbm
        self._native_booster = native.fit_lightgbm_binary(
            X, y, n_estimators=self.n_estimators, learning_rate=self.learning_rate,
            max_depth=self.max_depth, max_leaves=self.max_leaves,
            max_bins=self.max_bins, subsample=self.subsample,
            min_samples_leaf=self.min_samples_leaf, reg_lambda=self.reg_lambda,
            seed=self.seed)
        self._trees = []
        self._stack = None

    def _native_raw_scores(self, X) -> np.ndarray:  # pragma: no cover
        return native.lightgbm_raw_scores(self._native_booster, X)

    def _native_get_state(self) -> dict:  # pragma: no cover
        return {"native_backend": "lightgbm",
                "native_model": native.lightgbm_to_string(self._native_booster)}

    def _set_native_state(self, state: dict) -> None:  # pragma: no cover
        self._native_booster = native.lightgbm_from_string(state["native_model"])
        self._trees = []
        self._stack = None


class XGBoostClassifier(_BoostedTreesState):
    """Second-order (Newton) boosted trees with L2 leaf regularisation.

    Captures XGBoost's distinguishing features relative to plain gradient
    boosting: every split is scored by the second-order gain
    ``GL²/(HL+λ) + GR²/(HR+λ) − G²/(H+λ)`` and leaves take the Newton value
    ``-G/(H+λ)`` using both the gradient and Hessian of the logistic loss.
    ``tree_method="exact"`` runs the original PR-3 approximation instead (an
    exact-splitter tree regressed onto the per-row Newton targets).  With
    ``backend="auto"`` and the real ``xgboost`` package installed, fit and
    predict delegate to a native booster.
    """

    def __init__(self, n_estimators: int = 50, learning_rate: float = 0.1,
                 max_depth: int = 3, reg_lambda: float = 1.0, seed: int = 0,
                 min_samples_leaf: int = 1, max_features: int | None = None,
                 max_bins: int = 32, tree_method: str = "hist",
                 backend: str = "auto"):
        if tree_method not in ("hist", "exact"):
            raise ValueError(f"unsupported tree_method: {tree_method!r}")
        if backend not in ("auto", "native", "python"):
            raise ValueError(f"unsupported backend: {backend!r}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.reg_lambda = reg_lambda
        self.seed = seed
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.max_bins = max_bins
        self.tree_method = tree_method
        self.backend = backend
        self._trees: list[FlatTree] = []
        self._stack: FlatTreeStack | None = None
        self._base_score = 0.0

    def fit(self, X, y) -> "XGBoostClassifier":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = _validate_binary(y)
        if self.backend in ("auto", "native") and native.HAS_XGBOOST:  # pragma: no cover
            self._fit_native(X, y)
            return self
        if self.backend == "native":
            native.require_xgboost()
        positive_rate = np.clip(y.mean(), 1e-6, 1.0 - 1e-6)
        self._base_score = float(np.log(positive_rate / (1.0 - positive_rate)))
        raw = np.full(len(y), self._base_score)
        rng = np.random.default_rng(self.seed)
        self._trees = []
        self._stack = None
        self._native_booster = None
        if self.tree_method == "hist":
            self._fit_hist(X, y, raw, rng)
        else:
            self._fit_exact(X, y, raw, rng)
        return self

    def _fit_hist(self, X: np.ndarray, y: np.ndarray, raw: np.ndarray,
                  rng: np.random.Generator) -> None:
        binner = HistogramBinner(self.max_bins).fit(X)
        codes = binner.transform(X)
        params = GrowthParams(max_depth=self.max_depth,
                              min_samples_leaf=self.min_samples_leaf,
                              max_features=self.max_features,
                              reg_lambda=self.reg_lambda)
        for _ in range(self.n_estimators):
            p = _sigmoid(raw)
            gradient = p - y
            hessian = np.maximum(p * (1.0 - p), 1e-6)
            tree_rng = np.random.default_rng(rng.integers(1 << 31))
            tree = grow_regression_tree(codes, binner.edges_, gradient, hessian,
                                        params, tree_rng, leaf_sign=-1.0)
            raw += self.learning_rate * tree.predict_values(X)
            self._trees.append(tree)

    def _fit_exact(self, X: np.ndarray, y: np.ndarray, raw: np.ndarray,
                   rng: np.random.Generator) -> None:
        """The original PR-3 algorithm: exact trees on per-row Newton targets."""
        for _ in range(self.n_estimators):
            p = _sigmoid(raw)
            gradient = p - y
            hessian = np.maximum(p * (1.0 - p), 1e-6)
            # Newton step target; the Hessian also regularises the leaf values.
            target = -gradient / (hessian + self.reg_lambda / max(len(y), 1))
            tree = DecisionTreeRegressor(max_depth=self.max_depth,
                                         min_samples_leaf=self.min_samples_leaf,
                                         max_features=self.max_features,
                                         rng=np.random.default_rng(rng.integers(1 << 31)))
            tree.fit(X, target)
            raw += self.learning_rate * tree.predict(X)
            self._trees.append(tree.flat)

    # ------------------------------------------------------- native delegation
    def _fit_native(self, X, y) -> None:  # pragma: no cover - needs xgboost
        self._native_booster = native.fit_xgboost_binary(
            X, y, n_estimators=self.n_estimators, learning_rate=self.learning_rate,
            max_depth=self.max_depth, max_bins=self.max_bins,
            reg_lambda=self.reg_lambda, min_samples_leaf=self.min_samples_leaf,
            seed=self.seed)
        self._trees = []
        self._stack = None

    def _native_raw_scores(self, X) -> np.ndarray:  # pragma: no cover
        return native.xgboost_raw_scores(self._native_booster, X)

    def _native_get_state(self) -> dict:  # pragma: no cover
        payload = native.xgboost_to_bytes(self._native_booster)
        return {"native_backend": "xgboost",
                "native_model": base64.b64encode(payload).decode("ascii")}

    def _set_native_state(self, state: dict) -> None:  # pragma: no cover
        payload = base64.b64decode(state["native_model"].encode("ascii"))
        self._native_booster = native.xgboost_from_bytes(payload)
        self._trees = []
        self._stack = None


class AdaBoostClassifier:
    """Discrete AdaBoost (SAMME) over shallow decision stumps.

    Stumps are histogram-grown flat trees by default (one shared binning per
    fit); ``tree_method="exact"`` uses the recursive exact-splitter reference.
    Either way each stump predicts all rows in one batched descent.
    """

    def __init__(self, n_estimators: int = 50, max_depth: int = 1, seed: int = 0,
                 max_bins: int = 32, tree_method: str = "hist"):
        if tree_method not in ("hist", "exact"):
            raise ValueError(f"unsupported tree_method: {tree_method!r}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.seed = seed
        self.max_bins = max_bins
        self.tree_method = tree_method
        self._stumps: list[FlatClassifierTree] = []
        self._alphas: list[float] = []

    def fit(self, X, y) -> "AdaBoostClassifier":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = _validate_binary(y).astype(int)
        signed = 2 * y - 1
        rng = np.random.default_rng(self.seed)
        n = len(y)
        weights = np.full(n, 1.0 / n)
        self._stumps, self._alphas = [], []
        if self.tree_method == "hist":
            binner = HistogramBinner(self.max_bins).fit(X)
            codes = binner.transform(X)
        for _ in range(self.n_estimators):
            # Weighted fitting via weighted resampling (keeps the tree code simple).
            idx = rng.choice(n, size=n, replace=True, p=weights)
            stump_rng = np.random.default_rng(rng.integers(1 << 31))
            if self.tree_method == "hist":
                sub_y = y[idx]
                classes = np.unique(sub_y)
                y_idx = np.searchsorted(classes, sub_y)
                grown = grow_classification_tree(
                    codes[idx], binner.edges_, y_idx, len(classes),
                    GrowthParams(max_depth=self.max_depth), stump_rng)
                stump = FlatClassifierTree(grown, classes)
            else:
                reference = DecisionTreeClassifier(max_depth=self.max_depth,
                                                   rng=stump_rng)
                reference.fit(X[idx], y[idx])
                stump = FlatClassifierTree.from_state(reference.get_state())
            predictions = 2 * stump.predict(X).astype(int) - 1
            error = float(weights[predictions != signed].sum())
            error = np.clip(error, 1e-10, 1.0 - 1e-10)
            alpha = 0.5 * np.log((1.0 - error) / error)
            weights = weights * np.exp(-alpha * signed * predictions)
            weights /= weights.sum()
            self._stumps.append(stump)
            self._alphas.append(float(alpha))
            if error < 1e-9:
                break
        return self

    def decision_function(self, X) -> np.ndarray:
        X = np.atleast_2d(np.asarray(X, dtype=float))
        score = np.zeros(len(X))
        for stump, alpha in zip(self._stumps, self._alphas):
            score += alpha * (2 * stump.predict(X).astype(int) - 1)
        return score

    def predict_proba(self, X) -> np.ndarray:
        score = self.decision_function(X)
        total = sum(abs(a) for a in self._alphas) or 1.0
        positive = (score / total + 1.0) / 2.0
        return np.column_stack([1.0 - positive, positive])

    def predict(self, X) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(int)

    def get_state(self) -> dict:
        """Serializable fitted state: the weighted stump ensemble."""
        return {
            "alphas": [float(a) for a in self._alphas],
            "stumps": [stump.get_state() for stump in self._stumps],
        }

    def set_state(self, state: dict) -> "AdaBoostClassifier":
        self._alphas = [float(a) for a in state["alphas"]]
        self._stumps = [FlatClassifierTree.from_state(stump)
                        for stump in state["stumps"]]
        return self
