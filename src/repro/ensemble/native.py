"""Optional native LightGBM / XGBoost backends, guarded at import.

The repo's own histogram engine (:mod:`repro.ensemble.engine`) is the default
and the only hard dependency; when the real ``lightgbm`` / ``xgboost``
packages happen to be installed, the boosted heads can delegate fitting and
scoring to them (``backend="auto"`` picks them up, ``backend="native"``
requires them).  When the packages are absent — the normal case for this
repo's pinned environment — everything here degrades silently to the numpy
engine: ``HAS_LIGHTGBM`` / ``HAS_XGBOOST`` are ``False`` and the heads never
call into this module's fit/score helpers.

Native boosters cannot emit the preorder node arrays of the persistence
contract, so their ``get_state`` uses a documented escape hatch: the state
dict carries ``{"native_backend": ..., "native_model": <model string>}``
instead of ``"trees"``, and ``set_state`` dispatches on which key is present.
Loading a native-format state on a machine without the native package raises
a clear error rather than guessing.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only when lightgbm is installed
    import lightgbm as _lightgbm
except ImportError:
    _lightgbm = None

try:  # pragma: no cover - exercised only when xgboost is installed
    import xgboost as _xgboost
except ImportError:
    _xgboost = None

HAS_LIGHTGBM = _lightgbm is not None
HAS_XGBOOST = _xgboost is not None

__all__ = [
    "HAS_LIGHTGBM", "HAS_XGBOOST",
    "require_lightgbm", "require_xgboost",
    "fit_lightgbm_binary", "lightgbm_raw_scores",
    "lightgbm_to_string", "lightgbm_from_string",
    "fit_xgboost_binary", "xgboost_raw_scores",
    "xgboost_to_bytes", "xgboost_from_bytes",
]


def _require(module, name: str):
    if module is None:
        raise RuntimeError(
            f"the native {name} backend was requested but {name} is not "
            f"installed; use backend='auto' (or 'python') to fall back to the "
            f"built-in histogram engine")
    return module


def require_lightgbm() -> None:
    """Raise the standard missing-package error unless lightgbm is installed."""
    _require(_lightgbm, "lightgbm")


def require_xgboost() -> None:
    """Raise the standard missing-package error unless xgboost is installed."""
    _require(_xgboost, "xgboost")


# ------------------------------------------------------------------ lightgbm
def fit_lightgbm_binary(X, y, *, n_estimators: int, learning_rate: float,
                        max_depth: int, max_leaves: int, max_bins: int,
                        subsample: float, min_samples_leaf: int, reg_lambda: float,
                        seed: int):  # pragma: no cover - needs lightgbm
    lgb = _require(_lightgbm, "lightgbm")
    dataset = lgb.Dataset(np.asarray(X, dtype=float), label=np.asarray(y, dtype=float),
                          params={"max_bin": max_bins})
    params = {
        "objective": "binary", "verbosity": -1, "seed": seed,
        "learning_rate": learning_rate, "num_leaves": max_leaves,
        "max_depth": max_depth, "bagging_fraction": subsample,
        "bagging_freq": 1 if subsample < 1.0 else 0,
        "min_data_in_leaf": min_samples_leaf, "lambda_l2": reg_lambda,
    }
    return lgb.train(params, dataset, num_boost_round=n_estimators)


def lightgbm_raw_scores(booster, X) -> np.ndarray:  # pragma: no cover
    return np.asarray(booster.predict(np.asarray(X, dtype=float), raw_score=True),
                      dtype=float)


def lightgbm_to_string(booster) -> str:  # pragma: no cover
    return booster.model_to_string()


def lightgbm_from_string(model: str):  # pragma: no cover
    lgb = _require(_lightgbm, "lightgbm")
    return lgb.Booster(model_str=model)


# ------------------------------------------------------------------- xgboost
def fit_xgboost_binary(X, y, *, n_estimators: int, learning_rate: float,
                       max_depth: int, max_bins: int, reg_lambda: float,
                       min_samples_leaf: int, seed: int):  # pragma: no cover
    xgb = _require(_xgboost, "xgboost")
    matrix = xgb.DMatrix(np.asarray(X, dtype=float), label=np.asarray(y, dtype=float))
    params = {
        "objective": "binary:logistic", "tree_method": "hist",
        "max_bin": max_bins, "eta": learning_rate, "max_depth": max_depth,
        "lambda": reg_lambda, "min_child_weight": min_samples_leaf,
        "seed": seed, "verbosity": 0,
    }
    return xgb.train(params, matrix, num_boost_round=n_estimators)


def xgboost_raw_scores(booster, X) -> np.ndarray:  # pragma: no cover
    xgb = _require(_xgboost, "xgboost")
    return np.asarray(booster.predict(xgb.DMatrix(np.asarray(X, dtype=float)),
                                      output_margin=True), dtype=float)


def xgboost_to_bytes(booster) -> bytes:  # pragma: no cover
    return bytes(booster.save_raw(raw_format="ubj"))


def xgboost_from_bytes(payload: bytes):  # pragma: no cover
    xgb = _require(_xgboost, "xgboost")
    booster = xgb.Booster()
    booster.load_model(bytearray(payload))
    return booster
