"""CART decision trees: a regressor (for boosting) and a classifier.

These classes keep the *exact* splitter — every distinct threshold of every
feature scored on the raw rows — and serve as the reference implementation
the histogram engine (:mod:`repro.ensemble.engine`) is validated against.
Prediction, however, is batched: fitted trees are flattened into preorder
arrays (:class:`~repro.ensemble.engine.FlatTree`) and descended iteratively
for all rows at once, bit-identical to the recursive ``_Node`` walk (which
remains available as ``predict_recursive`` / ``predict_proba_recursive``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ensemble.engine import FlatTree

__all__ = ["DecisionTreeRegressor", "DecisionTreeClassifier", "FlatClassifierTree"]


@dataclass
class _Node:
    """A tree node: either a split (feature, threshold, children) or a leaf (value)."""

    value: np.ndarray | float | None = None
    feature: int | None = None
    threshold: float | None = None
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.feature is None


class _BaseTree:
    """Shared recursive splitting machinery."""

    def __init__(self, max_depth: int = 3, min_samples_split: int = 2,
                 min_samples_leaf: int = 1, max_features: int | None = None,
                 rng: np.random.Generator | None = None):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.rng = rng or np.random.default_rng(0)
        self._root: _Node | None = None
        self._flat: FlatTree | None = None

    # Subclasses provide impurity and leaf-value computation.
    def _impurity(self, y: np.ndarray) -> float:
        raise NotImplementedError

    def _leaf_value(self, y: np.ndarray):
        raise NotImplementedError

    def _fit(self, X: np.ndarray, y: np.ndarray) -> None:
        X = np.asarray(X, dtype=float)
        y = np.asarray(y)
        if X.ndim != 2:
            raise ValueError("X must be a 2-D array")
        if len(X) != len(y):
            raise ValueError("X and y must have the same number of rows")
        self._n_features = X.shape[1]
        self._flat = None                       # invalidate before regrowing
        self._root = self._grow(X, y, depth=0)

    def _grow(self, X: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        if (depth >= self.max_depth or len(y) < self.min_samples_split
                or self._impurity(y) <= 1e-12):
            return _Node(value=self._leaf_value(y))
        feature, threshold = self._best_split(X, y)
        if feature is None:
            return _Node(value=self._leaf_value(y))
        mask = X[:, feature] <= threshold
        left = self._grow(X[mask], y[mask], depth + 1)
        right = self._grow(X[~mask], y[~mask], depth + 1)
        return _Node(feature=feature, threshold=threshold, left=left, right=right)

    def _candidate_features(self) -> np.ndarray:
        if self.max_features is None or self.max_features >= self._n_features:
            return np.arange(self._n_features)
        return self.rng.choice(self._n_features, size=self.max_features, replace=False)

    def _best_split(self, X: np.ndarray, y: np.ndarray) -> tuple[int | None, float | None]:
        best_gain, best_feature, best_threshold = 0.0, None, None
        parent_impurity = self._impurity(y)
        n = len(y)
        for feature in self._candidate_features():
            values = X[:, feature]
            # Candidate thresholds: midpoints between distinct sorted values
            # (capped to keep fitting fast on large calibration sets).
            unique = np.unique(values)
            if len(unique) <= 1:
                continue
            if len(unique) > 32:
                unique = np.quantile(values, np.linspace(0.02, 0.98, 32))
                unique = np.unique(unique)
            thresholds = (unique[:-1] + unique[1:]) / 2.0
            for threshold in thresholds:
                mask = values <= threshold
                n_left = int(mask.sum())
                n_right = n - n_left
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                gain = parent_impurity - (
                    n_left / n * self._impurity(y[mask])
                    + n_right / n * self._impurity(y[~mask]))
                if gain > best_gain + 1e-15:
                    best_gain, best_feature, best_threshold = gain, int(feature), float(threshold)
        return best_feature, best_threshold

    def _predict_row(self, row: np.ndarray):
        node = self._root
        while not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value

    def depth(self) -> int:
        """Actual depth of the fitted tree (0 for a single leaf)."""
        def walk(node: _Node | None) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        if self._root is None:
            raise RuntimeError("tree has not been fitted")
        return walk(self._root)

    # ------------------------------------------------------------- persistence
    def _structure_arrays(self, value_to_row) -> dict:
        """Flatten the node tree into parallel preorder arrays.

        Internal nodes store ``feature >= 0`` and child indices; leaves store
        ``feature == -1`` and their value (mapped through ``value_to_row``).
        """
        if self._root is None:
            raise RuntimeError("tree has not been fitted")
        feature: list[int] = []
        threshold: list[float] = []
        left: list[int] = []
        right: list[int] = []
        values: list = []

        def visit(node: _Node) -> int:
            idx = len(feature)
            feature.append(-1 if node.is_leaf else int(node.feature))
            threshold.append(np.nan if node.is_leaf else float(node.threshold))
            left.append(-1)
            right.append(-1)
            values.append(value_to_row(node.value))
            if not node.is_leaf:
                left[idx] = visit(node.left)
                right[idx] = visit(node.right)
            return idx

        visit(self._root)
        return {
            "n_features": int(getattr(self, "_n_features", 0)),
            "feature": np.asarray(feature, dtype=np.int64),
            "threshold": np.asarray(threshold, dtype=np.float64),
            "left": np.asarray(left, dtype=np.int64),
            "right": np.asarray(right, dtype=np.int64),
            "values": np.asarray(values, dtype=np.float64),
        }

    def _load_structure_arrays(self, state: dict, row_to_value) -> None:
        feature = np.asarray(state["feature"], dtype=np.int64)
        threshold = np.asarray(state["threshold"], dtype=np.float64)
        left = np.asarray(state["left"], dtype=np.int64)
        right = np.asarray(state["right"], dtype=np.int64)
        values = np.asarray(state["values"], dtype=np.float64)
        self._n_features = int(state["n_features"])

        def build(idx: int) -> _Node:
            if feature[idx] < 0:
                return _Node(value=row_to_value(values[idx]))
            return _Node(feature=int(feature[idx]), threshold=float(threshold[idx]),
                         left=build(int(left[idx])), right=build(int(right[idx])))

        self._root = build(0)


class DecisionTreeRegressor(_BaseTree):
    """Variance-reduction regression tree (the weak learner inside boosting)."""

    def _impurity(self, y: np.ndarray) -> float:
        return float(np.var(y)) if len(y) else 0.0

    def _leaf_value(self, y: np.ndarray) -> float:
        return float(np.mean(y)) if len(y) else 0.0

    def fit(self, X, y) -> "DecisionTreeRegressor":
        self._fit(np.asarray(X, dtype=float), np.asarray(y, dtype=float))
        self._flat = FlatTree.from_state(self.get_state())
        return self

    def predict(self, X) -> np.ndarray:
        if self._flat is None:
            raise RuntimeError("tree has not been fitted")
        return self._flat.predict_values(X)

    def predict_recursive(self, X) -> np.ndarray:
        """Reference per-row recursive descent (bit-identical to ``predict``)."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return np.array([self._predict_row(row) for row in X])

    @property
    def flat(self) -> FlatTree:
        if self._flat is None:
            raise RuntimeError("tree has not been fitted")
        return self._flat

    def get_state(self) -> dict:
        """Serializable fitted state (preorder node arrays)."""
        if self._flat is not None:
            return self._flat.get_state()
        return self._structure_arrays(lambda v: 0.0 if v is None else float(v))

    def set_state(self, state: dict) -> "DecisionTreeRegressor":
        self._load_structure_arrays(state, float)
        self._flat = FlatTree.from_state(state)
        return self


class DecisionTreeClassifier(_BaseTree):
    """Gini-impurity classification tree supporting any number of classes."""

    def _impurity(self, y: np.ndarray) -> float:
        if len(y) == 0:
            return 0.0
        _, counts = np.unique(y, return_counts=True)
        proportions = counts / len(y)
        return float(1.0 - (proportions ** 2).sum())

    def _leaf_value(self, y: np.ndarray) -> np.ndarray:
        probs = np.zeros(self._n_classes)
        if len(y):
            for cls, count in zip(*np.unique(y, return_counts=True)):
                probs[self._class_to_index[cls]] = count / len(y)
        else:
            probs[:] = 1.0 / self._n_classes
        return probs

    def fit(self, X, y) -> "DecisionTreeClassifier":
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        self._n_classes = len(self.classes_)
        self._class_to_index = {cls: i for i, cls in enumerate(self.classes_)}
        self._fit(np.asarray(X, dtype=float), y)
        self._flat = FlatTree.from_state(self.get_state())
        return self

    def predict_proba(self, X) -> np.ndarray:
        if self._flat is None:
            raise RuntimeError("tree has not been fitted")
        return self._flat.predict_values(X)

    def predict_proba_recursive(self, X) -> np.ndarray:
        """Reference per-row recursive descent (bit-identical to ``predict_proba``)."""
        X = np.atleast_2d(np.asarray(X, dtype=float))
        return np.vstack([self._predict_row(row) for row in X])

    def predict(self, X) -> np.ndarray:
        probs = self.predict_proba(X)
        return self.classes_[np.argmax(probs, axis=1)]

    @property
    def flat(self) -> FlatTree:
        if self._flat is None:
            raise RuntimeError("tree has not been fitted")
        return self._flat

    def get_state(self) -> dict:
        """Serializable fitted state (preorder node arrays + class labels)."""
        if self._flat is not None:
            state = self._flat.get_state()
        else:
            n_classes = self._n_classes
            state = self._structure_arrays(
                lambda v: np.zeros(n_classes) if v is None else np.asarray(v, dtype=float))
        state = dict(state)
        state["classes"] = np.asarray(self.classes_)
        return state

    def set_state(self, state: dict) -> "DecisionTreeClassifier":
        self.classes_ = np.asarray(state["classes"])
        self._n_classes = len(self.classes_)
        self._class_to_index = {cls: i for i, cls in enumerate(self.classes_)}
        self._load_structure_arrays(state, lambda row: np.asarray(row, dtype=float))
        self._flat = FlatTree.from_state(state)
        return self


class FlatClassifierTree:
    """A fitted classification tree held purely as flat arrays plus labels.

    This is what the ensemble heads store internally: either grown directly
    by the histogram engine or loaded verbatim from a PR-3-era preorder
    state.  It shares :class:`DecisionTreeClassifier`'s ``get_state`` format
    (node arrays + ``classes``), so the two are interchangeable on disk.
    """

    __slots__ = ("_flat", "classes_")

    def __init__(self, flat: FlatTree, classes):
        self._flat = flat
        self.classes_ = np.asarray(classes)

    @classmethod
    def from_state(cls, state: dict) -> "FlatClassifierTree":
        return cls(FlatTree.from_state(state), state["classes"])

    def get_state(self) -> dict:
        state = dict(self._flat.get_state())
        state["classes"] = np.asarray(self.classes_)
        return state

    @property
    def flat(self) -> FlatTree:
        return self._flat

    def predict_proba(self, X) -> np.ndarray:
        return self._flat.predict_values(X)

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]
