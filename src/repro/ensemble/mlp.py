"""A small MLP classifier built on the autograd engine."""

from __future__ import annotations

import numpy as np

from repro.nn import Adam, Linear, Module, Tensor, cross_entropy
from repro.nn.functional import relu, softmax

__all__ = ["MLPClassifier"]


class _MLPNet(Module):
    def __init__(self, in_dim: int, hidden_dim: int, num_classes: int,
                 rng: np.random.Generator):
        super().__init__()
        self.fc1 = Linear(in_dim, hidden_dim, rng=rng)
        self.fc2 = Linear(hidden_dim, hidden_dim, rng=rng)
        self.fc3 = Linear(hidden_dim, num_classes, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc3(relu(self.fc2(relu(self.fc1(x)))))


class MLPClassifier:
    """Two-hidden-layer MLP trained with Adam on cross-entropy."""

    def __init__(self, hidden_dim: int = 32, epochs: int = 200, learning_rate: float = 0.01,
                 seed: int = 0):
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.seed = seed
        self._net: _MLPNet | None = None
        self.classes_: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None

    def fit(self, X, y) -> "MLPClassifier":
        X = np.atleast_2d(np.asarray(X, dtype=float))
        y = np.asarray(y)
        self.classes_ = np.unique(y)
        class_to_index = {cls: i for i, cls in enumerate(self.classes_)}
        targets = np.array([class_to_index[label] for label in y])
        self._mean = X.mean(axis=0)
        self._std = X.std(axis=0)
        self._std[self._std < 1e-12] = 1.0
        inputs = Tensor((X - self._mean) / self._std)
        rng = np.random.default_rng(self.seed)
        self._net = _MLPNet(X.shape[1], self.hidden_dim, len(self.classes_), rng)
        optimizer = Adam(self._net.parameters(), lr=self.learning_rate)
        for _ in range(self.epochs):
            optimizer.zero_grad()
            loss = cross_entropy(self._net(inputs), targets)
            loss.backward()
            optimizer.step()
        return self

    def predict_proba(self, X) -> np.ndarray:
        if self._net is None:
            raise RuntimeError("MLP has not been fitted")
        X = np.atleast_2d(np.asarray(X, dtype=float))
        inputs = Tensor((X - self._mean) / self._std)
        return softmax(self._net(inputs), axis=1).data

    def predict(self, X) -> np.ndarray:
        return self.classes_[np.argmax(self.predict_proba(X), axis=1)]

    def get_state(self) -> dict:
        """Serializable fitted state: scaler stats, class labels and net weights."""
        if self._net is None:
            raise RuntimeError("MLP has not been fitted")
        return {
            "classes": np.asarray(self.classes_),
            "mean": np.asarray(self._mean),
            "std": np.asarray(self._std),
            "in_dim": int(self._mean.shape[0]),
            "hidden_dim": int(self.hidden_dim),
            "params": self._net.state_dict(),
        }

    def set_state(self, state: dict) -> "MLPClassifier":
        self.classes_ = np.asarray(state["classes"])
        self._mean = np.asarray(state["mean"], dtype=float)
        self._std = np.asarray(state["std"], dtype=float)
        self.hidden_dim = int(state["hidden_dim"])
        self._net = _MLPNet(int(state["in_dim"]), self.hidden_dim, len(self.classes_),
                            np.random.default_rng(self.seed))
        self._net.load_state_dict([np.asarray(p, dtype=float) for p in state["params"]])
        return self
