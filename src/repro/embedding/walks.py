"""Random-walk samplers over :class:`~repro.graph.TxGraph` subgraphs."""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.graph.txgraph import TxGraph

__all__ = ["random_walks", "node2vec_walks", "trans2vec_walks"]


class _NeighborCache:
    """Lazily sorted neighbour lists backed by the graph's adjacency index.

    Replaces the old eager full-graph ``_neighbor_map`` rebuild: each node's
    neighbour list is materialised on first visit (O(deg log deg)), so a walk
    that never reaches a node never pays for it.
    """

    def __init__(self, graph: TxGraph):
        self._graph = graph
        self._lists: dict[Hashable, list[Hashable]] = {}
        self._sets: dict[Hashable, set[Hashable]] = {}

    def options(self, node: Hashable) -> list[Hashable]:
        options = self._lists.get(node)
        if options is None:
            options = sorted(self._graph.neighbors(node), key=str)
            self._lists[node] = options
        return options

    def members(self, node: Hashable) -> set[Hashable]:
        members = self._sets.get(node)
        if members is None:
            members = set(self.options(node))
            self._sets[node] = members
        return members


def random_walks(graph: TxGraph, walk_length: int = 30, walks_per_node: int = 10,
                 seed: int = 0) -> list[list[Hashable]]:
    """Uniform random walks (DeepWalk-style)."""
    rng = np.random.default_rng(seed)
    neighbors = _NeighborCache(graph)
    walks = []
    for _ in range(walks_per_node):
        for start in graph.nodes:
            walk = [start]
            current = start
            for _step in range(walk_length - 1):
                options = neighbors.options(current)
                if not options:
                    break
                current = options[int(rng.integers(0, len(options)))]
                walk.append(current)
            walks.append(walk)
    return walks


def node2vec_walks(graph: TxGraph, walk_length: int = 30, walks_per_node: int = 10,
                   p: float = 1.0, q: float = 1.0, seed: int = 0) -> list[list[Hashable]]:
    """Biased second-order walks (Grover & Leskovec 2016).

    ``p`` controls the likelihood of returning to the previous node, ``q``
    interpolates between BFS-like (q > 1) and DFS-like (q < 1) exploration.
    """
    rng = np.random.default_rng(seed)
    neighbors = _NeighborCache(graph)
    walks = []
    for _ in range(walks_per_node):
        for start in graph.nodes:
            walk = [start]
            for _step in range(walk_length - 1):
                current = walk[-1]
                options = neighbors.options(current)
                if not options:
                    break
                if len(walk) == 1:
                    nxt = options[int(rng.integers(0, len(options)))]
                else:
                    previous = walk[-2]
                    weights = np.empty(len(options))
                    prev_nbrs = neighbors.members(previous)
                    for i, candidate in enumerate(options):
                        if candidate == previous:
                            weights[i] = 1.0 / p
                        elif candidate in prev_nbrs:
                            weights[i] = 1.0
                        else:
                            weights[i] = 1.0 / q
                    weights /= weights.sum()
                    nxt = options[int(rng.choice(len(options), p=weights))]
                walk.append(nxt)
            walks.append(walk)
    return walks


def trans2vec_walks(graph: TxGraph, walk_length: int = 30, walks_per_node: int = 10,
                    amount_bias: float = 0.5, seed: int = 0) -> list[list[Hashable]]:
    """Transaction-aware walks biased by edge amount and recency (Trans2Vec-style).

    The transition probability to a neighbour mixes the (normalised) total
    transferred amount and the (normalised) edge timestamp with weight
    ``amount_bias`` vs ``1 - amount_bias``.
    """
    if not 0.0 <= amount_bias <= 1.0:
        raise ValueError("amount_bias must be in [0, 1]")
    rng = np.random.default_rng(seed)
    # Per-node (amount, timestamp) transition weights, materialised lazily from
    # the adjacency index on first visit instead of for the whole graph upfront.
    timestamps = [edge.timestamp for edge in graph.edges] or [0.0]
    t_min, t_max = min(timestamps), max(timestamps)
    t_span = (t_max - t_min) or 1.0
    weights_map: dict[Hashable, tuple[list[Hashable], np.ndarray]] = {}

    def transition(node: Hashable) -> tuple[list[Hashable], np.ndarray]:
        cached = weights_map.get(node)
        if cached is not None:
            return cached
        nbr_weights: dict[Hashable, float] = {}
        for edge in list(graph.out_edges(node)) + list(graph.in_edges(node)):
            other = edge.dst if edge.src == node else edge.src
            if other == node:
                continue
            recency = (edge.timestamp - t_min) / t_span
            score = amount_bias * edge.amount + (1.0 - amount_bias) * (recency + 1e-6)
            nbr_weights[other] = nbr_weights.get(other, 0.0) + score
        if nbr_weights:
            options = sorted(nbr_weights, key=str)
            raw = np.array([nbr_weights[o] for o in options], dtype=float)
            raw = raw + 1e-12
            cached = (options, raw / raw.sum())
        else:
            cached = ([], np.zeros(0))
        weights_map[node] = cached
        return cached

    walks = []
    for _ in range(walks_per_node):
        for start in graph.nodes:
            walk = [start]
            current = start
            for _step in range(walk_length - 1):
                options, probs = transition(current)
                if not options:
                    break
                current = options[int(rng.choice(len(options), p=probs))]
                walk.append(current)
            walks.append(walk)
    return walks
