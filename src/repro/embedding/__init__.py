"""Graph embedding methods used as baselines: DeepWalk, Node2Vec and Trans2Vec.

These follow the classical pipeline: sample node sequences with (biased) random
walks, then learn node vectors with skip-gram and negative sampling.  Graph
representations are obtained by average-pooling node vectors, matching the
baseline configuration in Section V-A4.
"""

from repro.embedding.walks import random_walks, node2vec_walks, trans2vec_walks
from repro.embedding.skipgram import SkipGramModel
from repro.embedding.models import DeepWalk, Node2Vec, Trans2Vec

__all__ = [
    "random_walks",
    "node2vec_walks",
    "trans2vec_walks",
    "SkipGramModel",
    "DeepWalk",
    "Node2Vec",
    "Trans2Vec",
]
