"""Skip-gram with negative sampling (Word2Vec) over walk corpora."""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

__all__ = ["SkipGramModel"]


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class SkipGramModel:
    """Learn node embeddings from walk sequences with SGNS.

    A lightweight Word2Vec: for every (centre, context) pair within ``window``
    positions, the model maximises the log-probability of the true context and
    minimises it for ``negative`` randomly drawn nodes, using plain SGD on the
    input/output embedding tables.
    """

    def __init__(self, dim: int = 64, window: int = 5, negative: int = 5,
                 learning_rate: float = 0.025, epochs: int = 2, seed: int = 0):
        self.dim = dim
        self.window = window
        self.negative = negative
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.seed = seed
        self.vocab: dict[Hashable, int] = {}
        self._in_vectors: np.ndarray | None = None
        self._out_vectors: np.ndarray | None = None

    def fit(self, walks: Sequence[Sequence[Hashable]]) -> "SkipGramModel":
        rng = np.random.default_rng(self.seed)
        self.vocab = {}
        counts: list[int] = []
        for walk in walks:
            for token in walk:
                if token not in self.vocab:
                    self.vocab[token] = len(self.vocab)
                    counts.append(0)
                counts[self.vocab[token]] += 1
        vocab_size = len(self.vocab)
        if vocab_size == 0:
            raise ValueError("cannot fit skip-gram on an empty walk corpus")
        self._in_vectors = rng.normal(0.0, 0.1, size=(vocab_size, self.dim))
        self._out_vectors = np.zeros((vocab_size, self.dim))
        # Unigram^0.75 negative-sampling distribution (Mikolov et al. 2013).
        freq = np.array(counts, dtype=float) ** 0.75
        neg_probs = freq / freq.sum()

        lr = self.learning_rate
        for _epoch in range(self.epochs):
            for walk in walks:
                indices = [self.vocab[token] for token in walk]
                for pos, center in enumerate(indices):
                    lo = max(0, pos - self.window)
                    hi = min(len(indices), pos + self.window + 1)
                    for ctx_pos in range(lo, hi):
                        if ctx_pos == pos:
                            continue
                        self._train_pair(center, indices[ctx_pos], neg_probs, rng, lr)
        return self

    def _train_pair(self, center: int, context: int, neg_probs: np.ndarray,
                    rng: np.random.Generator, lr: float) -> None:
        v_in = self._in_vectors[center]
        grad_in = np.zeros_like(v_in)
        targets = [(context, 1.0)]
        negatives = rng.choice(len(neg_probs), size=self.negative, p=neg_probs)
        targets.extend((int(n), 0.0) for n in negatives if n != context)
        for out_idx, label in targets:
            v_out = self._out_vectors[out_idx]
            score = _sigmoid(v_in @ v_out)
            gradient = (score - label)
            grad_in += gradient * v_out
            self._out_vectors[out_idx] -= lr * gradient * v_in
        self._in_vectors[center] -= lr * grad_in

    # -------------------------------------------------------------- embeddings
    def embedding(self, token: Hashable) -> np.ndarray:
        """Embedding vector for one token (zeros for out-of-vocabulary tokens)."""
        if self._in_vectors is None:
            raise RuntimeError("model has not been fitted")
        idx = self.vocab.get(token)
        if idx is None:
            return np.zeros(self.dim)
        return self._in_vectors[idx].copy()

    def embeddings(self, tokens: Sequence[Hashable]) -> np.ndarray:
        """Stack embeddings for ``tokens`` into an ``(n, dim)`` matrix."""
        return np.vstack([self.embedding(token) for token in tokens]) if tokens \
            else np.zeros((0, self.dim))
