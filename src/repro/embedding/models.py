"""DeepWalk, Node2Vec and Trans2Vec graph-embedding models."""

from __future__ import annotations

import numpy as np

from repro.embedding.skipgram import SkipGramModel
from repro.embedding.walks import node2vec_walks, random_walks, trans2vec_walks
from repro.graph.txgraph import TxGraph

__all__ = ["DeepWalk", "Node2Vec", "Trans2Vec"]


class _WalkEmbeddingModel:
    """Shared logic: sample walks, fit skip-gram, pool node vectors per graph."""

    def __init__(self, dim: int = 64, walk_length: int = 30, walks_per_node: int = 10,
                 window: int = 5, epochs: int = 2, seed: int = 0):
        self.dim = dim
        self.walk_length = walk_length
        self.walks_per_node = walks_per_node
        self.window = window
        self.epochs = epochs
        self.seed = seed

    def _walks(self, graph: TxGraph) -> list[list]:
        raise NotImplementedError

    def embed_nodes(self, graph: TxGraph) -> dict:
        """Learn and return a ``{node: vector}`` embedding for one graph."""
        walks = self._walks(graph)
        model = SkipGramModel(dim=self.dim, window=self.window, epochs=self.epochs,
                              seed=self.seed).fit(walks)
        return {node: model.embedding(node) for node in graph.nodes}

    def embed_graph(self, graph: TxGraph) -> np.ndarray:
        """Average-pooled graph representation (the paper's baseline pooling)."""
        node_vectors = self.embed_nodes(graph)
        if not node_vectors:
            return np.zeros(self.dim)
        return np.mean(list(node_vectors.values()), axis=0)

    def embed_graphs(self, graphs: list[TxGraph]) -> np.ndarray:
        """Stack graph representations into an ``(n, dim)`` matrix."""
        return np.vstack([self.embed_graph(g) for g in graphs]) if graphs \
            else np.zeros((0, self.dim))


class DeepWalk(_WalkEmbeddingModel):
    """DeepWalk: uniform random walks + skip-gram."""

    def _walks(self, graph: TxGraph) -> list[list]:
        return random_walks(graph, self.walk_length, self.walks_per_node, seed=self.seed)


class Node2Vec(_WalkEmbeddingModel):
    """Node2Vec: second-order biased walks with return parameter ``p`` and in-out ``q``."""

    def __init__(self, dim: int = 64, walk_length: int = 30, walks_per_node: int = 10,
                 window: int = 5, epochs: int = 2, p: float = 1.0, q: float = 0.5,
                 seed: int = 0):
        super().__init__(dim, walk_length, walks_per_node, window, epochs, seed)
        self.p = p
        self.q = q

    def _walks(self, graph: TxGraph) -> list[list]:
        return node2vec_walks(graph, self.walk_length, self.walks_per_node,
                              p=self.p, q=self.q, seed=self.seed)


class Trans2Vec(_WalkEmbeddingModel):
    """Trans2Vec: walks biased by transaction amount and recency."""

    def __init__(self, dim: int = 64, walk_length: int = 30, walks_per_node: int = 10,
                 window: int = 5, epochs: int = 2, amount_bias: float = 0.5, seed: int = 0):
        super().__init__(dim, walk_length, walks_per_node, window, epochs, seed)
        self.amount_bias = amount_bias

    def _walks(self, graph: TxGraph) -> list[list]:
        return trans2vec_walks(graph, self.walk_length, self.walks_per_node,
                               amount_bias=self.amount_bias, seed=self.seed)
