"""Activation functions and stateless helpers built on :class:`repro.nn.Tensor`."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = [
    "relu",
    "leaky_relu",
    "elu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "dropout",
]


def relu(x: Tensor) -> Tensor:
    """Rectified linear unit."""
    data = np.maximum(x.data, 0.0)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * (x.data > 0.0), owned=True)

    return Tensor._make(data, (x,), backward)


def leaky_relu(x: Tensor, negative_slope: float = 0.01) -> Tensor:
    """LeakyReLU, used by the paper for feature alignment and attention scores."""
    data = np.where(x.data > 0.0, x.data, negative_slope * x.data)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * np.where(x.data > 0.0, 1.0, negative_slope),
                      owned=True)

    return Tensor._make(data, (x,), backward)


def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    """Exponential linear unit, used after attention aggregation (Eq. 9 and 13)."""
    exp_part = alpha * (np.exp(np.minimum(x.data, 0.0)) - 1.0)
    data = np.where(x.data > 0.0, x.data, exp_part)

    def backward(grad: np.ndarray) -> None:
        x._accumulate(grad * np.where(x.data > 0.0, 1.0, exp_part + alpha),
                      owned=True)

    return Tensor._make(data, (x,), backward)


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax along ``axis``."""
    shifted = x - Tensor(x.data.max(axis=axis, keepdims=True))
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def dropout(x: Tensor, p: float = 0.5, training: bool = True,
            rng: np.random.Generator | None = None) -> Tensor:
    """Inverted dropout: scales kept activations by ``1 / (1 - p)`` during training."""
    if not training or p <= 0.0:
        return x
    if p >= 1.0:
        raise ValueError("dropout probability must be < 1")
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.data.shape) >= p).astype(np.float64) / (1.0 - p)
    return x * Tensor(mask)
