"""Minimal reverse-mode autograd engine and neural-network building blocks.

The paper trains its graph encoders with PyTorch; this subpackage provides a
self-contained numpy substitute: a :class:`~repro.nn.tensor.Tensor` with
reverse-mode automatic differentiation, standard layers, optimizers and the
losses used by DBG4ETH (cross-entropy for supervised training and the NT-Xent
contrastive loss used by the GSG branch).
"""

from repro.nn.tensor import Tensor, concat, stack, no_grad
from repro.nn.functional import (
    relu,
    leaky_relu,
    elu,
    sigmoid,
    tanh,
    softmax,
    log_softmax,
    dropout,
)
from repro.nn.layers import Linear, Sequential, Module, Parameter, LayerNorm, Embedding
from repro.nn.losses import cross_entropy, binary_cross_entropy, nt_xent_loss, mse_loss
from repro.nn.optim import SGD, Adam

__all__ = [
    "Tensor",
    "concat",
    "stack",
    "no_grad",
    "relu",
    "leaky_relu",
    "elu",
    "sigmoid",
    "tanh",
    "softmax",
    "log_softmax",
    "dropout",
    "Linear",
    "Sequential",
    "Module",
    "Parameter",
    "LayerNorm",
    "Embedding",
    "cross_entropy",
    "binary_cross_entropy",
    "nt_xent_loss",
    "mse_loss",
    "SGD",
    "Adam",
]
