"""Reverse-mode automatic differentiation over numpy arrays.

A :class:`Tensor` wraps an ``np.ndarray`` and records the operations applied to
it so that :meth:`Tensor.backward` can propagate gradients back to every tensor
created with ``requires_grad=True``.  The operation set is intentionally small
but complete enough to express the graph encoders used in this repository
(matrix products, broadcasting arithmetic, reductions, concatenation, slicing
and the usual activations built on top of them in :mod:`repro.nn.functional`).
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Sequence

import numpy as np

__all__ = ["Tensor", "concat", "stack", "no_grad"]

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables gradient tracking inside its block."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` to undo numpy broadcasting."""
    if grad.shape == shape:
        return grad
    # Sum over leading dimensions that were added by broadcasting.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over dimensions that were broadcast from size 1.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad.reshape(shape)


def _as_tensor(value) -> "Tensor":
    if isinstance(value, Tensor):
        return value
    return Tensor(value)


class Tensor:
    """A numpy array plus the bookkeeping needed for reverse-mode autodiff."""

    __array_priority__ = 100  # ensure numpy defers to Tensor's operators

    def __init__(self, data, requires_grad: bool = False, _parents: Sequence["Tensor"] = (),
                 _backward: Callable[[np.ndarray], None] | None = None):
        self.data = np.asarray(data, dtype=np.float64)
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self.grad: np.ndarray | None = None
        self._parents = tuple(_parents) if _GRAD_ENABLED else ()
        self._backward = _backward if _GRAD_ENABLED else None

    # ------------------------------------------------------------------ utils
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (no copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the autograd graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    # --------------------------------------------------------------- graph ops
    @staticmethod
    def _make(data: np.ndarray, parents: Sequence["Tensor"],
              backward: Callable[[np.ndarray], None]) -> "Tensor":
        requires = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    def _accumulate(self, grad: np.ndarray, owned: bool = False) -> None:
        """Add ``grad`` into ``self.grad``.

        ``owned=True`` promises the caller freshly allocated ``grad`` for this
        call and keeps no other reference to it — the buffer is adopted
        directly instead of defensively copied.  Backwards that forward a
        shared buffer (``__add__``) or a view of one (``reshape``, ``concat``,
        broadcasting ``sum``) must leave it False.
        """
        if not self.requires_grad:
            return
        grad = _unbroadcast(np.asarray(grad, dtype=np.float64), self.data.shape)
        if self.grad is None:
            # Copy unless adopted: the incoming buffer may be shared with
            # sibling parents.
            self.grad = grad if owned and grad.flags.writeable else grad.copy()
        else:
            # In-place: self.grad is always private (copied or adopted above).
            self.grad += grad

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if grad is None:
            if self.data.size != 1:
                raise ValueError("backward() without a gradient requires a scalar tensor")
            grad = np.ones_like(self.data)
        # Topological order of the graph reachable from self.
        order: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                order.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))
        self._accumulate(grad)
        for node in reversed(order):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ------------------------------------------------------------- arithmetic
    def __add__(self, other) -> "Tensor":
        other = _as_tensor(other)
        data = self.data + other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad)
            other._accumulate(grad)

        return Tensor._make(data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        def backward(grad: np.ndarray) -> None:
            self._accumulate(-grad, owned=True)

        return Tensor._make(-self.data, (self,), backward)

    def __sub__(self, other) -> "Tensor":
        return self + (-_as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return _as_tensor(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = _as_tensor(other)
        data = self.data * other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * other.data, owned=True)
            other._accumulate(grad * self.data, owned=True)

        return Tensor._make(data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = _as_tensor(other)
        data = self.data / other.data

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / other.data, owned=True)
            other._accumulate(-grad * self.data / (other.data ** 2), owned=True)

        return Tensor._make(data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return _as_tensor(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        data = self.data ** exponent

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * exponent * self.data ** (exponent - 1),
                             owned=True)

        return Tensor._make(data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = _as_tensor(other)
        data = self.data @ other.data

        def backward(grad: np.ndarray) -> None:
            if self.requires_grad:
                if other.data.ndim == 1:
                    self._accumulate(np.outer(grad, other.data) if grad.ndim == 1
                                     else grad[..., None] * other.data,
                                     owned=True)
                else:
                    self._accumulate(grad @ other.data.swapaxes(-1, -2),
                                     owned=True)
            if other.requires_grad:
                if self.data.ndim == 1:
                    other._accumulate(np.outer(self.data, grad) if grad.ndim == 1
                                      else self.data[..., None] @ grad[None, ...],
                                      owned=True)
                else:
                    other._accumulate(self.data.swapaxes(-1, -2) @ grad,
                                      owned=True)

        return Tensor._make(data, (self, other), backward)

    # -------------------------------------------------------------- reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = grad
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis)
            self._accumulate(np.broadcast_to(expanded, self.data.shape))

        return Tensor._make(data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.data.shape[a] for a in axis]))
        else:
            count = self.data.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad: np.ndarray) -> None:
            expanded = grad
            max_expanded = data
            if axis is not None and not keepdims:
                expanded = np.expand_dims(grad, axis)
                max_expanded = np.expand_dims(data, axis)
            mask = (self.data == max_expanded).astype(np.float64)
            # Split the gradient evenly between ties for a well-defined subgradient.
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(mask * expanded / counts, owned=True)

        return Tensor._make(data, (self,), backward)

    # ------------------------------------------------------------ elementwise
    def exp(self) -> "Tensor":
        data = np.exp(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data, owned=True)

        return Tensor._make(data, (self,), backward)

    def log(self) -> "Tensor":
        data = np.log(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad / self.data, owned=True)

        return Tensor._make(data, (self,), backward)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def abs(self) -> "Tensor":
        data = np.abs(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * np.sign(self.data), owned=True)

        return Tensor._make(data, (self,), backward)

    def tanh(self) -> "Tensor":
        data = np.tanh(self.data)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * (1.0 - data ** 2), owned=True)

        return Tensor._make(data, (self,), backward)

    def sigmoid(self) -> "Tensor":
        data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad * data * (1.0 - data), owned=True)

        return Tensor._make(data, (self,), backward)

    def clip(self, low: float, high: float) -> "Tensor":
        data = np.clip(self.data, low, high)

        def backward(grad: np.ndarray) -> None:
            mask = ((self.data >= low) & (self.data <= high)).astype(np.float64)
            self._accumulate(grad * mask, owned=True)

        return Tensor._make(data, (self,), backward)

    # --------------------------------------------------------------- reshaping
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        data = self.data.reshape(shape)

        def backward(grad: np.ndarray) -> None:
            self._accumulate(grad.reshape(self.data.shape))

        return Tensor._make(data, (self,), backward)

    def transpose(self, *axes) -> "Tensor":
        axes = axes or None
        data = self.data.transpose(axes) if axes else self.data.T

        def backward(grad: np.ndarray) -> None:
            if axes:
                self._accumulate(grad.transpose(np.argsort(axes)))
            else:
                self._accumulate(grad.T)

        return Tensor._make(data, (self,), backward)

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        data = self.data[index]

        def backward(grad: np.ndarray) -> None:
            full = np.zeros_like(self.data)
            np.add.at(full, index, grad)
            self._accumulate(full, owned=True)

        return Tensor._make(data, (self,), backward)


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` with gradient support."""
    tensors = [_as_tensor(t) for t in tensors]
    data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]

    def backward(grad: np.ndarray) -> None:
        start = 0
        for tensor, size in zip(tensors, sizes):
            slicer = [slice(None)] * grad.ndim
            slicer[axis] = slice(start, start + size)
            tensor._accumulate(grad[tuple(slicer)])
            start += size

    return Tensor._make(data, tensors, backward)


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors along a new ``axis`` with gradient support."""
    tensors = [_as_tensor(t) for t in tensors]
    data = np.stack([t.data for t in tensors], axis=axis)

    def backward(grad: np.ndarray) -> None:
        pieces = np.split(grad, len(tensors), axis=axis)
        for tensor, piece in zip(tensors, pieces):
            tensor._accumulate(np.squeeze(piece, axis=axis))

    return Tensor._make(data, tensors, backward)
