"""Layer and module abstractions built on the autograd :class:`~repro.nn.Tensor`."""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["Parameter", "Module", "Linear", "Sequential", "LayerNorm", "Embedding"]


class Parameter(Tensor):
    """A tensor that is registered as a trainable parameter of a module."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class providing parameter discovery, train/eval mode and zero_grad."""

    def __init__(self):
        self.training = True

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def parameters(self) -> Iterator[Parameter]:
        """Yield every :class:`Parameter` reachable through this module's attributes."""
        seen: set[int] = set()
        yield from self._collect_parameters(self, seen)

    @staticmethod
    def _collect_parameters(obj, seen: set[int]) -> Iterator[Parameter]:
        if id(obj) in seen:
            return
        seen.add(id(obj))
        if isinstance(obj, Parameter):
            yield obj
            return
        if isinstance(obj, Module):
            for value in vars(obj).values():
                yield from Module._collect_parameters(value, seen)
        elif isinstance(obj, (list, tuple)):
            for value in obj:
                yield from Module._collect_parameters(value, seen)
        elif isinstance(obj, dict):
            for value in obj.values():
                yield from Module._collect_parameters(value, seen)

    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for value in vars(self).values():
            for module in self._collect_modules(value):
                module.training = mode
        return self

    def eval(self) -> "Module":
        return self.train(False)

    @staticmethod
    def _collect_modules(obj) -> Iterable["Module"]:
        if isinstance(obj, Module):
            yield obj
            for value in vars(obj).values():
                yield from Module._collect_modules(value)
        elif isinstance(obj, (list, tuple)):
            for value in obj:
                yield from Module._collect_modules(value)
        elif isinstance(obj, dict):
            for value in obj.values():
                yield from Module._collect_modules(value)

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> list[np.ndarray]:
        """Return a copy of every parameter array, in parameter-iteration order."""
        return [p.data.copy() for p in self.parameters()]

    def load_state_dict(self, state: list[np.ndarray]) -> None:
        params = list(self.parameters())
        if len(params) != len(state):
            raise ValueError(
                f"state has {len(state)} arrays but module has {len(params)} parameters")
        for param, array in zip(params, state):
            if param.data.shape != array.shape:
                raise ValueError(f"shape mismatch: {param.data.shape} vs {array.shape}")
            param.data[...] = array


def _glorot(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


class Linear(Module):
    """Affine transformation ``y = x W + b`` with Glorot-uniform initialisation."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(_glorot(in_features, out_features, rng))
        self.bias = Parameter(np.zeros(out_features)) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        out = x @ self.weight
        if self.bias is not None:
            out = out + self.bias
        return out


class Sequential(Module):
    """Apply a list of modules (or callables) in order."""

    def __init__(self, *steps: Callable):
        super().__init__()
        self.steps = list(steps)

    def forward(self, x: Tensor) -> Tensor:
        for step in self.steps:
            x = step(x)
        return x


class LayerNorm(Module):
    """Layer normalisation over the last dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        centered = x - mean
        var = (centered * centered).mean(axis=-1, keepdims=True)
        normed = centered / (var + self.eps).sqrt()
        return normed * self.gamma + self.beta


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, dim: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.weight = Parameter(rng.normal(0.0, 0.02, size=(num_embeddings, dim)))

    def forward(self, ids) -> Tensor:
        ids = np.asarray(ids, dtype=np.intp)
        return self.weight[ids]
