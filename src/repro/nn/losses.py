"""Loss functions used for supervised and contrastive training."""

from __future__ import annotations

import numpy as np

from repro.nn.functional import log_softmax
from repro.nn.tensor import Tensor

__all__ = [
    "cross_entropy",
    "binary_cross_entropy",
    "binary_cross_entropy_with_logits",
    "mse_loss",
    "nt_xent_loss",
]


def cross_entropy(logits: Tensor, targets) -> Tensor:
    """Mean categorical cross-entropy.

    Parameters
    ----------
    logits:
        Tensor of shape ``(n, num_classes)`` (unnormalised scores).
    targets:
        Integer class indices, shape ``(n,)``.
    """
    targets = np.asarray(targets, dtype=np.intp)
    log_probs = log_softmax(logits, axis=-1)
    picked = log_probs[np.arange(len(targets)), targets]
    return -picked.mean()


def binary_cross_entropy(probabilities: Tensor, targets, eps: float = 1e-12) -> Tensor:
    """Mean binary cross-entropy on probabilities in ``[0, 1]``."""
    targets = Tensor(np.asarray(targets, dtype=np.float64))
    clipped = probabilities.clip(eps, 1.0 - eps)
    loss = -(targets * clipped.log() + (1.0 - targets) * (1.0 - clipped).log())
    return loss.mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets) -> Tensor:
    """Numerically stable BCE on raw logits.

    Uses the log-sum-exp form ``max(z, 0) - z*y + log(1 + exp(-|z|))`` whose
    gradient is ``sigmoid(z) - y``: unlike clipping sigmoid probabilities, the
    gradient never vanishes for confidently wrong predictions, which matters
    for the GSG/LDG branches whose raw scores can saturate early in training.
    """
    targets_t = Tensor(np.asarray(targets, dtype=np.float64))
    z = logits
    abs_z = z.abs()
    positive_part = (z + abs_z) * 0.5      # max(z, 0)
    loss = positive_part - z * targets_t + ((-abs_z).exp() + 1.0).log()
    return loss.mean()


def mse_loss(predictions: Tensor, targets) -> Tensor:
    """Mean squared error."""
    targets = Tensor(np.asarray(targets, dtype=np.float64))
    diff = predictions - targets
    return (diff * diff).mean()


def nt_xent_loss(z1: Tensor, z2: Tensor, temperature: float = 0.5) -> Tensor:
    """Normalised-temperature cross-entropy (NT-Xent) contrastive loss.

    Used by the GSG branch: two augmented views of each subgraph are embedded and
    the loss pulls matching views together while pushing apart the embeddings of
    different subgraphs in the same batch.

    Parameters
    ----------
    z1, z2:
        Tensors of shape ``(n, d)``: embeddings of the two views.
    temperature:
        Softmax temperature; smaller values sharpen the contrast.
    """
    if z1.shape != z2.shape:
        raise ValueError("the two views must have identical shapes")
    n = z1.shape[0]

    def normalise(z: Tensor) -> Tensor:
        norm = (z * z).sum(axis=1, keepdims=True).sqrt() + 1e-12
        return z / norm

    z1n, z2n = normalise(z1), normalise(z2)
    # Similarity matrix between every pair of the 2n embeddings.
    from repro.nn.tensor import concat

    z = concat([z1n, z2n], axis=0)
    sim = (z @ z.T) * (1.0 / temperature)
    # Mask self-similarity with a large negative constant so it never wins.
    mask = np.eye(2 * n) * 1e9
    sim = sim - Tensor(mask)
    targets = np.concatenate([np.arange(n, 2 * n), np.arange(0, n)])
    return cross_entropy(sim, targets)
