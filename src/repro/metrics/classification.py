"""Precision, recall, F1 and accuracy, reported macro-averaged like the paper."""

from __future__ import annotations

import numpy as np

__all__ = [
    "accuracy",
    "precision",
    "recall",
    "f1_score",
    "confusion_matrix",
    "classification_report",
]


def _validate(y_true, y_pred) -> tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must have the same shape")
    if y_true.size == 0:
        raise ValueError("empty label arrays")
    return y_true, y_pred


def accuracy(y_true, y_pred) -> float:
    """Fraction of correctly classified samples."""
    y_true, y_pred = _validate(y_true, y_pred)
    return float((y_true == y_pred).mean())


def _per_class_counts(y_true: np.ndarray, y_pred: np.ndarray, label) -> tuple[int, int, int]:
    tp = int(((y_pred == label) & (y_true == label)).sum())
    fp = int(((y_pred == label) & (y_true != label)).sum())
    fn = int(((y_pred != label) & (y_true == label)).sum())
    return tp, fp, fn


def precision(y_true, y_pred, average: str = "macro") -> float:
    """Precision: TP / (TP + FP), macro-averaged over classes by default."""
    y_true, y_pred = _validate(y_true, y_pred)
    labels = np.unique(np.concatenate([y_true, y_pred]))
    if average == "binary":
        labels = np.array([1])
    scores = []
    for label in labels:
        tp, fp, _fn = _per_class_counts(y_true, y_pred, label)
        scores.append(tp / (tp + fp) if (tp + fp) else 0.0)
    return float(np.mean(scores))


def recall(y_true, y_pred, average: str = "macro") -> float:
    """Recall: TP / (TP + FN), macro-averaged over classes by default."""
    y_true, y_pred = _validate(y_true, y_pred)
    labels = np.unique(np.concatenate([y_true, y_pred]))
    if average == "binary":
        labels = np.array([1])
    scores = []
    for label in labels:
        tp, _fp, fn = _per_class_counts(y_true, y_pred, label)
        scores.append(tp / (tp + fn) if (tp + fn) else 0.0)
    return float(np.mean(scores))


def f1_score(y_true, y_pred, average: str = "macro") -> float:
    """Harmonic mean of precision and recall per class, then averaged."""
    y_true, y_pred = _validate(y_true, y_pred)
    labels = np.unique(np.concatenate([y_true, y_pred]))
    if average == "binary":
        labels = np.array([1])
    scores = []
    for label in labels:
        tp, fp, fn = _per_class_counts(y_true, y_pred, label)
        p = tp / (tp + fp) if (tp + fp) else 0.0
        r = tp / (tp + fn) if (tp + fn) else 0.0
        scores.append(2 * p * r / (p + r) if (p + r) else 0.0)
    return float(np.mean(scores))


def confusion_matrix(y_true, y_pred, num_classes: int | None = None) -> np.ndarray:
    """Confusion matrix with rows = true class, columns = predicted class."""
    y_true, y_pred = _validate(y_true, y_pred)
    if num_classes is None:
        num_classes = int(max(y_true.max(), y_pred.max())) + 1
    matrix = np.zeros((num_classes, num_classes), dtype=int)
    for t, p in zip(y_true.astype(int), y_pred.astype(int)):
        matrix[t, p] += 1
    return matrix


def classification_report(y_true, y_pred) -> dict[str, float]:
    """Dictionary with the four headline metrics used throughout the paper."""
    return {
        "precision": precision(y_true, y_pred),
        "recall": recall(y_true, y_pred),
        "f1": f1_score(y_true, y_pred),
        "accuracy": accuracy(y_true, y_pred),
    }
