"""Expected calibration error (ECE), the paper's calibration quality metric."""

from __future__ import annotations

import numpy as np

__all__ = ["expected_calibration_error"]


def expected_calibration_error(y_true, probabilities, num_bins: int = 10) -> float:
    """Expected calibration error over equal-width confidence bins.

    Following Guo et al. (2017), predictions are bucketed by their confidence
    (the probability assigned to the positive class for binary problems); the
    ECE is the weighted average of the absolute gap between each bin's accuracy
    and its mean confidence.

    Parameters
    ----------
    y_true:
        Binary ground-truth labels.
    probabilities:
        Predicted probability of the positive class, in ``[0, 1]``.
    num_bins:
        Number of equal-width confidence bins.
    """
    y_true = np.asarray(y_true).astype(float)
    probabilities = np.asarray(probabilities, dtype=float)
    if y_true.shape != probabilities.shape:
        raise ValueError("y_true and probabilities must have the same shape")
    if y_true.size == 0:
        raise ValueError("cannot compute ECE on empty arrays")
    if num_bins < 1:
        raise ValueError("num_bins must be >= 1")
    # Confidence of the predicted class; predicted class is prob >= 0.5.
    predicted = (probabilities >= 0.5).astype(float)
    confidence = np.where(predicted == 1.0, probabilities, 1.0 - probabilities)
    correct = (predicted == y_true).astype(float)
    edges = np.linspace(0.0, 1.0, num_bins + 1)
    ece = 0.0
    n = y_true.size
    for low, high in zip(edges[:-1], edges[1:]):
        if high == 1.0:
            mask = (confidence >= low) & (confidence <= high)
        else:
            mask = (confidence >= low) & (confidence < high)
        if not mask.any():
            continue
        bin_acc = correct[mask].mean()
        bin_conf = confidence[mask].mean()
        ece += (mask.sum() / n) * abs(bin_acc - bin_conf)
    return float(ece)
