"""ROC curve and area under the curve (used for the Figure 7 classifier study)."""

from __future__ import annotations

import numpy as np

__all__ = ["roc_curve", "auc_score"]


def roc_curve(y_true, scores) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compute (false positive rate, true positive rate, thresholds).

    ``y_true`` holds binary labels and ``scores`` the predicted probability of
    the positive class.  Thresholds are the distinct scores in decreasing order,
    prepended with ``+inf`` so the curve starts at (0, 0).
    """
    y_true = np.asarray(y_true).astype(int)
    scores = np.asarray(scores, dtype=float)
    if y_true.shape != scores.shape:
        raise ValueError("y_true and scores must have the same shape")
    n_pos = int((y_true == 1).sum())
    n_neg = int((y_true == 0).sum())
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_curve needs at least one positive and one negative sample")
    order = np.argsort(-scores, kind="stable")
    sorted_true = y_true[order]
    sorted_scores = scores[order]
    tps = np.cumsum(sorted_true == 1)
    fps = np.cumsum(sorted_true == 0)
    # Keep only the last index of each distinct score (threshold boundaries).
    distinct = np.r_[np.flatnonzero(np.diff(sorted_scores)), len(sorted_scores) - 1]
    tpr = np.r_[0.0, tps[distinct] / n_pos]
    fpr = np.r_[0.0, fps[distinct] / n_neg]
    thresholds = np.r_[np.inf, sorted_scores[distinct]]
    return fpr, tpr, thresholds


def auc_score(y_true, scores) -> float:
    """Area under the ROC curve via the trapezoidal rule."""
    fpr, tpr, _ = roc_curve(y_true, scores)
    return float(np.trapezoid(tpr, fpr))
