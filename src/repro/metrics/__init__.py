"""Evaluation metrics: classification scores, ROC/AUC and calibration error."""

from repro.metrics.classification import (
    accuracy,
    precision,
    recall,
    f1_score,
    confusion_matrix,
    classification_report,
)
from repro.metrics.ranking import roc_curve, auc_score
from repro.metrics.calibration_error import expected_calibration_error

__all__ = [
    "accuracy",
    "precision",
    "recall",
    "f1_score",
    "confusion_matrix",
    "classification_report",
    "roc_curve",
    "auc_score",
    "expected_calibration_error",
]
