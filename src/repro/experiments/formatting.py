"""Plain-text formatting of experiment results into paper-style tables."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_metrics_row", "format_table"]


def format_metrics_row(name: str, metrics: Mapping[str, float], width: int = 28) -> str:
    """One row: method name followed by percentage-formatted metric values."""
    values = "  ".join(f"{metrics[key] * 100:6.2f}" for key in sorted(metrics))
    return f"{name:<{width}} {values}"


def format_table(results: Mapping[str, Mapping[str, Mapping[str, float] | float]],
                 title: str = "", metric: str | None = None) -> str:
    """Render nested ``{row: {column: metrics}}`` results as an aligned text table.

    When ``metric`` is given, each cell shows only that metric; otherwise cells
    must already be floats.
    """
    rows = list(results)
    columns: list[str] = []
    for row in rows:
        for column in results[row]:
            if column not in columns:
                columns.append(column)
    header = f"{'method':<28}" + "".join(f"{c:>14}" for c in columns)
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        cells = []
        for column in columns:
            value = results[row].get(column)
            if value is None:
                cells.append(f"{'-':>14}")
                continue
            if metric is not None and isinstance(value, Mapping):
                value = value[metric]
            cells.append(f"{value * 100:>13.2f}%")
        lines.append(f"{row:<28}" + "".join(cells))
    return "\n".join(lines)
