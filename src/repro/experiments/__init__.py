"""Experiment harness: dataset builders, runners and table/figure formatters.

The benchmark suite under ``benchmarks/`` wraps these helpers with
pytest-benchmark fixtures; examples call them directly.
"""

from repro.experiments.setup import ExperimentConfig, build_experiment_dataset
from repro.experiments.runner import (
    evaluate_dbg4eth_head,
    evaluate_model,
    run_category_experiment,
    run_baseline_comparison,
    run_ablation,
    run_training_size_sweep,
)
from repro.experiments.figures import (
    feature_correlation_matrix,
    category_feature_summary,
    calibration_weight_table,
    classifier_roc_study,
    sensitivity_study,
)
from repro.experiments.formatting import format_table, format_metrics_row

__all__ = [
    "ExperimentConfig",
    "build_experiment_dataset",
    "evaluate_model",
    "evaluate_dbg4eth_head",
    "run_category_experiment",
    "run_baseline_comparison",
    "run_ablation",
    "run_training_size_sweep",
    "feature_correlation_matrix",
    "category_feature_summary",
    "calibration_weight_table",
    "classifier_roc_study",
    "sensitivity_study",
    "format_table",
    "format_metrics_row",
]
