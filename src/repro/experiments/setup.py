"""Shared experiment setup: synthetic ledger + subgraph dataset at a given scale."""

from __future__ import annotations

from dataclasses import dataclass

from repro.chain import LedgerConfig, generate_ledger
from repro.data import DatasetConfig, SubgraphDataset, SubgraphDatasetBuilder

__all__ = ["ExperimentConfig", "build_experiment_dataset"]


@dataclass
class ExperimentConfig:
    """Scale and sampling parameters shared by every experiment.

    ``scale`` multiplies the default per-category account counts; the benchmark
    suite uses a small scale so each table regenerates in minutes, while the
    examples demonstrate larger runs.
    """

    scale: float = 0.4
    top_k: int = 100
    hops: int = 2
    max_nodes_per_subgraph: int = 60
    seed: int = 7

    def ledger_config(self) -> LedgerConfig:
        config = LedgerConfig().scaled(self.scale)
        config.seed = self.seed
        return config

    def dataset_config(self) -> DatasetConfig:
        return DatasetConfig(hops=self.hops, top_k=self.top_k,
                             max_nodes_per_subgraph=self.max_nodes_per_subgraph,
                             seed=self.seed)


def build_experiment_dataset(config: ExperimentConfig | None = None,
                             ) -> tuple[SubgraphDataset, "Ledger"]:
    """Generate the ledger and the account-centred subgraph dataset."""
    config = config or ExperimentConfig()
    ledger = generate_ledger(config.ledger_config())
    dataset = SubgraphDatasetBuilder(ledger, config.dataset_config()).build()
    return dataset, ledger
