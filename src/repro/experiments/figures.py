"""Figure-level studies: feature analysis, calibration weights, ROC, sensitivity."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.chain import AccountCategory
from repro.core import DBG4ETH, DBG4ETHConfig
from repro.core.classifier import CLASSIFIER_FACTORIES, AccountClassificationModule
from repro.data import SubgraphDataset, category_feature_matrix, train_test_split
from repro.data.features import FEATURE_NAMES
from repro.metrics import auc_score, roc_curve

__all__ = [
    "feature_correlation_matrix",
    "category_feature_summary",
    "calibration_weight_table",
    "classifier_roc_study",
    "sensitivity_study",
]


def feature_correlation_matrix(dataset: SubgraphDataset) -> tuple[np.ndarray, tuple[str, ...]]:
    """Figure 4: Pearson correlation between the 15 deep features of centre nodes."""
    features = dataset.feature_matrix()
    with np.errstate(invalid="ignore", divide="ignore"):
        correlation = np.corrcoef(features, rowvar=False)
    correlation = np.nan_to_num(correlation, nan=0.0)
    return correlation, FEATURE_NAMES


def category_feature_summary(dataset: SubgraphDataset) -> dict[str, dict[str, float]]:
    """Figure 5: per-category means of the four grouped features (SAF/RAF/TFF/CF)."""
    labelled = [s for s in dataset.samples if s.category is not None]
    features = np.vstack([s.node_features[s.center_index] for s in labelled])
    grouped = category_feature_matrix(features)
    group_names = ("SAF", "RAF", "TFF", "CF")
    summary: dict[str, dict[str, float]] = {}
    categories = np.array([s.category for s in labelled])
    for category in sorted(set(categories)):
        mask = categories == category
        summary[category] = {
            name: float(grouped[mask, j].mean()) for j, name in enumerate(group_names)
        }
    return summary


def calibration_weight_table(dataset: SubgraphDataset, categories: list,
                             config_factory: Callable[[], DBG4ETHConfig],
                             seed: int = 0) -> dict[str, dict[str, dict[str, float]]]:
    """Figure 6: adaptive calibration weights per method, branch and category."""
    weights: dict[str, dict[str, dict[str, float]]] = {}
    for category in categories:
        category_name = AccountCategory(category).value
        samples, labels = dataset.binary_task(category, rng=np.random.default_rng(seed))
        train_s, train_y, _test_s, _test_y = train_test_split(samples, labels, seed=seed)
        model = DBG4ETH(config_factory())
        model.fit(train_s, train_y)
        weights[category_name] = model.calibration_weights()
    return weights


def classifier_roc_study(dataset: SubgraphDataset, category,
                         config_factory: Callable[[], DBG4ETHConfig],
                         seed: int = 0) -> dict[str, dict]:
    """Figure 7: ROC curve and AUC of the five final classifiers on one category.

    The two graph branches are trained once; each candidate classifier is then
    fitted on the same calibrated ``[P_g, P_l]`` training probabilities and
    evaluated on the held-out split.
    """
    samples, labels = dataset.binary_task(category, rng=np.random.default_rng(seed))
    train_s, train_y, test_s, test_y = train_test_split(samples, labels, seed=seed)
    model = DBG4ETH(config_factory())
    model.fit(train_s, train_y)
    train_calibrated = model.calibration.transform(
        *model._branch_scores(train_s, None, training=False))
    test_calibrated = model.calibration.transform(
        *model._branch_scores(test_s, None, training=False))
    study: dict[str, dict] = {}
    for name in CLASSIFIER_FACTORIES:
        head = AccountClassificationModule(classifier=name, seed=seed)
        head.fit(train_calibrated, train_y)
        scores = head.predict_proba(test_calibrated)
        fpr, tpr, _ = roc_curve(test_y, scores)
        study[name] = {"auc": auc_score(test_y, scores), "fpr": fpr, "tpr": tpr}
    return study


def sensitivity_study(dataset: SubgraphDataset, category,
                      config_factory: Callable[..., DBG4ETHConfig],
                      augmentation_probs: tuple[float, ...] = (0.0, 0.2, 0.4, 0.8),
                      pooling_layers: tuple[int, ...] = (1, 2, 3),
                      seed: int = 0) -> dict[str, dict]:
    """Figure 9: F1 as a function of GSG augmentation strength and LDG pooling depth.

    ``config_factory`` must accept ``edge_drop``, ``feature_mask`` and
    ``pooling_layers`` keyword overrides.
    """
    from repro.experiments.runner import evaluate_model

    samples, labels = dataset.binary_task(category, rng=np.random.default_rng(seed))
    train_s, train_y, test_s, test_y = train_test_split(samples, labels, seed=seed)

    augmentation_results = {}
    for prob in augmentation_probs:
        model = DBG4ETH(config_factory(edge_drop=prob, feature_mask=prob))
        report = evaluate_model(model, train_s, train_y, test_s, test_y)
        augmentation_results[prob] = report["f1"]

    pooling_results = {}
    for layers in pooling_layers:
        model = DBG4ETH(config_factory(pooling_layers=layers))
        report = evaluate_model(model, train_s, train_y, test_s, test_y)
        pooling_results[layers] = report["f1"]

    return {"augmentation": augmentation_results, "pooling": pooling_results}
