"""Experiment runners for the comparison, ablation and sweep studies.

The DBG4ETH rows of every study go through the :class:`~repro.api.DeAnonymizer`
facade (one one-vs-rest head per category); baselines keep the plain
``fit``/``predict`` path via :func:`evaluate_model`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable

import numpy as np

from repro.api import DeAnonymizer
from repro.chain import AccountCategory
from repro.core import (
    CalibrationConfig,
    DBG4ETHConfig,
    GSGConfig,
    LDGConfig,
)
from repro.data import SubgraphDataset, train_test_split
from repro.data.dataset import AccountSubgraph
from repro.metrics import classification_report

__all__ = [
    "evaluate_model",
    "evaluate_dbg4eth_head",
    "run_category_experiment",
    "run_baseline_comparison",
    "run_ablation",
    "run_training_size_sweep",
    "fast_dbg4eth_config",
]

_DBG4ETH_CONFIG_FIELDS = frozenset(f.name for f in dataclasses.fields(DBG4ETHConfig))


def fast_dbg4eth_config(epochs: int = 8, batch_size: int = 1,
                        **overrides) -> DBG4ETHConfig:
    """A laptop-fast DBG4ETH configuration used across the benchmark suite.

    ``batch_size`` is forwarded to both branch configs: 1 keeps the legacy
    per-sample training loop, larger values train on block-diagonal
    minibatches (one stacked sparse pass per optimizer step).

    ``overrides`` must name actual :class:`DBG4ETHConfig` fields (``use_gsg``,
    ``classifier``, ...); unknown names raise :class:`TypeError` instead of
    silently attaching a dead attribute to the config.
    """
    config = DBG4ETHConfig(
        gsg=GSGConfig(hidden_dim=16, epochs=epochs, contrastive_batch=6,
                      batch_size=batch_size),
        ldg=LDGConfig(hidden_dim=16, epochs=epochs, num_slices=4,
                      first_pool_clusters=6, batch_size=batch_size),
        calibration=CalibrationConfig(),
    )
    for key, value in overrides.items():
        if key not in _DBG4ETH_CONFIG_FIELDS:
            raise TypeError(
                f"fast_dbg4eth_config() got an unexpected keyword argument {key!r}; "
                f"valid DBG4ETHConfig fields: {sorted(_DBG4ETH_CONFIG_FIELDS)}")
        setattr(config, key, value)
    return config


def evaluate_model(model, train_samples: list[AccountSubgraph], train_labels: np.ndarray,
                   test_samples: list[AccountSubgraph], test_labels: np.ndarray,
                   ) -> dict[str, float]:
    """Fit ``model`` on the train split and report P/R/F1/Acc on the test split."""
    model.fit(train_samples, train_labels)
    predictions = model.predict(test_samples)
    return classification_report(np.asarray(test_labels).astype(int),
                                 np.asarray(predictions).astype(int))


def evaluate_dbg4eth_head(config: DBG4ETHConfig | Callable[[], DBG4ETHConfig] | None,
                          category, train_samples: list[AccountSubgraph],
                          train_labels: np.ndarray,
                          test_samples: list[AccountSubgraph], test_labels: np.ndarray,
                          ) -> dict[str, float]:
    """Fit one facade head for ``category`` on the train split and report test metrics."""
    facade = DeAnonymizer(model_config=config)
    facade.fit_category(category, train_samples, train_labels)
    predictions = facade.predict_samples(category, test_samples)
    return classification_report(np.asarray(test_labels).astype(int),
                                 np.asarray(predictions).astype(int))


def run_category_experiment(dataset: SubgraphDataset, category: AccountCategory | str,
                            model_factory: Callable[[], object],
                            test_fraction: float = 0.3, seed: int = 0,
                            ) -> dict[str, float]:
    """One-vs-rest experiment for ``category`` with a fresh model from ``model_factory``."""
    samples, labels = dataset.binary_task(category, rng=np.random.default_rng(seed))
    train_s, train_y, test_s, test_y = train_test_split(samples, labels,
                                                        test_fraction=test_fraction,
                                                        seed=seed)
    model = model_factory()
    return evaluate_model(model, train_s, train_y, test_s, test_y)


def run_baseline_comparison(dataset: SubgraphDataset, categories: list,
                            baselines: dict[str, object] | None = None,
                            include_dbg4eth: bool = True,
                            dbg4eth_config: "DBG4ETHConfig | None" = None,
                            test_fraction: float = 0.3, seed: int = 0,
                            ) -> dict[str, dict[str, dict[str, float]]]:
    """Table III / V / VI style comparison.

    Returns ``{method: {category: {precision, recall, f1, accuracy}}}``.
    ``baselines`` maps method names to *unfitted* classifier instances; a fresh
    copy is created per category by re-instantiating from the registry when the
    caller passes factories instead of instances.
    """
    from repro.baselines import baseline_registry

    results: dict[str, dict[str, dict[str, float]]] = {}
    for category in categories:
        category_name = AccountCategory(category).value
        samples, labels = dataset.binary_task(category, rng=np.random.default_rng(seed))
        train_s, train_y, test_s, test_y = train_test_split(samples, labels,
                                                            test_fraction=test_fraction,
                                                            seed=seed)
        methods = dict(baselines) if baselines is not None else baseline_registry(seed=seed)
        for name, model in methods.items():
            report = evaluate_model(model, train_s, train_y, test_s, test_y)
            results.setdefault(name, {})[category_name] = report
        if include_dbg4eth:
            report = evaluate_dbg4eth_head(dbg4eth_config or fast_dbg4eth_config(),
                                           category_name, train_s, train_y, test_s, test_y)
            results.setdefault("DBG4ETH", {})[category_name] = report
    return results


def _ablation_variants(base: Callable[[], DBG4ETHConfig]) -> dict[str, DBG4ETHConfig]:
    """The Table IV ablation configurations."""
    def configure(**kwargs) -> DBG4ETHConfig:
        config = base()
        for key, value in kwargs.items():
            if key.startswith("calibration_"):
                setattr(config.calibration, key.removeprefix("calibration_"), value)
            else:
                setattr(config, key, value)
        return config

    return {
        "w/o GSG": configure(use_gsg=False),
        "w/o LDG": configure(use_ldg=False),
        "w/o calibration": configure(calibration_use_calibration=False),
        "w/o Param. calibration": configure(calibration_use_parametric=False),
        "w/o Non-param. calibration": configure(calibration_use_nonparametric=False),
        "w/o Ada. calibration": configure(calibration_adaptive=False),
        "w/o LightGBM": configure(classifier="mlp"),
        "DBG4ETH": configure(),
    }


def run_ablation(dataset: SubgraphDataset, categories: list,
                 base_config: Callable[[], DBG4ETHConfig] | None = None,
                 test_fraction: float = 0.3, seed: int = 0,
                 ) -> dict[str, dict[str, float]]:
    """Table IV: F1-score of each ablated variant per category."""
    base_config = base_config or fast_dbg4eth_config
    results: dict[str, dict[str, float]] = {}
    for category in categories:
        category_name = AccountCategory(category).value
        samples, labels = dataset.binary_task(category, rng=np.random.default_rng(seed))
        train_s, train_y, test_s, test_y = train_test_split(samples, labels,
                                                            test_fraction=test_fraction,
                                                            seed=seed)
        for variant_name, config in _ablation_variants(base_config).items():
            report = evaluate_dbg4eth_head(config, category_name,
                                           train_s, train_y, test_s, test_y)
            results.setdefault(variant_name, {})[category_name] = report["f1"]
    return results


def run_training_size_sweep(dataset: SubgraphDataset, category: AccountCategory | str,
                            fractions: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5),
                            config_factory: Callable[[], DBG4ETHConfig] | None = None,
                            seed: int = 0) -> dict[float, dict[str, float]]:
    """Figure 8: model performance as the training fraction grows (RQ4)."""
    config_factory = config_factory or fast_dbg4eth_config
    samples, labels = dataset.binary_task(category, rng=np.random.default_rng(seed))
    results: dict[float, dict[str, float]] = {}
    for fraction in fractions:
        train_s, train_y, test_s, test_y = train_test_split(
            samples, labels, test_fraction=1.0 - fraction, seed=seed)
        results[fraction] = evaluate_dbg4eth_head(config_factory(), category,
                                                  train_s, train_y, test_s, test_y)
    return results
