"""DBG4ETH: the paper's primary contribution.

The pipeline (Figure 2) has four components:

1. :class:`~repro.core.gsg.GSGBranch` — global static account transaction
   encoding with a hierarchical attention network regularised by contrastive
   learning with adaptive augmentation.
2. :class:`~repro.core.ldg.LDGBranch` — local dynamic account transaction
   encoding: per-time-slice GCN, GRU evolution, DiffPool and an attention
   read-out over time slices.
3. :class:`~repro.core.calibration_module.JointCalibrationModule` — adaptive
   confidence calibration of both branches' predicted values.
4. :class:`~repro.core.classifier.AccountClassificationModule` — a LightGBM
   classifier over the two calibrated probabilities.

:class:`~repro.core.model.DBG4ETH` wires the four together behind a
``fit`` / ``predict`` / ``predict_proba`` interface and exposes ablation
switches used by the Table IV experiments.
"""

from repro.core.augmentation import AugmentationConfig, adaptive_augmentation
from repro.core.gsg import GSGBranch, GSGConfig
from repro.core.ldg import LDGBranch, LDGConfig
from repro.core.calibration_module import JointCalibrationModule, CalibrationConfig
from repro.core.classifier import AccountClassificationModule
from repro.core.model import DBG4ETH, DBG4ETHConfig

__all__ = [
    "AugmentationConfig",
    "adaptive_augmentation",
    "GSGBranch",
    "GSGConfig",
    "LDGBranch",
    "LDGConfig",
    "JointCalibrationModule",
    "CalibrationConfig",
    "AccountClassificationModule",
    "DBG4ETH",
    "DBG4ETHConfig",
]
