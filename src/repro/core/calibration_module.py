"""Joint prediction and calibration module (Section IV-C)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.calibration import (
    NONPARAMETRIC_METHODS,
    PARAMETRIC_METHODS,
    AdaptiveCalibrator,
    confidence_scale,
    default_calibrators,
)

__all__ = ["CalibrationConfig", "JointCalibrationModule"]


@dataclass
class CalibrationConfig:
    """Calibration ablation switches used by the Table IV experiments.

    * ``use_calibration`` — disable to feed raw (scaled) confidences downstream.
    * ``use_parametric`` / ``use_nonparametric`` — restrict the method pool.
    * ``adaptive`` — when False, calibrated outputs are combined with uniform
      weights instead of ECE-reduction weights.
    """

    use_calibration: bool = True
    use_parametric: bool = True
    use_nonparametric: bool = True
    adaptive: bool = True
    num_bins: int = 10

    def method_names(self) -> tuple[str, ...]:
        names: tuple[str, ...] = ()
        if self.use_parametric:
            names += PARAMETRIC_METHODS
        if self.use_nonparametric:
            names += NONPARAMETRIC_METHODS
        return names


class _BranchCalibrator:
    """Calibration pipeline for one branch: scale, fit calibrators, combine."""

    def __init__(self, config: CalibrationConfig):
        self.config = config
        self._mean: float | None = None
        self._std: float | None = None
        self._adaptive: AdaptiveCalibrator | None = None

    def fit(self, raw_scores: np.ndarray, labels: np.ndarray) -> "_BranchCalibrator":
        raw_scores = np.asarray(raw_scores, dtype=float)
        self._mean = float(raw_scores.mean())
        self._std = float(raw_scores.std()) or 1.0
        confidences = confidence_scale(raw_scores, self._mean, self._std)
        if not self.config.use_calibration:
            return self
        methods = {name: cal for name, cal in default_calibrators().items()
                   if name in self.config.method_names()}
        if not methods:
            return self
        self._adaptive = AdaptiveCalibrator(methods, num_bins=self.config.num_bins)
        self._adaptive.fit(confidences, labels)
        if not self.config.adaptive:
            uniform = 1.0 / len(methods)
            self._adaptive.report.weights = {name: uniform for name in methods}
        return self

    def transform(self, raw_scores: np.ndarray) -> np.ndarray:
        confidences = confidence_scale(raw_scores, self._mean, self._std)
        if self._adaptive is None:
            return confidences
        return self._adaptive.transform(confidences)

    def weights(self) -> dict[str, float]:
        if self._adaptive is None:
            return {}
        return self._adaptive.weights()

    def get_state(self) -> dict:
        if self._mean is None:
            raise RuntimeError("branch calibrator has not been fitted")
        return {
            "mean": float(self._mean),
            "std": float(self._std),
            "adaptive": None if self._adaptive is None else self._adaptive.get_state(),
        }

    def set_state(self, state: dict) -> "_BranchCalibrator":
        self._mean = float(state["mean"])
        self._std = float(state["std"])
        adaptive = state.get("adaptive")
        self._adaptive = None if adaptive is None else AdaptiveCalibrator.from_state(adaptive)
        return self


class JointCalibrationModule:
    """Calibrate the GSG and LDG predicted values into trustworthy probabilities.

    Stage (1) confidence generation scales raw scores into (0, 1); stage (2)
    fits the configured parametric/non-parametric calibrators; stage (3)
    combines them with adaptive ECE-reduction weights (Eq. 24-25).
    """

    def __init__(self, config: CalibrationConfig | None = None):
        self.config = config or CalibrationConfig()
        self._gsg = _BranchCalibrator(self.config)
        self._ldg = _BranchCalibrator(self.config)

    def fit(self, gsg_scores: np.ndarray, ldg_scores: np.ndarray,
            labels: np.ndarray) -> "JointCalibrationModule":
        labels = np.asarray(labels, dtype=float)
        self._gsg.fit(np.asarray(gsg_scores, dtype=float), labels)
        self._ldg.fit(np.asarray(ldg_scores, dtype=float), labels)
        return self

    def transform(self, gsg_scores: np.ndarray, ldg_scores: np.ndarray) -> np.ndarray:
        """Return an ``(n, 2)`` matrix ``[P_g, P_l]`` of calibrated probabilities."""
        return np.column_stack([
            self._gsg.transform(np.asarray(gsg_scores, dtype=float)),
            self._ldg.transform(np.asarray(ldg_scores, dtype=float)),
        ])

    def fit_transform(self, gsg_scores, ldg_scores, labels) -> np.ndarray:
        return self.fit(gsg_scores, ldg_scores, labels).transform(gsg_scores, ldg_scores)

    def weights(self) -> dict[str, dict[str, float]]:
        """Per-branch adaptive calibration weights (the Figure 6 quantities)."""
        return {"gsg": self._gsg.weights(), "ldg": self._ldg.weights()}

    # ------------------------------------------------------------- persistence
    def get_state(self) -> dict:
        """Serializable fitted state of both branch calibration pipelines."""
        return {"gsg": self._gsg.get_state(), "ldg": self._ldg.get_state()}

    def set_state(self, state: dict) -> "JointCalibrationModule":
        """Restore a fitted state produced by :meth:`get_state` (config unchanged)."""
        self._gsg = _BranchCalibrator(self.config).set_state(state["gsg"])
        self._ldg = _BranchCalibrator(self.config).set_state(state["ldg"])
        return self
