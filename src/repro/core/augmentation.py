"""Adaptive graph augmentation for contrastive learning (Section IV-A3).

Two augmentation operators following Zhu et al. (2021):

* **Topology-level** — edges are dropped with probability inversely related to
  their edge centrality (mean of the endpoints' node centrality under degree /
  eigenvector / PageRank measures), so unimportant edges are perturbed while
  important topology is preserved.
* **Node-attribute-level** — feature dimensions are masked with probability
  inversely related to their global importance (mean absolute value), so
  salient attributes survive augmentation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["AugmentationConfig", "adaptive_augmentation"]


@dataclass
class AugmentationConfig:
    """Augmentation strengths for one generated view.

    ``edge_drop_prob`` and ``feature_mask_prob`` correspond to the paper's
    :math:`P_e` and :math:`P_f` hyperparameters (Section V-F1); the defaults
    match the reported configuration (view 1: 0.3 / 0.1, view 2: 0.4 / 0.0).
    """

    edge_drop_prob: float = 0.3
    feature_mask_prob: float = 0.1
    centrality_measure: str = "degree"

    def __post_init__(self):
        if not 0.0 <= self.edge_drop_prob <= 1.0:
            raise ValueError("edge_drop_prob must be in [0, 1]")
        if not 0.0 <= self.feature_mask_prob <= 1.0:
            raise ValueError("feature_mask_prob must be in [0, 1]")


def _edge_centrality_matrix(adjacency: np.ndarray, measure: str) -> np.ndarray:
    """Centrality score per edge slot, from node centralities of the dense adjacency."""
    binary = (adjacency > 0).astype(float)
    n = binary.shape[0]
    if measure == "degree":
        node_scores = binary.sum(axis=1)
    elif measure == "eigenvector":
        x = np.full(n, 1.0 / max(n, 1))
        for _ in range(50):
            x_next = binary @ x + 1e-12
            x_next /= np.linalg.norm(x_next)
            x = x_next
        node_scores = np.abs(x)
    elif measure == "pagerank":
        damping = 0.85
        out_degree = np.maximum(binary.sum(axis=1), 1.0)
        transition = binary / out_degree[:, None]
        rank = np.full(n, 1.0 / max(n, 1))
        for _ in range(50):
            rank = (1.0 - damping) / max(n, 1) + damping * transition.T @ rank
        node_scores = rank
    else:
        raise ValueError(f"unknown centrality measure: {measure!r}")
    return 0.5 * (node_scores[:, None] + node_scores[None, :])


def adaptive_augmentation(adjacency: np.ndarray, features: np.ndarray,
                          config: AugmentationConfig,
                          rng: np.random.Generator | None = None,
                          ) -> tuple[np.ndarray, np.ndarray]:
    """Return an augmented ``(adjacency, features)`` view of a subgraph.

    Edge drop probabilities are scaled so that, on average, a fraction
    ``edge_drop_prob`` of edges is removed, but low-centrality edges are removed
    preferentially.  Feature-mask probabilities are likewise scaled by inverse
    column importance.
    """
    rng = rng or np.random.default_rng(0)
    adjacency = np.asarray(adjacency, dtype=float)
    features = np.asarray(features, dtype=float)

    augmented_adj = adjacency.copy()
    edge_mask = adjacency > 0
    if config.edge_drop_prob > 0.0 and edge_mask.any():
        centrality = _edge_centrality_matrix(adjacency, config.centrality_measure)
        scores = centrality[edge_mask]
        # Higher centrality -> lower drop probability; rescale to the target mean.
        inverse = scores.max() - scores + 1e-9
        drop_probs = inverse / inverse.mean() * config.edge_drop_prob
        drop_probs = np.clip(drop_probs, 0.0, 0.95)
        dropped = rng.random(len(drop_probs)) < drop_probs
        kept_values = augmented_adj[edge_mask]
        kept_values[dropped] = 0.0
        augmented_adj[edge_mask] = kept_values
        augmented_adj = np.maximum(augmented_adj, augmented_adj.T) \
            if np.allclose(adjacency, adjacency.T) else augmented_adj

    augmented_features = features.copy()
    if config.feature_mask_prob > 0.0 and features.size:
        importance = np.abs(features).mean(axis=0) + 1e-9
        inverse = importance.max() - importance + 1e-9
        mask_probs = inverse / inverse.mean() * config.feature_mask_prob
        mask_probs = np.clip(mask_probs, 0.0, 0.95)
        column_mask = rng.random(features.shape[1]) < mask_probs
        augmented_features[:, column_mask] = 0.0

    return augmented_adj, augmented_features
