"""Adaptive graph augmentation for contrastive learning (Section IV-A3).

Two augmentation operators following Zhu et al. (2021):

* **Topology-level** — edges are dropped with probability inversely related to
  their edge centrality (mean of the endpoints' node centrality under degree /
  eigenvector / PageRank measures), so unimportant edges are perturbed while
  important topology is preserved.
* **Node-attribute-level** — feature dimensions are masked with probability
  inversely related to their global importance (mean absolute value), so
  salient attributes survive augmentation.

Both a dense ``(n, n)`` adjacency and a :class:`SparseAdjacency` are accepted;
the output matches the input form.  The two paths draw from the RNG in the
same order (one vector over the positive edge slots in row-major order, one
vector over the feature columns), so a seeded run is reproducible across forms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.sparse import SparseAdjacency

__all__ = ["AugmentationConfig", "adaptive_augmentation"]


@dataclass
class AugmentationConfig:
    """Augmentation strengths for one generated view.

    ``edge_drop_prob`` and ``feature_mask_prob`` correspond to the paper's
    :math:`P_e` and :math:`P_f` hyperparameters (Section V-F1); the defaults
    match the reported configuration (view 1: 0.3 / 0.1, view 2: 0.4 / 0.0).
    """

    edge_drop_prob: float = 0.3
    feature_mask_prob: float = 0.1
    centrality_measure: str = "degree"

    def __post_init__(self):
        if not 0.0 <= self.edge_drop_prob <= 1.0:
            raise ValueError("edge_drop_prob must be in [0, 1]")
        if not 0.0 <= self.feature_mask_prob <= 1.0:
            raise ValueError("feature_mask_prob must be in [0, 1]")


def _node_centrality_dense(binary: np.ndarray, measure: str) -> np.ndarray:
    """Node centrality scores of a dense 0/1 adjacency."""
    n = binary.shape[0]
    if measure == "degree":
        return binary.sum(axis=1)
    if measure == "eigenvector":
        x = np.full(n, 1.0 / max(n, 1))
        for _ in range(50):
            x_next = binary @ x + 1e-12
            x_next /= np.linalg.norm(x_next)
            x = x_next
        return np.abs(x)
    if measure == "pagerank":
        damping = 0.85
        out_degree = np.maximum(binary.sum(axis=1), 1.0)
        transition = binary / out_degree[:, None]
        rank = np.full(n, 1.0 / max(n, 1))
        for _ in range(50):
            rank = (1.0 - damping) / max(n, 1) + damping * transition.T @ rank
        return rank
    raise ValueError(f"unknown centrality measure: {measure!r}")


def _node_centrality_sparse(binary: SparseAdjacency, measure: str) -> np.ndarray:
    """CSR twin of :func:`_node_centrality_dense` (same iteration counts)."""
    n = binary.num_nodes
    if measure == "degree":
        return binary.row_sums()
    if measure == "eigenvector":
        x = np.full(n, 1.0 / max(n, 1))
        for _ in range(50):
            x_next = binary.matmul(x) + 1e-12
            x_next /= np.linalg.norm(x_next)
            x = x_next
        return np.abs(x)
    if measure == "pagerank":
        damping = 0.85
        out_degree = np.maximum(binary.row_sums(), 1.0)
        transition = binary.scale(row=1.0 / out_degree)
        rank = np.full(n, 1.0 / max(n, 1))
        for _ in range(50):
            rank = (1.0 - damping) / max(n, 1) + damping * transition.rmatmul(rank)
        return rank
    raise ValueError(f"unknown centrality measure: {measure!r}")


def _edge_centrality_matrix(adjacency: np.ndarray, measure: str) -> np.ndarray:
    """Centrality score per edge slot, from node centralities of the dense adjacency."""
    binary = (adjacency > 0).astype(float)
    node_scores = _node_centrality_dense(binary, measure)
    return 0.5 * (node_scores[:, None] + node_scores[None, :])


def _drop_mask(scores: np.ndarray, edge_drop_prob: float,
               rng: np.random.Generator) -> np.ndarray:
    """Per-slot drop decisions from edge-centrality scores.

    Higher centrality -> lower drop probability; probabilities are rescaled so
    the mean matches ``edge_drop_prob`` and clipped at 0.95.
    """
    inverse = scores.max() - scores + 1e-9
    drop_probs = inverse / inverse.mean() * edge_drop_prob
    drop_probs = np.clip(drop_probs, 0.0, 0.95)
    return rng.random(len(drop_probs)) < drop_probs


def _mask_features(features: np.ndarray, feature_mask_prob: float,
                   rng: np.random.Generator) -> np.ndarray:
    """Column-wise masking scaled by inverse feature importance."""
    augmented = features.copy()
    if feature_mask_prob > 0.0 and features.size:
        importance = np.abs(features).mean(axis=0) + 1e-9
        inverse = importance.max() - importance + 1e-9
        mask_probs = inverse / inverse.mean() * feature_mask_prob
        mask_probs = np.clip(mask_probs, 0.0, 0.95)
        column_mask = rng.random(features.shape[1]) < mask_probs
        augmented[:, column_mask] = 0.0
    return augmented


def _augment_dense(adjacency: np.ndarray, config: AugmentationConfig,
                   rng: np.random.Generator) -> np.ndarray:
    augmented_adj = adjacency.copy()
    edge_mask = adjacency > 0
    if config.edge_drop_prob > 0.0 and edge_mask.any():
        centrality = _edge_centrality_matrix(adjacency, config.centrality_measure)
        dropped = _drop_mask(centrality[edge_mask], config.edge_drop_prob, rng)
        kept_values = augmented_adj[edge_mask]
        kept_values[dropped] = 0.0
        augmented_adj[edge_mask] = kept_values
        augmented_adj = np.maximum(augmented_adj, augmented_adj.T) \
            if np.allclose(adjacency, adjacency.T) else augmented_adj
    return augmented_adj


def _augment_sparse(adjacency: SparseAdjacency, config: AugmentationConfig,
                    rng: np.random.Generator) -> SparseAdjacency:
    """CSR edge drop with the dense path's semantics.

    Positive slots are enumerated in the same row-major order as the dense
    ``adjacency > 0`` mask, each slot is dropped independently, and a symmetric
    input is re-symmetrised with ``max(A, A.T)`` — so, like the dense path, an
    undirected edge survives unless *both* of its directed slots are dropped.

    Everything deterministic per ``(adjacency, config)`` — the positive-slot
    mask, the centrality-scaled drop probabilities, the symmetry check and the
    ``max(A, A.T)`` sort plan — is memoized on the adjacency instance, so the
    per-draw cost of the contrastive loop is just the RNG vector, the value
    copy and the replayed reductions.
    """
    if config.edge_drop_prob <= 0.0:
        return adjacency
    edge_mask = adjacency._memoized("aug_edge_mask", lambda: adjacency.data > 0)
    if not edge_mask.any():
        return adjacency

    def build_probs():
        node_scores = _node_centrality_sparse(adjacency.binarized(),
                                              config.centrality_measure)
        scores = 0.5 * (node_scores[adjacency.rows]
                        + node_scores[adjacency.indices])[edge_mask]
        inverse = scores.max() - scores + 1e-9
        return np.clip(inverse / inverse.mean() * config.edge_drop_prob,
                       0.0, 0.95)

    drop_probs = adjacency._memoized(
        ("aug_drop_probs", config.centrality_measure, config.edge_drop_prob),
        build_probs)
    dropped = rng.random(len(drop_probs)) < drop_probs
    data = adjacency.data.copy()
    kept_values = data[edge_mask]
    kept_values[dropped] = 0.0
    data[edge_mask] = kept_values
    if adjacency.is_symmetric():
        augmented = adjacency.symmetrized_max(data)
    else:
        augmented = SparseAdjacency(adjacency.indptr, adjacency.indices, data)
    return augmented.pruned()


def adaptive_augmentation(adjacency, features: np.ndarray,
                          config: AugmentationConfig,
                          rng: np.random.Generator | None = None,
                          ):
    """Return an augmented ``(adjacency, features)`` view of a subgraph.

    Edge drop probabilities are scaled so that, on average, a fraction
    ``edge_drop_prob`` of edges is removed, but low-centrality edges are removed
    preferentially.  Feature-mask probabilities are likewise scaled by inverse
    column importance.  The adjacency may be dense or sparse; the augmented
    adjacency is returned in the same form.
    """
    rng = rng or np.random.default_rng(0)
    features = np.asarray(features, dtype=float)
    if isinstance(adjacency, SparseAdjacency):
        augmented_adj = _augment_sparse(adjacency, config, rng)
    else:
        augmented_adj = _augment_dense(np.asarray(adjacency, dtype=float),
                                       config, rng)
    augmented_features = _mask_features(features, config.feature_mask_prob, rng)
    return augmented_adj, augmented_features
