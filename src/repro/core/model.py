"""The end-to-end DBG4ETH model."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.augmentation import AugmentationConfig
from repro.core.calibration_module import CalibrationConfig, JointCalibrationModule
from repro.core.classifier import AccountClassificationModule
from repro.core.gsg import GSGBranch, GSGConfig
from repro.core.ldg import LDGBranch, LDGConfig
from repro.data.dataset import AccountSubgraph

__all__ = ["DBG4ETHConfig", "DBG4ETH", "dbg4eth_config_to_dict", "dbg4eth_config_from_dict"]


def dbg4eth_config_to_dict(config: "DBG4ETHConfig") -> dict:
    """A json-friendly dict of a :class:`DBG4ETHConfig` (nested dataclasses included)."""
    return asdict(config)


def dbg4eth_config_from_dict(data: dict) -> "DBG4ETHConfig":
    """Rebuild a :class:`DBG4ETHConfig` from :func:`dbg4eth_config_to_dict` output."""
    gsg = dict(data["gsg"])
    gsg["view1"] = AugmentationConfig(**gsg["view1"])
    gsg["view2"] = AugmentationConfig(**gsg["view2"])
    return DBG4ETHConfig(
        gsg=GSGConfig(**gsg),
        ldg=LDGConfig(**data["ldg"]),
        calibration=CalibrationConfig(**data["calibration"]),
        classifier=data["classifier"],
        use_gsg=bool(data["use_gsg"]),
        use_ldg=bool(data["use_ldg"]),
        cross_fit_folds=int(data["cross_fit_folds"]),
        seed=int(data["seed"]),
    )


@dataclass
class DBG4ETHConfig:
    """Configuration and ablation switches of the full pipeline.

    The boolean switches map one-to-one to the Table IV ablation rows:
    ``use_gsg=False`` is "w/o GSG", ``use_ldg=False`` is "w/o LDG",
    ``calibration.use_calibration=False`` is "w/o calibration", and
    ``classifier='mlp'`` reproduces "w/o LightGBM".
    """

    gsg: GSGConfig = field(default_factory=GSGConfig)
    ldg: LDGConfig = field(default_factory=LDGConfig)
    calibration: CalibrationConfig = field(default_factory=CalibrationConfig)
    classifier: str = "lightgbm"
    use_gsg: bool = True
    use_ldg: bool = True
    #: Fit the calibration module and final classifier on out-of-fold branch
    #: scores (2-fold cross-fitting).  Training-set scores of an overfit branch
    #: are nearly separable, which would let the stacked classifier pick an
    #: arbitrary threshold; cross-fitting keeps the downstream stages honest.
    cross_fit_folds: int = 2
    seed: int = 0

    def __post_init__(self):
        if not (self.use_gsg or self.use_ldg):
            raise ValueError("at least one of the GSG / LDG branches must be enabled")


class DBG4ETH:
    """Double graph inference-based account de-anonymization.

    Usage::

        model = DBG4ETH()
        model.fit(train_samples, train_labels)
        predictions = model.predict(test_samples)
        probabilities = model.predict_proba(test_samples)

    ``samples`` are :class:`~repro.data.AccountSubgraph` instances and labels
    are binary one-vs-rest indicators for the category under study (the paper
    evaluates one category at a time, Table III).
    """

    def __init__(self, config: DBG4ETHConfig | None = None):
        self.config = config or DBG4ETHConfig()
        self.gsg_branch = GSGBranch(self.config.gsg) if self.config.use_gsg else None
        self.ldg_branch = LDGBranch(self.config.ldg) if self.config.use_ldg else None
        self.calibration = JointCalibrationModule(self.config.calibration)
        self.classifier = AccountClassificationModule(self.config.classifier, self.config.seed)
        self._fitted = False

    # -------------------------------------------------------------------- fit
    def fit(self, samples: list[AccountSubgraph], labels) -> "DBG4ETH":
        labels = np.asarray(labels).astype(int)
        if len(samples) != len(labels):
            raise ValueError("samples and labels must have the same length")
        if len(samples) == 0:
            raise ValueError("cannot fit on an empty dataset")
        oof_gsg, oof_ldg = self._cross_fitted_scores(samples, labels)
        # The deployed branches are trained on the full training set; the
        # calibration module and classifier see only out-of-fold scores.
        gsg_scores, ldg_scores = self._branch_scores(samples, labels, training=True)
        if oof_gsg is None:
            oof_gsg, oof_ldg = gsg_scores, ldg_scores
        calibrated = self.calibration.fit_transform(oof_gsg, oof_ldg, labels)
        self.classifier.fit(calibrated, labels)
        self._fitted = True
        return self

    def _cross_fitted_scores(self, samples: list[AccountSubgraph], labels: np.ndarray,
                             ) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Out-of-fold branch scores used to fit the calibration and classifier."""
        folds = self.config.cross_fit_folds
        class_counts = np.bincount(labels) if labels.size else np.array([0])
        # Cross-fitting only helps when each fold still trains on a usable
        # number of samples per class; tiny tasks fall back to in-sample scores.
        if (folds < 2 or len(samples) < 6 * folds or len(np.unique(labels)) < 2
                or class_counts.min() < 2 * folds):
            return None, None
        from repro.data.splits import stratified_kfold

        oof_gsg = np.zeros(len(samples))
        oof_ldg = np.zeros(len(samples))
        for train_idx, val_idx in stratified_kfold(labels, n_splits=folds,
                                                   seed=self.config.seed):
            train_samples = [samples[i] for i in train_idx]
            val_samples = [samples[i] for i in val_idx]
            train_labels = labels[train_idx]
            if len(np.unique(train_labels)) < 2:
                return None, None
            if self.config.use_gsg:
                branch = GSGBranch(self.config.gsg)
                branch.fit(train_samples, train_labels)
                oof_gsg[val_idx] = branch.predict_scores(val_samples)
            if self.config.use_ldg:
                branch = LDGBranch(self.config.ldg)
                branch.fit(train_samples, train_labels)
                oof_ldg[val_idx] = branch.predict_scores(val_samples)
        if not self.config.use_gsg:
            oof_gsg = oof_ldg
        if not self.config.use_ldg:
            oof_ldg = oof_gsg
        return oof_gsg, oof_ldg

    def _branch_scores(self, samples: list[AccountSubgraph], labels: np.ndarray | None,
                       training: bool) -> tuple[np.ndarray, np.ndarray]:
        if training:
            if self.gsg_branch is not None:
                self.gsg_branch.fit(samples, labels)
            if self.ldg_branch is not None:
                self.ldg_branch.fit(samples, labels)
        gsg_scores = (self.gsg_branch.predict_scores(samples)
                      if self.gsg_branch is not None else np.zeros(len(samples)))
        ldg_scores = (self.ldg_branch.predict_scores(samples)
                      if self.ldg_branch is not None else np.zeros(len(samples)))
        # A disabled branch mirrors the other so the downstream stack is unchanged.
        if self.gsg_branch is None:
            gsg_scores = ldg_scores
        if self.ldg_branch is None:
            ldg_scores = gsg_scores
        return gsg_scores, ldg_scores

    # -------------------------------------------------------------- inference
    def predict_proba(self, samples: list[AccountSubgraph]) -> np.ndarray:
        """Probability that each sample belongs to the positive category."""
        self._check_fitted()
        gsg_scores, ldg_scores = self._branch_scores(samples, None, training=False)
        calibrated = self.calibration.transform(gsg_scores, ldg_scores)
        return self.classifier.predict_proba(calibrated)

    def predict(self, samples: list[AccountSubgraph]) -> np.ndarray:
        """Predicted binary labels."""
        self._check_fitted()
        gsg_scores, ldg_scores = self._branch_scores(samples, None, training=False)
        calibrated = self.calibration.transform(gsg_scores, ldg_scores)
        return self.classifier.predict(calibrated)

    def calibration_weights(self) -> dict[str, dict[str, float]]:
        """Adaptive calibration weights per branch (Figure 6)."""
        self._check_fitted()
        return self.calibration.weights()

    def _check_fitted(self) -> None:
        if not self._fitted:
            raise RuntimeError("DBG4ETH has not been fitted; call fit() first")

    # ------------------------------------------------------------- persistence
    def get_state(self) -> dict:
        """The full fitted state: config, branch weights, calibrators, classifier.

        The returned structure contains only json/npz-friendly values (dicts,
        lists, scalars and numpy arrays), so it can be written with
        :func:`repro.api.persistence.save_state` and restored bit-for-bit.
        """
        self._check_fitted()
        return {
            "config": dbg4eth_config_to_dict(self.config),
            "gsg": self.gsg_branch.get_state() if self.gsg_branch is not None else None,
            "ldg": self.ldg_branch.get_state() if self.ldg_branch is not None else None,
            "calibration": self.calibration.get_state(),
            "classifier": self.classifier.get_state(),
        }

    def set_state(self, state: dict) -> "DBG4ETH":
        """Restore a fitted model from :meth:`get_state` output.

        The config embedded in the state replaces this instance's config, so a
        freshly constructed ``DBG4ETH()`` restores correctly regardless of how
        it was configured.
        """
        self.config = dbg4eth_config_from_dict(state["config"])
        self.gsg_branch = None
        self.ldg_branch = None
        if self.config.use_gsg:
            if state.get("gsg") is None:
                raise ValueError("state enables the GSG branch but has no GSG weights")
            self.gsg_branch = GSGBranch(self.config.gsg).set_state(state["gsg"])
        if self.config.use_ldg:
            if state.get("ldg") is None:
                raise ValueError("state enables the LDG branch but has no LDG weights")
            self.ldg_branch = LDGBranch(self.config.ldg).set_state(state["ldg"])
        self.calibration = JointCalibrationModule(self.config.calibration)
        self.calibration.set_state(state["calibration"])
        self.classifier = AccountClassificationModule(self.config.classifier, self.config.seed)
        self.classifier.set_state(state["classifier"])
        self._fitted = True
        return self

    @classmethod
    def from_state(cls, state: dict) -> "DBG4ETH":
        """Construct a fitted model directly from :meth:`get_state` output."""
        return cls().set_state(state)
