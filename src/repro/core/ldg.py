"""Local dynamic account transaction encoding module (Section IV-B)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import AccountSubgraph
from repro.gnn.layers import GCNLayer
from repro.gnn.pooling import DiffPool
from repro.gnn.recurrent import GRUCell
from repro.gnn.sparse_ops import segment_mean_batch
from repro.graph.sparse import BatchedAdjacency, SparseAdjacency
from repro.nn import Adam, Linear, Module, Parameter, Tensor, concat
from repro.nn.losses import binary_cross_entropy_with_logits
from repro.nn.functional import relu, softmax

__all__ = ["LDGConfig", "LDGBranch"]


@dataclass
class LDGConfig:
    """Hyperparameters of the LDG branch.

    ``num_slices`` is the paper's ``T`` (10 by default); ``pooling_layers`` is
    the DiffPool depth studied in Figure 9(b) (2 by default, with pooling rates
    0.1 then collapse-to-one).

    ``batch_size`` selects the training granularity: 1 (the default) keeps the
    legacy one-subgraph-per-optimizer-step loop bit-for-bit; larger values
    train on minibatches whose time slices are stacked block-diagonally per
    slice index and forwarded as ``num_slices`` batched sparse passes.
    """

    hidden_dim: int = 32
    num_slices: int = 5
    pooling_layers: int = 2
    first_pool_clusters: int = 10
    epochs: int = 20
    batch_size: int = 1
    learning_rate: float = 0.01
    seed: int = 0


class _LDGNetwork(Module):
    """GCN per slice + GRU over slices + DiffPool + attention read-out (Eq. 14-23)."""

    def __init__(self, in_dim: int, config: LDGConfig, rng: np.random.Generator):
        super().__init__()
        self.config = config
        self.input_proj = Linear(in_dim, config.hidden_dim, rng=rng)
        self.gcn = GCNLayer(config.hidden_dim, config.hidden_dim, rng=rng)
        self.gru = GRUCell(config.hidden_dim, config.hidden_dim, rng=rng)
        self.pools = self._build_pools(config, rng)
        # Adaptive time-slice weights of the read-out (Eq. 22), learned end-to-end.
        self.slice_logits = Parameter(np.zeros(config.num_slices))
        self.head = Linear(config.hidden_dim, 1, rng=rng)

    @staticmethod
    def _build_pools(config: LDGConfig, rng: np.random.Generator) -> list[DiffPool]:
        """A shrinking sequence of DiffPool layers ending in a single cluster.

        The paper pools twice: first to ``N * 0.1`` clusters, then to one.  With
        soft assignments the first stage can use a fixed cluster budget
        (``first_pool_clusters``) regardless of the subgraph size.
        """
        pools = []
        clusters = config.first_pool_clusters
        for layer in range(config.pooling_layers):
            is_last = layer == config.pooling_layers - 1
            pools.append(DiffPool(config.hidden_dim, 1 if is_last else clusters, rng=rng))
            clusters = max(1, clusters // 2)
        return pools

    def slice_representations(self, features: np.ndarray, slices) -> list[Tensor]:
        """Per-slice pooled evolutionary features ``h^pool_t`` (Eq. 20/22 inputs).

        ``slices`` is a sequence of per-slice adjacencies — sparse
        :class:`~repro.graph.sparse.SparseAdjacency` instances in the training
        path, dense matrices for backward compatibility.
        """
        projected = relu(self.input_proj(Tensor(features)))
        hidden = projected
        pooled_per_slice: list[Tensor] = []
        for adjacency in slices:
            topo = self.gcn(hidden, adjacency)            # Eq. 14
            hidden = self.gru(topo, hidden)               # Eq. 15-18
            pooled, pooled_adj = hidden, adjacency
            for pool in self.pools:
                pooled, pooled_adj, _assign = pool(pooled, pooled_adj)   # Eq. 19-21
            pooled_per_slice.append(pooled.mean(axis=0, keepdims=True))
        return pooled_per_slice

    def forward(self, features: np.ndarray, slices) -> Tensor:
        pooled_per_slice = self.slice_representations(features, slices)
        weights = softmax(self.slice_logits.reshape(1, -1), axis=1)
        representation = None
        for t, pooled in enumerate(pooled_per_slice):
            weighted = pooled * weights[0, t].reshape(1, 1)
            representation = weighted if representation is None else representation + weighted
        return self.head(relu(representation))            # Eq. 23

    def slice_representations_batched(self, features: np.ndarray,
                                      slices) -> list[Tensor]:
        """Batched ``h^pool_t``: one ``(B, hidden)`` tensor per time slice.

        ``features`` is the per-sample node-feature matrices stacked
        vertically; ``slices`` is a length-``T`` sequence of
        :class:`~repro.graph.sparse.BatchedAdjacency` — slice ``t`` of every
        sample stacked block-diagonally (all ``T`` share the batch's node
        offsets, since slicing partitions edges, not nodes).  GCN and GRU are
        block-/row-local so they run unchanged on the stack; DiffPool and the
        final mean read-out reduce per segment.
        """
        projected = relu(self.input_proj(Tensor(features)))
        hidden = projected
        pooled_per_slice: list[Tensor] = []
        for adjacency in slices:
            topo = self.gcn(hidden, adjacency)            # Eq. 14
            hidden = self.gru(topo, hidden)               # Eq. 15-18
            pooled, pooled_adj = hidden, adjacency
            for pool in self.pools:
                pooled, pooled_adj, _assign = pool.forward_batched(pooled, pooled_adj)
            pooled_per_slice.append(
                segment_mean_batch(pooled, pooled_adj.node_offsets))
        return pooled_per_slice

    def forward_batched(self, features: np.ndarray, slices) -> Tensor:
        """``(B, 1)`` logits for a block-diagonal minibatch."""
        pooled_per_slice = self.slice_representations_batched(features, slices)
        weights = softmax(self.slice_logits.reshape(1, -1), axis=1)
        representation = None
        for t, pooled in enumerate(pooled_per_slice):
            weighted = pooled * weights[0, t].reshape(1, 1)
            representation = weighted if representation is None else representation + weighted
        return self.head(relu(representation))            # Eq. 23


class LDGBranch:
    """Train/evaluate the local dynamic graph encoder on subgraph samples."""

    def __init__(self, config: LDGConfig | None = None):
        self.config = config or LDGConfig()
        self._network: _LDGNetwork | None = None
        self._feature_stats: tuple[np.ndarray, np.ndarray] | None = None
        # Parity escape hatch — see GSGBranch: with batch_size > 1 and this
        # flag off, the same minibatch schedule runs with per-sample forwards.
        self._batched_kernel = True

    def _prepare(self, sample: AccountSubgraph):
        mean, std = self._feature_stats
        features = (sample.node_features - mean) / std
        # Cached CSR slices: built once per sample, no dense per-slice matrices.
        slices = sample.time_slices(self.config.num_slices, weighted=False,
                                    sparse=True)
        return features, slices

    def _prepare_batch(self, samples: list[AccountSubgraph]):
        """Stack a minibatch: features vertically, slice ``t`` across samples.

        Each stacked slice seeds its GCN normalisation from the per-sample
        memoized ones, so repeated epochs never re-derive them.
        """
        prepared = [self._prepare(s) for s in samples]
        features = np.vstack([p[0] for p in prepared])
        slices = [SparseAdjacency.block_diagonal(
            [p[1][t] for p in prepared], derived=("gcn_normalized",),
            compose_plans=True)
            for t in range(self.config.num_slices)]
        return features, slices

    def _minibatch_logits(self, batch: list[AccountSubgraph]) -> Tensor:
        """``(len(batch),)`` logits — stacked kernel or looped reference."""
        if self._batched_kernel:
            features, slices = self._prepare_batch(batch)
            return self._network.forward_batched(features, slices).reshape(len(batch))
        return concat([self._network(*self._prepare(s)).reshape(1)
                       for s in batch], axis=0)

    def _fit_feature_stats(self, samples: list[AccountSubgraph]) -> None:
        stacked = np.vstack([s.node_features for s in samples])
        mean = stacked.mean(axis=0)
        std = stacked.std(axis=0)
        std[std < 1e-12] = 1.0
        self._feature_stats = (mean, std)

    def fit(self, samples: list[AccountSubgraph], labels: np.ndarray) -> "LDGBranch":
        if len(samples) != len(labels):
            raise ValueError("samples and labels must have the same length")
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self._fit_feature_stats(samples)
        in_dim = samples[0].node_features.shape[1]
        self._network = _LDGNetwork(in_dim, cfg, rng)
        optimizer = Adam(self._network.parameters(), lr=cfg.learning_rate)
        labels = np.asarray(labels, dtype=float)
        indices = np.arange(len(samples))
        batch_size = max(1, cfg.batch_size)
        if batch_size > 1:
            # Minibatch compositions are fixed by one seeded shuffle; epochs
            # re-shuffle only the visit order, so each minibatch's per-slice
            # stacks (and their composed GCN normalisations / transpose plans)
            # are built once per fit and reused every epoch.
            rng.shuffle(indices)
            chunks = [indices[start:start + batch_size]
                      for start in range(0, len(indices), batch_size)]
            batches = [[samples[i] for i in chunk] for chunk in chunks]
            stacks = [self._prepare_batch(batch) for batch in batches] \
                if self._batched_kernel else None
            order = np.arange(len(chunks))
        for _epoch in range(cfg.epochs):
            if batch_size == 1:
                # Legacy per-sample-step loop, bit-for-bit.
                rng.shuffle(indices)
                for idx in indices:
                    features, slices = self._prepare(samples[idx])
                    optimizer.zero_grad()
                    logit = self._network(features, slices)
                    loss = binary_cross_entropy_with_logits(logit.reshape(1), [labels[idx]])
                    loss.backward()
                    optimizer.step()
            else:
                rng.shuffle(order)
                for j in order:
                    optimizer.zero_grad()
                    if stacks is not None:
                        logits = self._network.forward_batched(
                            *stacks[j]).reshape(len(chunks[j]))
                    else:
                        logits = self._minibatch_logits(batches[j])
                    loss = binary_cross_entropy_with_logits(logits, labels[chunks[j]])
                    loss.backward()
                    optimizer.step()
        return self

    def predict_scores(self, samples: list[AccountSubgraph]) -> np.ndarray:
        """Raw (uncalibrated) predicted values — the "local predicted value"."""
        if self._network is None:
            raise RuntimeError("LDGBranch has not been fitted")
        batch_size = max(1, self.config.batch_size)
        if batch_size > 1 and self._batched_kernel and len(samples) > 1:
            scores = np.empty(len(samples), dtype=np.float64)
            for start in range(0, len(samples), batch_size):
                chunk = samples[start:start + batch_size]
                features, slices = self._prepare_batch(chunk)
                logits = self._network.forward_batched(features, slices)
                scores[start:start + len(chunk)] = logits.data.ravel()
            return scores
        scores = []
        for sample in samples:
            features, slices = self._prepare(sample)
            scores.append(float(self._network(features, slices).data.item()))
        return np.array(scores)

    def predict_proba(self, samples: list[AccountSubgraph]) -> np.ndarray:
        scores = self.predict_scores(samples)
        return 1.0 / (1.0 + np.exp(-np.clip(scores, -30, 30)))

    def slice_weights(self) -> np.ndarray:
        """The learned adaptive time-slice weights ``alpha_t`` (Eq. 22)."""
        if self._network is None:
            raise RuntimeError("LDGBranch has not been fitted")
        logits = self._network.slice_logits.data
        exp = np.exp(logits - logits.max())
        return exp / exp.sum()

    # ------------------------------------------------------------- persistence
    def get_state(self) -> dict:
        """Serializable fitted state: feature scaler stats + network weights.

        The branch hyperparameters are *not* part of the state — restore into a
        branch constructed with the same :class:`LDGConfig`.
        """
        if self._network is None:
            raise RuntimeError("LDGBranch has not been fitted")
        mean, std = self._feature_stats
        return {
            "in_dim": int(self._network.input_proj.in_features),
            "feature_mean": np.asarray(mean),
            "feature_std": np.asarray(std),
            "params": self._network.state_dict(),
        }

    def set_state(self, state: dict) -> "LDGBranch":
        """Restore a fitted branch from :meth:`get_state` output."""
        self._feature_stats = (np.asarray(state["feature_mean"], dtype=float),
                               np.asarray(state["feature_std"], dtype=float))
        self._network = _LDGNetwork(int(state["in_dim"]), self.config,
                                    np.random.default_rng(self.config.seed))
        self._network.load_state_dict([np.asarray(p, dtype=float) for p in state["params"]])
        return self
