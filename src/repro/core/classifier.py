"""Account classification module (Section IV-D)."""

from __future__ import annotations

import numpy as np

from repro.ensemble import (
    AdaBoostClassifier,
    LightGBMClassifier,
    MLPClassifier,
    RandomForestClassifier,
    XGBoostClassifier,
)

__all__ = ["AccountClassificationModule", "CLASSIFIER_FACTORIES"]

#: Factories for the five final classifiers compared in Figure 7.  Extra
#: keyword arguments (``tree_method``, ``backend``, ...) are forwarded to the
#: underlying head, so callers can pin e.g. the exact-splitter reference.
CLASSIFIER_FACTORIES = {
    "lightgbm": lambda seed, **kw: LightGBMClassifier(seed=seed, **kw),
    "xgboost": lambda seed, **kw: XGBoostClassifier(seed=seed, **kw),
    "random_forest": lambda seed, **kw: RandomForestClassifier(seed=seed, **kw),
    "adaboost": lambda seed, **kw: AdaBoostClassifier(seed=seed, **kw),
    "mlp": lambda seed, **kw: MLPClassifier(seed=seed, **kw),
}


class AccountClassificationModule:
    """Final classifier over the calibrated ``[P_g, P_l]`` probability pairs.

    The paper selects LightGBM for its robustness to outliers and noise; the
    ``classifier`` argument allows swapping in the Figure 7 alternatives and the
    Table IV "w/o LightGBM" ablation (which uses the MLP).
    """

    def __init__(self, classifier: str = "lightgbm", seed: int = 0, **model_kwargs):
        if classifier not in CLASSIFIER_FACTORIES:
            raise ValueError(
                f"unknown classifier {classifier!r}; choose from {sorted(CLASSIFIER_FACTORIES)}")
        self.classifier_name = classifier
        self.seed = seed
        self._model = CLASSIFIER_FACTORIES[classifier](seed, **model_kwargs)

    def fit(self, calibrated: np.ndarray, labels: np.ndarray) -> "AccountClassificationModule":
        calibrated = np.atleast_2d(np.asarray(calibrated, dtype=float))
        self._model.fit(calibrated, np.asarray(labels).astype(int))
        return self

    def predict(self, calibrated: np.ndarray) -> np.ndarray:
        calibrated = np.atleast_2d(np.asarray(calibrated, dtype=float))
        return np.asarray(self._model.predict(calibrated)).astype(int)

    def predict_proba(self, calibrated: np.ndarray) -> np.ndarray:
        """Probability of the positive class for each sample."""
        calibrated = np.atleast_2d(np.asarray(calibrated, dtype=float))
        probs = self._model.predict_proba(calibrated)
        return probs[:, 1] if probs.ndim == 2 else probs

    # ------------------------------------------------------------- persistence
    def get_state(self) -> dict:
        """Serializable fitted state: classifier name, seed and model internals."""
        return {
            "classifier": self.classifier_name,
            "seed": int(self.seed),
            "model": self._model.get_state(),
        }

    def set_state(self, state: dict) -> "AccountClassificationModule":
        """Restore a fitted classifier from :meth:`get_state` output."""
        name = state["classifier"]
        if name not in CLASSIFIER_FACTORIES:
            raise ValueError(
                f"unknown classifier {name!r} in state; choose from {sorted(CLASSIFIER_FACTORIES)}")
        self.classifier_name = name
        self.seed = int(state["seed"])
        self._model = CLASSIFIER_FACTORIES[name](self.seed)
        self._model.set_state(state["model"])
        return self
