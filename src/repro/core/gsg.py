"""Global static account transaction encoding module (Section IV-A)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.augmentation import AugmentationConfig, adaptive_augmentation
from repro.data.dataset import AccountSubgraph
from repro.gnn.hierarchical import HierarchicalAttentionEncoder
from repro.graph.sparse import BatchedAdjacency, SparseAdjacency
from repro.nn import Adam, Linear, Module, Tensor, concat, nt_xent_loss
from repro.nn.losses import binary_cross_entropy_with_logits
from repro.nn.functional import leaky_relu

__all__ = ["GSGConfig", "GSGBranch"]


@dataclass
class GSGConfig:
    """Hyperparameters of the GSG branch.

    Defaults mirror Section V-A4 at laptop scale: a 2-layer GAT encoder, max
    pooling read-out, and the two augmented views with
    ``(P_e, P_f) = (0.3, 0.1)`` and ``(0.4, 0.0)``.

    ``batch_size`` selects the training granularity: 1 (the default) keeps the
    legacy one-subgraph-per-optimizer-step loop bit-for-bit; larger values
    train on minibatches forwarded as a single block-diagonal sparse pass
    (one optimizer step per minibatch, loss averaged over its samples).
    """

    hidden_dim: int = 32
    num_layers: int = 2
    num_heads: int = 1
    epochs: int = 20
    batch_size: int = 1
    learning_rate: float = 0.01
    contrastive_weight: float = 0.1
    use_contrastive: bool = True
    contrastive_batch: int = 8
    view1: AugmentationConfig = field(default_factory=lambda: AugmentationConfig(0.3, 0.1))
    view2: AugmentationConfig = field(default_factory=lambda: AugmentationConfig(0.4, 0.0))
    seed: int = 0


class _GSGNetwork(Module):
    """Feature alignment (Eq. 6) + hierarchical attention encoder + prediction head."""

    def __init__(self, in_dim: int, edge_dim: int, config: GSGConfig,
                 rng: np.random.Generator):
        super().__init__()
        self.align = Linear(in_dim + edge_dim, config.hidden_dim, rng=rng)
        self.encoder = HierarchicalAttentionEncoder(
            config.hidden_dim, config.hidden_dim, num_layers=config.num_layers,
            num_heads=config.num_heads, rng=rng)
        self.head = Linear(config.hidden_dim, 1, rng=rng)

    def embed(self, features: np.ndarray, edge_features: np.ndarray,
              adjacency) -> Tensor:
        """``adjacency`` is a :class:`SparseAdjacency` (dense arrays also work)."""
        aligned = leaky_relu(self.align(Tensor(np.hstack([features, edge_features]))))
        return self.encoder(aligned, adjacency)

    def forward(self, features: np.ndarray, edge_features: np.ndarray,
                adjacency) -> Tensor:
        return self.head(self.embed(features, edge_features, adjacency))

    def embed_batched(self, features: np.ndarray, edge_features: np.ndarray,
                      adjacency: BatchedAdjacency) -> Tensor:
        """``(B, hidden)`` embeddings of a block-diagonal minibatch.

        ``features`` / ``edge_features`` are the per-sample matrices stacked
        vertically in batch order; the alignment layer and GAT stack are
        row-/block-local, so one stacked pass equals the per-sample loop.
        """
        aligned = leaky_relu(self.align(Tensor(np.hstack([features, edge_features]))))
        return self.encoder.forward_batched(aligned, adjacency)

    def forward_batched(self, features: np.ndarray, edge_features: np.ndarray,
                        adjacency: BatchedAdjacency) -> Tensor:
        return self.head(self.embed_batched(features, edge_features, adjacency))


class GSGBranch:
    """Train/evaluate the global static graph encoder on subgraph samples.

    The branch is a binary scorer: :meth:`fit` trains on one-vs-rest labels and
    :meth:`predict_scores` returns raw (uncalibrated) scores — the "global
    predicted value" fed to the joint calibration module.
    """

    def __init__(self, config: GSGConfig | None = None):
        self.config = config or GSGConfig()
        self._network: _GSGNetwork | None = None
        self._feature_stats: tuple[np.ndarray, np.ndarray] | None = None
        # Parity escape hatch: with batch_size > 1 and this flag off, fit and
        # predict follow the same minibatch schedule but forward each sample
        # separately — the looped reference the stacked kernel is pinned
        # against (and timed against in benchmarks/perf_train.py).
        self._batched_kernel = True

    # ------------------------------------------------------------------ helpers
    def _prepare(self, sample: AccountSubgraph):
        mean, std = self._feature_stats
        features = (sample.node_features - mean) / std
        edge_features = np.log1p(np.abs(sample.node_edge_features()))
        # The sample's cached CSR adjacency: its memoized attention structure
        # and normalisations are shared across every epoch and both
        # contrastive views' un-augmented uses.
        adjacency = sample.adjacency_sparse()
        return features, edge_features, adjacency

    def _prepare_batch(self, samples: list[AccountSubgraph]):
        """Stack a minibatch into one block-diagonal sparse pass.

        The stacked adjacency's attention structure is seeded from the
        per-sample memoized structures (block-local derived forms compose),
        so repeated epochs over the same samples never re-derive it.
        """
        prepared = [self._prepare(s) for s in samples]
        features = np.vstack([p[0] for p in prepared])
        edge_features = np.vstack([p[1] for p in prepared])
        adjacency = SparseAdjacency.block_diagonal(
            [p[2] for p in prepared], derived=("attention_structure",),
            compose_plans=True)
        return features, edge_features, adjacency

    def _minibatch_logits(self, batch: list[AccountSubgraph]) -> Tensor:
        """``(len(batch),)`` logits — stacked kernel or looped reference."""
        if self._batched_kernel:
            features, edge_features, adjacency = self._prepare_batch(batch)
            return self._network.forward_batched(
                features, edge_features, adjacency).reshape(len(batch))
        return concat([self._network(*self._prepare(s)).reshape(1)
                       for s in batch], axis=0)

    def _fit_feature_stats(self, samples: list[AccountSubgraph]) -> None:
        stacked = np.vstack([s.node_features for s in samples])
        mean = stacked.mean(axis=0)
        std = stacked.std(axis=0)
        std[std < 1e-12] = 1.0
        self._feature_stats = (mean, std)

    # ----------------------------------------------------------------- training
    def fit(self, samples: list[AccountSubgraph], labels: np.ndarray) -> "GSGBranch":
        if len(samples) != len(labels):
            raise ValueError("samples and labels must have the same length")
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        self._fit_feature_stats(samples)
        in_dim = samples[0].node_features.shape[1]
        self._network = _GSGNetwork(in_dim, 2, cfg, rng)
        optimizer = Adam(self._network.parameters(), lr=cfg.learning_rate)
        labels = np.asarray(labels, dtype=float)
        indices = np.arange(len(samples))
        batch_size = max(1, cfg.batch_size)
        if batch_size > 1:
            # Minibatch compositions are fixed by one seeded shuffle; epochs
            # re-shuffle only the visit order.  Each minibatch's block-diagonal
            # stack — with its composed attention structure and transpose
            # plans — is therefore built once per fit and reused every epoch.
            rng.shuffle(indices)
            chunks = [indices[start:start + batch_size]
                      for start in range(0, len(indices), batch_size)]
            batches = [[samples[i] for i in chunk] for chunk in chunks]
            stacks = [self._prepare_batch(batch) for batch in batches] \
                if self._batched_kernel else None
            order = np.arange(len(chunks))
        for _epoch in range(cfg.epochs):
            if batch_size == 1:
                # Legacy per-sample-step loop, bit-for-bit.
                rng.shuffle(indices)
                for idx in indices:
                    sample = samples[idx]
                    features, edge_features, adjacency = self._prepare(sample)
                    optimizer.zero_grad()
                    logit = self._network(features, edge_features, adjacency)
                    loss = binary_cross_entropy_with_logits(logit.reshape(1), [labels[idx]])
                    loss.backward()
                    optimizer.step()
            else:
                rng.shuffle(order)
                for j in order:
                    optimizer.zero_grad()
                    if stacks is not None:
                        logits = self._network.forward_batched(
                            *stacks[j]).reshape(len(chunks[j]))
                    else:
                        logits = self._minibatch_logits(batches[j])
                    loss = binary_cross_entropy_with_logits(logits, labels[chunks[j]])
                    loss.backward()
                    optimizer.step()
            if cfg.use_contrastive and cfg.contrastive_weight > 0.0:
                self._contrastive_step(samples, rng, optimizer)
        return self

    def _contrastive_step(self, samples: list[AccountSubgraph], rng: np.random.Generator,
                          optimizer: Adam) -> None:
        """One contrastive-regularisation step on a random minibatch of subgraphs."""
        cfg = self.config
        batch_size = min(cfg.contrastive_batch, len(samples))
        if batch_size < 2:
            return
        batch_idx = rng.choice(len(samples), size=batch_size, replace=False)
        view1, view2 = [], []
        for idx in batch_idx:
            sample = samples[idx]
            features, edge_features, adjacency = self._prepare(sample)
            # RNG order is part of the training contract: view 1 then view 2,
            # in sample order, regardless of how the forwards are grouped.
            adj1, feat1 = adaptive_augmentation(adjacency, features, cfg.view1, rng)
            adj2, feat2 = adaptive_augmentation(adjacency, features, cfg.view2, rng)
            view1.append((feat1, edge_features, adj1))
            view2.append((feat2, edge_features, adj2))
        optimizer.zero_grad()
        z1 = self._embed_views(view1)
        z2 = self._embed_views(view2)
        loss = nt_xent_loss(z1, z2) * cfg.contrastive_weight
        loss.backward()
        optimizer.step()

    def _embed_views(self, views: list[tuple]) -> Tensor:
        """Embed a list of ``(features, edge_features, adjacency)`` views.

        With batching enabled the augmented subgraphs are stacked into one
        block-diagonal pass (their adjacencies are freshly augmented, so there
        are no per-sample memos to seed); otherwise each view is embedded
        separately and the results concatenated — identical float ops to the
        pre-batching implementation.
        """
        if self.config.batch_size > 1 and self._batched_kernel:
            features = np.vstack([v[0] for v in views])
            edge_features = np.vstack([v[1] for v in views])
            adjacency = SparseAdjacency.block_diagonal([v[2] for v in views])
            return self._network.embed_batched(features, edge_features, adjacency)
        return concat([self._network.embed(*view) for view in views], axis=0)

    # ---------------------------------------------------------------- inference
    def predict_scores(self, samples: list[AccountSubgraph]) -> np.ndarray:
        """Raw (uncalibrated) predicted values, one per sample."""
        if self._network is None:
            raise RuntimeError("GSGBranch has not been fitted")
        batch_size = max(1, self.config.batch_size)
        if batch_size > 1 and self._batched_kernel and len(samples) > 1:
            scores = np.empty(len(samples), dtype=np.float64)
            for start in range(0, len(samples), batch_size):
                chunk = samples[start:start + batch_size]
                features, edge_features, adjacency = self._prepare_batch(chunk)
                logits = self._network.forward_batched(features, edge_features, adjacency)
                scores[start:start + len(chunk)] = logits.data.ravel()
            return scores
        scores = []
        for sample in samples:
            features, edge_features, adjacency = self._prepare(sample)
            scores.append(float(self._network(features, edge_features, adjacency).data.item()))
        return np.array(scores)

    def predict_proba(self, samples: list[AccountSubgraph]) -> np.ndarray:
        """Sigmoid of the raw scores (used when the branch runs standalone)."""
        scores = self.predict_scores(samples)
        return 1.0 / (1.0 + np.exp(-np.clip(scores, -30, 30)))

    def embed(self, sample: AccountSubgraph) -> np.ndarray:
        """The subgraph embedding (useful for inspection and tests)."""
        if self._network is None:
            raise RuntimeError("GSGBranch has not been fitted")
        features, edge_features, adjacency = self._prepare(sample)
        return self._network.embed(features, edge_features, adjacency).data.ravel()

    # ------------------------------------------------------------- persistence
    def get_state(self) -> dict:
        """Serializable fitted state: feature scaler stats + network weights.

        The branch hyperparameters are *not* part of the state — restore into a
        branch constructed with the same :class:`GSGConfig`.
        """
        if self._network is None:
            raise RuntimeError("GSGBranch has not been fitted")
        mean, std = self._feature_stats
        return {
            "in_dim": int(self._network.align.in_features - 2),
            "feature_mean": np.asarray(mean),
            "feature_std": np.asarray(std),
            "params": self._network.state_dict(),
        }

    def set_state(self, state: dict) -> "GSGBranch":
        """Restore a fitted branch from :meth:`get_state` output."""
        self._feature_stats = (np.asarray(state["feature_mean"], dtype=float),
                               np.asarray(state["feature_std"], dtype=float))
        self._network = _GSGNetwork(int(state["in_dim"]), 2, self.config,
                                    np.random.default_rng(self.config.seed))
        self._network.load_state_dict([np.asarray(p, dtype=float) for p in state["params"]])
        return self
