"""Ethereum account model: externally-owned accounts and contract accounts."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["AccountType", "Account"]


class AccountType(str, enum.Enum):
    """The two Ethereum account kinds (Section II-A of the paper)."""

    EOA = "eoa"
    CONTRACT = "contract"


@dataclass
class Account:
    """A single Ethereum account.

    Attributes
    ----------
    address:
        Hex address string (``0x`` + 40 hex chars).
    account_type:
        :class:`AccountType.EOA` for key-controlled accounts or
        :class:`AccountType.CONTRACT` for deployed contracts.
    balance:
        Current Ether balance (in ETH, not Wei, for readability).
    nonce:
        Number of transactions sent from this account; enforces ordering.
    """

    address: str
    account_type: AccountType = AccountType.EOA
    balance: float = 0.0
    nonce: int = 0

    @property
    def is_contract(self) -> bool:
        return self.account_type is AccountType.CONTRACT

    def credit(self, amount: float) -> None:
        """Increase the balance by ``amount`` ETH."""
        if amount < 0:
            raise ValueError("credit amount must be non-negative")
        self.balance += amount

    def debit(self, amount: float) -> None:
        """Decrease the balance by ``amount`` ETH (may not go negative)."""
        if amount < 0:
            raise ValueError("debit amount must be non-negative")
        if amount > self.balance + 1e-12:
            raise ValueError(
                f"insufficient balance: {self.balance:.6f} ETH available, "
                f"{amount:.6f} ETH requested")
        self.balance -= amount

    def next_nonce(self) -> int:
        """Return the current nonce and advance it (called when sending a tx)."""
        nonce = self.nonce
        self.nonce += 1
        return nonce


def make_address(index: int, prefix: str = "") -> str:
    """Deterministically derive a syntactically valid Ethereum address.

    The ``prefix`` (e.g. ``"ex"`` for exchanges) is embedded as hex so that
    addresses remain human-attributable when debugging generated ledgers.
    """
    prefix_hex = prefix.encode("utf-8").hex()
    body = f"{index:x}"
    payload = (prefix_hex + body).rjust(40, "0")[-40:]
    return "0x" + payload


def make_addresses(count: int, prefix: str = "", start: int = 0) -> list[str]:
    """Batch :func:`make_address` for indices ``start .. start+count-1``.

    Equal element-for-element to the scalar function.  The prefix is hexed
    once and the per-index work is a single expression — measured ~4x faster
    than both the scalar call loop and an ``np.char`` pipeline (whose
    fixed-width unicode round trip costs more than the formatting it saves)
    on the ~716k-account populations the 10M-tx configs register.
    """
    if count <= 0:
        return []
    prefix_hex = prefix.encode("utf-8").hex()
    return ["0x" + (prefix_hex + f"{index:x}").rjust(40, "0")[-40:]
            for index in range(start, start + count)]
