"""Transactions and blocks for the synthetic ledger."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Transaction", "Block", "WEI_PER_ETH"]

WEI_PER_ETH = 10 ** 18
GWEI_PER_ETH = 10 ** 9


@dataclass(frozen=True)
class Transaction:
    """A single submitted Ethereum transaction.

    Only the fields consumed by the DBG4ETH pipeline are modelled.  Values are
    expressed in ETH and gas prices in Gwei, mirroring how the paper's feature
    definitions convert Wei into ETH (Eq. 5 multiplies by ``1e-18``).
    """

    tx_hash: str
    sender: str
    receiver: str
    value: float
    gas_price: float        # in Gwei
    gas_used: int
    timestamp: float        # unix seconds
    is_contract_call: bool = False
    block_number: int = 0
    submitted: bool = True

    @property
    def fee_eth(self) -> float:
        """Transaction fee in ETH: ``gas_price * gas_used`` converted from Gwei."""
        return self.gas_price * self.gas_used / GWEI_PER_ETH

    @property
    def value_wei(self) -> int:
        return int(round(self.value * WEI_PER_ETH))


@dataclass
class Block:
    """An ordered batch of transactions sharing a timestamp window."""

    number: int
    timestamp: float
    transactions: list[Transaction] = field(default_factory=list)

    @property
    def num_transactions(self) -> int:
        return len(self.transactions)

    def total_value(self) -> float:
        return sum(tx.value for tx in self.transactions)
