"""Account label registry modelled after Etherscan's label cloud."""

from __future__ import annotations

import enum
from typing import Iterable, Iterator

__all__ = ["AccountCategory", "LabelCloud"]


class AccountCategory(str, enum.Enum):
    """The labelled account categories.

    The first six are the paper's evaluated categories (Table II); the last
    three are additional attack families synthesized by the scenario engine
    (``repro.chain.scenarios``) to widen the classification workload beyond
    the paper's bridge/DeFi extension.
    """

    EXCHANGE = "exchange"
    ICO_WALLET = "ico-wallet"
    MINING = "mining"
    PHISH_HACK = "phish/hack"
    BRIDGE = "bridge"
    DEFI = "defi"
    WASH_TRADING = "wash-trading"
    AIRDROP_FARMING = "airdrop-farming"
    MIXER = "mixer"

    @classmethod
    def core_four(cls) -> list["AccountCategory"]:
        """The four categories used in the main comparison (Table III)."""
        return [cls.EXCHANGE, cls.ICO_WALLET, cls.MINING, cls.PHISH_HACK]

    @classmethod
    def novel_two(cls) -> list["AccountCategory"]:
        """The two novel categories used for the RQ4 robustness study."""
        return [cls.BRIDGE, cls.DEFI]

    @classmethod
    def seed_six(cls) -> list["AccountCategory"]:
        """The paper's six evaluated categories (Table II)."""
        return cls.core_four() + cls.novel_two()

    @classmethod
    def attack_families(cls) -> list["AccountCategory"]:
        """The post-paper attack families added by the scenario engine."""
        return [cls.WASH_TRADING, cls.AIRDROP_FARMING, cls.MIXER]


class LabelCloud:
    """Mapping from account address to a single :class:`AccountCategory`.

    Mirrors the public label providers the paper relies on: sparse (only a small
    fraction of accounts carry a label) and keyed purely by address.
    """

    def __init__(self):
        self._labels: dict[str, AccountCategory] = {}

    def add(self, address: str, category: AccountCategory) -> None:
        if address in self._labels and self._labels[address] != category:
            raise ValueError(
                f"address {address} already labelled as {self._labels[address].value}")
        self._labels[address] = AccountCategory(category)

    def get(self, address: str) -> AccountCategory | None:
        return self._labels.get(address)

    def __contains__(self, address: str) -> bool:
        return address in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def addresses(self, category: AccountCategory | None = None) -> list[str]:
        """All labelled addresses, optionally restricted to one category."""
        if category is None:
            return list(self._labels)
        category = AccountCategory(category)
        return [addr for addr, cat in self._labels.items() if cat == category]

    def items(self) -> Iterator[tuple[str, AccountCategory]]:
        return iter(self._labels.items())

    def counts(self) -> dict[AccountCategory, int]:
        """Number of labelled addresses per category."""
        counts: dict[AccountCategory, int] = {}
        for category in self._labels.values():
            counts[category] = counts.get(category, 0) + 1
        return counts

    def update(self, entries: Iterable[tuple[str, AccountCategory]]) -> None:
        for address, category in entries:
            self.add(address, category)
