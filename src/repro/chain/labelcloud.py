"""Account label registry modelled after Etherscan's label cloud."""

from __future__ import annotations

import enum
from typing import Iterable, Iterator

__all__ = ["AccountCategory", "LabelCloud"]


class AccountCategory(str, enum.Enum):
    """The six labelled account categories evaluated in the paper (Table II)."""

    EXCHANGE = "exchange"
    ICO_WALLET = "ico-wallet"
    MINING = "mining"
    PHISH_HACK = "phish/hack"
    BRIDGE = "bridge"
    DEFI = "defi"

    @classmethod
    def core_four(cls) -> list["AccountCategory"]:
        """The four categories used in the main comparison (Table III)."""
        return [cls.EXCHANGE, cls.ICO_WALLET, cls.MINING, cls.PHISH_HACK]

    @classmethod
    def novel_two(cls) -> list["AccountCategory"]:
        """The two novel categories used for the RQ4 robustness study."""
        return [cls.BRIDGE, cls.DEFI]


class LabelCloud:
    """Mapping from account address to a single :class:`AccountCategory`.

    Mirrors the public label providers the paper relies on: sparse (only a small
    fraction of accounts carry a label) and keyed purely by address.
    """

    def __init__(self):
        self._labels: dict[str, AccountCategory] = {}

    def add(self, address: str, category: AccountCategory) -> None:
        if address in self._labels and self._labels[address] != category:
            raise ValueError(
                f"address {address} already labelled as {self._labels[address].value}")
        self._labels[address] = AccountCategory(category)

    def get(self, address: str) -> AccountCategory | None:
        return self._labels.get(address)

    def __contains__(self, address: str) -> bool:
        return address in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def addresses(self, category: AccountCategory | None = None) -> list[str]:
        """All labelled addresses, optionally restricted to one category."""
        if category is None:
            return list(self._labels)
        category = AccountCategory(category)
        return [addr for addr, cat in self._labels.items() if cat == category]

    def items(self) -> Iterator[tuple[str, AccountCategory]]:
        return iter(self._labels.items())

    def counts(self) -> dict[AccountCategory, int]:
        """Number of labelled addresses per category."""
        counts: dict[AccountCategory, int] = {}
        for category in self._labels.values():
            counts[category] = counts.get(category, 0) + 1
        return counts

    def update(self, entries: Iterable[tuple[str, AccountCategory]]) -> None:
        for address, category in entries:
            self.add(address, category)
