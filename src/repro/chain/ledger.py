"""The synthetic ledger: accounts, blocks and transaction queries."""

from __future__ import annotations

import threading

from typing import Iterator, Sequence

import numpy as np

from repro.chain.accounts import Account, AccountType
from repro.chain.labelcloud import LabelCloud
from repro.chain.transactions import Block, Transaction
from repro.chain.txstore import ColumnarTxStore, TxColumns

__all__ = ["Ledger"]


class Ledger:
    """In-memory Ethereum-like ledger.

    Holds the account registry, the block index and the label cloud.  All
    transaction data lives in a :class:`~repro.chain.txstore.ColumnarTxStore`
    — parallel numpy column arrays plus an address interning table — and
    :class:`~repro.chain.transactions.Transaction` objects are materialised
    lazily, only when a caller crosses the object API boundary
    (:meth:`transactions`, :meth:`transactions_for`, :meth:`get_transaction`,
    :attr:`blocks`).  The hot consumers (graph build, feature extraction)
    read the columns directly via :attr:`store`.

    Two ingestion paths feed the same store: :meth:`append_block` (object
    path — a :class:`Block` of :class:`Transaction` objects) and
    :meth:`append_blocks_columnar` (bulk path — whole column arrays split
    into fixed-size blocks, the path ``generate_ledger`` uses).

    Durability: :meth:`sync` persists the ledger into a
    :class:`~repro.chain.backend.LedgerBackend` directory (append-only column
    files + JSON manifest; O(new rows) per sync) and :meth:`Ledger.open`
    restarts from such a directory with the columns memory-mapped — no
    rebuild.  :attr:`data_version` exposes the store's append epoch so
    downstream caches (graph, feature table, serving sample cache) can detect
    growth in O(1).
    """

    def __init__(self, block_interval: float = 12.0, genesis_timestamp: float = 1_438_900_000.0):
        self.block_interval = block_interval
        self.genesis_timestamp = genesis_timestamp
        self._accounts: dict[str, Account] = {}
        self._contract_set: frozenset | None = None
        self._contract_set_accounts = -1
        self._store = ColumnarTxStore()
        # Per-block metadata (number, timestamp, [start_row, end_row) in the
        # store); Block objects are materialised on demand from these bounds.
        self._block_numbers: list[int] = []
        self._block_timestamps: list[float] = []
        self._block_bounds: list[tuple[int, int]] = []
        self.labels = LabelCloud()
        self._backend = None
        # Guards the lazy contract-set rebuild; reads of a quiescent ledger
        # are lock-free (same contract as the store and graph layers).
        self._lock = threading.Lock()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]                  # locks are not picklable
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.Lock()

    # --------------------------------------------------------------- accounts
    #
    # The registry maps address -> Account, or address -> AccountType for
    # accounts registered through the bulk path: a placeholder records only
    # the kind, and the full (default-balance, zero-nonce) Account object is
    # materialised lazily on first object-level access.  Nothing in the
    # synthesis or de-anonymization pipeline mutates balances/nonces, so the
    # lazy object is indistinguishable from an eagerly created one.
    def add_account(self, account: Account) -> Account:
        if account.address in self._accounts:
            raise ValueError(f"duplicate account address {account.address}")
        self._accounts[account.address] = account
        return account

    def add_accounts_bulk(self, addresses: "Sequence[str]",
                          account_type: AccountType) -> None:
        """Register many same-type accounts without creating Account objects.

        All-or-nothing on duplicates (within the batch or against the
        registry), matching :meth:`add_account`'s refusal semantics.
        """
        new = dict.fromkeys(addresses, account_type)
        if len(new) != len(addresses):
            raise ValueError("duplicate account address within bulk batch")
        if self._accounts and not self._accounts.keys().isdisjoint(new):
            clash = next(iter(self._accounts.keys() & new.keys()))
            raise ValueError(f"duplicate account address {clash}")
        self._accounts.update(new)

    def get_account(self, address: str) -> Account:
        account = self._accounts[address]
        if not isinstance(account, Account):
            account = Account(address, account)
            self._accounts[address] = account
        return account

    def has_account(self, address: str) -> bool:
        return address in self._accounts

    def is_contract(self, address: str) -> bool:
        entry = self._accounts.get(address)
        if entry is None:
            return False
        kind = entry.account_type if isinstance(entry, Account) else entry
        return kind is AccountType.CONTRACT

    def contract_address_set(self) -> frozenset:
        """Addresses of registered contract accounts, as one frozenset.

        Batch consumers (graph build over ~100k nodes) test membership here
        instead of calling :meth:`is_contract` per node; rebuilt only when the
        account registry has grown since the last call.
        """
        if self._contract_set is None or self._contract_set_accounts != len(self._accounts):
            with self._lock:
                if (self._contract_set is None
                        or self._contract_set_accounts != len(self._accounts)):
                    contract_set = frozenset(
                        address for address, entry in self._accounts.items()
                        if (entry.account_type if isinstance(entry, Account)
                            else entry) is AccountType.CONTRACT)
                    self._contract_set = contract_set
                    self._contract_set_accounts = len(self._accounts)
        return self._contract_set

    @property
    def accounts(self) -> list[Account]:
        """All accounts as objects (materialises bulk-registered placeholders)."""
        return [self.get_account(address) for address in list(self._accounts)]

    def account_records(self) -> Iterator[tuple[str, str, float, int]]:
        """``(address, type, balance, nonce)`` rows in registration order.

        The persistence path's view of the registry: placeholders yield their
        default balance/nonce directly, so syncing a bulk-registered ledger
        never materialises Account objects.
        """
        for address, entry in self._accounts.items():
            if isinstance(entry, Account):
                yield (address, entry.account_type.value, entry.balance,
                       entry.nonce)
            else:
                yield (address, entry.value, 0.0, 0)

    @property
    def num_accounts(self) -> int:
        return len(self._accounts)

    # ----------------------------------------------------------------- store
    @property
    def store(self) -> ColumnarTxStore:
        """The columnar transaction store backing this ledger."""
        return self._store

    def tx_columns(self) -> TxColumns:
        """Consolidated per-transaction column arrays, in block order."""
        return self._store.columns()

    @property
    def data_version(self) -> int:
        """The store's monotonic append epoch (O(1)); see
        :attr:`ColumnarTxStore.data_version`."""
        return self._store.data_version

    # ------------------------------------------------------------ durability
    @property
    def backend(self):
        """The attached :class:`~repro.chain.backend.LedgerBackend`, or ``None``."""
        return self._backend

    def sync(self, path=None) -> dict:
        """Persist rows/blocks/accounts/labels appended since the last sync.

        The first call needs ``path`` (creating the backend directory and
        attaching it); later calls reuse the attached backend and cost
        O(new entries).  Returns the committed manifest.
        """
        if path is not None:
            from repro.chain.backend import LedgerBackend

            self._backend = LedgerBackend(path)
        if self._backend is None:
            raise RuntimeError(
                "this ledger has no backend attached; pass sync(path) once to "
                "create one (or open the ledger with Ledger.open)")
        return self._backend.sync(self)

    @classmethod
    def open(cls, path, mmap: bool = True) -> "Ledger":
        """Restart a persisted ledger from a backend directory.

        Columns are memory-mapped read-only (``mmap=False`` copies them into
        RAM), so opening costs O(metadata) — the transaction data pages in
        lazily.  The backend stays attached: appends followed by
        :meth:`sync` keep extending the same directory.
        """
        from repro.chain.backend import LedgerBackend

        return LedgerBackend(path).load(mmap=mmap)

    # ----------------------------------------------------------------- blocks
    def append_block(self, block: Block) -> None:
        """Register a :class:`Block` of :class:`Transaction` objects."""
        if self._block_numbers and block.number <= self._block_numbers[-1]:
            raise ValueError("block numbers must be strictly increasing")
        start = self._store.num_rows
        for tx in block.transactions:
            self._store.append_tx(tx)
        self._block_numbers.append(block.number)
        self._block_timestamps.append(block.timestamp)
        self._block_bounds.append((start, self._store.num_rows))

    def append_blocks_columnar(self, senders: "Sequence[str] | np.ndarray",
                               receivers: "Sequence[str] | np.ndarray",
                               values: np.ndarray, gas_prices: np.ndarray,
                               gas_used: np.ndarray, timestamps: np.ndarray,
                               is_contract_call: np.ndarray, submitted: np.ndarray,
                               transactions_per_block: int,
                               tx_hashes: Sequence[str] | None = None) -> None:
        """Bulk path: append rows column-wise, split into fixed-size blocks.

        Rows must already be in block (timestamp) order.  Consecutive runs of
        ``transactions_per_block`` rows become one block whose timestamp is
        its last transaction's timestamp and whose number continues from the
        last registered block — exactly the semantics of the object-path
        assembly loop.  ``tx_hashes=None`` keeps the generator's derived
        ``0x{row:064x}`` hashes without per-row storage.

        ``senders``/``receivers`` are either address strings (interned here,
        the historical path) or integer ndarrays of already-interned store
        account ids (the scenario engine's zero-Python-object path; validated
        against the store's address table).
        """
        n = len(values)
        if n == 0:
            return
        if transactions_per_block < 1:
            raise ValueError("transactions_per_block must be >= 1")
        if (isinstance(senders, np.ndarray) and senders.dtype.kind in "iu"):
            sender_ids = np.ascontiguousarray(senders, dtype=np.int64)
            receiver_ids = np.ascontiguousarray(receivers, dtype=np.int64)
            if len(sender_ids) and (
                    min(sender_ids.min(), receiver_ids.min()) < 0
                    or max(sender_ids.max(), receiver_ids.max())
                    >= self._store.num_addresses):
                raise ValueError(
                    "pre-interned sender/receiver ids out of range for store")
        else:
            sender_ids, receiver_ids = self._store.intern_pairs(senders, receivers)
        next_number = self._block_numbers[-1] + 1 if self._block_numbers else 0
        start_row = self._store.num_rows
        num_blocks = (n + transactions_per_block - 1) // transactions_per_block
        block_numbers = next_number + np.arange(n, dtype=np.int64) // transactions_per_block
        self._store.append_chunk(
            sender_ids, receiver_ids, values, gas_prices, gas_used, timestamps,
            is_contract_call, submitted, block_numbers, tx_hashes=tx_hashes)
        timestamps = np.asarray(timestamps, dtype=np.float64)
        for b in range(num_blocks):
            lo = b * transactions_per_block
            hi = min(n, lo + transactions_per_block)
            self._block_numbers.append(next_number + b)
            self._block_timestamps.append(float(timestamps[hi - 1]))
            self._block_bounds.append((start_row + lo, start_row + hi))

    def _materialize_block(self, index: int) -> Block:
        start, stop = self._block_bounds[index]
        return Block(self._block_numbers[index], self._block_timestamps[index],
                     self._store.materialize_rows(range(start, stop)))

    @property
    def blocks(self) -> list[Block]:
        """Materialised :class:`Block` objects (lazy; O(T) — object boundary)."""
        return [self._materialize_block(i) for i in range(len(self._block_numbers))]

    @property
    def num_blocks(self) -> int:
        return len(self._block_numbers)

    # ----------------------------------------------------------- transactions
    def transactions(self, include_unsubmitted: bool = False) -> Iterator[Transaction]:
        """Iterate over all transactions in block order (lazy materialisation)."""
        return self._store.iter_transactions(include_unsubmitted=include_unsubmitted)

    @property
    def num_transactions(self) -> int:
        """Total registered transactions, maintained incrementally (O(1)).

        Serves as part of the feature extractor's cache-invalidation key, so
        it must stay cheap no matter how many blocks the ledger holds.
        """
        return self._store.num_rows

    def get_transaction(self, tx_hash: str) -> Transaction:
        return self._store.materialize(self._store.row_of_hash(tx_hash))

    def transactions_for(self, address: str, include_unsubmitted: bool = False) -> list[Transaction]:
        """All transactions where ``address`` is sender or receiver.

        Each transaction appears exactly once — a self-transfer (sender ==
        receiver) is **not** duplicated, so per-account statistics derived
        from this list count it once per role.
        """
        rows = self._store.rows_for_address(address)
        if not include_unsubmitted:
            rows = rows[self._store.columns().submitted[rows]]
        return self._store.materialize_rows(rows)

    def timespan(self) -> tuple[float, float]:
        """(min, max) timestamp over all submitted transactions.

        O(1): the span is maintained incrementally as rows are registered.
        An empty ledger — or one whose transactions are all unsubmitted —
        spans ``(genesis_timestamp, genesis_timestamp)``.
        """
        span = self._store.submitted_timespan()
        if span is None:
            return (self.genesis_timestamp, self.genesis_timestamp)
        return span

    def summary(self) -> dict:
        """Aggregate statistics used by examples and the dataset-stats bench."""
        contract_count = sum(
            1 for entry in self._accounts.values()
            if (entry.account_type if isinstance(entry, Account)
                else entry) is AccountType.CONTRACT)
        return {
            "num_accounts": self.num_accounts,
            "num_contracts": contract_count,
            "num_blocks": self.num_blocks,
            "num_transactions": self.num_transactions,
            "num_labeled": len(self.labels),
            "label_counts": {cat.value: n for cat, n in self.labels.counts().items()},
        }
