"""The synthetic ledger: accounts, blocks and transaction queries."""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.chain.accounts import Account, AccountType
from repro.chain.labelcloud import LabelCloud
from repro.chain.transactions import Block, Transaction

__all__ = ["Ledger"]


class Ledger:
    """In-memory Ethereum-like ledger.

    Holds the account registry, the ordered list of blocks and the label cloud.
    Transaction helpers intentionally mirror the access patterns the data
    pipeline needs: all submitted transactions, transactions touching a given
    address, and contract-account lookups.
    """

    def __init__(self, block_interval: float = 12.0, genesis_timestamp: float = 1_438_900_000.0):
        self.block_interval = block_interval
        self.genesis_timestamp = genesis_timestamp
        self._accounts: dict[str, Account] = {}
        self._blocks: list[Block] = []
        self._tx_index: dict[str, Transaction] = {}
        # Per-address transaction index: every registered transaction is
        # appended under both its sender and its receiver (twice for a
        # self-transfer), in block order, making transactions_for O(deg).
        self._address_txs: dict[str, list[Transaction]] = {}
        self._num_transactions = 0
        self.labels = LabelCloud()

    # --------------------------------------------------------------- accounts
    def add_account(self, account: Account) -> Account:
        if account.address in self._accounts:
            raise ValueError(f"duplicate account address {account.address}")
        self._accounts[account.address] = account
        return account

    def get_account(self, address: str) -> Account:
        return self._accounts[address]

    def has_account(self, address: str) -> bool:
        return address in self._accounts

    def is_contract(self, address: str) -> bool:
        account = self._accounts.get(address)
        return account is not None and account.account_type is AccountType.CONTRACT

    @property
    def accounts(self) -> list[Account]:
        return list(self._accounts.values())

    @property
    def num_accounts(self) -> int:
        return len(self._accounts)

    # ----------------------------------------------------------------- blocks
    def append_block(self, block: Block) -> None:
        if self._blocks and block.number <= self._blocks[-1].number:
            raise ValueError("block numbers must be strictly increasing")
        self._blocks.append(block)
        for tx in block.transactions:
            self._register_transaction(tx)

    def _register_transaction(self, tx: Transaction) -> None:
        self._tx_index[tx.tx_hash] = tx
        self._address_txs.setdefault(tx.sender, []).append(tx)
        self._address_txs.setdefault(tx.receiver, []).append(tx)
        self._num_transactions += 1

    @property
    def blocks(self) -> list[Block]:
        return list(self._blocks)

    @property
    def num_blocks(self) -> int:
        return len(self._blocks)

    # ----------------------------------------------------------- transactions
    def transactions(self, include_unsubmitted: bool = False) -> Iterator[Transaction]:
        """Iterate over all transactions in block order."""
        for block in self._blocks:
            for tx in block.transactions:
                if tx.submitted or include_unsubmitted:
                    yield tx

    @property
    def num_transactions(self) -> int:
        """Total registered transactions, maintained incrementally (O(1)).

        Serves as part of the feature extractor's cache-invalidation key, so
        it must stay cheap no matter how many blocks the ledger holds.
        """
        return self._num_transactions

    def get_transaction(self, tx_hash: str) -> Transaction:
        return self._tx_index[tx_hash]

    def transactions_for(self, address: str, include_unsubmitted: bool = False) -> list[Transaction]:
        """All transactions where ``address`` is sender or receiver."""
        txs = self._address_txs.get(address, [])
        if include_unsubmitted:
            return list(txs)
        return [tx for tx in txs if tx.submitted]

    def timespan(self) -> tuple[float, float]:
        """(min, max) timestamp over all submitted transactions."""
        timestamps = [tx.timestamp for tx in self.transactions()]
        if not timestamps:
            return (self.genesis_timestamp, self.genesis_timestamp)
        return (min(timestamps), max(timestamps))

    def summary(self) -> dict:
        """Aggregate statistics used by examples and the dataset-stats bench."""
        contract_count = sum(1 for a in self._accounts.values() if a.is_contract)
        return {
            "num_accounts": self.num_accounts,
            "num_contracts": contract_count,
            "num_blocks": self.num_blocks,
            "num_transactions": self.num_transactions,
            "num_labeled": len(self.labels),
            "label_counts": {cat.value: n for cat, n in self.labels.counts().items()},
        }
