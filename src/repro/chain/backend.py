"""Durable on-disk backend for the columnar ledger.

``LedgerBackend`` persists a :class:`~repro.chain.ledger.Ledger` — the
columnar transaction store plus every piece of ledger metadata the serving
pipeline reads — as a directory of append-only files fronted by a JSON
manifest:

``manifest.json``
    Scalar state written **last** on every sync (atomic temp-file +
    ``os.replace``): row/address/block/account/label counts, the byte length
    of each variable-width file's valid prefix, the incrementally maintained
    submitted-timestamp span, the store's :attr:`data_version` epoch, block
    interval / genesis timestamp, and the sparse explicit-hash table.
``col_<name>.bin``
    One raw little-endian binary file per transaction column
    (``sender_id`` ... ``block_number``), append-only.  On
    :meth:`load` they are memory-mapped read-only, so opening a
    million-transaction ledger costs file metadata + page table setup — the
    column data pages in lazily as consumers touch it.
``addresses.txt``
    The interning table, one address per line, in id order (append-only).
``blocks.bin``
    Per-block ``(number, timestamp, start_row, stop_row)`` records as one
    structured little-endian array (append-only).
``accounts.jsonl`` / ``labels.jsonl``
    The account registry and the label cloud, one JSON object per line
    (append-only).

Crash consistency: data files are append-only and the manifest's counts and
byte lengths define each file's *valid prefix*.  A sync that dies before the
manifest rename leaves the previous manifest in place, pointing at the old
consistent prefix; the next sync truncates every file back to its valid
prefix before appending, so torn trailing writes can never be observed.

Append cost is O(new rows): :meth:`sync` slices each consolidated column at
the manifest's row count and appends only the new bytes (likewise for new
addresses, blocks, accounts and labels).  Account ``balance``/``nonce`` are
captured when the account is first persisted — the de-anonymization pipeline
reads only address and type, and rewriting the registry per sync would break
the O(new) contract.
"""

from __future__ import annotations

import json
import os

from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.chain.accounts import Account, AccountType
from repro.chain.labelcloud import AccountCategory
from repro.chain.txstore import _COLUMN_DTYPES, ColumnarTxStore

if TYPE_CHECKING:                           # import cycle: ledger imports us lazily
    from repro.chain.ledger import Ledger

__all__ = ["LedgerBackend", "BackendFormatError"]

#: Bump when the directory layout changes incompatibly.
FORMAT_VERSION = 1

#: Little-endian on-disk dtype of every transaction column.
_DISK_DTYPES: dict[str, np.dtype] = {
    name: np.dtype(dtype).newbyteorder("<") for name, dtype in _COLUMN_DTYPES}

#: Structured record layout of ``blocks.bin``.
_BLOCK_DTYPE = np.dtype([("number", "<i8"), ("timestamp", "<f8"),
                         ("start", "<i8"), ("stop", "<i8")])


class BackendFormatError(RuntimeError):
    """The on-disk directory is missing, damaged, or from another format."""


def _append_bytes(path: Path, valid_size: int, data: bytes) -> None:
    """Truncate ``path`` to its valid prefix, then append ``data``.

    The truncation discards torn bytes a crashed previous sync may have left
    beyond the manifest's committed prefix.
    """
    mode = "r+b" if path.exists() else "wb"
    with open(path, mode) as f:
        f.truncate(valid_size)
        f.seek(valid_size)
        if data:
            f.write(data)
        f.flush()
        os.fsync(f.fileno())


def _read_prefix(path: Path, valid_size: int) -> bytes:
    if valid_size == 0:
        return b""
    with open(path, "rb") as f:
        data = f.read(valid_size)
    if len(data) != valid_size:
        raise BackendFormatError(
            f"{path.name} holds {len(data)} bytes but the manifest commits "
            f"{valid_size}; the backend directory is damaged")
    return data


class LedgerBackend:
    """Directory-backed persistence for one ledger (see module docstring).

    Usage::

        ledger.sync("chain_dir")            # first sync creates the directory
        ...append blocks...
        ledger.sync()                       # O(new rows): appends the delta
        restarted = Ledger.open("chain_dir")  # memory-mapped columns
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)

    @property
    def manifest_path(self) -> Path:
        return self.path / "manifest.json"

    def exists(self) -> bool:
        """True when the directory holds a committed manifest."""
        return self.manifest_path.is_file()

    def _column_path(self, name: str) -> Path:
        return self.path / f"col_{name}.bin"

    # ------------------------------------------------------------- manifest
    def read_manifest(self) -> dict:
        try:
            manifest = json.loads(self.manifest_path.read_text())
        except FileNotFoundError:
            raise BackendFormatError(
                f"{self.path} has no committed manifest; not a ledger backend "
                f"directory (or the first sync never finished)") from None
        except json.JSONDecodeError as exc:
            raise BackendFormatError(
                f"{self.manifest_path} is not valid JSON: {exc}") from exc
        version = manifest.get("format_version")
        if version != FORMAT_VERSION:
            raise BackendFormatError(
                f"{self.path} uses backend format {version!r}; this build "
                f"reads format {FORMAT_VERSION}")
        return manifest

    def _write_manifest(self, manifest: dict) -> None:
        tmp = self.manifest_path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(manifest, indent=2) + "\n")
        with open(tmp, "rb") as f:
            os.fsync(f.fileno())
        os.replace(tmp, self.manifest_path)

    def _empty_manifest(self) -> dict:
        return {
            "format_version": FORMAT_VERSION,
            "num_rows": 0,
            "num_addresses": 0,
            "addresses_bytes": 0,
            "num_blocks": 0,
            "num_accounts": 0,
            "accounts_bytes": 0,
            "num_labels": 0,
            "labels_bytes": 0,
            "data_version": 0,
            "submitted_ts_min": None,
            "submitted_ts_max": None,
            "explicit_hashes": {},
        }

    # ----------------------------------------------------------------- sync
    def sync(self, ledger: "Ledger") -> dict:
        """Persist every row/address/block/account/label appended since the
        last sync; returns the committed manifest.

        The first sync of a directory writes everything; later syncs are
        O(new entries).  Raises :class:`BackendFormatError` when ``ledger``
        holds fewer rows than the directory has committed (it cannot be the
        ledger this directory was built from — appends are the only mutation).
        """
        self.path.mkdir(parents=True, exist_ok=True)
        manifest = self.read_manifest() if self.exists() else self._empty_manifest()
        store = ledger.store
        cols = store.columns()
        num_rows = store.num_rows
        synced_rows = manifest["num_rows"]
        if num_rows < synced_rows:
            raise BackendFormatError(
                f"ledger holds {num_rows} rows but {self.path} has already "
                f"committed {synced_rows}; refusing to sync a shorter ledger")

        for name, disk_dtype in _DISK_DTYPES.items():
            fresh = getattr(cols, name)[synced_rows:]
            _append_bytes(self._column_path(name),
                          synced_rows * disk_dtype.itemsize,
                          np.ascontiguousarray(fresh, dtype=disk_dtype).tobytes())

        addresses = store.addresses
        new_addresses = addresses[manifest["num_addresses"]:]
        _append_bytes(self.path / "addresses.txt", manifest["addresses_bytes"],
                      "".join(f"{a}\n" for a in new_addresses).encode("utf-8"))
        manifest["addresses_bytes"] += sum(
            len(a.encode("utf-8")) + 1 for a in new_addresses)
        manifest["num_addresses"] = len(addresses)

        blocks = np.empty(ledger.num_blocks - manifest["num_blocks"],
                          dtype=_BLOCK_DTYPE)
        for i, index in enumerate(range(manifest["num_blocks"], ledger.num_blocks)):
            start, stop = ledger._block_bounds[index]
            blocks[i] = (ledger._block_numbers[index],
                         ledger._block_timestamps[index], start, stop)
        _append_bytes(self.path / "blocks.bin",
                      manifest["num_blocks"] * _BLOCK_DTYPE.itemsize,
                      blocks.tobytes())
        manifest["num_blocks"] = ledger.num_blocks

        # Records, not Account objects: bulk-registered placeholders persist
        # without ever being materialised.
        records = list(ledger.account_records())
        new_records = records[manifest["num_accounts"]:]
        account_lines = "".join(
            json.dumps({"address": address, "type": type_value,
                        "balance": balance, "nonce": nonce},
                       separators=(",", ":")) + "\n"
            for address, type_value, balance, nonce in new_records).encode("utf-8")
        _append_bytes(self.path / "accounts.jsonl", manifest["accounts_bytes"],
                      account_lines)
        manifest["accounts_bytes"] += len(account_lines)
        manifest["num_accounts"] = len(records)

        labels = list(ledger.labels.items())
        new_labels = labels[manifest["num_labels"]:]
        label_lines = "".join(
            json.dumps({"address": address, "category": category.value},
                       separators=(",", ":")) + "\n"
            for address, category in new_labels).encode("utf-8")
        _append_bytes(self.path / "labels.jsonl", manifest["labels_bytes"],
                      label_lines)
        manifest["labels_bytes"] += len(label_lines)
        manifest["num_labels"] = len(labels)

        span = store.submitted_timespan()
        manifest.update(
            num_rows=num_rows,
            data_version=store.data_version,
            submitted_ts_min=None if span is None else span[0],
            submitted_ts_max=None if span is None else span[1],
            explicit_hashes={str(row): tx_hash for row, tx_hash
                             in store._explicit_hash_by_row.items()},
            block_interval=ledger.block_interval,
            genesis_timestamp=ledger.genesis_timestamp,
        )
        self._write_manifest(manifest)      # last: commits the new prefix
        return manifest

    # ----------------------------------------------------------------- load
    def _load_columns(self, num_rows: int, mmap: bool) -> dict[str, np.ndarray]:
        arrays: dict[str, np.ndarray] = {}
        for name, disk_dtype in _DISK_DTYPES.items():
            path = self._column_path(name)
            memory_dtype = np.dtype(dict(_COLUMN_DTYPES)[name])
            if num_rows == 0:
                arrays[name] = np.empty(0, dtype=memory_dtype)
                continue
            if path.stat().st_size < num_rows * disk_dtype.itemsize:
                raise BackendFormatError(
                    f"{path.name} is shorter than the manifest's {num_rows} "
                    f"committed rows; the backend directory is damaged")
            column = np.memmap(path, dtype=disk_dtype, mode="r",
                               shape=(num_rows,))
            arrays[name] = column if mmap else np.array(column, dtype=memory_dtype)
        return arrays

    def load(self, mmap: bool = True) -> "Ledger":
        """Rebuild the persisted :class:`Ledger`, columns memory-mapped.

        ``mmap=False`` materialises the columns into RAM instead (useful when
        the directory will be deleted while the ledger object lives on).
        The returned ledger has this backend attached, so ``ledger.sync()``
        keeps appending to the same directory.
        """
        from repro.chain.ledger import Ledger

        manifest = self.read_manifest()
        num_rows = manifest["num_rows"]

        store = ColumnarTxStore()
        store._consolidated = self._load_columns(num_rows, mmap)
        store._num_rows = num_rows
        address_bytes = _read_prefix(self.path / "addresses.txt",
                                     manifest["addresses_bytes"])
        addresses = address_bytes.decode("utf-8").splitlines()
        if len(addresses) != manifest["num_addresses"]:
            raise BackendFormatError(
                f"addresses.txt holds {len(addresses)} addresses but the "
                f"manifest commits {manifest['num_addresses']}")
        store._addresses = addresses
        store._addr_to_id = {address: i for i, address in enumerate(addresses)}
        store._explicit_hash_by_row = {
            int(row): tx_hash for row, tx_hash in manifest["explicit_hashes"].items()}
        store._row_by_explicit_hash = {
            tx_hash: row for row, tx_hash in store._explicit_hash_by_row.items()}
        store._submitted_ts_min = manifest["submitted_ts_min"]
        store._submitted_ts_max = manifest["submitted_ts_max"]
        store._data_version = manifest["data_version"]

        ledger = Ledger(block_interval=manifest["block_interval"],
                        genesis_timestamp=manifest["genesis_timestamp"])
        ledger._store = store
        if manifest["num_blocks"]:
            blocks = np.frombuffer(
                _read_prefix(self.path / "blocks.bin",
                             manifest["num_blocks"] * _BLOCK_DTYPE.itemsize),
                dtype=_BLOCK_DTYPE)
            ledger._block_numbers = blocks["number"].tolist()
            ledger._block_timestamps = blocks["timestamp"].tolist()
            ledger._block_bounds = list(zip(blocks["start"].tolist(),
                                            blocks["stop"].tolist()))
        for line in _read_prefix(self.path / "accounts.jsonl",
                                 manifest["accounts_bytes"]).decode("utf-8").splitlines():
            record = json.loads(line)
            ledger.add_account(Account(
                address=record["address"],
                account_type=AccountType(record["type"]),
                balance=record["balance"], nonce=record["nonce"]))
        for line in _read_prefix(self.path / "labels.jsonl",
                                 manifest["labels_bytes"]).decode("utf-8").splitlines():
            record = json.loads(line)
            ledger.labels.add(record["address"], AccountCategory(record["category"]))
        ledger._backend = self
        return ledger
