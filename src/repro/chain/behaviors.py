"""Per-tuple behaviour API, now a compatibility shim over the scenario engine.

The behavioural archetypes themselves live in :mod:`repro.chain.scenarios`
as vectorised :class:`~repro.chain.scenarios.Scenario` classes (see that
package's docstrings for the per-category patterns).  This module keeps the
original tuple-based surface — one centre address in, a list of
``(sender, receiver, value, gas_price, gas_used, timestamp, is_contract_call)``
tuples out — by running the matching scenario over an ad-hoc id universe and
mapping the resulting columns back to address strings.  Useful for notebooks
and tests that want a handful of transactions without a ledger; the generator
itself calls the scenarios directly on interned id arrays.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.chain.labelcloud import AccountCategory
from repro.chain.scenarios import registered_scenarios, scenario_for

__all__ = ["RawTx", "BEHAVIORS", "behavior_for"]

RawTx = tuple[str, str, float, float, int, float, bool]

_TRANSFER_GAS = 21_000
_CONTRACT_GAS = 90_000


def _sample_counterparties(rng: np.random.Generator, pool: Sequence[str], n: int) -> list[str]:
    """Sample up to ``n`` distinct members of ``pool`` (all of them if fewer).

    Safe on degenerate pools: an empty pool yields ``[]`` and a singleton
    pool yields its single member, without touching the RNG stream for the
    empty case.
    """
    n = min(n, len(pool))
    if n <= 0:
        return []
    idx = rng.choice(len(pool), size=n, replace=False)
    return [pool[i] for i in idx]


def _run_scenario(category: AccountCategory, center: str, users: Sequence[str],
                  contracts: Sequence[str], rng: np.random.Generator,
                  start: float, span: float) -> list[RawTx]:
    """Run ``category``'s scenario for one centre, returning address tuples."""
    addresses = [center, *users, *contracts]
    centers = np.zeros(1, dtype=np.int64)
    user_ids = np.arange(1, 1 + len(users), dtype=np.int64)
    contract_ids = np.arange(1 + len(users), len(addresses), dtype=np.int64)
    block = scenario_for(category).synthesize(
        centers, user_ids, contract_ids, rng, start, span)
    return [
        (addresses[s], addresses[r], float(v), float(g), int(gu), float(t), bool(c))
        for s, r, v, g, gu, t, c in zip(
            block.sender_id.tolist(), block.receiver_id.tolist(),
            block.value.tolist(), block.gas_price.tolist(),
            block.gas_used.tolist(), block.timestamp.tolist(),
            block.is_contract_call.tolist())
    ]


def _behavior(category: AccountCategory) -> Callable[..., list[RawTx]]:
    def run(center: str, users: Sequence[str], contracts: Sequence[str],
            rng: np.random.Generator, start: float, span: float) -> list[RawTx]:
        return _run_scenario(category, center, users, contracts, rng, start, span)

    run.__name__ = f"{category.name.lower()}_behavior"
    run.__doc__ = f"Tuple-based shim over {scenario_for(category).__class__.__name__}."
    return run


BEHAVIORS: dict[AccountCategory, Callable[..., list[RawTx]]] = {
    category: _behavior(category) for category in registered_scenarios()
}

exchange_behavior = BEHAVIORS[AccountCategory.EXCHANGE]
ico_wallet_behavior = BEHAVIORS[AccountCategory.ICO_WALLET]
mining_behavior = BEHAVIORS[AccountCategory.MINING]
phish_hack_behavior = BEHAVIORS[AccountCategory.PHISH_HACK]
bridge_behavior = BEHAVIORS[AccountCategory.BRIDGE]
defi_behavior = BEHAVIORS[AccountCategory.DEFI]
wash_trading_behavior = BEHAVIORS[AccountCategory.WASH_TRADING]
airdrop_farming_behavior = BEHAVIORS[AccountCategory.AIRDROP_FARMING]
mixer_behavior = BEHAVIORS[AccountCategory.MIXER]


def behavior_for(category: AccountCategory) -> Callable[..., list[RawTx]]:
    """Return the behaviour generator for ``category``."""
    return BEHAVIORS[AccountCategory(category)]
