"""Per-category behavioural archetypes for the synthetic ledger.

Each behaviour function receives the labelled (centre) address, a pool of
counterparty addresses, a pool of contract addresses and a seeded random
generator, and returns raw transaction tuples
``(sender, receiver, value, gas_price, gas_used, timestamp, is_contract_call)``.

The archetypes encode the qualitative patterns that make the paper's six
categories separable from transaction data alone:

* **exchange** — a high-degree hub with balanced deposit/withdrawal flow spread
  evenly over the whole observation window.
* **ico-wallet** — a crowd-sale: a dense burst of small inbound contributions in
  an early window followed by a few large outbound disbursements.
* **mining** — near-periodic, near-constant reward income with occasional pooled
  payouts.
* **phish/hack** — a short burst of victim inflows followed immediately by
  sweeping the funds out to one or two collector addresses at high gas price.
* **bridge** — lock/release pairs: inbound deposits matched by outbound releases
  of almost the same value shortly afterwards, mediated by contract calls.
* **defi** — contract-call-heavy, bidirectional, moderate-value interactions
  with a handful of protocol contracts.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.chain.labelcloud import AccountCategory

__all__ = ["RawTx", "BEHAVIORS", "behavior_for"]

RawTx = tuple[str, str, float, float, int, float, bool]

_TRANSFER_GAS = 21_000
_CONTRACT_GAS = 90_000


def _sample_counterparties(rng: np.random.Generator, pool: Sequence[str], n: int) -> list[str]:
    n = min(n, len(pool))
    idx = rng.choice(len(pool), size=n, replace=False)
    return [pool[i] for i in idx]


def exchange_behavior(center: str, users: Sequence[str], contracts: Sequence[str],
                      rng: np.random.Generator, start: float, span: float) -> list[RawTx]:
    """Hot-wallet style hub: many deposits in, many withdrawals out, all window long."""
    txs: list[RawTx] = []
    n_counterparties = int(rng.integers(25, 45))
    counterparties = _sample_counterparties(rng, users, n_counterparties)
    for user in counterparties:
        n_deposits = int(rng.integers(1, 4))
        for _ in range(n_deposits):
            t = start + rng.uniform(0.0, span)
            value = float(rng.lognormal(mean=0.5, sigma=1.0))
            gas_price = float(rng.uniform(20, 60))
            txs.append((user, center, value, gas_price, _TRANSFER_GAS, t, False))
        if rng.random() < 0.8:
            t = start + rng.uniform(0.0, span)
            value = float(rng.lognormal(mean=0.3, sigma=1.0))
            gas_price = float(rng.uniform(20, 60))
            txs.append((center, user, value, gas_price, _TRANSFER_GAS, t, False))
    return txs


def ico_wallet_behavior(center: str, users: Sequence[str], contracts: Sequence[str],
                        rng: np.random.Generator, start: float, span: float) -> list[RawTx]:
    """Crowd-sale inflow burst followed by a few large disbursements."""
    txs: list[RawTx] = []
    sale_window = span * 0.15
    sale_start = start + rng.uniform(0.0, span * 0.2)
    contributors = _sample_counterparties(rng, users, int(rng.integers(20, 40)))
    total_raised = 0.0
    for user in contributors:
        t = sale_start + rng.uniform(0.0, sale_window)
        value = float(rng.lognormal(mean=-0.5, sigma=0.7))
        total_raised += value
        txs.append((user, center, value, float(rng.uniform(30, 80)), _TRANSFER_GAS, t, False))
    # Disbursement: a handful of big outgoing transfers much later.
    treasuries = _sample_counterparties(rng, users, int(rng.integers(2, 5)))
    remaining = total_raised * 0.95
    for treasury in treasuries:
        t = sale_start + sale_window + rng.uniform(span * 0.2, span * 0.6)
        value = remaining / len(treasuries)
        txs.append((center, treasury, value, float(rng.uniform(20, 40)), _TRANSFER_GAS, t, False))
    return txs


def mining_behavior(center: str, users: Sequence[str], contracts: Sequence[str],
                    rng: np.random.Generator, start: float, span: float) -> list[RawTx]:
    """Periodic near-constant reward income with occasional payouts."""
    txs: list[RawTx] = []
    pool = users[int(rng.integers(0, len(users)))]
    n_rewards = int(rng.integers(30, 60))
    period = span / n_rewards
    reward = float(rng.uniform(1.8, 3.2))
    for i in range(n_rewards):
        t = start + i * period + rng.normal(0.0, period * 0.02)
        jittered = reward * float(rng.uniform(0.97, 1.03))
        txs.append((pool, center, jittered, float(rng.uniform(10, 25)), _TRANSFER_GAS, t, False))
    payees = _sample_counterparties(rng, users, int(rng.integers(2, 5)))
    for payee in payees:
        t = start + rng.uniform(span * 0.3, span)
        value = reward * float(rng.uniform(5, 15))
        txs.append((center, payee, value, float(rng.uniform(10, 25)), _TRANSFER_GAS, t, False))
    return txs


def phish_hack_behavior(center: str, users: Sequence[str], contracts: Sequence[str],
                        rng: np.random.Generator, start: float, span: float) -> list[RawTx]:
    """Victim-inflow burst immediately swept out to collectors at high gas price."""
    txs: list[RawTx] = []
    burst_start = start + rng.uniform(0.0, span * 0.7)
    burst_len = span * rng.uniform(0.01, 0.05)
    victims = _sample_counterparties(rng, users, int(rng.integers(10, 30)))
    stolen = 0.0
    for victim in victims:
        t = burst_start + rng.uniform(0.0, burst_len)
        value = float(rng.lognormal(mean=0.0, sigma=1.2))
        stolen += value
        txs.append((victim, center, value, float(rng.uniform(40, 120)), _TRANSFER_GAS, t, False))
    collectors = _sample_counterparties(rng, users, int(rng.integers(1, 3)))
    sweep_time = burst_start + burst_len
    for collector in collectors:
        t = sweep_time + rng.uniform(0.0, burst_len)
        value = stolen * 0.98 / len(collectors)
        txs.append((center, collector, value, float(rng.uniform(80, 200)), _TRANSFER_GAS, t, False))
    return txs


def bridge_behavior(center: str, users: Sequence[str], contracts: Sequence[str],
                    rng: np.random.Generator, start: float, span: float) -> list[RawTx]:
    """Lock/release pairs mediated by contract calls with matched amounts."""
    txs: list[RawTx] = []
    n_pairs = int(rng.integers(15, 35))
    depositors = _sample_counterparties(rng, users, min(n_pairs, len(users)))
    relay_contracts = _sample_counterparties(rng, contracts, max(1, min(3, len(contracts))))
    for i in range(n_pairs):
        depositor = depositors[i % len(depositors)]
        t = start + rng.uniform(0.0, span * 0.95)
        value = float(rng.lognormal(mean=0.8, sigma=0.8))
        txs.append((depositor, center, value, float(rng.uniform(25, 70)), _CONTRACT_GAS, t, True))
        # Release on the "other side": nearly the same amount minus a bridge fee.
        lag = rng.uniform(120.0, 3600.0)
        release_value = value * float(rng.uniform(0.985, 0.999))
        relay = relay_contracts[int(rng.integers(0, len(relay_contracts)))]
        txs.append((center, relay, release_value, float(rng.uniform(25, 70)),
                    _CONTRACT_GAS, t + lag, True))
    return txs


def defi_behavior(center: str, users: Sequence[str], contracts: Sequence[str],
                  rng: np.random.Generator, start: float, span: float) -> list[RawTx]:
    """Contract-call-heavy bidirectional interaction with a few protocol contracts."""
    txs: list[RawTx] = []
    protocols = _sample_counterparties(rng, contracts, max(1, min(5, len(contracts))))
    n_interactions = int(rng.integers(30, 60))
    for _ in range(n_interactions):
        protocol = protocols[int(rng.integers(0, len(protocols)))]
        t = start + rng.uniform(0.0, span)
        value = float(rng.lognormal(mean=-0.3, sigma=0.9))
        gas_price = float(rng.uniform(30, 90))
        if rng.random() < 0.55:
            txs.append((center, protocol, value, gas_price, _CONTRACT_GAS, t, True))
        else:
            txs.append((protocol, center, value, gas_price, _CONTRACT_GAS, t, True))
    return txs


BEHAVIORS: dict[AccountCategory, Callable[..., list[RawTx]]] = {
    AccountCategory.EXCHANGE: exchange_behavior,
    AccountCategory.ICO_WALLET: ico_wallet_behavior,
    AccountCategory.MINING: mining_behavior,
    AccountCategory.PHISH_HACK: phish_hack_behavior,
    AccountCategory.BRIDGE: bridge_behavior,
    AccountCategory.DEFI: defi_behavior,
}


def behavior_for(category: AccountCategory) -> Callable[..., list[RawTx]]:
    """Return the behaviour generator for ``category``."""
    return BEHAVIORS[AccountCategory(category)]
