"""New labelled attack families beyond the paper's six seed categories.

Three additional behaviour archetypes that the scenario engine synthesizes at
scale — each a new :class:`AccountCategory` flowing through labelcloud →
feature extraction → classification unchanged:

* **wash-trading** — an exchange-style trader ping-pongs near-identical
  amounts with a tiny clique of sybil accounts all window long: high tx
  count, very low counterparty degree, tight value dispersion and near-zero
  net flow — the opposite corner of the degree/value space from a real
  exchange hub.
* **airdrop-farming** — a farmer's collector address receives a dense burst
  of near-identical small claim-sized transfers from dozens of one-shot
  sybil wallets right after an airdrop snapshot, then consolidates in a few
  sends.  Distinguishable from an ICO crowd-sale by the near-constant values,
  the tighter window and the low gas prices.
* **mixer** — a mixing pool (contract) takes fixed-denomination deposits
  ({0.1, 1, 10} ETH) and pays the same denomination minus a fee out to
  *different* accounts hours-to-days later: balanced bidirectional
  contract-call flow with a discrete value spectrum and long in/out lags —
  unlike a bridge, whose releases match lognormal lock values within minutes
  and land on a couple of relay contracts.
"""

from __future__ import annotations

import numpy as np

from repro.chain.labelcloud import AccountCategory
from repro.chain.scenarios.base import (
    CONTRACT_GAS,
    TRANSFER_GAS,
    RawTxBlock,
    Scenario,
    ScenarioEnvelope,
    draw_from_pool,
    register_scenario,
)
from repro.chain.scenarios.seed import _block

__all__ = ["WashTradingScenario", "AirdropFarmingScenario", "MixerScenario"]

#: The mixer's fixed deposit denominations (ETH).
MIXER_DENOMINATIONS = np.array([0.1, 1.0, 10.0])


@register_scenario
class WashTradingScenario(Scenario):
    """Round-trip trades with a small sybil clique, near-zero net flow."""

    category = AccountCategory.WASH_TRADING

    def synthesize(self, centers, users, contracts, rng, start, span):
        n_centers = len(centers)
        if n_centers == 0 or len(users) == 0:
            return RawTxBlock.empty()
        n_sybils = np.minimum(rng.integers(3, 7, size=n_centers), len(users))
        clique = draw_from_pool(rng, users, int(n_sybils.sum()))
        clique_start = np.cumsum(n_sybils) - n_sybils

        n_rounds = rng.integers(20, 40, size=n_centers)
        total = int(n_rounds.sum())
        pick = np.floor(rng.random(total)
                        * np.repeat(n_sybils, n_rounds)).astype(np.int64)
        sybil = clique[np.repeat(clique_start, n_rounds) + pick]
        center_per_row = np.repeat(centers, n_rounds)

        t_out = start + rng.uniform(0.0, span, size=total)
        values = rng.lognormal(mean=1.2, sigma=0.25, size=total)
        gas = rng.uniform(25, 45, size=total)
        leg_out = _block(center_per_row, sybil, values, gas, TRANSFER_GAS,
                         t_out, False)
        # The sybil returns almost exactly the same amount minutes later.
        leg_back = _block(sybil, center_per_row,
                          values * rng.uniform(0.995, 1.005, size=total),
                          rng.uniform(25, 45, size=total), TRANSFER_GAS,
                          t_out + rng.uniform(30.0, 600.0, size=total), False)
        return RawTxBlock.concat([leg_out, leg_back])

    def envelope(self):
        return ScenarioEnvelope(
            txs_per_center=(40, 78),
            in_fraction=(0.45, 0.55),
            contract_call_fraction=(0.0, 0.01),
            mean_distinct_counterparties=(1, 7),
            in_value_cv=(0.05, 0.45),
            span_fraction=(0.7, 1.0),
            net_flow_imbalance=(0.0, 0.05),
        )


@register_scenario
class AirdropFarmingScenario(Scenario):
    """Sybil wallets funnel near-identical airdrop claims into one collector."""

    category = AccountCategory.AIRDROP_FARMING

    def synthesize(self, centers, users, contracts, rng, start, span):
        n_centers = len(centers)
        if n_centers == 0 or len(users) == 0:
            return RawTxBlock.empty()
        claim_day = start + rng.uniform(0.1, 0.9, size=n_centers) * span
        claim_size = rng.uniform(0.05, 0.2, size=n_centers)

        n_sybils = rng.integers(40, 80, size=n_centers)
        total = int(n_sybils.sum())
        sybils = draw_from_pool(rng, users, total)
        values = (np.repeat(claim_size, n_sybils)
                  * rng.uniform(0.9, 1.0, size=total))
        claims = _block(
            sybils, np.repeat(centers, n_sybils), values,
            rng.uniform(10, 30, size=total), TRANSFER_GAS,
            np.repeat(claim_day, n_sybils)
            + rng.uniform(0.0, span * 0.02, size=total), False)

        collected = np.bincount(np.repeat(np.arange(n_centers), n_sybils),
                                weights=values, minlength=n_centers)
        n_out = rng.integers(1, 3, size=n_centers)
        o_total = int(n_out.sum())
        sinks = draw_from_pool(rng, users, o_total)
        consolidation = _block(
            np.repeat(centers, n_out), sinks,
            np.repeat(collected * 0.99 / n_out, n_out),
            rng.uniform(10, 30, size=o_total), TRANSFER_GAS,
            np.repeat(claim_day + span * 0.02, n_out)
            + rng.uniform(0.0, span * 0.05, size=o_total), False)
        return RawTxBlock.concat([claims, consolidation])

    def envelope(self):
        return ScenarioEnvelope(
            txs_per_center=(41, 82),
            in_fraction=(0.92, 0.99),
            contract_call_fraction=(0.0, 0.01),
            mean_distinct_counterparties=(20, 82),
            in_value_cv=(0.0, 0.08),
            span_fraction=(0.01, 0.1),
        )


@register_scenario
class MixerScenario(Scenario):
    """Fixed-denomination deposits paid back out to different accounts, delayed."""

    category = AccountCategory.MIXER

    def is_contract_center(self, index: int) -> bool:
        return True                         # the pool itself is a contract

    def synthesize(self, centers, users, contracts, rng, start, span):
        n_centers = len(centers)
        if n_centers == 0 or len(users) == 0:
            return RawTxBlock.empty()
        n_deposits = rng.integers(30, 60, size=n_centers)
        total = int(n_deposits.sum())
        depositors = draw_from_pool(rng, users, total)
        center_per_row = np.repeat(centers, n_deposits)
        denom = MIXER_DENOMINATIONS[rng.integers(0, len(MIXER_DENOMINATIONS),
                                                 size=total)]
        t_in = start + rng.uniform(0.0, span * 0.9, size=total)
        deposits = _block(depositors, center_per_row, denom,
                          rng.uniform(20, 50, size=total), CONTRACT_GAS,
                          t_in, True)
        # Each deposit is matched by one withdrawal of the same denomination
        # minus the pool fee, to a (generally different) account, after an
        # anonymity-set delay of up to 8% of the window.
        withdrawals = _block(
            center_per_row, draw_from_pool(rng, users, total),
            denom * 0.997,
            rng.uniform(20, 50, size=total), CONTRACT_GAS,
            t_in + span * rng.uniform(0.001, 0.08, size=total), True)
        return RawTxBlock.concat([deposits, withdrawals])

    def envelope(self):
        return ScenarioEnvelope(
            txs_per_center=(60, 118),
            in_fraction=(0.45, 0.55),
            contract_call_fraction=(0.99, 1.0),
            mean_distinct_counterparties=(25, 125),
            span_fraction=(0.7, 1.0),
            net_flow_imbalance=(0.0, 0.05),
        )
