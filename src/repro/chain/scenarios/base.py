"""Core contracts of the scenario synthesis engine.

A *scenario* is a vectorised generator of labelled on-chain behaviour: given
the interned account ids of its centre (labelled) accounts plus background
user / contract pools, it emits a :class:`RawTxBlock` — parallel numpy
columns, one row per raw transaction — using a handful of batched RNG calls
instead of per-transaction Python tuples.  The engine
(:class:`~repro.chain.generator.LedgerGenerator`) concatenates the blocks of
every registered scenario, sorts them by timestamp and feeds them straight
into the ledger's columnar store; no per-tx Python object is ever created.

Scenarios register themselves under their :class:`AccountCategory` via
:func:`register_scenario`; the registry is the single source of truth for
which behaviour families exist, and new families plug in by subclassing
:class:`Scenario` — the label flows through labelcloud → features →
classification unchanged.

Because the vectorised RNG layout intentionally differs from the historical
per-tuple behaviours, every scenario also declares a statistical *envelope*
(:class:`ScenarioEnvelope`): per-centre transaction counts, flow direction,
contract-call fraction, counterparty degree, value dispersion and timing
spread.  :meth:`Scenario.self_check` verifies a synthesized block against the
envelope, so a refactor that silently changes the shape of a family — the
thing the paper's category separability rests on — fails loudly.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Sequence

import numpy as np

from repro.chain.labelcloud import AccountCategory

__all__ = [
    "TRANSFER_GAS",
    "CONTRACT_GAS",
    "RawTxBlock",
    "ScenarioEnvelope",
    "ScenarioCheckError",
    "Scenario",
    "register_scenario",
    "scenario_for",
    "registered_scenarios",
    "draw_from_pool",
    "segment_arange",
]

TRANSFER_GAS = 21_000
CONTRACT_GAS = 90_000

#: (field name, numpy dtype) of every RawTxBlock column.
_BLOCK_DTYPES: tuple[tuple[str, type], ...] = (
    ("sender_id", np.int64),
    ("receiver_id", np.int64),
    ("value", np.float64),
    ("gas_price", np.float64),
    ("gas_used", np.int64),
    ("timestamp", np.float64),
    ("is_contract_call", np.bool_),
)


@dataclass
class RawTxBlock:
    """A batch of raw transactions as parallel numpy columns.

    ``sender_id``/``receiver_id`` hold interned account ids (or any opaque
    integer identifiers — the engine passes the ledger store's ids, the
    behaviour compatibility shim passes indices into ad-hoc pools).  The
    remaining columns mirror the per-transaction fields of the historical
    ``RawTx`` tuple; ordering is arbitrary — the assembly stage sorts the
    concatenated stream by timestamp.
    """

    sender_id: np.ndarray
    receiver_id: np.ndarray
    value: np.ndarray
    gas_price: np.ndarray
    gas_used: np.ndarray
    timestamp: np.ndarray
    is_contract_call: np.ndarray

    def __post_init__(self):
        n = None
        for name, dtype in _BLOCK_DTYPES:
            column = np.ascontiguousarray(getattr(self, name), dtype=dtype)
            setattr(self, name, column)
            if n is None:
                n = len(column)
            elif len(column) != n:
                raise ValueError(
                    f"RawTxBlock column {name!r} has length {len(column)}, "
                    f"expected {n}")

    def __len__(self) -> int:
        return len(self.sender_id)

    @classmethod
    def empty(cls) -> "RawTxBlock":
        return cls(**{name: np.empty(0, dtype=dtype)
                      for name, dtype in _BLOCK_DTYPES})

    @classmethod
    def concat(cls, blocks: Sequence["RawTxBlock"]) -> "RawTxBlock":
        """Concatenate blocks row-wise (order preserved)."""
        blocks = [b for b in blocks if len(b)]
        if not blocks:
            return cls.empty()
        if len(blocks) == 1:
            return blocks[0]
        return cls(**{name: np.concatenate([getattr(b, name) for b in blocks])
                      for name, _ in _BLOCK_DTYPES})

    def take(self, order: np.ndarray) -> "RawTxBlock":
        """A new block holding ``self``'s rows permuted/gathered by ``order``."""
        return RawTxBlock(**{name: getattr(self, name)[order]
                             for name, _ in _BLOCK_DTYPES})


@dataclass(frozen=True)
class ScenarioEnvelope:
    """Statistical bounds a synthesized block must satisfy.

    Every field is an inclusive ``(lo, hi)`` interval, or ``None`` to skip the
    check.  Per-centre statistics are averaged across centres before testing,
    so the bounds describe the *typical* centre and stay robust for blocks
    with a handful of centres (the property-test regime) as well as at
    engine scale.  The bounds assume non-degenerate pools — with an empty or
    singleton counterparty pool a scenario may emit far fewer transactions
    than its envelope describes, so :meth:`Scenario.self_check` is skipped by
    the engine when pools are degenerate.
    """

    #: Raw transactions emitted per centre.
    txs_per_center: tuple[float, float] | None = None
    #: Fraction of rows whose *receiver* is the centre (inbound flow).
    in_fraction: tuple[float, float] | None = None
    #: Fraction of rows flagged as contract calls.
    contract_call_fraction: tuple[float, float] | None = None
    #: Mean (over centres) number of distinct counterparty accounts.
    mean_distinct_counterparties: tuple[float, float] | None = None
    #: Coefficient of variation of inbound values (std / mean).
    in_value_cv: tuple[float, float] | None = None
    #: Mean (over centres) of (latest - earliest timestamp) / window span.
    span_fraction: tuple[float, float] | None = None
    #: Mean (over centres) of |inflow - outflow| / max(inflow, outflow).
    net_flow_imbalance: tuple[float, float] | None = None


class ScenarioCheckError(AssertionError):
    """A synthesized block violated its scenario's statistical envelope."""


class Scenario:
    """Base class of every pluggable behaviour family.

    Subclasses set :attr:`category`, implement :meth:`synthesize` and return
    their statistical bounds from :meth:`envelope`.  ``synthesize`` must be a
    pure function of its arguments and the RNG stream — the engine relies on
    that for deterministic ledger generation — and must only emit rows where
    exactly one endpoint is a centre (so the centre's label describes every
    transaction of the block) and sender != receiver.
    """

    #: The labelled category this scenario's centres carry.
    category: AccountCategory

    def synthesize(self, centers: np.ndarray, users: np.ndarray,
                   contracts: np.ndarray, rng: np.random.Generator,
                   start: float, span: float) -> RawTxBlock:
        raise NotImplementedError

    def envelope(self) -> ScenarioEnvelope:
        raise NotImplementedError

    def is_contract_center(self, index: int) -> bool:
        """Whether the ``index``-th centre account should be a contract."""
        return False

    # ------------------------------------------------------------ self-check
    def self_check(self, block: RawTxBlock, centers: np.ndarray,
                   start: float, span: float) -> None:
        """Verify ``block`` against hard invariants plus :meth:`envelope`.

        Raises :class:`ScenarioCheckError` listing every violated bound.
        Assumes non-degenerate counterparty pools (see
        :class:`ScenarioEnvelope`).
        """
        problems: list[str] = []
        centers = np.ascontiguousarray(centers, dtype=np.int64)
        if len(centers) == 0 or len(block) == 0:
            return
        sender_is_center = np.isin(block.sender_id, centers)
        receiver_is_center = np.isin(block.receiver_id, centers)

        # Hard invariants first: they make the envelope statistics well defined.
        if not np.all(sender_is_center ^ receiver_is_center):
            problems.append("every row must have exactly one centre endpoint")
        if np.any(block.sender_id == block.receiver_id):
            problems.append("self-transfers are not part of any scenario")
        if not np.all(block.value > 0):
            problems.append("values must be strictly positive")
        if not np.all(block.gas_price > 0):
            problems.append("gas prices must be strictly positive")
        if not np.all(block.gas_used > 0):
            problems.append("gas used must be strictly positive")
        lo_t = start - 0.01 * span
        hi_t = start + span + max(3600.0, 0.05 * span)
        if np.any(block.timestamp < lo_t) or np.any(block.timestamp > hi_t):
            problems.append(
                f"timestamps must fall within the observation window "
                f"[{lo_t:.0f}, {hi_t:.0f}]")
        if problems:
            raise ScenarioCheckError(
                f"{type(self).__name__}: " + "; ".join(problems))

        env = self.envelope()
        sorted_centers = np.sort(centers)
        center_col = np.where(sender_is_center, block.sender_id, block.receiver_id)
        counterparty_col = np.where(sender_is_center, block.receiver_id,
                                    block.sender_id)
        center_idx = np.searchsorted(sorted_centers, center_col)
        n_centers = len(sorted_centers)
        per_center = np.bincount(center_idx, minlength=n_centers)
        active = per_center > 0

        def _within(name: str, value: float, bounds) -> None:
            if bounds is not None and not (bounds[0] <= value <= bounds[1]):
                problems.append(
                    f"{name}={value:.4g} outside [{bounds[0]:.4g}, {bounds[1]:.4g}]")

        _within("txs_per_center", float(per_center[active].mean()),
                env.txs_per_center)
        _within("in_fraction", float(receiver_is_center.mean()), env.in_fraction)
        _within("contract_call_fraction", float(block.is_contract_call.mean()),
                env.contract_call_fraction)

        if env.mean_distinct_counterparties is not None:
            pair_keys = (center_idx.astype(np.int64)
                         * np.int64(counterparty_col.max() + 1) + counterparty_col)
            uniq_centers = np.unique(pair_keys) // np.int64(counterparty_col.max() + 1)
            distinct = np.bincount(uniq_centers.astype(np.int64),
                                   minlength=n_centers)
            _within("mean_distinct_counterparties",
                    float(distinct[active].mean()),
                    env.mean_distinct_counterparties)

        if env.in_value_cv is not None:
            # Per-centre dispersion, averaged: different centres legitimately
            # operate at different value levels (e.g. per-miner reward sizes).
            in_idx = center_idx[receiver_is_center]
            in_val = block.value[receiver_is_center]
            count = np.bincount(in_idx, minlength=n_centers)
            total = np.bincount(in_idx, weights=in_val, minlength=n_centers)
            total_sq = np.bincount(in_idx, weights=in_val * in_val,
                                   minlength=n_centers)
            ok = count >= 2
            if ok.any():
                mean = total[ok] / count[ok]
                var = np.maximum(total_sq[ok] / count[ok] - mean * mean, 0.0)
                pos = mean > 0
                if pos.any():
                    cv = np.sqrt(var[pos]) / mean[pos]
                    _within("in_value_cv", float(cv.mean()), env.in_value_cv)

        if env.span_fraction is not None and span > 0:
            order = np.argsort(center_idx, kind="stable")
            bounds_idx = np.concatenate([
                np.flatnonzero(np.diff(center_idx[order]) != 0) + 1, [len(order)]])
            starts = np.concatenate([[0], bounds_idx[:-1]])
            ts_sorted = block.timestamp[order]
            spans = np.array([
                ts_sorted[lo:hi].max() - ts_sorted[lo:hi].min()
                for lo, hi in zip(starts, bounds_idx)])
            _within("span_fraction", float((spans / span).mean()),
                    env.span_fraction)

        if env.net_flow_imbalance is not None:
            inflow = np.bincount(center_idx[receiver_is_center],
                                 weights=block.value[receiver_is_center],
                                 minlength=n_centers)
            outflow = np.bincount(center_idx[~receiver_is_center],
                                  weights=block.value[~receiver_is_center],
                                  minlength=n_centers)
            top = np.maximum(inflow, outflow)
            ok = top > 0
            imbalance = np.abs(inflow[ok] - outflow[ok]) / top[ok]
            if len(imbalance):
                _within("net_flow_imbalance", float(imbalance.mean()),
                        env.net_flow_imbalance)

        if problems:
            raise ScenarioCheckError(
                f"{type(self).__name__} envelope violated: " + "; ".join(problems))


# ------------------------------------------------------------------ registry
_REGISTRY: dict[AccountCategory, Scenario] = {}


def register_scenario(cls: type[Scenario]) -> type[Scenario]:
    """Class decorator: instantiate ``cls`` and register it under its category."""
    instance = cls()
    category = AccountCategory(instance.category)
    _REGISTRY[category] = instance
    return cls


def scenario_for(category: AccountCategory | str) -> Scenario:
    """The registered scenario of ``category`` (accepts category value strings)."""
    return _REGISTRY[AccountCategory(category)]


def registered_scenarios() -> dict[AccountCategory, Scenario]:
    """A snapshot of the registry (category -> scenario instance)."""
    return dict(_REGISTRY)


# ------------------------------------------------------------------- helpers
def draw_from_pool(rng: np.random.Generator, pool: np.ndarray,
                   size: int) -> np.ndarray:
    """``size`` draws (with replacement) from ``pool``; empty-pool safe.

    The degenerate cases the historical per-tuple behaviours tripped over
    (``rng.integers(0, 0)`` on an empty pool) return an empty array instead:
    callers emit no transactions for the affected rows.
    """
    if len(pool) == 0 or size <= 0:
        return np.empty(0, dtype=np.int64)
    return pool[rng.integers(0, len(pool), size=size)]


def segment_arange(counts: np.ndarray) -> np.ndarray:
    """``[0..counts[0]), [0..counts[1]), ...`` concatenated (vectorised)."""
    counts = np.ascontiguousarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.repeat(np.cumsum(counts) - counts, counts)
    return np.arange(total, dtype=np.int64) - starts
