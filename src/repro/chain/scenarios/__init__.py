"""Scenario synthesis engine: vectorised, pluggable behaviour families.

Importing this package populates the scenario registry with the six seed
families (``repro.chain.scenarios.seed``) and the three additional attack
families (``repro.chain.scenarios.families``).  See ``base`` for the
:class:`Scenario` contract and :class:`RawTxBlock` columnar layout.
"""

from repro.chain.scenarios.base import (
    CONTRACT_GAS,
    TRANSFER_GAS,
    RawTxBlock,
    Scenario,
    ScenarioCheckError,
    ScenarioEnvelope,
    draw_from_pool,
    register_scenario,
    registered_scenarios,
    scenario_for,
    segment_arange,
)
from repro.chain.scenarios.seed import (
    BridgeScenario,
    DefiScenario,
    ExchangeScenario,
    IcoWalletScenario,
    MiningScenario,
    PhishHackScenario,
)
from repro.chain.scenarios.families import (
    MIXER_DENOMINATIONS,
    AirdropFarmingScenario,
    MixerScenario,
    WashTradingScenario,
)

__all__ = [
    "CONTRACT_GAS",
    "TRANSFER_GAS",
    "RawTxBlock",
    "Scenario",
    "ScenarioCheckError",
    "ScenarioEnvelope",
    "draw_from_pool",
    "register_scenario",
    "registered_scenarios",
    "scenario_for",
    "segment_arange",
    "ExchangeScenario",
    "IcoWalletScenario",
    "MiningScenario",
    "PhishHackScenario",
    "BridgeScenario",
    "DefiScenario",
    "WashTradingScenario",
    "AirdropFarmingScenario",
    "MixerScenario",
    "MIXER_DENOMINATIONS",
]
