"""The six seed behaviour families, vectorised.

Each scenario reproduces the qualitative pattern of the historical per-tuple
behaviour of the same category (see the module docstring of
``repro.chain.behaviors``) with batched RNG draws across *all* centres at
once: one ``synthesize`` call emits the full column block for a category
regardless of how many labelled accounts it has.  The RNG layout therefore
differs from the per-tuple implementation — an intentional data regeneration
pinned by the re-computed golden digests in ``tests/test_graph_golden.py``
and guarded qualitatively by each scenario's envelope.
"""

from __future__ import annotations

import numpy as np

from repro.chain.labelcloud import AccountCategory
from repro.chain.scenarios.base import (
    CONTRACT_GAS,
    TRANSFER_GAS,
    RawTxBlock,
    Scenario,
    ScenarioEnvelope,
    draw_from_pool,
    register_scenario,
    segment_arange,
)

__all__ = [
    "ExchangeScenario",
    "IcoWalletScenario",
    "MiningScenario",
    "PhishHackScenario",
    "BridgeScenario",
    "DefiScenario",
]


def _block(senders, receivers, values, gas_prices, gas_used, timestamps,
           is_call) -> RawTxBlock:
    n = len(senders)
    if np.isscalar(gas_used):
        gas_used = np.full(n, gas_used, dtype=np.int64)
    if np.isscalar(is_call):
        is_call = np.full(n, is_call, dtype=np.bool_)
    return RawTxBlock(senders, receivers, values, gas_prices, gas_used,
                      timestamps, is_call)


@register_scenario
class ExchangeScenario(Scenario):
    """Hot-wallet hub: many deposits in, most users withdrawn to, window-long."""

    category = AccountCategory.EXCHANGE

    def synthesize(self, centers, users, contracts, rng, start, span):
        n_centers = len(centers)
        if n_centers == 0 or len(users) == 0:
            return RawTxBlock.empty()
        n_cp = rng.integers(25, 45, size=n_centers)
        cp = draw_from_pool(rng, users, int(n_cp.sum()))
        cp_center = np.repeat(centers, n_cp)

        deposits = rng.integers(1, 4, size=len(cp))
        d_total = int(deposits.sum())
        dep_sender = np.repeat(cp, deposits)
        dep_receiver = np.repeat(cp_center, deposits)
        dep = _block(dep_sender, dep_receiver,
                     rng.lognormal(mean=0.5, sigma=1.0, size=d_total),
                     rng.uniform(20, 60, size=d_total),
                     TRANSFER_GAS,
                     start + rng.uniform(0.0, span, size=d_total), False)

        withdraws = rng.random(len(cp)) < 0.8
        w_total = int(withdraws.sum())
        wd = _block(cp_center[withdraws], cp[withdraws],
                    rng.lognormal(mean=0.3, sigma=1.0, size=w_total),
                    rng.uniform(20, 60, size=w_total),
                    TRANSFER_GAS,
                    start + rng.uniform(0.0, span, size=w_total), False)
        return RawTxBlock.concat([dep, wd])

    def envelope(self):
        return ScenarioEnvelope(
            txs_per_center=(25, 181),
            in_fraction=(0.55, 0.85),
            contract_call_fraction=(0.0, 0.01),
            mean_distinct_counterparties=(12, 46),
            span_fraction=(0.6, 1.0),
        )


@register_scenario
class IcoWalletScenario(Scenario):
    """Crowd-sale inflow burst followed by a few large treasury disbursements."""

    category = AccountCategory.ICO_WALLET

    def synthesize(self, centers, users, contracts, rng, start, span):
        n_centers = len(centers)
        if n_centers == 0 or len(users) == 0:
            return RawTxBlock.empty()
        sale_window = span * 0.15
        sale_start = start + rng.uniform(0.0, span * 0.2, size=n_centers)

        n_contrib = rng.integers(20, 40, size=n_centers)
        total = int(n_contrib.sum())
        contributors = draw_from_pool(rng, users, total)
        center_per_row = np.repeat(centers, n_contrib)
        values = rng.lognormal(mean=-0.5, sigma=0.7, size=total)
        inflow = _block(contributors, center_per_row, values,
                        rng.uniform(30, 80, size=total), TRANSFER_GAS,
                        np.repeat(sale_start, n_contrib)
                        + rng.uniform(0.0, sale_window, size=total), False)

        raised = np.bincount(np.repeat(np.arange(n_centers), n_contrib),
                             weights=values, minlength=n_centers)
        n_treasury = rng.integers(2, 5, size=n_centers)
        t_total = int(n_treasury.sum())
        treasuries = draw_from_pool(rng, users, t_total)
        outflow = _block(
            np.repeat(centers, n_treasury), treasuries,
            np.repeat(raised * 0.95 / n_treasury, n_treasury),
            rng.uniform(20, 40, size=t_total), TRANSFER_GAS,
            np.repeat(sale_start + sale_window, n_treasury)
            + rng.uniform(span * 0.2, span * 0.6, size=t_total), False)
        return RawTxBlock.concat([inflow, outflow])

    def envelope(self):
        return ScenarioEnvelope(
            txs_per_center=(22, 44),
            in_fraction=(0.8, 0.97),
            contract_call_fraction=(0.0, 0.01),
            mean_distinct_counterparties=(12, 44),
            span_fraction=(0.2, 0.85),
        )


@register_scenario
class MiningScenario(Scenario):
    """Near-periodic, near-constant reward income with occasional pooled payouts."""

    category = AccountCategory.MINING

    def synthesize(self, centers, users, contracts, rng, start, span):
        n_centers = len(centers)
        if n_centers == 0 or len(users) == 0:
            return RawTxBlock.empty()
        pools = draw_from_pool(rng, users, n_centers)
        n_rewards = rng.integers(30, 60, size=n_centers)
        total = int(n_rewards.sum())
        period = np.repeat(span / n_rewards, n_rewards)
        reward = rng.uniform(1.8, 3.2, size=n_centers)
        ts = (np.repeat(np.full(n_centers, start), n_rewards)
              + segment_arange(n_rewards) * period
              + rng.normal(0.0, 1.0, size=total) * period * 0.02)
        rewards = _block(
            np.repeat(pools, n_rewards), np.repeat(centers, n_rewards),
            np.repeat(reward, n_rewards) * rng.uniform(0.97, 1.03, size=total),
            rng.uniform(10, 25, size=total), TRANSFER_GAS, ts, False)

        n_payees = rng.integers(2, 5, size=n_centers)
        p_total = int(n_payees.sum())
        payees = draw_from_pool(rng, users, p_total)
        payouts = _block(
            np.repeat(centers, n_payees), payees,
            np.repeat(reward, n_payees) * rng.uniform(5, 15, size=p_total),
            rng.uniform(10, 25, size=p_total), TRANSFER_GAS,
            start + rng.uniform(span * 0.3, span, size=p_total), False)
        return RawTxBlock.concat([rewards, payouts])

    def envelope(self):
        return ScenarioEnvelope(
            txs_per_center=(32, 64),
            in_fraction=(0.85, 0.97),
            contract_call_fraction=(0.0, 0.01),
            mean_distinct_counterparties=(2, 7),
            in_value_cv=(0.0, 0.06),
            span_fraction=(0.9, 1.02),
        )


@register_scenario
class PhishHackScenario(Scenario):
    """Victim-inflow burst immediately swept out to collectors at high gas price."""

    category = AccountCategory.PHISH_HACK

    def synthesize(self, centers, users, contracts, rng, start, span):
        n_centers = len(centers)
        if n_centers == 0 or len(users) == 0:
            return RawTxBlock.empty()
        burst_start = start + rng.uniform(0.0, span * 0.7, size=n_centers)
        burst_len = span * rng.uniform(0.01, 0.05, size=n_centers)

        n_victims = rng.integers(10, 30, size=n_centers)
        total = int(n_victims.sum())
        victims = draw_from_pool(rng, users, total)
        values = rng.lognormal(mean=0.0, sigma=1.2, size=total)
        inflow = _block(
            victims, np.repeat(centers, n_victims), values,
            rng.uniform(40, 120, size=total), TRANSFER_GAS,
            np.repeat(burst_start, n_victims)
            + rng.uniform(0.0, 1.0, size=total) * np.repeat(burst_len, n_victims),
            False)

        stolen = np.bincount(np.repeat(np.arange(n_centers), n_victims),
                             weights=values, minlength=n_centers)
        n_collectors = rng.integers(1, 3, size=n_centers)
        c_total = int(n_collectors.sum())
        collectors = draw_from_pool(rng, users, c_total)
        sweep = _block(
            np.repeat(centers, n_collectors), collectors,
            np.repeat(stolen * 0.98 / n_collectors, n_collectors),
            rng.uniform(80, 200, size=c_total), TRANSFER_GAS,
            np.repeat(burst_start + burst_len, n_collectors)
            + rng.uniform(0.0, 1.0, size=c_total)
            * np.repeat(burst_len, n_collectors), False)
        return RawTxBlock.concat([inflow, sweep])

    def envelope(self):
        return ScenarioEnvelope(
            txs_per_center=(11, 32),
            in_fraction=(0.8, 0.97),
            contract_call_fraction=(0.0, 0.01),
            mean_distinct_counterparties=(8, 33),
            span_fraction=(0.002, 0.12),
        )


@register_scenario
class BridgeScenario(Scenario):
    """Lock/release pairs mediated by contract calls with matched amounts."""

    category = AccountCategory.BRIDGE

    def is_contract_center(self, index: int) -> bool:
        return index % 2 == 0

    def synthesize(self, centers, users, contracts, rng, start, span):
        n_centers = len(centers)
        relay_pool = contracts if len(contracts) else users
        if n_centers == 0 or len(users) == 0 or len(relay_pool) == 0:
            return RawTxBlock.empty()
        n_pairs = rng.integers(15, 35, size=n_centers)
        total = int(n_pairs.sum())
        depositors = draw_from_pool(rng, users, total)
        center_per_row = np.repeat(centers, n_pairs)
        t_lock = start + rng.uniform(0.0, span * 0.95, size=total)
        values = rng.lognormal(mean=0.8, sigma=0.8, size=total)
        lock = _block(depositors, center_per_row, values,
                      rng.uniform(25, 70, size=total), CONTRACT_GAS, t_lock, True)
        # Releases fan out through a small per-centre basket of relay
        # contracts (1-3), matching the seed archetype's low relay degree.
        n_relays = np.minimum(rng.integers(1, 4, size=n_centers), len(relay_pool))
        basket = draw_from_pool(rng, relay_pool, int(n_relays.sum()))
        basket_start = np.cumsum(n_relays) - n_relays
        pick = np.floor(rng.random(total)
                        * np.repeat(n_relays, n_pairs)).astype(np.int64)
        relays = basket[np.repeat(basket_start, n_pairs) + pick]
        release = _block(
            center_per_row, relays,
            values * rng.uniform(0.985, 0.999, size=total),
            rng.uniform(25, 70, size=total), CONTRACT_GAS,
            t_lock + rng.uniform(120.0, 3600.0, size=total), True)
        return RawTxBlock.concat([lock, release])

    def envelope(self):
        return ScenarioEnvelope(
            txs_per_center=(30, 68),
            in_fraction=(0.45, 0.55),
            contract_call_fraction=(0.99, 1.0),
            mean_distinct_counterparties=(8, 40),
            span_fraction=(0.7, 1.01),
            net_flow_imbalance=(0.0, 0.05),
        )


@register_scenario
class DefiScenario(Scenario):
    """Contract-call-heavy bidirectional interaction with a few protocol contracts."""

    category = AccountCategory.DEFI

    def is_contract_center(self, index: int) -> bool:
        return index % 2 == 0

    def synthesize(self, centers, users, contracts, rng, start, span):
        n_centers = len(centers)
        protocol_pool = contracts if len(contracts) else users
        if n_centers == 0 or len(protocol_pool) == 0:
            return RawTxBlock.empty()
        # A per-centre protocol basket (1-5 contracts) drawn once, then each
        # interaction picks from its centre's basket — preserving the seed
        # archetype's low protocol degree at any pool size.
        n_protocols = rng.integers(1, 6, size=n_centers)
        n_protocols = np.minimum(n_protocols, len(protocol_pool))
        basket = draw_from_pool(rng, protocol_pool, int(n_protocols.sum()))
        basket_start = np.cumsum(n_protocols) - n_protocols

        n_interactions = rng.integers(30, 60, size=n_centers)
        total = int(n_interactions.sum())
        pick = np.floor(rng.random(total)
                        * np.repeat(n_protocols, n_interactions)).astype(np.int64)
        protocols = basket[np.repeat(basket_start, n_interactions) + pick]
        center_per_row = np.repeat(centers, n_interactions)
        outbound = rng.random(total) < 0.55
        senders = np.where(outbound, center_per_row, protocols)
        receivers = np.where(outbound, protocols, center_per_row)
        return _block(senders, receivers,
                      rng.lognormal(mean=-0.3, sigma=0.9, size=total),
                      rng.uniform(30, 90, size=total), CONTRACT_GAS,
                      start + rng.uniform(0.0, span, size=total), True)

    def envelope(self):
        return ScenarioEnvelope(
            txs_per_center=(30, 60),
            in_fraction=(0.3, 0.6),
            contract_call_fraction=(0.99, 1.0),
            mean_distinct_counterparties=(1, 6),
            span_fraction=(0.7, 1.0),
        )
