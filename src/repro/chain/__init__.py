"""Synthetic Ethereum ledger used as the data substrate.

The paper trains on Ethereum mainnet block data (XBlock export, 2015--2024)
joined with Etherscan / XLabelCloud labels.  Neither is available offline, so
this subpackage simulates the closest equivalent: a deterministic ledger of
externally-owned and contract accounts whose transaction streams follow
per-category behavioural archetypes (exchange, ICO-wallet, mining, phish/hack,
bridge, DeFi, plus the wash-trading / airdrop-farming / mixer attack
families) and an unlabeled background population, synthesized by the
vectorised scenario engine in :mod:`repro.chain.scenarios`.  Every field the
downstream pipeline consumes — sender, receiver, value, gas price, gas used,
timestamp and contract-call flag — is produced with category-distinct
distributions so that the whole DBG4ETH pipeline is exercised end-to-end.
"""

from repro.chain.accounts import Account, AccountType
from repro.chain.transactions import Transaction, Block
from repro.chain.txstore import ColumnarTxStore, TxColumns
from repro.chain.ledger import Ledger
from repro.chain.backend import BackendFormatError, LedgerBackend
from repro.chain.labelcloud import LabelCloud, AccountCategory
from repro.chain.generator import LedgerConfig, LedgerGenerator, generate_ledger
from repro.chain.scenarios import (
    RawTxBlock,
    Scenario,
    ScenarioCheckError,
    ScenarioEnvelope,
    register_scenario,
    registered_scenarios,
    scenario_for,
)

__all__ = [
    "Account",
    "AccountType",
    "Transaction",
    "Block",
    "BackendFormatError",
    "ColumnarTxStore",
    "TxColumns",
    "Ledger",
    "LedgerBackend",
    "LabelCloud",
    "AccountCategory",
    "LedgerConfig",
    "LedgerGenerator",
    "generate_ledger",
    "RawTxBlock",
    "Scenario",
    "ScenarioCheckError",
    "ScenarioEnvelope",
    "register_scenario",
    "registered_scenarios",
    "scenario_for",
]
