"""Deterministic synthetic-ledger generation via the scenario engine.

The generator registers the account population (background users, contracts,
labelled centres), then asks each registered scenario
(:mod:`repro.chain.scenarios`) to synthesize its labelled behaviour as one
columnar :class:`RawTxBlock` per category — batched RNG draws across all of
the category's centres at once, no per-transaction Python objects.  The
concatenated stream is sorted by timestamp and appended to the ledger's
columnar store in one bulk call.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.chain.accounts import Account, AccountType, make_address, make_addresses
from repro.chain.labelcloud import AccountCategory
from repro.chain.ledger import Ledger
from repro.chain.scenarios import RawTxBlock, scenario_for
from repro.chain.scenarios.base import CONTRACT_GAS, TRANSFER_GAS
from repro.chain.transactions import Block, Transaction

__all__ = ["LedgerConfig", "LedgerGenerator", "generate_ledger"]


@dataclass
class LedgerConfig:
    """Configuration for :class:`LedgerGenerator`.

    The default category counts are scaled-down versions of the paper's Table
    II (which has 231 exchanges, 155 ICO wallets, 56 miners, 1991 phishers,
    105 bridges and 105 DeFi accounts) so that the full pipeline runs on a
    laptop, extended with the three post-paper attack families the scenario
    engine adds (wash-trading, airdrop-farming, mixer).
    """

    labeled_per_category: dict[AccountCategory, int] = field(default_factory=lambda: {
        AccountCategory.EXCHANGE: 24,
        AccountCategory.ICO_WALLET: 16,
        AccountCategory.MINING: 12,
        AccountCategory.PHISH_HACK: 40,
        AccountCategory.BRIDGE: 12,
        AccountCategory.DEFI: 12,
        AccountCategory.WASH_TRADING: 10,
        AccountCategory.AIRDROP_FARMING: 14,
        AccountCategory.MIXER: 10,
    })
    num_background_users: int = 400
    num_contracts: int = 40
    start_timestamp: float = 1_438_900_000.0   # 2015-08-07, the paper's data start
    timespan: float = 3600.0 * 24 * 365        # one simulated year
    transactions_per_block: int = 50
    background_tx_count: int = 600
    unsubmitted_fraction: float = 0.01
    seed: int = 7
    #: Run each scenario's statistical self-check after synthesis (skipped
    #: automatically when the counterparty pools are degenerate).
    validate_scenarios: bool = False

    def scaled(self, factor: float) -> "LedgerConfig":
        """Return a copy with category counts and background sizes scaled by ``factor``."""
        return LedgerConfig(
            labeled_per_category={
                cat: max(2, int(round(n * factor)))
                for cat, n in self.labeled_per_category.items()
            },
            num_background_users=max(20, int(round(self.num_background_users * factor))),
            num_contracts=max(5, int(round(self.num_contracts * factor))),
            start_timestamp=self.start_timestamp,
            timespan=self.timespan,
            transactions_per_block=self.transactions_per_block,
            background_tx_count=max(50, int(round(self.background_tx_count * factor))),
            unsubmitted_fraction=self.unsubmitted_fraction,
            seed=self.seed,
            validate_scenarios=self.validate_scenarios,
        )

    def with_scenarios(self, categories: Iterable[AccountCategory | str]) -> "LedgerConfig":
        """Return a copy restricted to the given scenario families.

        ``categories`` accepts :class:`AccountCategory` members or their value
        strings; categories absent from the current count table get the
        default config's count for that category.
        """
        wanted = [AccountCategory(c) for c in categories]
        if not wanted:
            raise ValueError("at least one scenario category is required")
        defaults = LedgerConfig().labeled_per_category
        counts = {cat: self.labeled_per_category.get(cat, defaults.get(cat, 2))
                  for cat in wanted}
        clone = LedgerConfig(**{**vars(self)})
        clone.labeled_per_category = counts
        return clone


class LedgerGenerator:
    """Build a :class:`~repro.chain.Ledger` from a :class:`LedgerConfig`.

    ``columnar=True`` (the default) sorts the synthesized
    :class:`RawTxBlock` and appends it column-wise straight into the ledger's
    :class:`~repro.chain.txstore.ColumnarTxStore` without creating a single
    :class:`Transaction` object; ``columnar=False`` keeps a per-object
    assembly loop over the same rows.  Both paths draw from the RNG in the
    same order and produce identical ledgers (pinned by
    ``tests/test_chain_generator.py``).
    """

    def __init__(self, config: LedgerConfig | None = None, columnar: bool = True):
        self.config = config or LedgerConfig()
        self.columnar = columnar

    def generate(self) -> Ledger:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        ledger = Ledger(genesis_timestamp=cfg.start_timestamp)
        raw = self.synthesize(ledger, rng)
        self._assemble_blocks(ledger, raw, rng)
        return ledger

    def synthesize(self, ledger: Ledger, rng: np.random.Generator) -> RawTxBlock:
        """Register the account population and synthesize every raw transaction.

        Returns the unsorted concatenated :class:`RawTxBlock` of all scenario
        and background traffic; account addresses are pre-interned into the
        ledger's store in creation order, so the block's id columns are valid
        store account ids (used by both assembly paths).
        """
        cfg = self.config
        background = self._create_background_accounts(ledger)
        contracts = self._create_contract_accounts(ledger)
        labeled = self._create_labeled_accounts(ledger)

        store = ledger.store
        user_ids = store.intern_many(background)
        contract_ids = store.intern_many(contracts)
        labeled_ids = store.intern_many([address for address, _ in labeled])

        blocks: list[RawTxBlock] = []
        offset = 0
        for category, count in cfg.labeled_per_category.items():
            centers = labeled_ids[offset:offset + count]
            offset += count
            scenario = scenario_for(category)
            block = scenario.synthesize(centers, user_ids, contract_ids, rng,
                                        cfg.start_timestamp, cfg.timespan)
            if (cfg.validate_scenarios and len(user_ids) > 1
                    and len(contract_ids) > 1):
                scenario.self_check(block, centers, cfg.start_timestamp,
                                    cfg.timespan)
            blocks.append(block)
        blocks.append(self._background_traffic_block(user_ids, contract_ids, rng))
        return RawTxBlock.concat(blocks)

    # ------------------------------------------------------------------ helpers
    def _create_background_accounts(self, ledger: Ledger) -> list[str]:
        addresses = make_addresses(self.config.num_background_users, prefix="u")
        ledger.add_accounts_bulk(addresses, AccountType.EOA)
        return addresses

    def _create_contract_accounts(self, ledger: Ledger) -> list[str]:
        addresses = make_addresses(self.config.num_contracts, prefix="c")
        ledger.add_accounts_bulk(addresses, AccountType.CONTRACT)
        return addresses

    def _create_labeled_accounts(self, ledger: Ledger) -> list[tuple[str, AccountCategory]]:
        labeled: list[tuple[str, AccountCategory]] = []
        index = 0
        for category, count in self.config.labeled_per_category.items():
            scenario = scenario_for(category)
            for position in range(count):
                address = make_address(index, prefix="L")
                account_type = (AccountType.CONTRACT
                                if scenario.is_contract_center(position)
                                else AccountType.EOA)
                ledger.add_account(Account(address, account_type))
                ledger.labels.add(address, category)
                labeled.append((address, category))
                index += 1
        return labeled

    def _background_traffic_block(self, user_ids: np.ndarray,
                                  contract_ids: np.ndarray,
                                  rng: np.random.Generator) -> RawTxBlock:
        """Random peer-to-peer chatter among unlabeled users (vectorised)."""
        cfg = self.config
        n = cfg.background_tx_count
        num_users = len(user_ids)
        if n == 0 or num_users == 0:
            return RawTxBlock.empty()
        senders = user_ids[rng.integers(0, num_users, size=n)]
        # Distinct receiver via a nonzero modular offset (uniform over the
        # other users); degenerate single-user pools keep only contract calls.
        if num_users > 1:
            offsets = rng.integers(1, num_users, size=n)
            receivers = user_ids[(np.searchsorted(user_ids, senders) + offsets)
                                 % num_users]
        else:
            receivers = senders.copy()
        is_call = rng.random(n) < 0.15
        if len(contract_ids):
            receivers = np.where(
                is_call, contract_ids[rng.integers(0, len(contract_ids), size=n)],
                receivers)
        else:
            is_call[:] = False
        block = RawTxBlock(
            senders, receivers,
            rng.lognormal(mean=-0.5, sigma=1.0, size=n),
            rng.uniform(15, 60, size=n),
            np.where(is_call, CONTRACT_GAS, TRANSFER_GAS),
            cfg.start_timestamp + rng.uniform(0.0, cfg.timespan, size=n),
            is_call)
        if num_users == 1:
            block = block.take(np.flatnonzero(block.is_contract_call))
        return block

    def _assemble_blocks(self, ledger: Ledger, raw: RawTxBlock,
                         rng: np.random.Generator) -> None:
        if self.columnar:
            self._assemble_blocks_columnar(ledger, raw, rng)
        else:
            self._assemble_blocks_objects(ledger, raw, rng)

    def _assemble_blocks_columnar(self, ledger: Ledger, raw: RawTxBlock,
                                  rng: np.random.Generator) -> None:
        """Column-wise block assembly: no per-``Transaction`` object creation.

        Reproduces the object path exactly: the same stable sort by
        timestamp, the same per-row rounding, the same single stream of
        ``rng.random()`` draws for the submitted flags (one vectorised call
        draws the identical doubles), the same last-transaction block
        timestamps, and the same derived ``0x{row:064x}`` hashes.
        """
        cfg = self.config
        n = len(raw)
        if n == 0:
            return
        ordered = raw.take(np.argsort(raw.timestamp, kind="stable"))
        submitted = rng.random(n) >= cfg.unsubmitted_fraction
        ledger.append_blocks_columnar(
            ordered.sender_id, ordered.receiver_id,
            np.round(ordered.value, 8), np.round(ordered.gas_price, 4),
            ordered.gas_used, ordered.timestamp, ordered.is_contract_call,
            submitted, transactions_per_block=cfg.transactions_per_block)

    def _assemble_blocks_objects(self, ledger: Ledger, raw: RawTxBlock,
                                 rng: np.random.Generator) -> None:
        """The original object path: one ``Transaction`` per raw row."""
        cfg = self.config
        if len(raw) == 0:
            return
        ordered = raw.take(np.argsort(raw.timestamp, kind="stable"))
        address = ledger.store.address
        rows = zip(ordered.sender_id.tolist(), ordered.receiver_id.tolist(),
                   ordered.value.tolist(), ordered.gas_price.tolist(),
                   ordered.gas_used.tolist(), ordered.timestamp.tolist(),
                   ordered.is_contract_call.tolist())
        blocks: list[Block] = []
        current: list[Transaction] = []
        block_number = 0
        for i, (sender, receiver, value, gas_price, gas_used, ts, is_call) in \
                enumerate(rows):
            submitted = rng.random() >= cfg.unsubmitted_fraction
            tx = Transaction(
                tx_hash=f"0x{i:064x}",
                sender=address(sender),
                receiver=address(receiver),
                value=round(float(value), 8),
                gas_price=round(float(gas_price), 4),
                gas_used=int(gas_used),
                timestamp=float(ts),
                is_contract_call=bool(is_call),
                block_number=block_number,
                submitted=submitted,
            )
            current.append(tx)
            if len(current) >= cfg.transactions_per_block:
                blocks.append(Block(block_number, current[-1].timestamp, current))
                current = []
                block_number += 1
        if current:
            blocks.append(Block(block_number, current[-1].timestamp, current))
        for block in blocks:
            ledger.append_block(block)


def generate_ledger(config: LedgerConfig | None = None, seed: int | None = None) -> Ledger:
    """Convenience wrapper: generate a ledger, optionally overriding the seed."""
    config = config or LedgerConfig()
    if seed is not None:
        config = LedgerConfig(**{**vars(config), "seed": seed})
    return LedgerGenerator(config).generate()
