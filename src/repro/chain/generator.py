"""Deterministic synthetic-ledger generation."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.chain.accounts import Account, AccountType, make_address
from repro.chain.behaviors import RawTx, behavior_for
from repro.chain.labelcloud import AccountCategory
from repro.chain.ledger import Ledger
from repro.chain.transactions import Block, Transaction

__all__ = ["LedgerConfig", "LedgerGenerator", "generate_ledger"]


@dataclass
class LedgerConfig:
    """Configuration for :class:`LedgerGenerator`.

    The default category counts are scaled-down versions of the paper's Table II
    (which has 231 exchanges, 155 ICO wallets, 56 miners, 1991 phishers, 105
    bridges and 105 DeFi accounts) so that the full pipeline runs on a laptop.
    """

    labeled_per_category: dict[AccountCategory, int] = field(default_factory=lambda: {
        AccountCategory.EXCHANGE: 24,
        AccountCategory.ICO_WALLET: 16,
        AccountCategory.MINING: 12,
        AccountCategory.PHISH_HACK: 40,
        AccountCategory.BRIDGE: 12,
        AccountCategory.DEFI: 12,
    })
    num_background_users: int = 400
    num_contracts: int = 40
    start_timestamp: float = 1_438_900_000.0   # 2015-08-07, the paper's data start
    timespan: float = 3600.0 * 24 * 365        # one simulated year
    transactions_per_block: int = 50
    background_tx_count: int = 600
    unsubmitted_fraction: float = 0.01
    seed: int = 7

    def scaled(self, factor: float) -> "LedgerConfig":
        """Return a copy with category counts and background sizes scaled by ``factor``."""
        return LedgerConfig(
            labeled_per_category={
                cat: max(2, int(round(n * factor)))
                for cat, n in self.labeled_per_category.items()
            },
            num_background_users=max(20, int(round(self.num_background_users * factor))),
            num_contracts=max(5, int(round(self.num_contracts * factor))),
            start_timestamp=self.start_timestamp,
            timespan=self.timespan,
            transactions_per_block=self.transactions_per_block,
            background_tx_count=max(50, int(round(self.background_tx_count * factor))),
            unsubmitted_fraction=self.unsubmitted_fraction,
            seed=self.seed,
        )


class LedgerGenerator:
    """Build a :class:`~repro.chain.Ledger` from a :class:`LedgerConfig`.

    ``columnar=True`` (the default) assembles blocks column-wise straight
    into the ledger's :class:`~repro.chain.txstore.ColumnarTxStore` without
    creating a single :class:`Transaction` object; ``columnar=False`` keeps
    the original per-object assembly loop.  Both paths draw from the RNG in
    the same order and produce identical ledgers (pinned by
    ``tests/test_chain_generator.py``).
    """

    def __init__(self, config: LedgerConfig | None = None, columnar: bool = True):
        self.config = config or LedgerConfig()
        self.columnar = columnar

    def generate(self) -> Ledger:
        cfg = self.config
        rng = np.random.default_rng(cfg.seed)
        ledger = Ledger(genesis_timestamp=cfg.start_timestamp)

        background = self._create_background_accounts(ledger)
        contracts = self._create_contract_accounts(ledger)
        labeled = self._create_labeled_accounts(ledger)

        raw_txs: list[RawTx] = []
        for address, category in labeled:
            behavior = behavior_for(category)
            raw_txs.extend(behavior(address, background, contracts, rng,
                                    cfg.start_timestamp, cfg.timespan))
        raw_txs.extend(self._background_traffic(background, contracts, rng))
        self._assemble_blocks(ledger, raw_txs, rng)
        return ledger

    # ------------------------------------------------------------------ helpers
    def _create_background_accounts(self, ledger: Ledger) -> list[str]:
        addresses = []
        for i in range(self.config.num_background_users):
            address = make_address(i, prefix="u")
            ledger.add_account(Account(address, AccountType.EOA))
            addresses.append(address)
        return addresses

    def _create_contract_accounts(self, ledger: Ledger) -> list[str]:
        addresses = []
        for i in range(self.config.num_contracts):
            address = make_address(i, prefix="c")
            ledger.add_account(Account(address, AccountType.CONTRACT))
            addresses.append(address)
        return addresses

    def _create_labeled_accounts(self, ledger: Ledger) -> list[tuple[str, AccountCategory]]:
        labeled: list[tuple[str, AccountCategory]] = []
        index = 0
        for category, count in self.config.labeled_per_category.items():
            for _ in range(count):
                address = make_address(index, prefix="L")
                account_type = (AccountType.CONTRACT
                                if category in (AccountCategory.BRIDGE, AccountCategory.DEFI)
                                and index % 2 == 0 else AccountType.EOA)
                ledger.add_account(Account(address, account_type))
                ledger.labels.add(address, category)
                labeled.append((address, category))
                index += 1
        return labeled

    def _background_traffic(self, users: list[str], contracts: list[str],
                            rng: np.random.Generator) -> list[RawTx]:
        """Random peer-to-peer chatter among unlabeled users."""
        cfg = self.config
        txs: list[RawTx] = []
        for _ in range(cfg.background_tx_count):
            sender, receiver = rng.choice(len(users), size=2, replace=False)
            is_contract_call = rng.random() < 0.15
            target = (contracts[int(rng.integers(0, len(contracts)))]
                      if is_contract_call else users[receiver])
            txs.append((
                users[sender], target,
                float(rng.lognormal(mean=-0.5, sigma=1.0)),
                float(rng.uniform(15, 60)),
                90_000 if is_contract_call else 21_000,
                cfg.start_timestamp + rng.uniform(0.0, cfg.timespan),
                is_contract_call,
            ))
        return txs

    def _assemble_blocks(self, ledger: Ledger, raw_txs: list[RawTx],
                         rng: np.random.Generator) -> None:
        if self.columnar:
            self._assemble_blocks_columnar(ledger, raw_txs, rng)
        else:
            self._assemble_blocks_objects(ledger, raw_txs, rng)

    def _assemble_blocks_columnar(self, ledger: Ledger, raw_txs: list[RawTx],
                                  rng: np.random.Generator) -> None:
        """Column-wise block assembly: no per-``Transaction`` object creation.

        Reproduces the object path exactly: the same stable sort by
        timestamp, the same per-row rounding, the same single stream of
        ``rng.random()`` draws for the submitted flags (one vectorised call
        draws the identical doubles), the same last-transaction block
        timestamps, and the same derived ``0x{row:064x}`` hashes.
        """
        cfg = self.config
        n = len(raw_txs)
        if n == 0:
            return
        timestamps = np.fromiter((tx[5] for tx in raw_txs), dtype=np.float64, count=n)
        order = np.argsort(timestamps, kind="stable")
        order_list = order.tolist()
        senders = [raw_txs[i][0] for i in order_list]
        receivers = [raw_txs[i][1] for i in order_list]
        values = np.round(
            np.fromiter((tx[2] for tx in raw_txs), dtype=np.float64, count=n)[order], 8)
        gas_prices = np.round(
            np.fromiter((tx[3] for tx in raw_txs), dtype=np.float64, count=n)[order], 4)
        gas_used = np.fromiter((tx[4] for tx in raw_txs), dtype=np.int64, count=n)[order]
        is_call = np.fromiter((tx[6] for tx in raw_txs), dtype=np.bool_, count=n)[order]
        submitted = rng.random(n) >= cfg.unsubmitted_fraction
        ledger.append_blocks_columnar(
            senders, receivers, values, gas_prices, gas_used, timestamps[order],
            is_call, submitted, transactions_per_block=cfg.transactions_per_block)

    def _assemble_blocks_objects(self, ledger: Ledger, raw_txs: list[RawTx],
                                 rng: np.random.Generator) -> None:
        """The original object path: one ``Transaction`` per raw tuple."""
        cfg = self.config
        raw_txs.sort(key=lambda tx: tx[5])
        blocks: list[Block] = []
        current: list[Transaction] = []
        block_number = 0
        for i, (sender, receiver, value, gas_price, gas_used, ts, is_call) in enumerate(raw_txs):
            submitted = rng.random() >= cfg.unsubmitted_fraction
            tx = Transaction(
                tx_hash=f"0x{i:064x}",
                sender=sender,
                receiver=receiver,
                value=round(float(value), 8),
                gas_price=round(float(gas_price), 4),
                gas_used=int(gas_used),
                timestamp=float(ts),
                is_contract_call=bool(is_call),
                block_number=block_number,
                submitted=submitted,
            )
            current.append(tx)
            if len(current) >= cfg.transactions_per_block:
                blocks.append(Block(block_number, current[-1].timestamp, current))
                current = []
                block_number += 1
        if current:
            blocks.append(Block(block_number, current[-1].timestamp, current))
        for block in blocks:
            ledger.append_block(block)


def generate_ledger(config: LedgerConfig | None = None, seed: int | None = None) -> Ledger:
    """Convenience wrapper: generate a ledger, optionally overriding the seed."""
    config = config or LedgerConfig()
    if seed is not None:
        config = LedgerConfig(**{**vars(config), "seed": seed})
    return LedgerGenerator(config).generate()
