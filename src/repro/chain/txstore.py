"""Columnar transaction storage: the ledger's canonical tx representation.

``ColumnarTxStore`` keeps every registered transaction as a row across
parallel numpy arrays (sender/receiver account ids, value, gas price, gas
used, timestamp, contract-call and submitted flags, block number) plus an
address interning table mapping account addresses to dense integer ids.
:class:`~repro.chain.transactions.Transaction` objects are materialised
lazily, only when a caller crosses the object API boundary
(``Ledger.transactions()``, ``transactions_for``, ``get_transaction``); the
hot consumers — ``build_transaction_graph``, ``DeepFeatureExtractor`` and the
benchmarks — read the column arrays directly.

Two ingestion paths feed the same columns:

* ``append_tx`` buffers a single :class:`Transaction` (the object path used
  by ``Ledger.append_block`` and hand-built test ledgers);
* ``append_chunk`` appends whole column arrays at once (the path
  ``generate_ledger`` uses to assemble millions of rows without creating a
  single ``Transaction``).

Transaction hashes are stored sparsely: a row's hash defaults to the
canonical ``0x{row:064x}`` pattern the generator emits, and only hashes that
deviate from it (hand-built ledgers) occupy dictionary entries.
"""

from __future__ import annotations

import threading

from typing import Iterator, Sequence

import numpy as np

from repro.chain.transactions import Transaction

__all__ = ["ColumnarTxStore", "TxColumns"]

#: (column name, numpy dtype) of every per-transaction column, in row layout order.
_COLUMN_DTYPES: tuple[tuple[str, type], ...] = (
    ("sender_id", np.int64),
    ("receiver_id", np.int64),
    ("value", np.float64),
    ("gas_price", np.float64),
    ("gas_used", np.int64),
    ("timestamp", np.float64),
    ("is_contract_call", np.bool_),
    ("submitted", np.bool_),
    ("block_number", np.int64),
)


class TxColumns:
    """A read-only snapshot of the store's consolidated column arrays.

    Attribute names match the column names in ``_COLUMN_DTYPES``.  The arrays
    are the store's own consolidated buffers — treat them as immutable.
    """

    __slots__ = tuple(name for name, _ in _COLUMN_DTYPES)

    def __init__(self, **arrays: np.ndarray):
        for name, _ in _COLUMN_DTYPES:
            setattr(self, name, arrays[name])

    def __len__(self) -> int:
        return len(self.sender_id)


def _derived_hash(row: int) -> str:
    """The canonical generator hash of global row ``row``."""
    return f"0x{row:064x}"


class ColumnarTxStore:
    """Parallel-array transaction storage with address interning.

    Rows are append-only and kept in registration (block) order.  Appends go
    to per-column chunk lists and are consolidated into single contiguous
    arrays the first time :meth:`columns` is called after a write, so both
    the per-``Transaction`` object path and the bulk columnar path stay
    amortised O(1) per row.
    """

    def __init__(self):
        self._addr_to_id: dict[str, int] = {}
        self._addresses: list[str] = []
        # Consolidated arrays + pending chunks awaiting consolidation.
        self._consolidated: dict[str, np.ndarray] = {
            name: np.empty(0, dtype=dtype) for name, dtype in _COLUMN_DTYPES}
        self._chunks: list[dict[str, np.ndarray]] = []
        self._row_buffer: dict[str, list] = {name: [] for name, _ in _COLUMN_DTYPES}
        self._num_rows = 0
        # Sparse hash storage: only hashes deviating from the derived pattern.
        self._explicit_hash_by_row: dict[int, str] = {}
        self._row_by_explicit_hash: dict[str, int] = {}
        # Incremental (min, max) timestamp over submitted rows (None = no rows).
        self._submitted_ts_min: float | None = None
        self._submitted_ts_max: float | None = None
        # Monotonic invalidation epoch: every append bumps it, and a backend
        # restore carries the persisted value forward, so downstream caches
        # (graph, feature table, serving sample cache) key their validity on
        # one integer instead of probing row/account counts individually.
        self._data_version = 0
        # Lazily built per-address row index (CSR over interned ids); valid
        # while ``_index_key`` matches ``(_num_rows, num interned addresses)``
        # — rows *and* addresses, because interning alone widens the indptr.
        self._index_key: tuple[int, int] = (-1, -1)
        self._index_indptr: np.ndarray | None = None
        self._index_row_ids: np.ndarray | None = None
        # Guards the two lazy builds (column consolidation, address index) so
        # concurrent readers of a quiescent store are safe; writes stay
        # single-threaded, matching the TxGraph concurrency contract.
        self._lock = threading.RLock()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]                  # locks are not picklable
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # ------------------------------------------------------------- interning
    def intern(self, address: str) -> int:
        """Return the dense integer id of ``address``, assigning one if new."""
        idx = self._addr_to_id.get(address)
        if idx is None:
            idx = self._addr_to_id[address] = len(self._addresses)
            self._addresses.append(address)
        return idx

    def intern_many(self, addresses: Sequence[str]) -> np.ndarray:
        """Intern a sequence of addresses; returns their ids as an int64 array."""
        table = self._addr_to_id
        pool = self._addresses
        out = np.empty(len(addresses), dtype=np.int64)
        for i, address in enumerate(addresses):
            idx = table.get(address)
            if idx is None:
                idx = table[address] = len(pool)
                pool.append(address)
            out[i] = idx
        return out

    def intern_pairs(self, senders: Sequence[str], receivers: Sequence[str],
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Intern sender/receiver sequences in interleaved per-row order.

        Scanning ``sender_0, receiver_0, sender_1, ...`` assigns ids in the
        same first-appearance order as the per-``Transaction`` object path,
        so bulk-built and object-built stores are column-for-column equal.
        """
        table = self._addr_to_id
        pool = self._addresses
        n = len(senders)
        sender_ids = np.empty(n, dtype=np.int64)
        receiver_ids = np.empty(n, dtype=np.int64)
        for i in range(n):
            idx = table.get(senders[i])
            if idx is None:
                idx = table[senders[i]] = len(pool)
                pool.append(senders[i])
            sender_ids[i] = idx
            idx = table.get(receivers[i])
            if idx is None:
                idx = table[receivers[i]] = len(pool)
                pool.append(receivers[i])
            receiver_ids[i] = idx
        return sender_ids, receiver_ids

    def address(self, account_id: int) -> str:
        return self._addresses[account_id]

    def address_id(self, address: str) -> int | None:
        """The interned id of ``address``, or ``None`` if it never transacted."""
        return self._addr_to_id.get(address)

    @property
    def addresses(self) -> list[str]:
        """Interned addresses in id order (id ``i`` -> ``addresses[i]``)."""
        return self._addresses

    @property
    def address_ids(self) -> dict[str, int]:
        """The interning table (address -> dense id).  Treat as read-only."""
        return self._addr_to_id

    @property
    def num_addresses(self) -> int:
        return len(self._addresses)

    # --------------------------------------------------------------- appends
    @property
    def num_rows(self) -> int:
        return self._num_rows

    @property
    def data_version(self) -> int:
        """Monotonic append epoch; grows on every :meth:`append_tx` /
        :meth:`append_chunk` call.  Caches across the stack (graph ingestion,
        the feature table, the serving sample cache) compare this single
        integer to detect ledger growth in O(1)."""
        return self._data_version

    def __len__(self) -> int:
        return self._num_rows

    def _record_submitted_span(self, timestamps: np.ndarray | float) -> None:
        ts_min = float(np.min(timestamps))
        ts_max = float(np.max(timestamps))
        if self._submitted_ts_min is None or ts_min < self._submitted_ts_min:
            self._submitted_ts_min = ts_min
        if self._submitted_ts_max is None or ts_max > self._submitted_ts_max:
            self._submitted_ts_max = ts_max

    def append_tx(self, tx: Transaction) -> int:
        """Register one :class:`Transaction` (object path); returns its row id."""
        row = self._num_rows
        sender = self.intern(tx.sender)
        receiver = self.intern(tx.receiver)
        buf = self._row_buffer
        buf["sender_id"].append(sender)
        buf["receiver_id"].append(receiver)
        buf["value"].append(tx.value)
        buf["gas_price"].append(tx.gas_price)
        buf["gas_used"].append(tx.gas_used)
        buf["timestamp"].append(tx.timestamp)
        buf["is_contract_call"].append(tx.is_contract_call)
        buf["submitted"].append(tx.submitted)
        buf["block_number"].append(tx.block_number)
        if tx.tx_hash != _derived_hash(row):
            self._explicit_hash_by_row[row] = tx.tx_hash
            self._row_by_explicit_hash[tx.tx_hash] = row
        if tx.submitted:
            self._record_submitted_span(tx.timestamp)
        self._num_rows += 1
        self._data_version += 1
        return row

    def append_chunk(self, sender_ids: np.ndarray, receiver_ids: np.ndarray,
                     values: np.ndarray, gas_prices: np.ndarray,
                     gas_used: np.ndarray, timestamps: np.ndarray,
                     is_contract_call: np.ndarray, submitted: np.ndarray,
                     block_numbers: np.ndarray,
                     tx_hashes: Sequence[str] | None = None) -> int:
        """Append whole column arrays at once (bulk path); returns the first row id.

        ``sender_ids``/``receiver_ids`` must already be interned (see
        :meth:`intern_many`).  ``tx_hashes=None`` means every appended row uses
        the derived ``0x{row:064x}`` hash — the generator's convention — and
        costs no per-row storage.
        """
        self._flush_row_buffer()
        chunk = {
            "sender_id": np.ascontiguousarray(sender_ids, dtype=np.int64),
            "receiver_id": np.ascontiguousarray(receiver_ids, dtype=np.int64),
            "value": np.ascontiguousarray(values, dtype=np.float64),
            "gas_price": np.ascontiguousarray(gas_prices, dtype=np.float64),
            "gas_used": np.ascontiguousarray(gas_used, dtype=np.int64),
            "timestamp": np.ascontiguousarray(timestamps, dtype=np.float64),
            "is_contract_call": np.ascontiguousarray(is_contract_call, dtype=np.bool_),
            "submitted": np.ascontiguousarray(submitted, dtype=np.bool_),
            "block_number": np.ascontiguousarray(block_numbers, dtype=np.int64),
        }
        n = len(chunk["sender_id"])
        if any(len(arr) != n for arr in chunk.values()):
            raise ValueError("all columns of a chunk must have the same length")
        if (chunk["sender_id"].size and
                (chunk["sender_id"].max(initial=-1) >= len(self._addresses)
                 or chunk["receiver_id"].max(initial=-1) >= len(self._addresses))):
            raise ValueError("sender/receiver ids must be interned before append_chunk")
        first_row = self._num_rows
        if tx_hashes is not None:
            if len(tx_hashes) != n:
                raise ValueError("tx_hashes length must match the chunk length")
            for offset, tx_hash in enumerate(tx_hashes):
                row = first_row + offset
                if tx_hash != _derived_hash(row):
                    self._explicit_hash_by_row[row] = tx_hash
                    self._row_by_explicit_hash[tx_hash] = row
        sub = chunk["submitted"]
        if sub.any():
            self._record_submitted_span(chunk["timestamp"][sub])
        self._chunks.append(chunk)
        self._num_rows += n
        self._data_version += 1
        return first_row

    def _flush_row_buffer(self) -> None:
        buf = self._row_buffer
        if not buf["sender_id"]:
            return
        self._chunks.append({
            name: np.asarray(buf[name], dtype=dtype)
            for name, dtype in _COLUMN_DTYPES})
        self._row_buffer = {name: [] for name, _ in _COLUMN_DTYPES}

    # --------------------------------------------------------------- columns
    def columns(self) -> TxColumns:
        """Consolidated column arrays over every registered row (all paths).

        Thread-safe for concurrent readers: consolidation of pending chunks
        runs under the store lock (a quiescent, fully consolidated store takes
        the lock-free path).
        """
        if self._row_buffer["sender_id"] or self._chunks:
            with self._lock:
                self._flush_row_buffer()
                if self._chunks:
                    self._consolidated = {
                        name: np.concatenate([self._consolidated[name]]
                                             + [chunk[name] for chunk in self._chunks])
                        for name, _ in _COLUMN_DTYPES}
                    self._chunks = []
        return TxColumns(**self._consolidated)

    # ---------------------------------------------------------------- hashes
    def tx_hash(self, row: int) -> str:
        """The hash of global row ``row`` (explicit if recorded, else derived)."""
        explicit = self._explicit_hash_by_row.get(row)
        return explicit if explicit is not None else _derived_hash(row)

    def row_of_hash(self, tx_hash: str) -> int:
        """The row holding ``tx_hash``; raises :class:`KeyError` when absent."""
        row = self._row_by_explicit_hash.get(tx_hash)
        if row is not None:
            return row
        if (len(tx_hash) == 66 and tx_hash.startswith("0x")):
            try:
                row = int(tx_hash, 16)
            except ValueError:
                row = -1
            # A derived-pattern hash only matches a row that kept its default,
            # and only in its canonical spelling (lowercase, zero-padded) —
            # alternative spellings of the same integer are unknown hashes.
            if (0 <= row < self._num_rows and row not in self._explicit_hash_by_row
                    and tx_hash == _derived_hash(row)):
                return row
        raise KeyError(tx_hash)

    # --------------------------------------------------------- materialising
    def _materialize_from(self, cols: TxColumns, row: int) -> Transaction:
        return Transaction(
            tx_hash=self.tx_hash(row),
            sender=self._addresses[cols.sender_id[row]],
            receiver=self._addresses[cols.receiver_id[row]],
            value=float(cols.value[row]),
            gas_price=float(cols.gas_price[row]),
            gas_used=int(cols.gas_used[row]),
            timestamp=float(cols.timestamp[row]),
            is_contract_call=bool(cols.is_contract_call[row]),
            block_number=int(cols.block_number[row]),
            submitted=bool(cols.submitted[row]),
        )

    def materialize(self, row: int) -> Transaction:
        """Build the :class:`Transaction` object of global row ``row``."""
        return self._materialize_from(self.columns(), row)

    def materialize_rows(self, rows: Sequence[int] | np.ndarray) -> list[Transaction]:
        cols = self.columns()
        return [self._materialize_from(cols, int(row)) for row in rows]

    def iter_transactions(self, include_unsubmitted: bool = False) -> Iterator[Transaction]:
        """Materialise transactions lazily in row (= block) order."""
        cols = self.columns()
        submitted = cols.submitted
        for row in range(self._num_rows):
            if submitted[row] or include_unsubmitted:
                yield self._materialize_from(cols, row)

    # ------------------------------------------------------------- timespans
    def submitted_timespan(self) -> tuple[float, float] | None:
        """Incrementally maintained (min, max) timestamp over submitted rows."""
        if self._submitted_ts_min is None:
            return None
        return (self._submitted_ts_min, self._submitted_ts_max)

    # ---------------------------------------------------- per-address index
    def _build_address_index(self) -> None:
        """(Re)build the CSR per-address row index over the current rows.

        Every row is indexed once under its sender and once under its
        receiver, except self-transfers which are indexed exactly once —
        ``transactions_for`` must not return the same transaction twice.
        """
        cols = self.columns()
        n = self._num_rows
        sender_ids = cols.sender_id
        receiver_ids = cols.receiver_id
        non_self = sender_ids != receiver_ids
        rows = np.arange(n, dtype=np.int64)
        owners = np.concatenate([sender_ids, receiver_ids[non_self]])
        owner_rows = np.concatenate([rows, rows[non_self]])
        order = np.lexsort((owner_rows, owners))
        num_accounts = len(self._addresses)
        counts = np.bincount(owners, minlength=num_accounts)
        indptr = np.zeros(num_accounts + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        self._index_indptr = indptr
        self._index_row_ids = owner_rows[order]
        self._index_key = (n, num_accounts)

    def rows_for_address(self, address: str) -> np.ndarray:
        """Row ids touching ``address`` (sender or receiver), in block order.

        A self-transfer appears exactly once.  Returns an empty array for
        addresses that never transacted.

        Index validity is keyed on ``(num_rows, num_addresses)``: an address
        interned after the index was built (``intern``/``intern_many`` without
        an accompanying row append) widens the indptr on the next query
        instead of indexing past its end.
        """
        account_id = self._addr_to_id.get(address)
        if account_id is None:
            return np.empty(0, dtype=np.int64)
        key = (self._num_rows, len(self._addresses))
        if self._index_key != key:
            # Double-checked: _build_address_index assigns _index_key last,
            # so the lock-free hit above only sees a fully built index.
            with self._lock:
                if self._index_key != (self._num_rows, len(self._addresses)):
                    self._build_address_index()
        start = self._index_indptr[account_id]
        stop = self._index_indptr[account_id + 1]
        return self._index_row_ids[start:stop]
