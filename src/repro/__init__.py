"""DBG4ETH reproduction: double graph inference-based account de-anonymization.

Top-level convenience imports::

    from repro import DBG4ETH, generate_ledger, SubgraphDatasetBuilder

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record of every reproduced table and figure.
"""

from repro.api import DeAnonymizer, UnknownAddressError
from repro.chain import LedgerConfig, generate_ledger, AccountCategory
from repro.core import DBG4ETH, DBG4ETHConfig
from repro.data import DatasetConfig, SubgraphDataset, SubgraphDatasetBuilder

__version__ = "1.1.0"

__all__ = [
    "DeAnonymizer",
    "UnknownAddressError",
    "DBG4ETH",
    "DBG4ETHConfig",
    "LedgerConfig",
    "generate_ledger",
    "AccountCategory",
    "DatasetConfig",
    "SubgraphDataset",
    "SubgraphDatasetBuilder",
    "__version__",
]
