"""npz+json state persistence for fitted models.

A *state* is the nested structure returned by the ``get_state()`` methods
threaded through the model stack: dicts with string keys, lists/tuples,
scalars (int/float/bool/str/None) and numpy arrays.  :func:`save_state`
splits it into two files inside a model directory —

* ``state.json`` — the structure itself, with every numpy array replaced by a
  ``{"__ndarray__": "arr_<i>"}`` placeholder (and tuples tagged so they
  round-trip as tuples);
* ``arrays.npz`` — the array payloads, keyed by placeholder name.

Arrays round-trip bit-for-bit (npz stores raw dtype bytes) and JSON floats
round-trip exactly (``json`` emits ``repr``-style shortest representations),
so a model restored with :func:`load_state` reproduces its predictions
bit-for-bit.  The split keeps the manifest human-readable — configs, class
names and calibration weights can be inspected with any text editor — while
the weight tensors stay binary.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import numpy as np

__all__ = ["save_state", "load_state", "dumps_state", "loads_state",
           "StateFormatError"]

_ARRAY_TAG = "__ndarray__"
_TUPLE_TAG = "__tuple__"
STATE_FILE = "state.json"
ARRAYS_FILE = "arrays.npz"

#: Bumped whenever the on-disk layout changes incompatibly.
FORMAT_VERSION = 1


class StateFormatError(ValueError):
    """Raised when a model directory does not hold a readable state."""


def _encode(value, arrays: dict[str, np.ndarray]):
    """Recursively convert ``value`` into a json-able tree, extracting arrays."""
    if isinstance(value, np.ndarray):
        key = f"arr_{len(arrays)}"
        arrays[key] = value
        return {_ARRAY_TAG: key}
    if isinstance(value, np.generic):          # numpy scalar -> python scalar
        return value.item()
    if isinstance(value, dict):
        encoded = {}
        for k, v in value.items():
            if not isinstance(k, str):
                raise StateFormatError(f"state dict keys must be strings, got {k!r}")
            if k in (_ARRAY_TAG, _TUPLE_TAG):
                raise StateFormatError(f"state dict key {k!r} collides with a tag")
            encoded[k] = _encode(v, arrays)
        return encoded
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [_encode(v, arrays) for v in value]}
    if isinstance(value, list):
        return [_encode(v, arrays) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise StateFormatError(f"cannot serialize value of type {type(value).__name__}")


def _decode(value, arrays):
    if isinstance(value, dict):
        if set(value) == {_ARRAY_TAG}:
            return arrays[value[_ARRAY_TAG]]
        if set(value) == {_TUPLE_TAG}:
            return tuple(_decode(v, arrays) for v in value[_TUPLE_TAG])
        return {k: _decode(v, arrays) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode(v, arrays) for v in value]
    return value


def save_state(path: str | Path, state: dict) -> Path:
    """Write ``state`` into directory ``path`` as ``state.json`` + ``arrays.npz``.

    The directory is created if needed; existing state files are overwritten.
    Returns the directory path.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    arrays: dict[str, np.ndarray] = {}
    document = {"format_version": FORMAT_VERSION, "state": _encode(state, arrays)}
    (path / STATE_FILE).write_text(json.dumps(document, indent=2, sort_keys=False))
    with open(path / ARRAYS_FILE, "wb") as handle:
        np.savez(handle, **arrays)
    return path


def dumps_state(state: dict) -> bytes:
    """Serialize ``state`` to one in-memory blob (same payload as :func:`save_state`).

    Layout: an 8-byte big-endian manifest length, the ``state.json`` document
    bytes, then the ``arrays.npz`` bytes.  The blob is what :func:`loads_state`
    reads back bit-for-bit — the transport for shipping a fitted model to
    process-pool workers (or over a wire) without touching the filesystem.
    """
    arrays: dict[str, np.ndarray] = {}
    document = {"format_version": FORMAT_VERSION, "state": _encode(state, arrays)}
    manifest = json.dumps(document, sort_keys=False).encode("utf-8")
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return len(manifest).to_bytes(8, "big") + manifest + buffer.getvalue()


def loads_state(blob: bytes) -> dict:
    """Read a state previously serialized by :func:`dumps_state`."""
    if len(blob) < 8:
        raise StateFormatError("state blob is truncated (missing manifest length)")
    manifest_len = int.from_bytes(blob[:8], "big")
    if len(blob) < 8 + manifest_len:
        raise StateFormatError("state blob is truncated (manifest shorter than declared)")
    document = json.loads(blob[8:8 + manifest_len].decode("utf-8"))
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise StateFormatError(
            f"unsupported state format version {version!r} (this build reads {FORMAT_VERSION})")
    with np.load(io.BytesIO(blob[8 + manifest_len:])) as payload:
        arrays = {key: payload[key] for key in payload.files}
    return _decode(document["state"], arrays)


def load_state(path: str | Path) -> dict:
    """Read a state previously written by :func:`save_state`."""
    path = Path(path)
    state_file = path / STATE_FILE
    arrays_file = path / ARRAYS_FILE
    if not state_file.exists() or not arrays_file.exists():
        raise StateFormatError(
            f"{path} is not a model directory (expected {STATE_FILE} and {ARRAYS_FILE})")
    document = json.loads(state_file.read_text())
    version = document.get("format_version")
    if version != FORMAT_VERSION:
        raise StateFormatError(
            f"unsupported state format version {version!r} (this build reads {FORMAT_VERSION})")
    with np.load(arrays_file) as payload:
        arrays = {key: payload[key] for key in payload.files}
    return _decode(document["state"], arrays)
