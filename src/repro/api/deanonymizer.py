"""Address-in, prediction-out: the serving facade over the DBG4ETH pipeline.

:class:`DeAnonymizer` owns the full paper pipeline behind a two-call surface —
``fit()`` then ``score(addresses)``:

* **construction** from a :class:`~repro.chain.ledger.Ledger` (the facade
  builds the global transaction graph, the feature extractor and the subgraph
  dataset itself) or, via :meth:`from_dataset`, from an already-built
  :class:`~repro.data.dataset.SubgraphDataset`;
* **training** of one one-vs-rest DBG4ETH head per account category;
* **serving**: ``score(addresses)`` goes end-to-end — on-demand 2-hop ego
  sampling, single-pass feature extraction, cached-CSR branch encoding,
  calibration and classification — for raw addresses the model has never seen;
* **persistence**: ``save(path)`` / ``DeAnonymizer.load(path, ledger)`` write
  and restore every head bit-for-bit (npz weights + json manifest).

Batched execution: a request for N addresses samples and featurizes each
address exactly once; the resulting :class:`AccountSubgraph` objects (and the
CSR adjacency / time-slice caches memoized on them) are then shared by every
category head, so per-head inference costs only the branch forward passes.

Ledger path: the facade reads the attached ledger through its columnar
transaction store — the global graph is ingested with the vectorised
``TxGraph.add_edges_bulk`` path and the feature extractor's single-pass table
is computed straight from the column arrays — so construction over
million-transaction ledgers stays tractable.  :meth:`DeAnonymizer.stats`
exposes the O(1) ledger counters alongside serving-cache state for
monitoring endpoints.
"""

from __future__ import annotations

import threading
import time

from collections import OrderedDict
from dataclasses import asdict
from pathlib import Path
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.api.metrics import ServingMetrics
from repro.api.persistence import load_state, save_state
from repro.chain.labelcloud import AccountCategory
from repro.chain.ledger import Ledger
from repro.core.model import DBG4ETH, DBG4ETHConfig
from repro.data.dataset import (
    AccountSubgraph,
    DatasetConfig,
    SubgraphDataset,
    SubgraphDatasetBuilder,
)

__all__ = ["DeAnonymizer", "UnknownAddressError"]


class UnknownAddressError(KeyError):
    """Raised when addresses cannot be sampled from the transaction graph.

    Carries every offending address of a batched request: ``addresses`` is
    the full tuple (request order), ``address`` the first one (back-compat
    with the single-address form).  Batched :meth:`DeAnonymizer.score` raises
    one aggregated instance instead of failing on the first unknown address —
    callers see the complete rejection list in a single round trip (or pass
    ``skip_unknown=True`` for partial results).
    """

    def __init__(self, addresses: str | Sequence[str]):
        if isinstance(addresses, str):
            addresses = (addresses,)
        self.addresses = tuple(addresses)
        if not self.addresses:
            raise ValueError("UnknownAddressError needs at least one address")
        self.address = self.addresses[0]
        if len(self.addresses) == 1:
            message = (
                f"address {self.address!r} has no submitted transactions in the "
                f"ledger's transaction graph, so no account subgraph can be "
                f"sampled for it")
        else:
            listed = ", ".join(repr(a) for a in self.addresses)
            message = (
                f"{len(self.addresses)} addresses have no submitted transactions "
                f"in the ledger's transaction graph, so no account subgraphs can "
                f"be sampled for them: {listed}")
        super().__init__(message)

    def __str__(self) -> str:  # KeyError would repr() the message
        return self.args[0]


def _category_name(category) -> str:
    """Normalise a category argument (enum, known string or free-form string)."""
    try:
        return AccountCategory(category).value
    except ValueError:
        return str(category)


class DeAnonymizer:
    """Serving-grade facade: fit one-vs-rest heads, score raw addresses.

    Usage::

        deanon = DeAnonymizer(ledger)
        deanon.fit(["exchange", "phish/hack"])
        deanon.score(["0xabc...", "0xdef..."])
        # {'0xabc...': {'exchange': 0.93, 'phish/hack': 0.04}, ...}
        deanon.save("model_dir")
        served = DeAnonymizer.load("model_dir", ledger)

    ``model_config`` may be a :class:`DBG4ETHConfig` (shared by every head) or
    a zero-argument factory returning one (a fresh config per head).

    ``sample_cache_size`` bounds the subgraph sample cache: ``None`` (the
    default) keeps every sample forever — the right call for small ledgers and
    batch experiments — while a positive integer turns the cache into an LRU,
    so a long-running server over a large address space holds at most that
    many subgraphs in memory.  Hit/miss/eviction counts appear in
    :meth:`stats`.
    """

    def __init__(self, ledger: Ledger | None = None,
                 dataset_config: DatasetConfig | None = None,
                 model_config: DBG4ETHConfig | Callable[[], DBG4ETHConfig] | None = None,
                 seed: int = 0, sample_cache_size: int | None = None):
        if sample_cache_size is not None and sample_cache_size < 1:
            raise ValueError("sample_cache_size must be a positive integer or None")
        self.ledger = ledger
        self.dataset_config = dataset_config or DatasetConfig()
        self.model_config = model_config
        self.seed = seed
        self.sample_cache_size = sample_cache_size
        self._builder: SubgraphDatasetBuilder | None = None
        self._dataset: SubgraphDataset | None = None
        self._heads: dict[str, DBG4ETH] = {}
        self._samples: OrderedDict[str, AccountSubgraph] = OrderedDict()
        # Reentrant: sample_for() may be re-entered through the builder while
        # the dataset property seeds the cache under the same lock.
        self._sample_lock = threading.RLock()
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evictions = 0
        self._cache_invalidations = 0
        # Follow-the-chain epoch: the ledger data_version this facade has
        # reconciled its caches against (see refresh()).
        self._seen_data_version = ledger.data_version if ledger is not None else None
        self._seen_rows = ledger.num_transactions if ledger is not None else 0
        #: Shared serving metrics hook: score() records per-stage timings and
        #: batch sizes here, and the parallel scorer / asyncio service layers
        #: record their fan-out and queue-wait observations into the same
        #: registry, so ``stats()`` is the one monitoring surface.
        self.metrics = ServingMetrics()

    # ---------------------------------------------------------- constructors
    @classmethod
    def from_dataset(cls, dataset: SubgraphDataset, ledger: Ledger | None = None,
                     dataset_config: DatasetConfig | None = None,
                     model_config: DBG4ETHConfig | Callable[[], DBG4ETHConfig] | None = None,
                     seed: int = 0, sample_cache_size: int | None = None) -> "DeAnonymizer":
        """Wrap an already-built dataset (its samples seed the serving cache).

        Pass the ledger as well if addresses beyond the dataset's centre
        accounts should be scorable — and then ``dataset_config`` is required,
        because on-demand samples must be drawn with the same sampling
        parameters the dataset was built with (a silent default would hand the
        heads out-of-distribution subgraphs).
        """
        if ledger is not None and dataset_config is None:
            raise ValueError(
                "from_dataset() with a ledger requires the dataset_config the "
                "dataset was built with, so on-demand samples match the training "
                "distribution")
        instance = cls(ledger=ledger, dataset_config=dataset_config,
                       model_config=model_config, seed=seed,
                       sample_cache_size=sample_cache_size)
        instance._dataset = dataset
        instance._samples = OrderedDict((sample.center, sample) for sample in dataset)
        return instance

    def attach_ledger(self, ledger: Ledger) -> "DeAnonymizer":
        """Attach (or replace) the ledger used for on-demand subgraph sampling.

        Cached subgraphs and the training dataset belong to the previous
        ledger, so they are dropped along with the builder.
        """
        self.ledger = ledger
        self._builder = None
        self._dataset = None
        self._samples = OrderedDict()
        self._seen_data_version = ledger.data_version
        self._seen_rows = ledger.num_transactions
        return self

    # -------------------------------------------------------------- plumbing
    @property
    def builder(self) -> SubgraphDatasetBuilder:
        """The sampling/feature pipeline over the attached ledger."""
        builder = self._builder
        if builder is None:
            if self.ledger is None:
                raise RuntimeError(
                    "this DeAnonymizer has no ledger attached; construct it with a "
                    "ledger, or call attach_ledger() after load()")
            with self._sample_lock:
                builder = self._builder
                if builder is None:
                    builder = SubgraphDatasetBuilder(self.ledger, self.dataset_config)
                    self._builder = builder
        return builder

    @property
    def dataset(self) -> SubgraphDataset:
        """The training dataset (built from the ledger on first use)."""
        if self._dataset is None:
            dataset = self.builder.build()
            with self._sample_lock:
                for sample in dataset:
                    self._samples.setdefault(sample.center, sample)
            self._dataset = dataset
        return self._dataset

    @property
    def categories(self) -> list[str]:
        """The categories with a fitted head, sorted."""
        return sorted(self._heads)

    def _head_config(self) -> DBG4ETHConfig:
        if self.model_config is None:
            return DBG4ETHConfig()
        if callable(self.model_config):
            return self.model_config()
        return self.model_config

    def _check_fitted(self) -> None:
        if not self._heads:
            raise RuntimeError("DeAnonymizer has no fitted heads; call fit() first")

    # -------------------------------------------------------------- training
    def fit(self, categories: Iterable | None = None) -> "DeAnonymizer":
        """Train one one-vs-rest head per category (all dataset categories by default)."""
        names = ([_category_name(c) for c in categories] if categories is not None
                 else self.dataset.categories())
        if not names:
            raise ValueError("no categories to fit")
        for name in names:
            self.fit_category(name)
        return self

    def fit_category(self, category, samples: Sequence[AccountSubgraph] | None = None,
                     labels=None) -> "DeAnonymizer":
        """Train a single head.

        Without explicit ``samples``/``labels`` the head trains on the
        dataset's balanced one-vs-rest task for ``category``; with them (the
        experiment-runner path) the dataset is not touched at all.
        """
        name = _category_name(category)
        if samples is None:
            samples, labels = self.dataset.binary_task(
                name, rng=np.random.default_rng(self.seed))
        elif labels is None:
            raise ValueError("labels are required when samples are given")
        head = DBG4ETH(self._head_config())
        head.fit(list(samples), labels)
        self._heads[name] = head
        return self

    def head(self, category) -> DBG4ETH:
        """The fitted head for ``category`` (raises KeyError if not fitted)."""
        name = _category_name(category)
        if name not in self._heads:
            raise KeyError(
                f"no fitted head for category {name!r}; fitted: {self.categories}")
        return self._heads[name]

    # --------------------------------------------------------------- serving
    def refresh(self) -> list[str]:
        """Reconcile every cache with ledger growth; returns touched addresses.

        O(1) when the ledger has not grown (a single ``data_version``
        comparison — :meth:`score` and :meth:`sample_for` call this on every
        request).  When it has, the appended rows are folded in incrementally:

        * the cached global graph ingests the new rows
          (:meth:`TxGraph.ingest <repro.graph.txgraph.TxGraph.ingest>` —
          bit-identical to a cold rebuild, O(new rows));
        * the extractor's per-account feature table refreshes itself lazily on
          next use (only touched accounts' rows are recomputed);
        * cached subgraph samples of accounts touched by the new transactions
          are evicted, so their next score is sampled fresh.

        Untouched accounts keep their cached samples.  Note the documented
        approximation: a cached sample whose *neighbourhood* (but not the
        account itself) gained transactions is served unchanged until it is
        evicted by LRU pressure, touched later, or dropped via
        :meth:`clear_sample_cache`.

        Follows the graph write contract — must not run concurrently with
        in-flight scoring threads; a frozen graph raises ``RuntimeError``
        (freeze() declares the topology immutable; use ``warm()`` without
        freezing for follow-the-chain serving).
        """
        ledger = self.ledger
        if ledger is None or ledger.data_version == self._seen_data_version:
            return []
        with self._sample_lock:
            if ledger.data_version == self._seen_data_version:
                return []
            if self._builder is not None:
                self._builder.refresh()
            cols = ledger.tx_columns()
            old_rows = self._seen_rows
            new_submitted = cols.submitted[old_rows:]
            touched_ids = np.unique(np.concatenate([
                cols.sender_id[old_rows:][new_submitted],
                cols.receiver_id[old_rows:][new_submitted]]))
            addresses = ledger.store.addresses
            touched = [addresses[i] for i in touched_ids.tolist()]
            for address in touched:
                if self._samples.pop(address, None) is not None:
                    self._cache_invalidations += 1
            self._seen_rows = len(cols.sender_id)
            self._seen_data_version = ledger.data_version
            self.metrics.increment("refresh.calls")
            self.metrics.increment("refresh.touched", len(touched))
            return touched

    def warm(self, freeze: bool = False) -> "DeAnonymizer":
        """Eagerly build every shared structure the scoring path reads.

        Builds the global transaction graph with its lazy indexes and CSR
        memos, plus the extractor's single-pass feature table, so a pool of
        concurrent scoring threads never contends on a first-build lock.
        ``freeze=True`` additionally seals the graph against mutation
        (:meth:`TxGraph.freeze <repro.graph.txgraph.TxGraph.freeze>`), the
        recommended setting for a dedicated serving process.
        """
        self.refresh()                      # never warm (or seal) a stale graph
        with self.metrics.timed("warm"):
            self.builder.warm(freeze=freeze)
        return self

    def sample_for(self, address: str) -> AccountSubgraph:
        """The account subgraph for ``address`` (sampled once, then cached).

        The cache is an LRU when ``sample_cache_size`` is set (least recently
        *served* sample evicted first) and unbounded otherwise.  Cache lookups
        are thread-safe; the expensive sampling itself runs outside the lock,
        so concurrent misses on *different* addresses proceed in parallel
        (two racing misses on the same address both sample, and the first
        writer's deterministic result is kept — identical to the loser's).

        Raises :class:`UnknownAddressError` when the address has no presence in
        the transaction graph (never transacted, or all its transactions were
        filtered out).
        """
        self.refresh()
        with self._sample_lock:
            sample = self._samples.get(address)
            if sample is not None:
                self._cache_hits += 1
                if self.sample_cache_size is not None:
                    self._samples.move_to_end(address)
                return sample
            self._cache_misses += 1
        builder = self.builder
        if address not in builder.graph:
            raise UnknownAddressError(address)
        sample = builder.build_sample(address)
        with self._sample_lock:
            kept = self._samples.setdefault(address, sample)
            if self.sample_cache_size is not None:
                self._samples.move_to_end(address)
                while len(self._samples) > self.sample_cache_size:
                    self._samples.popitem(last=False)
                    self._cache_evictions += 1
        return kept

    def clear_sample_cache(self) -> None:
        """Drop every cached subgraph sample (e.g. to bound server memory)."""
        with self._sample_lock:
            self._samples.clear()

    def score(self, addresses: str | Sequence[str],
              skip_unknown: bool = False) -> dict[str, dict[str, float]]:
        """Per-category probabilities for raw addresses, end-to-end and batched.

        Sampling and feature extraction run once per distinct address; every
        head then scores the same cached subgraph objects, reusing their
        memoized CSR adjacency and time-slice normalisations.
        Returns ``{address: {category: probability}}``.

        Addresses that cannot be sampled are collected across the whole batch
        and raised as **one** aggregated :class:`UnknownAddressError` (its
        ``addresses`` tuple lists every offender) — a batch never fails on
        just the first bad address.  With ``skip_unknown=True`` they are
        silently omitted from the result instead (the partial-result escape
        hatch for best-effort serving).
        """
        self._check_fitted()
        self.refresh()
        if isinstance(addresses, str):
            addresses = [addresses]
        addresses = list(addresses)
        unique = list(dict.fromkeys(addresses))
        t0 = time.perf_counter()
        samples: dict[str, AccountSubgraph] = {}
        unknown: list[str] = []
        for address in unique:
            try:
                samples[address] = self.sample_for(address)
            except UnknownAddressError:
                unknown.append(address)
        if unknown and not skip_unknown:
            raise UnknownAddressError(unknown)
        known = [address for address in unique if address in samples]
        sample_list = [samples[address] for address in known]
        t1 = time.perf_counter()
        per_head = {name: head.predict_proba(sample_list)
                    for name, head in self._heads.items()} if known else {}
        metrics = self.metrics
        metrics.record_seconds("score.sample", t1 - t0)
        metrics.record_seconds("score.heads", time.perf_counter() - t1)
        metrics.record_value("score.batch_size", len(unique))
        metrics.increment("score.calls")
        metrics.increment("score.addresses", len(addresses))
        metrics.increment("score.unknown", len(unknown))
        index = {address: i for i, address in enumerate(known)}
        return {address: {name: float(per_head[name][index[address]])
                          for name in self._heads}
                for address in addresses if address in samples}

    def score_all(self) -> dict[str, dict[str, float]]:
        """Score every account in the transaction graph (or, without a ledger,
        every cached dataset sample)."""
        self._check_fitted()
        self.refresh()                      # new accounts become scorable too
        if self.ledger is not None:
            addresses = list(self.builder.graph.nodes)
        else:
            addresses = list(self._samples)
        return self.score(addresses)

    def stats(self) -> dict:
        """Serving statistics for monitoring endpoints (cheap to call).

        Every ledger-level counter is O(1) against the columnar store
        (row/account counts, the incrementally maintained submitted-tx
        timespan); graph statistics appear once the global transaction graph
        has been built and are ``None`` before then, so calling ``stats()``
        never forces the expensive build.
        """
        ledger_stats = None
        if self.ledger is not None:
            low, high = self.ledger.timespan()
            ledger_stats = {
                "num_transactions": self.ledger.num_transactions,
                "num_accounts": self.ledger.num_accounts,
                "num_blocks": self.ledger.num_blocks,
                "timespan": (low, high),
            }
        graph = self._builder.graph_if_built() if self._builder is not None else None
        with self._sample_lock:
            cache_stats = {
                "size": len(self._samples),
                "max_size": self.sample_cache_size,
                "hits": self._cache_hits,
                "misses": self._cache_misses,
                "evictions": self._cache_evictions,
                "invalidations": self._cache_invalidations,
            }
        return {
            "ledger": ledger_stats,
            "graph": (None if graph is None
                      else {"num_nodes": graph.num_nodes, "num_edges": graph.num_edges}),
            "fitted_heads": self.categories,
            "cached_samples": cache_stats["size"],
            "dataset_built": self._dataset is not None,
            "serving": {"sample_cache": cache_stats, **self.metrics.snapshot()},
        }

    def predict(self, addresses: str | Sequence[str],
                threshold: float = 0.5) -> dict[str, str | None]:
        """The most probable category per address, or ``None`` below ``threshold``."""
        scores = self.score(addresses)
        predictions: dict[str, str | None] = {}
        for address, per_category in scores.items():
            best = max(per_category, key=per_category.get)
            predictions[address] = best if per_category[best] >= threshold else None
        return predictions

    # ----------------------------------------------------- sample-level API
    def score_samples(self, samples: Sequence[AccountSubgraph],
                      category=None) -> np.ndarray | dict[str, np.ndarray]:
        """Head probabilities for pre-built subgraph samples.

        With ``category`` returns that head's ``(n,)`` probability array;
        without it, a ``{category: probabilities}`` dict over all heads.
        """
        self._check_fitted()
        samples = list(samples)
        if category is not None:
            return self.head(category).predict_proba(samples)
        return {name: head.predict_proba(samples) for name, head in self._heads.items()}

    def predict_samples(self, category, samples: Sequence[AccountSubgraph]) -> np.ndarray:
        """Binary one-vs-rest predictions of one head for pre-built samples."""
        self._check_fitted()
        return self.head(category).predict(list(samples))

    # ------------------------------------------------------------ persistence
    def get_state(self) -> dict:
        """The persistable state: sampling config + every head's full state."""
        self._check_fitted()
        return {
            "kind": "DeAnonymizer",
            "seed": int(self.seed),
            "dataset_config": asdict(self.dataset_config),
            "heads": {name: head.get_state() for name, head in self._heads.items()},
        }

    def set_state(self, state: dict) -> "DeAnonymizer":
        """Restore fitted heads and sampling config from :meth:`get_state` output."""
        if state.get("kind") != "DeAnonymizer":
            raise ValueError(f"state is not a DeAnonymizer state (kind={state.get('kind')!r})")
        self.seed = int(state["seed"])
        self.dataset_config = DatasetConfig(**state["dataset_config"])
        # Subgraphs sampled under the previous dataset_config (or for previous
        # heads) must not be served to the restored model.
        self._builder = None
        self._dataset = None
        self._samples = OrderedDict()
        if self.ledger is not None:
            self._seen_data_version = self.ledger.data_version
            self._seen_rows = self.ledger.num_transactions
        self._heads = {name: DBG4ETH.from_state(head_state)
                       for name, head_state in state["heads"].items()}
        return self

    def save(self, path: str | Path) -> Path:
        """Persist the fitted model to ``path`` (a directory; npz + json)."""
        return save_state(path, self.get_state())

    @classmethod
    def load(cls, path: str | Path, ledger: Ledger | None = None) -> "DeAnonymizer":
        """Restore a model saved with :meth:`save`.

        Scoring raw addresses needs a ledger — pass it here or call
        :meth:`attach_ledger` later (e.g. once the serving process has its own
        chain connection).
        """
        instance = cls(ledger=ledger)
        instance.set_state(load_state(path))
        return instance
