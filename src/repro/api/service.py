"""Asyncio front-end: request coalescing over the batched scoring path.

:class:`ScoringService` turns the batch-oriented scorer into a low-latency
concurrent endpoint.  Callers ``await service.score(address)`` one address at
a time; a single batcher task collects requests that arrive within a short
window (``batch_window`` seconds, up to ``max_batch`` addresses) and
dispatches them as **one** batched ``score()`` call on a worker thread.  The
batch path samples each distinct address once and runs every category head
over the assembled sample list, so N coalesced callers cost far less than N
independent single-address calls — the same economics that make
:meth:`DeAnonymizer.score <repro.api.DeAnonymizer.score>` fast, surfaced to
async callers transparently.

Failure isolation is per-request: the batch is dispatched with
``skip_unknown=True``, and each caller whose address could not be sampled
gets its own :class:`~repro.api.UnknownAddressError` — one bad address never
fails the batch for everyone else.  Batch-wide failures (a crashed head, a
detached ledger) propagate to every caller in that batch.  The intake queue
is bounded (``max_queue``), so a stalled backend applies backpressure to
producers instead of buffering unboundedly; per-call ``timeout`` turns that
backpressure into a caller-visible :class:`asyncio.TimeoutError`.

The service accepts anything with the facade's scoring surface — a
:class:`~repro.api.DeAnonymizer` directly, or a
:class:`~repro.api.scorer.ParallelScorer` to layer fan-out *under* the
coalescer (coalescing amortises fixed per-call cost; fan-out then splits the
coalesced batch across workers).
"""

from __future__ import annotations

import asyncio
import time

from typing import Sequence

from repro.api.deanonymizer import DeAnonymizer, UnknownAddressError
from repro.api.metrics import ServingMetrics
from repro.api.scorer import ParallelScorer

__all__ = ["ScoringService"]


class _Request:
    """One queued address with its caller's future and enqueue timestamp."""

    __slots__ = ("address", "future", "enqueued_at")

    def __init__(self, address: str, future: asyncio.Future):
        self.address = address
        self.future = future
        self.enqueued_at = time.perf_counter()


class ScoringService:
    """Asyncio micro-batching front-end over a scorer.

    Usage::

        service = ScoringService(deanon, batch_window=0.005, max_batch=64)
        async with service:
            probs = await service.score("0xabc...")       # {category: p}
            many = await service.score_many(addresses)    # [{category: p}, ...]

    Parameters
    ----------
    scorer:
        A fitted :class:`~repro.api.DeAnonymizer` or
        :class:`~repro.api.scorer.ParallelScorer`.
    batch_window:
        Seconds the batcher waits after the first request for more to
        coalesce.  ``0`` still batches whatever is already queued (drain-only
        coalescing) without adding latency.
    max_batch:
        Hard cap on addresses per dispatched batch.
    max_queue:
        Intake queue bound; when full, ``score()`` awaits (backpressure).
    """

    def __init__(self, scorer: DeAnonymizer | ParallelScorer,
                 batch_window: float = 0.005, max_batch: int = 64,
                 max_queue: int = 1024):
        if batch_window < 0:
            raise ValueError("batch_window must be >= 0 seconds")
        if max_batch < 1:
            raise ValueError("max_batch must be a positive integer")
        if max_queue < 1:
            raise ValueError("max_queue must be a positive integer")
        self.scorer = scorer
        self.batch_window = batch_window
        self.max_batch = max_batch
        self.max_queue = max_queue
        self._queue: asyncio.Queue[_Request] | None = None
        self._batcher: asyncio.Task | None = None
        self._closed = False

    @property
    def metrics(self) -> ServingMetrics:
        """The underlying facade's metrics registry (``service.*`` stages)."""
        deanon = getattr(self.scorer, "deanonymizer", self.scorer)
        return deanon.metrics

    # ------------------------------------------------------------- lifecycle
    async def start(self) -> "ScoringService":
        """Start the batcher task (idempotent; bound to the running loop)."""
        if self._batcher is None:
            self._closed = False
            self._queue = asyncio.Queue(maxsize=self.max_queue)
            self._batcher = asyncio.get_running_loop().create_task(
                self._batch_loop(), name="repro-scoring-batcher")
        return self

    async def stop(self) -> None:
        """Drain nothing further: reject new requests, cancel the batcher.

        Requests already dispatched to the backend complete; requests still
        queued get :class:`asyncio.CancelledError` on their futures.
        """
        self._closed = True
        batcher, self._batcher = self._batcher, None
        queue, self._queue = self._queue, None
        if batcher is not None:
            batcher.cancel()
            try:
                await batcher
            except asyncio.CancelledError:
                pass
        if queue is not None:
            while not queue.empty():
                request = queue.get_nowait()
                if not request.future.done():
                    request.future.cancel()

    async def __aenter__(self) -> "ScoringService":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # --------------------------------------------------------------- scoring
    async def score(self, address: str,
                    timeout: float | None = None) -> dict[str, float]:
        """Score one address; coalesced with concurrent callers.

        Returns that address's ``{category: probability}`` dict.  Raises
        :class:`~repro.api.UnknownAddressError` if the address cannot be
        sampled (other callers in the same batch are unaffected), and
        :class:`asyncio.TimeoutError` if ``timeout`` seconds elapse before a
        result — the request is abandoned (its batch slot still runs, but the
        result is discarded).
        """
        if self._closed or self._queue is None:
            raise RuntimeError(
                "ScoringService is not running; use 'async with service:' or "
                "await service.start()")
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        request = _Request(address, future)
        await self._queue.put(request)
        if timeout is None:
            return await future
        try:
            return await asyncio.wait_for(future, timeout)
        finally:
            # wait_for cancelled the future on timeout; nothing to clean up —
            # the batcher skips requests whose futures are already done.
            pass

    async def score_many(self, addresses: Sequence[str],
                         timeout: float | None = None) -> list[dict[str, float]]:
        """Score several addresses concurrently (one result per input, in order).

        Unknown addresses surface as :class:`~repro.api.UnknownAddressError`
        *instances* in the returned list rather than raising, so one bad
        address never hides the others' results.
        """
        return await asyncio.gather(
            *(self.score(address, timeout=timeout) for address in addresses),
            return_exceptions=True)

    # --------------------------------------------------------------- batcher
    async def _batch_loop(self) -> None:
        assert self._queue is not None
        queue = self._queue
        loop = asyncio.get_running_loop()
        while True:
            batch = [await queue.get()]
            deadline = loop.time() + self.batch_window
            while len(batch) < self.max_batch:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    # Window elapsed: drain whatever is already queued, for
                    # free, then dispatch.
                    while len(batch) < self.max_batch and not queue.empty():
                        batch.append(queue.get_nowait())
                    break
                try:
                    batch.append(await asyncio.wait_for(queue.get(), remaining))
                except asyncio.TimeoutError:
                    break
            await self._dispatch(loop, batch)

    async def _dispatch(self, loop: asyncio.AbstractEventLoop,
                        batch: list[_Request]) -> None:
        now = time.perf_counter()
        metrics = self.metrics
        live = [request for request in batch if not request.future.done()]
        for request in live:
            metrics.record_seconds("service.queue_wait", now - request.enqueued_at)
        metrics.record_value("service.batch_size", len(live))
        metrics.increment("service.batches")
        metrics.increment("service.requests", len(live))
        if not live:
            return
        addresses = list(dict.fromkeys(request.address for request in live))
        try:
            results = await loop.run_in_executor(
                None, lambda: self.scorer.score(addresses, skip_unknown=True))
        except asyncio.CancelledError:           # service stopping mid-batch
            for request in live:
                if not request.future.done():
                    request.future.cancel()
            raise                                # let the batcher task die
        except BaseException as exc:             # batch-wide failure: everyone
            for request in live:
                if not request.future.done():
                    request.future.set_exception(exc)
            return
        for request in live:
            if request.future.done():            # timed out / cancelled caller
                continue
            result = results.get(request.address)
            if result is None:
                request.future.set_exception(UnknownAddressError(request.address))
            else:
                request.future.set_result(result)
