"""Parallel fan-out scoring over a fitted :class:`~repro.api.DeAnonymizer`.

:class:`ParallelScorer` accelerates the expensive half of the serving path —
per-address 2-hop ego sampling plus feature extraction — by fanning address
chunks across a ``concurrent.futures`` pool, then scoring the assembled batch
through every fitted head.  Two execution modes:

* ``mode="thread"`` (default): worker threads call
  :meth:`DeAnonymizer.sample_for <repro.api.DeAnonymizer.sample_for>` on the
  *shared* facade.  The thread-safety groundwork in the graph / feature /
  cache layers (double-checked locking everywhere a lazy structure is built,
  plus the :meth:`~repro.api.DeAnonymizer.warm` pre-build) makes this safe;
  head inference then runs once in the calling thread over the full batch, so
  results are bit-identical to sequential :meth:`DeAnonymizer.score
  <repro.api.DeAnonymizer.score>`.  Threads buy real wall-time on the
  allocation-heavy sampling path and keep one shared sample cache, but remain
  GIL-bound for pure-Python segments.
* ``mode="process"``: each worker process rehydrates its **own** scorer from
  the fitted model's in-memory state blob
  (:func:`~repro.api.persistence.dumps_state` /
  :func:`~repro.api.persistence.loads_state`) plus a pickled ledger, then
  scores its chunk end-to-end and ships plain float dicts back.  This
  sidesteps the GIL entirely at the cost of per-worker memory and a one-time
  rehydration; it is bit-identical to sequential scoring because every stage
  of the DBG4ETH predict path (sampling, featurization, branch encodings,
  calibration, classification) is computed independently per sample.

Both modes preserve the facade's batch semantics: unknown addresses are
aggregated across the whole request into one
:class:`~repro.api.UnknownAddressError`, or silently skipped with
``skip_unknown=True``.
"""

from __future__ import annotations

import os
import time

from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from typing import Sequence

from repro.api.deanonymizer import DeAnonymizer, UnknownAddressError
from repro.api.persistence import dumps_state, loads_state

__all__ = ["ParallelScorer"]

#: Per-process rehydrated scorer (set once by the pool initializer).
_WORKER_DEANON: DeAnonymizer | None = None


def _init_process_worker(state_blob: bytes, ledger) -> None:
    """Process-pool initializer: rebuild a full scorer inside the worker."""
    global _WORKER_DEANON
    deanon = DeAnonymizer(ledger=ledger)
    deanon.set_state(loads_state(state_blob))
    _WORKER_DEANON = deanon


def _score_chunk_in_worker(addresses: list[str]) -> tuple[dict, list[str]]:
    """Score one chunk end-to-end in a worker process.

    Returns ``(results, unknown)`` — plain ``{address: {category: float}}``
    dicts plus the addresses the worker could not sample — so the parent can
    merge chunks and apply its own unknown-address policy.
    """
    assert _WORKER_DEANON is not None, "worker pool initializer did not run"
    results = _WORKER_DEANON.score(addresses, skip_unknown=True)
    unknown = [address for address in addresses if address not in results]
    return results, unknown


def _chunked(items: list, size: int) -> list[list]:
    return [items[i:i + size] for i in range(0, len(items), size)]


class ParallelScorer:
    """Fan per-address sampling/scoring across a worker pool.

    Usage::

        deanon = DeAnonymizer(ledger).fit(["exchange"]).warm(freeze=True)
        with ParallelScorer(deanon, max_workers=4) as scorer:
            scorer.score(addresses)           # == deanon.score(addresses)

    Parameters
    ----------
    deanonymizer:
        The fitted facade to serve.  In thread mode workers share it directly;
        in process mode it is the template whose state blob and ledger seed
        each worker's private copy.
    max_workers:
        Pool size; defaults to ``os.cpu_count()``.
    mode:
        ``"thread"`` (shared facade, GIL-bound but zero-copy) or
        ``"process"`` (private per-worker scorers, GIL-free).
    chunk_size:
        Addresses per work item.  Defaults to an even split into
        ``4 * max_workers`` chunks so stragglers rebalance; raise it to
        amortise task overhead on very cheap addresses.

    The pool is created lazily on the first :meth:`score` call and torn down
    by :meth:`close` (or the context manager).  Fan-out observations land in
    the facade's :class:`~repro.api.metrics.ServingMetrics` under
    ``parallel.*`` stages.
    """

    def __init__(self, deanonymizer: DeAnonymizer, max_workers: int | None = None,
                 mode: str = "thread", chunk_size: int | None = None):
        if mode not in ("thread", "process"):
            raise ValueError(f"mode must be 'thread' or 'process', got {mode!r}")
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be a positive integer or None")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be a positive integer or None")
        self.deanonymizer = deanonymizer
        self.max_workers = max_workers or (os.cpu_count() or 1)
        self.mode = mode
        self.chunk_size = chunk_size
        self._executor: Executor | None = None

    # ------------------------------------------------------------- lifecycle
    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            if self.mode == "thread":
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="repro-scorer")
            else:
                deanon = self.deanonymizer
                if deanon.ledger is None:
                    raise RuntimeError(
                        "process-mode ParallelScorer needs a ledger on the "
                        "deanonymizer (workers sample from their own copy)")
                state_blob = dumps_state(deanon.get_state())
                self._executor = ProcessPoolExecutor(
                    max_workers=self.max_workers,
                    initializer=_init_process_worker,
                    initargs=(state_blob, deanon.ledger))
        return self._executor

    def warm(self, freeze: bool = False) -> "ParallelScorer":
        """Pre-build shared structures (and optionally the worker pool).

        Thread mode: delegates to :meth:`DeAnonymizer.warm
        <repro.api.DeAnonymizer.warm>` so pooled threads never hit a
        first-build lock.  Process mode: additionally spins up the pool now,
        moving the per-worker rehydration cost out of the first request.
        """
        self.deanonymizer.warm(freeze=freeze)
        if self.mode == "process":
            self._ensure_executor()
        return self

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "ParallelScorer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # --------------------------------------------------------------- scoring
    def _chunk_size_for(self, n: int) -> int:
        if self.chunk_size is not None:
            return self.chunk_size
        return max(1, -(-n // (4 * self.max_workers)))

    def score(self, addresses: str | Sequence[str],
              skip_unknown: bool = False) -> dict[str, dict[str, float]]:
        """Batched per-category probabilities, computed with pooled workers.

        Semantics match :meth:`DeAnonymizer.score
        <repro.api.DeAnonymizer.score>` exactly — same result dict, same
        aggregated :class:`~repro.api.UnknownAddressError` / ``skip_unknown``
        contract — only the execution is parallel.
        """
        deanon = self.deanonymizer
        deanon._check_fitted()
        if isinstance(addresses, str):
            addresses = [addresses]
        addresses = list(addresses)
        unique = list(dict.fromkeys(addresses))
        metrics = deanon.metrics
        if len(unique) <= 1:
            # No fan-out to be had; the facade path avoids pool overhead.
            return deanon.score(addresses, skip_unknown=skip_unknown)
        chunks = _chunked(unique, self._chunk_size_for(len(unique)))
        executor = self._ensure_executor()
        t0 = time.perf_counter()
        if self.mode == "thread":
            results = self._score_threaded(executor, chunks, addresses,
                                           skip_unknown, t0)
        else:
            results = self._score_multiprocess(executor, chunks, addresses,
                                               skip_unknown, t0)
        metrics.record_value("parallel.batch_size", len(unique))
        metrics.record_value("parallel.chunks", len(chunks))
        metrics.increment("parallel.calls")
        return results

    def _score_threaded(self, executor: Executor, chunks: list[list[str]],
                        addresses: list[str], skip_unknown: bool,
                        t0: float) -> dict[str, dict[str, float]]:
        """Sample chunks on pooled threads, score the whole batch inline."""
        deanon = self.deanonymizer
        futures = [executor.submit(self._sample_chunk, chunk) for chunk in chunks]
        samples: dict = {}
        unknown: list[str] = []
        for future in futures:                   # chunk order == request order
            chunk_samples, chunk_unknown = future.result()
            samples.update(chunk_samples)
            unknown.extend(chunk_unknown)
        if unknown and not skip_unknown:
            raise UnknownAddressError(unknown)
        t1 = time.perf_counter()
        known = [address for chunk in chunks for address in chunk
                 if address in samples]
        sample_list = [samples[address] for address in known]
        per_head = {name: head.predict_proba(sample_list)
                    for name, head in deanon._heads.items()} if known else {}
        metrics = deanon.metrics
        metrics.record_seconds("parallel.sample", t1 - t0)
        metrics.record_seconds("parallel.heads", time.perf_counter() - t1)
        index = {address: i for i, address in enumerate(known)}
        return {address: {name: float(per_head[name][index[address]])
                          for name in deanon._heads}
                for address in addresses if address in samples}

    def _sample_chunk(self, chunk: list[str]) -> tuple[dict, list[str]]:
        samples: dict = {}
        unknown: list[str] = []
        for address in chunk:
            try:
                samples[address] = self.deanonymizer.sample_for(address)
            except UnknownAddressError:
                unknown.append(address)
        return samples, unknown

    def _score_multiprocess(self, executor: Executor, chunks: list[list[str]],
                            addresses: list[str], skip_unknown: bool,
                            t0: float) -> dict[str, dict[str, float]]:
        """Each worker process scores its chunk end-to-end; merge the dicts."""
        deanon = self.deanonymizer
        futures = [executor.submit(_score_chunk_in_worker, chunk)
                   for chunk in chunks]
        merged: dict[str, dict[str, float]] = {}
        unknown: list[str] = []
        for future in futures:
            chunk_results, chunk_unknown = future.result()
            merged.update(chunk_results)
            unknown.extend(chunk_unknown)
        if unknown and not skip_unknown:
            raise UnknownAddressError(unknown)
        deanon.metrics.record_seconds("parallel.score", time.perf_counter() - t0)
        return {address: merged[address]
                for address in addresses if address in merged}
