"""Serving-grade public API: the DeAnonymizer facade and model persistence.

This is the layer a production deployment talks to::

    from repro.api import DeAnonymizer

    deanon = DeAnonymizer(ledger).fit()          # train every category head
    deanon.score(["0xabc..."])                   # address in, probabilities out
    deanon.save("model_dir")                     # npz weights + json manifest
    DeAnonymizer.load("model_dir", ledger)       # restore in a server process

Everything underneath (graph sampling, feature extraction, the GSG/LDG
branches, calibration, classification) stays importable for research use; the
facade only orchestrates it.
"""

from repro.api.deanonymizer import DeAnonymizer, UnknownAddressError
from repro.api.persistence import StateFormatError, load_state, save_state

__all__ = [
    "DeAnonymizer",
    "UnknownAddressError",
    "save_state",
    "load_state",
    "StateFormatError",
]
