"""Serving-grade public API: the DeAnonymizer facade and model persistence.

This is the layer a production deployment talks to::

    from repro.api import DeAnonymizer

    deanon = DeAnonymizer(ledger).fit()          # train every category head
    deanon.score(["0xabc..."])                   # address in, probabilities out
    deanon.save("model_dir")                     # npz weights + json manifest
    DeAnonymizer.load("model_dir", ledger)       # restore in a server process

The concurrent serving tier layers on top of the facade::

    deanon.warm(freeze=True)                     # pre-build shared structures
    with ParallelScorer(deanon, max_workers=4) as scorer:
        scorer.score(addresses)                  # pooled fan-out, same results

    async with ScoringService(deanon) as service:
        await service.score("0xabc...")          # coalesced micro-batches

Everything underneath (graph sampling, feature extraction, the GSG/LDG
branches, calibration, classification) stays importable for research use; the
facade only orchestrates it.
"""

from repro.api.deanonymizer import DeAnonymizer, UnknownAddressError
from repro.api.metrics import ServingMetrics
from repro.api.persistence import (
    StateFormatError,
    dumps_state,
    load_state,
    loads_state,
    save_state,
)
from repro.api.scorer import ParallelScorer
from repro.api.service import ScoringService

__all__ = [
    "DeAnonymizer",
    "UnknownAddressError",
    "ParallelScorer",
    "ScoringService",
    "ServingMetrics",
    "save_state",
    "load_state",
    "dumps_state",
    "loads_state",
    "StateFormatError",
]
