"""Lightweight thread-safe serving metrics.

:class:`ServingMetrics` is the shared observability hook of the serving tier:
:meth:`DeAnonymizer.score <repro.api.DeAnonymizer.score>` records per-stage
wall times (sampling, head scoring) and batch sizes, the
:class:`~repro.api.scorer.ParallelScorer` records its fan-out stages, and the
:class:`~repro.api.service.ScoringService` records queue waits and coalesced
batch shapes.  Everything funnels into per-name :class:`Accumulator` objects
(count / total / min / max — O(1) memory, a handful of float ops per record),
cheap enough to leave enabled in production; a monitoring endpoint reads one
:meth:`ServingMetrics.snapshot` dict.

Percentile-grade latency analysis belongs to the benchmark harness
(``benchmarks/perf_api.py``), which keeps raw per-request latencies; the
in-process hook intentionally stores only O(1) aggregates.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = ["Accumulator", "ServingMetrics"]


class Accumulator:
    """Running (count, total, min, max) over recorded values, thread-safe."""

    __slots__ = ("count", "total", "min", "max", "_lock")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._lock = threading.Lock()

    def record(self, value: float) -> None:
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.min:
                self.min = value
            if value > self.max:
                self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        with self._lock:
            if not self.count:
                return {"count": 0, "total": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0}
            return {"count": self.count, "total": self.total,
                    "mean": self.total / self.count, "min": self.min, "max": self.max}

    def __repr__(self) -> str:
        return (f"Accumulator(count={self.count}, total={self.total:.6f}, "
                f"mean={self.mean:.6f})")


class ServingMetrics:
    """Named accumulators for stage timings, batch sizes and queue waits.

    Stages are created on first use, so layers can record new stages without
    registration (``metrics.record_seconds("sample", dt)``); counters are
    plain monotonically increasing integers (``metrics.increment("requests")``).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._stages: dict[str, Accumulator] = {}
        self._counters: dict[str, int] = {}

    def _stage(self, name: str) -> Accumulator:
        acc = self._stages.get(name)
        if acc is None:
            with self._lock:
                acc = self._stages.get(name)
                if acc is None:
                    acc = Accumulator()
                    self._stages[name] = acc
        return acc

    def record_seconds(self, stage: str, seconds: float) -> None:
        """Record one wall-time observation for ``stage``."""
        self._stage(stage).record(seconds)

    def record_value(self, stage: str, value: float) -> None:
        """Record one dimensionless observation (batch size, queue depth, ...)."""
        self._stage(stage).record(value)

    def increment(self, counter: str, by: int = 1) -> None:
        with self._lock:
            self._counters[counter] = self._counters.get(counter, 0) + by

    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    @contextmanager
    def timed(self, stage: str):
        """Context manager recording the block's wall time under ``stage``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record_seconds(stage, time.perf_counter() - start)

    def snapshot(self) -> dict:
        """One nested dict of every stage accumulator and counter (cheap)."""
        with self._lock:
            stages = dict(self._stages)
            counters = dict(self._counters)
        return {
            "stages": {name: acc.snapshot() for name, acc in sorted(stages.items())},
            "counters": dict(sorted(counters.items())),
        }
