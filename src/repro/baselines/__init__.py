"""Baseline account-identification methods compared against DBG4ETH (Table III).

Three families, matching Section V-A3:

* Graph-embedding methods: :class:`DeepWalkClassifier`, :class:`Node2VecClassifier`.
* GNN-based methods: :class:`GCNClassifier`, :class:`GATClassifier`,
  :class:`GINClassifier`, :class:`GraphSAGEClassifier`, :class:`APPNPClassifier`,
  :class:`GRITClassifier`.
* Ethereum de-anonymization methods: :class:`Trans2VecClassifier`,
  :class:`I2BGNNClassifier`, :class:`TSGNClassifier`, :class:`EthidentClassifier`,
  :class:`TEGDetectorClassifier`, :class:`BERT4ETHClassifier`.

Every baseline exposes ``fit(samples, labels)``, ``predict(samples)`` and
``predict_proba(samples)`` over :class:`~repro.data.AccountSubgraph` samples.
"""

from repro.baselines.base import BaselineClassifier
from repro.baselines.embedding_models import (
    DeepWalkClassifier,
    Node2VecClassifier,
    Trans2VecClassifier,
)
from repro.baselines.gnn_models import (
    GCNClassifier,
    GATClassifier,
    GINClassifier,
    GraphSAGEClassifier,
    APPNPClassifier,
    I2BGNNClassifier,
    TSGNClassifier,
    EthidentClassifier,
    TEGDetectorClassifier,
)
from repro.baselines.transformers import GRITClassifier, BERT4ETHClassifier

__all__ = [
    "BaselineClassifier",
    "DeepWalkClassifier",
    "Node2VecClassifier",
    "Trans2VecClassifier",
    "GCNClassifier",
    "GATClassifier",
    "GINClassifier",
    "GraphSAGEClassifier",
    "APPNPClassifier",
    "I2BGNNClassifier",
    "TSGNClassifier",
    "EthidentClassifier",
    "TEGDetectorClassifier",
    "GRITClassifier",
    "BERT4ETHClassifier",
    "baseline_registry",
]


def baseline_registry(seed: int = 0) -> dict:
    """All baselines keyed by their Table III row names."""
    return {
        "DeepWalk": DeepWalkClassifier(seed=seed),
        "Node2Vec": Node2VecClassifier(seed=seed),
        "GCN": GCNClassifier(seed=seed),
        "GAT": GATClassifier(seed=seed),
        "GIN": GINClassifier(seed=seed),
        "GraphSAGE": GraphSAGEClassifier(seed=seed),
        "APPNP": APPNPClassifier(seed=seed),
        "GRIT": GRITClassifier(seed=seed),
        "Trans2Vec": Trans2VecClassifier(seed=seed),
        "I2BGNN": I2BGNNClassifier(seed=seed),
        "TSGN": TSGNClassifier(seed=seed),
        "Ethident": EthidentClassifier(seed=seed),
        "TEGDetector": TEGDetectorClassifier(seed=seed),
        "BERT4ETH": BERT4ETHClassifier(seed=seed),
    }
