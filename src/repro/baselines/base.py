"""Shared interface and helpers for baseline classifiers."""

from __future__ import annotations

import numpy as np

from repro.data.dataset import AccountSubgraph
from repro.metrics import classification_report

__all__ = ["BaselineClassifier"]


class BaselineClassifier:
    """Abstract base: binary subgraph classification over :class:`AccountSubgraph`."""

    name = "baseline"

    def fit(self, samples: list[AccountSubgraph], labels) -> "BaselineClassifier":
        raise NotImplementedError

    def predict_proba(self, samples: list[AccountSubgraph]) -> np.ndarray:
        """Probability of the positive class for each sample."""
        raise NotImplementedError

    def predict(self, samples: list[AccountSubgraph]) -> np.ndarray:
        return (self.predict_proba(samples) >= 0.5).astype(int)

    def evaluate(self, samples: list[AccountSubgraph], labels) -> dict[str, float]:
        """Precision / recall / F1 / accuracy on ``samples``."""
        predictions = self.predict(samples)
        return classification_report(np.asarray(labels).astype(int), predictions)

    @staticmethod
    def _standardize(matrices: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
        """Column-wise mean/std over a list of per-graph feature matrices."""
        stacked = np.vstack(matrices)
        mean = stacked.mean(axis=0)
        std = stacked.std(axis=0)
        std[std < 1e-12] = 1.0
        return mean, std
