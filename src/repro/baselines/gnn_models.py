"""GNN graph-classification baselines: GCN, GAT, GIN, GraphSAGE, APPNP and the
Ethereum-specific GNN methods (I2BGNN, TSGN, Ethident, TEGDetector)."""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineClassifier
from repro.data.dataset import AccountSubgraph
from repro.gnn import (
    APPNPPropagation,
    GATLayer,
    GCNLayer,
    GINLayer,
    GraphSAGELayer,
    HierarchicalAttentionEncoder,
)
from repro.gnn.pooling import global_max_pool, global_mean_pool
from repro.gnn.recurrent import GRUCell
from repro.nn import Adam, Linear, Module, Parameter, Tensor
from repro.nn.losses import binary_cross_entropy_with_logits
from repro.nn.functional import relu, softmax

__all__ = [
    "GCNClassifier",
    "GATClassifier",
    "GINClassifier",
    "GraphSAGEClassifier",
    "APPNPClassifier",
    "I2BGNNClassifier",
    "TSGNClassifier",
    "EthidentClassifier",
    "TEGDetectorClassifier",
]


class _TrainedGNNBaseline(BaselineClassifier):
    """Shared training loop: per-sample forward, BCE loss, Adam updates.

    Subclasses implement :meth:`_build_network` returning a module whose
    ``forward(features, sample)`` yields a scalar logit tensor.
    """

    def __init__(self, hidden_dim: int = 32, num_layers: int = 2, epochs: int = 15,
                 learning_rate: float = 0.01, use_node_features: bool = True, seed: int = 0):
        self.hidden_dim = hidden_dim
        self.num_layers = num_layers
        self.epochs = epochs
        self.learning_rate = learning_rate
        self.use_node_features = use_node_features
        self.seed = seed
        self._network: Module | None = None
        self._feature_stats: tuple[np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------ inputs
    def _features(self, sample: AccountSubgraph) -> np.ndarray:
        if self.use_node_features:
            mean, std = self._feature_stats
            return (sample.node_features - mean) / std
        # Structure-only variant ("w/o node feature" rows): degree + constant.
        degrees = sample.adjacency_sparse().row_sums().reshape(-1, 1)
        return np.hstack([np.ones_like(degrees), degrees / max(degrees.max(), 1.0)])

    def _input_dim(self, sample: AccountSubgraph) -> int:
        return sample.node_features.shape[1] if self.use_node_features else 2

    # ---------------------------------------------------------------- training
    def _build_network(self, in_dim: int, rng: np.random.Generator) -> Module:
        raise NotImplementedError

    def fit(self, samples: list[AccountSubgraph], labels) -> "_TrainedGNNBaseline":
        labels = np.asarray(labels, dtype=float)
        if len(samples) != len(labels):
            raise ValueError("samples and labels must have the same length")
        rng = np.random.default_rng(self.seed)
        if self.use_node_features:
            self._feature_stats = self._standardize([s.node_features for s in samples])
        self._network = self._build_network(self._input_dim(samples[0]), rng)
        optimizer = Adam(self._network.parameters(), lr=self.learning_rate)
        indices = np.arange(len(samples))
        for _epoch in range(self.epochs):
            rng.shuffle(indices)
            for idx in indices:
                sample = samples[idx]
                optimizer.zero_grad()
                logit = self._network(self._features(sample), sample)
                loss = binary_cross_entropy_with_logits(logit.reshape(1), [labels[idx]])
                loss.backward()
                optimizer.step()
        return self

    def predict_proba(self, samples: list[AccountSubgraph]) -> np.ndarray:
        if self._network is None:
            raise RuntimeError(f"{self.name} has not been fitted")
        logits = np.array([float(self._network(self._features(s), s).data.item()) for s in samples])
        return 1.0 / (1.0 + np.exp(-np.clip(logits, -30, 30)))


class _StackedGNN(Module):
    """Generic layer stack + pooling + linear head used by most GNN baselines."""

    def __init__(self, layers: list[Module], hidden_dim: int, pooling: str,
                 rng: np.random.Generator, weighted_adjacency: bool = False):
        super().__init__()
        self.layers = layers
        self.pooling = pooling
        self.weighted_adjacency = weighted_adjacency
        self.head = Linear(hidden_dim, 1, rng=rng)

    def forward(self, features: np.ndarray, sample: AccountSubgraph) -> Tensor:
        # The sample's cached CSR adjacency: every epoch (and every baseline
        # sharing the sample) reuses the same memoized normalisations instead
        # of converting a dense matrix per call.  ``log_scale`` reproduces the
        # seed's ``np.log1p`` damping of amount-weighted adjacencies exactly
        # (amounts are non-negative, so the non-zero structure is unchanged).
        adjacency = sample.adjacency_sparse(weighted=self.weighted_adjacency,
                                            log_scale=self.weighted_adjacency)
        h = Tensor(features)
        for layer in self.layers:
            h = layer(h, adjacency)
        pooled = global_max_pool(h) if self.pooling == "max" else global_mean_pool(h)
        return self.head(pooled)


class GCNClassifier(_TrainedGNNBaseline):
    """Two-layer GCN with mean pooling."""

    name = "GCN"

    def _build_network(self, in_dim: int, rng: np.random.Generator) -> Module:
        dims = [in_dim] + [self.hidden_dim] * self.num_layers
        layers = [GCNLayer(dims[i], dims[i + 1], rng=rng) for i in range(self.num_layers)]
        return _StackedGNN(layers, self.hidden_dim, "mean", rng)


class GATClassifier(_TrainedGNNBaseline):
    """Two-layer GAT (multi-head) with mean pooling."""

    name = "GAT"

    def __init__(self, num_heads: int = 2, **kwargs):
        super().__init__(**kwargs)
        self.num_heads = num_heads

    def _build_network(self, in_dim: int, rng: np.random.Generator) -> Module:
        dims = [in_dim] + [self.hidden_dim] * self.num_layers
        layers = [GATLayer(dims[i], dims[i + 1], num_heads=self.num_heads, rng=rng)
                  for i in range(self.num_layers)]
        return _StackedGNN(layers, self.hidden_dim, "mean", rng)


class GINClassifier(_TrainedGNNBaseline):
    """Two-layer GIN with mean pooling."""

    name = "GIN"

    def _build_network(self, in_dim: int, rng: np.random.Generator) -> Module:
        dims = [in_dim] + [self.hidden_dim] * self.num_layers
        layers = [GINLayer(dims[i], dims[i + 1], rng=rng) for i in range(self.num_layers)]
        return _StackedGNN(layers, self.hidden_dim, "mean", rng)


class GraphSAGEClassifier(_TrainedGNNBaseline):
    """Two-layer GraphSAGE (mean aggregator) with mean pooling."""

    name = "GraphSAGE"

    def _build_network(self, in_dim: int, rng: np.random.Generator) -> Module:
        dims = [in_dim] + [self.hidden_dim] * self.num_layers
        layers = [GraphSAGELayer(dims[i], dims[i + 1], rng=rng) for i in range(self.num_layers)]
        return _StackedGNN(layers, self.hidden_dim, "mean", rng)


class _APPNPNetwork(Module):
    """MLP prediction followed by personalised-PageRank propagation."""

    def __init__(self, in_dim: int, hidden_dim: int, k: int, alpha: float,
                 rng: np.random.Generator):
        super().__init__()
        self.fc1 = Linear(in_dim, hidden_dim, rng=rng)
        self.fc2 = Linear(hidden_dim, hidden_dim, rng=rng)
        self.propagation = APPNPPropagation(k=k, alpha=alpha)
        self.head = Linear(hidden_dim, 1, rng=rng)

    def forward(self, features: np.ndarray, sample: AccountSubgraph) -> Tensor:
        h0 = relu(self.fc2(relu(self.fc1(Tensor(features)))))
        propagated = self.propagation(h0, sample.adjacency_sparse())
        return self.head(global_mean_pool(propagated))


class APPNPClassifier(_TrainedGNNBaseline):
    """APPNP: MLP + personalised-PageRank propagation."""

    name = "APPNP"

    def __init__(self, k: int = 5, alpha: float = 0.1, **kwargs):
        super().__init__(**kwargs)
        self.k = k
        self.alpha = alpha

    def _build_network(self, in_dim: int, rng: np.random.Generator) -> Module:
        return _APPNPNetwork(in_dim, self.hidden_dim, self.k, self.alpha, rng)


class I2BGNNClassifier(_TrainedGNNBaseline):
    """I2BGNN: GIN-style subgraph encoder with max pooling (Shen et al. 2021)."""

    name = "I2BGNN"

    def _build_network(self, in_dim: int, rng: np.random.Generator) -> Module:
        dims = [in_dim] + [self.hidden_dim] * self.num_layers
        layers = [GINLayer(dims[i], dims[i + 1], rng=rng) for i in range(self.num_layers)]
        return _StackedGNN(layers, self.hidden_dim, "max", rng)


class TSGNClassifier(_TrainedGNNBaseline):
    """TSGN: transaction-subgraph network operating on amount-weighted adjacency."""

    name = "TSGN"

    def _build_network(self, in_dim: int, rng: np.random.Generator) -> Module:
        dims = [in_dim] + [self.hidden_dim] * self.num_layers
        layers = [GCNLayer(dims[i], dims[i + 1], rng=rng) for i in range(self.num_layers)]
        return _StackedGNN(layers, self.hidden_dim, "mean", rng, weighted_adjacency=True)


class _EthidentNetwork(Module):
    """Hierarchical graph attention encoder + head (Ethident without augmentation)."""

    def __init__(self, in_dim: int, hidden_dim: int, num_layers: int,
                 rng: np.random.Generator):
        super().__init__()
        self.align = Linear(in_dim, hidden_dim, rng=rng)
        self.encoder = HierarchicalAttentionEncoder(hidden_dim, hidden_dim,
                                                    num_layers=num_layers, rng=rng)
        self.head = Linear(hidden_dim, 1, rng=rng)

    def forward(self, features: np.ndarray, sample: AccountSubgraph) -> Tensor:
        aligned = relu(self.align(Tensor(features)))
        return self.head(self.encoder(aligned, sample.adjacency_sparse()))


class EthidentClassifier(_TrainedGNNBaseline):
    """Ethident: hierarchical graph attention for account de-anonymization."""

    name = "Ethident"

    def _build_network(self, in_dim: int, rng: np.random.Generator) -> Module:
        return _EthidentNetwork(in_dim, self.hidden_dim, self.num_layers, rng)


class _TEGDetectorNetwork(Module):
    """Time-sliced GCN + GRU with learned time coefficients (TEGDetector-style)."""

    def __init__(self, in_dim: int, hidden_dim: int, num_slices: int,
                 rng: np.random.Generator):
        super().__init__()
        self.num_slices = num_slices
        self.input_proj = Linear(in_dim, hidden_dim, rng=rng)
        self.gcn = GCNLayer(hidden_dim, hidden_dim, rng=rng)
        self.gru = GRUCell(hidden_dim, hidden_dim, rng=rng)
        self.time_logits = Parameter(np.zeros(num_slices))
        self.head = Linear(hidden_dim, 1, rng=rng)

    def forward(self, features: np.ndarray, sample: AccountSubgraph) -> Tensor:
        slices = sample.time_slices(self.num_slices, weighted=False, sparse=True)
        hidden = relu(self.input_proj(Tensor(features)))
        weights = softmax(self.time_logits.reshape(1, -1), axis=1)
        pooled_sum = None
        for t, adjacency in enumerate(slices):
            topo = self.gcn(hidden, adjacency)
            hidden = self.gru(topo, hidden)
            pooled = global_mean_pool(hidden) * weights[0, t].reshape(1, 1)
            pooled_sum = pooled if pooled_sum is None else pooled_sum + pooled
        return self.head(pooled_sum)


class TEGDetectorClassifier(_TrainedGNNBaseline):
    """TEGDetector: learns transaction behaviours across time slices."""

    name = "TEGDetector"

    def __init__(self, num_slices: int = 5, **kwargs):
        super().__init__(**kwargs)
        self.num_slices = num_slices

    def _build_network(self, in_dim: int, rng: np.random.Generator) -> Module:
        return _TEGDetectorNetwork(in_dim, self.hidden_dim, self.num_slices, rng)
