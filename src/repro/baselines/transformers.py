"""Transformer-style baselines: GRIT (graph transformer) and BERT4ETH-lite."""

from __future__ import annotations

import numpy as np

from repro.baselines.gnn_models import _TrainedGNNBaseline
from repro.data.dataset import AccountSubgraph
from repro.gnn.pooling import global_mean_pool
from repro.nn import Linear, Module, Tensor
from repro.nn.functional import relu, softmax

__all__ = ["GRITClassifier", "BERT4ETHClassifier"]


class _SelfAttention(Module):
    """Single-head scaled dot-product self-attention with an optional score bias."""

    def __init__(self, dim: int, rng: np.random.Generator):
        super().__init__()
        self.dim = dim
        self.query = Linear(dim, dim, rng=rng)
        self.key = Linear(dim, dim, rng=rng)
        self.value = Linear(dim, dim, rng=rng)
        self.out = Linear(dim, dim, rng=rng)

    def forward(self, x: Tensor, bias: np.ndarray | None = None) -> Tensor:
        scale = 1.0 / np.sqrt(self.dim)
        scores = (self.query(x) @ self.key(x).T) * scale
        if bias is not None:
            scores = scores + Tensor(bias)
        attention = softmax(scores, axis=1)
        return self.out(attention @ self.value(x))


class _GRITNetwork(Module):
    """Graph transformer: self-attention over nodes with an adjacency score bias.

    GRIT injects graph inductive biases into a transformer without message
    passing; here the bias is a (log-)adjacency term added to the attention
    scores plus degree features appended to the node inputs.
    """

    def __init__(self, in_dim: int, hidden_dim: int, num_layers: int,
                 rng: np.random.Generator):
        super().__init__()
        self.input_proj = Linear(in_dim + 2, hidden_dim, rng=rng)
        self.attention_layers = [_SelfAttention(hidden_dim, rng) for _ in range(num_layers)]
        self.ffn_layers = [Linear(hidden_dim, hidden_dim, rng=rng) for _ in range(num_layers)]
        self.head = Linear(hidden_dim, 1, rng=rng)

    def forward(self, features: np.ndarray, sample: AccountSubgraph) -> Tensor:
        adjacency = sample.adjacency()
        degrees = adjacency.sum(axis=1, keepdims=True)
        scaled_degrees = degrees / max(degrees.max(), 1.0)
        inputs = np.hstack([features, scaled_degrees, (degrees > 0).astype(float)])
        bias = np.log1p(adjacency)
        h = relu(self.input_proj(Tensor(inputs)))
        for attention, ffn in zip(self.attention_layers, self.ffn_layers):
            h = h + attention(h, bias)
            h = h + relu(ffn(h))
        return self.head(global_mean_pool(h))


class GRITClassifier(_TrainedGNNBaseline):
    """GRIT: graph inductive biases in a transformer without message passing."""

    name = "GRIT"

    def _build_network(self, in_dim: int, rng: np.random.Generator) -> Module:
        return _GRITNetwork(in_dim, self.hidden_dim, self.num_layers, rng)


class _BERT4ETHNetwork(Module):
    """Transformer encoder over the centre account's transaction sequence."""

    def __init__(self, token_dim: int, hidden_dim: int, num_layers: int,
                 rng: np.random.Generator):
        super().__init__()
        self.input_proj = Linear(token_dim, hidden_dim, rng=rng)
        self.attention_layers = [_SelfAttention(hidden_dim, rng) for _ in range(num_layers)]
        self.ffn_layers = [Linear(hidden_dim, hidden_dim, rng=rng) for _ in range(num_layers)]
        self.head = Linear(hidden_dim, 1, rng=rng)

    def forward(self, tokens: np.ndarray, sample: AccountSubgraph | None = None) -> Tensor:
        del sample  # the sequence model only consumes the tokenised transactions
        h = relu(self.input_proj(Tensor(tokens)))
        for attention, ffn in zip(self.attention_layers, self.ffn_layers):
            h = h + attention(h)
            h = h + relu(ffn(h))
        return self.head(global_mean_pool(h))


class BERT4ETHClassifier(_TrainedGNNBaseline):
    """BERT4ETH-lite: a transaction-sequence transformer for the centre account.

    The published BERT4ETH pre-trains a large Transformer on millions of
    transaction sequences; this laptop-scale equivalent trains the same
    architecture (token projection + self-attention blocks + pooled head) from
    scratch on the edge sequence incident to the centre account, tokenised as
    ``[amount, count, direction, normalised time]``.
    """

    name = "BERT4ETH"

    def __init__(self, max_sequence_length: int = 32, **kwargs):
        super().__init__(**kwargs)
        self.max_sequence_length = max_sequence_length

    def _tokenize(self, sample: AccountSubgraph) -> np.ndarray:
        center = sample.center
        edges = [edge for edge in sample.graph.edges
                 if edge.src == center or edge.dst == center]
        edges.sort(key=lambda e: e.timestamp)
        edges = edges[-self.max_sequence_length:]
        if not edges:
            return np.zeros((1, 4))
        timestamps = np.array([e.timestamp for e in edges])
        span = (timestamps.max() - timestamps.min()) or 1.0
        tokens = []
        for edge in edges:
            direction = 1.0 if edge.src == center else -1.0
            tokens.append([
                np.log1p(edge.amount),
                np.log1p(edge.count),
                direction,
                (edge.timestamp - timestamps.min()) / span,
            ])
        return np.asarray(tokens)

    def _build_network(self, in_dim: int, rng: np.random.Generator) -> Module:
        del in_dim  # tokens have a fixed width of 4
        return _BERT4ETHNetwork(4, self.hidden_dim, self.num_layers, rng)

    def _features(self, sample: AccountSubgraph) -> np.ndarray:
        return self._tokenize(sample)

    def fit(self, samples: list[AccountSubgraph], labels) -> "BERT4ETHClassifier":
        # Token statistics do not need standardisation; reuse the parent loop
        # with ``use_node_features`` disabled so it skips feature-stat fitting.
        self.use_node_features = False
        return super().fit(samples, labels)
