"""Walk-embedding baselines: DeepWalk, Node2Vec and Trans2Vec graph classifiers.

Each baseline embeds every subgraph by average-pooling skip-gram node vectors
(Section V-A4: walk length 30, embedding dimension 64, average pooling), then
fits a gradient-boosting classifier on the graph embeddings.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import BaselineClassifier
from repro.data.dataset import AccountSubgraph
from repro.embedding import DeepWalk, Node2Vec, Trans2Vec
from repro.ensemble import GradientBoostingClassifier

__all__ = ["DeepWalkClassifier", "Node2VecClassifier", "Trans2VecClassifier"]


class _WalkBaseline(BaselineClassifier):
    """Shared fit/predict machinery for walk-embedding baselines."""

    def __init__(self, dim: int = 16, walk_length: int = 10, walks_per_node: int = 2,
                 window: int = 3, epochs: int = 1, seed: int = 0,
                 tree_method: str = "hist"):
        self.dim = dim
        self.walk_length = walk_length
        self.walks_per_node = walks_per_node
        self.window = window
        self.epochs = epochs
        self.seed = seed
        self.tree_method = tree_method
        self._downstream = GradientBoostingClassifier(n_estimators=40, max_depth=3,
                                                      seed=seed, tree_method=tree_method)

    def _make_embedder(self):
        raise NotImplementedError

    def _embed(self, samples: list[AccountSubgraph]) -> np.ndarray:
        embedder = self._make_embedder()
        return embedder.embed_graphs([sample.graph for sample in samples])

    def fit(self, samples: list[AccountSubgraph], labels) -> "_WalkBaseline":
        embeddings = self._embed(samples)
        self._downstream.fit(embeddings, np.asarray(labels).astype(int))
        return self

    def predict_proba(self, samples: list[AccountSubgraph]) -> np.ndarray:
        embeddings = self._embed(samples)
        return self._downstream.predict_proba(embeddings)[:, 1]


class DeepWalkClassifier(_WalkBaseline):
    """DeepWalk graph embeddings + gradient boosting."""

    name = "DeepWalk"

    def _make_embedder(self) -> DeepWalk:
        return DeepWalk(dim=self.dim, walk_length=self.walk_length,
                        walks_per_node=self.walks_per_node, window=self.window,
                        epochs=self.epochs, seed=self.seed)


class Node2VecClassifier(_WalkBaseline):
    """Node2Vec graph embeddings (p=1, q=0.5) + gradient boosting."""

    name = "Node2Vec"

    def __init__(self, p: float = 1.0, q: float = 0.5, **kwargs):
        super().__init__(**kwargs)
        self.p = p
        self.q = q

    def _make_embedder(self) -> Node2Vec:
        return Node2Vec(dim=self.dim, walk_length=self.walk_length,
                        walks_per_node=self.walks_per_node, window=self.window,
                        epochs=self.epochs, p=self.p, q=self.q, seed=self.seed)


class Trans2VecClassifier(_WalkBaseline):
    """Trans2Vec: amount/recency-biased walks + gradient boosting."""

    name = "Trans2Vec"

    def __init__(self, amount_bias: float = 0.5, **kwargs):
        super().__init__(**kwargs)
        self.amount_bias = amount_bias

    def _make_embedder(self) -> Trans2Vec:
        return Trans2Vec(dim=self.dim, walk_length=self.walk_length,
                         walks_per_node=self.walks_per_node, window=self.window,
                         epochs=self.epochs, amount_bias=self.amount_bias, seed=self.seed)
