"""Non-parametric calibration: histogram binning, isotonic regression and BBQ."""

from __future__ import annotations

import numpy as np

from repro.calibration.parametric import Calibrator

__all__ = ["HistogramBinning", "IsotonicCalibration", "BBQCalibration"]


class HistogramBinning(Calibrator):
    """Equal-width histogram binning (Zadrozny & Elkan 2001).

    Each confidence bin's calibrated value is the empirical positive rate of the
    calibration samples that fall into it, with Laplace smoothing so empty bins
    fall back to the bin centre.
    """

    name = "histogram_binning"

    def __init__(self, num_bins: int = 10):
        if num_bins < 1:
            raise ValueError("num_bins must be >= 1")
        self.num_bins = num_bins
        self._bin_values: np.ndarray | None = None

    def fit(self, confidences, labels) -> "HistogramBinning":
        confidences, labels = self._validate(confidences, labels)
        edges = np.linspace(0.0, 1.0, self.num_bins + 1)
        values = np.empty(self.num_bins)
        for b in range(self.num_bins):
            if b == self.num_bins - 1:
                mask = (confidences >= edges[b]) & (confidences <= edges[b + 1])
            else:
                mask = (confidences >= edges[b]) & (confidences < edges[b + 1])
            centre = 0.5 * (edges[b] + edges[b + 1])
            # Laplace-smoothed positive rate anchored at the bin centre.
            values[b] = (labels[mask].sum() + centre) / (mask.sum() + 1.0)
        self._bin_values = values
        return self

    def transform(self, confidences) -> np.ndarray:
        if self._bin_values is None:
            raise RuntimeError("calibrator has not been fitted")
        confidences = np.clip(np.asarray(confidences, dtype=float), 0.0, 1.0)
        bins = np.minimum((confidences * self.num_bins).astype(int), self.num_bins - 1)
        return self._bin_values[bins]

    def get_state(self) -> dict:
        if self._bin_values is None:
            raise RuntimeError("calibrator has not been fitted")
        return {"num_bins": int(self.num_bins), "bin_values": np.asarray(self._bin_values)}

    def set_state(self, state: dict) -> "HistogramBinning":
        self.num_bins = int(state["num_bins"])
        self._bin_values = np.asarray(state["bin_values"], dtype=float)
        return self


class IsotonicCalibration(Calibrator):
    """Isotonic regression via the pool-adjacent-violators algorithm (PAVA)."""

    name = "isotonic_regression"

    def __init__(self):
        self._x: np.ndarray | None = None
        self._y: np.ndarray | None = None

    def fit(self, confidences, labels) -> "IsotonicCalibration":
        confidences, labels = self._validate(confidences, labels)
        order = np.argsort(confidences, kind="stable")
        x = confidences[order]
        y = labels[order].astype(float)
        # PAVA: merge adjacent blocks until the block means are non-decreasing.
        values = list(y)
        weights = [1.0] * len(y)
        starts = list(range(len(y)))
        i = 0
        while i < len(values) - 1:
            if values[i] > values[i + 1] + 1e-15:
                merged_weight = weights[i] + weights[i + 1]
                merged_value = (values[i] * weights[i] + values[i + 1] * weights[i + 1]) / merged_weight
                values[i:i + 2] = [merged_value]
                weights[i:i + 2] = [merged_weight]
                starts[i + 1:i + 2] = []
                i = max(i - 1, 0)
            else:
                i += 1
        fitted = np.empty(len(y))
        boundaries = starts + [len(y)]
        for block, value in enumerate(values):
            fitted[boundaries[block]:boundaries[block + 1]] = value
        self._x = x
        self._y = fitted
        return self

    def transform(self, confidences) -> np.ndarray:
        if self._x is None or self._y is None:
            raise RuntimeError("calibrator has not been fitted")
        confidences = np.asarray(confidences, dtype=float)
        return np.interp(confidences, self._x, self._y)

    def get_state(self) -> dict:
        if self._x is None or self._y is None:
            raise RuntimeError("calibrator has not been fitted")
        return {"x": np.asarray(self._x), "y": np.asarray(self._y)}

    def set_state(self, state: dict) -> "IsotonicCalibration":
        self._x = np.asarray(state["x"], dtype=float)
        self._y = np.asarray(state["y"], dtype=float)
        return self


class BBQCalibration(Calibrator):
    """Bayesian binning into quantiles (Naeini et al. 2015).

    An ensemble of equal-frequency binning models with different bin counts; the
    calibrated probability is the average of the per-model binned estimates,
    weighted by each model's Bayesian marginal likelihood under a Beta prior.
    """

    name = "bbq"

    def __init__(self, bin_counts: tuple[int, ...] | None = None, prior_strength: float = 2.0):
        self.bin_counts = bin_counts
        self.prior_strength = prior_strength
        self._models: list[tuple[np.ndarray, np.ndarray, float]] = []

    def fit(self, confidences, labels) -> "BBQCalibration":
        confidences, labels = self._validate(confidences, labels)
        n = len(confidences)
        bin_counts = self.bin_counts
        if bin_counts is None:
            max_bins = max(2, int(np.sqrt(n)))
            bin_counts = tuple(sorted({2, 3, max(2, max_bins // 2), max_bins}))
        base_rate = float(labels.mean()) if n else 0.5
        self._models = []
        scores = []
        for num_bins in bin_counts:
            edges = np.quantile(confidences, np.linspace(0.0, 1.0, num_bins + 1))
            edges[0], edges[-1] = 0.0, 1.0
            edges = np.maximum.accumulate(edges)
            bin_probs = np.empty(num_bins)
            log_marginal = 0.0
            for b in range(num_bins):
                if b == num_bins - 1:
                    mask = (confidences >= edges[b]) & (confidences <= edges[b + 1])
                else:
                    mask = (confidences >= edges[b]) & (confidences < edges[b + 1])
                count = int(mask.sum())
                positives = float(labels[mask].sum())
                alpha0 = self.prior_strength * base_rate + 1e-3
                beta0 = self.prior_strength * (1.0 - base_rate) + 1e-3
                bin_probs[b] = (positives + alpha0) / (count + alpha0 + beta0)
                # Beta-binomial log marginal likelihood of this bin.
                from scipy.special import betaln

                log_marginal += betaln(positives + alpha0, count - positives + beta0) \
                    - betaln(alpha0, beta0)
            self._models.append((edges, bin_probs, log_marginal))
            scores.append(log_marginal)
        scores = np.array(scores)
        weights = np.exp(scores - scores.max())
        weights /= weights.sum()
        self._models = [(edges, probs, float(w))
                        for (edges, probs, _), w in zip(self._models, weights)]
        return self

    def transform(self, confidences) -> np.ndarray:
        if not self._models:
            raise RuntimeError("calibrator has not been fitted")
        confidences = np.clip(np.asarray(confidences, dtype=float), 0.0, 1.0)
        result = np.zeros_like(confidences)
        for edges, bin_probs, weight in self._models:
            bins = np.clip(np.searchsorted(edges, confidences, side="right") - 1,
                           0, len(bin_probs) - 1)
            result += weight * bin_probs[bins]
        return result

    def get_state(self) -> dict:
        if not self._models:
            raise RuntimeError("calibrator has not been fitted")
        return {"models": [{"edges": np.asarray(edges), "probs": np.asarray(probs),
                            "weight": float(weight)}
                           for edges, probs, weight in self._models]}

    def set_state(self, state: dict) -> "BBQCalibration":
        self._models = [(np.asarray(m["edges"], dtype=float),
                         np.asarray(m["probs"], dtype=float), float(m["weight"]))
                        for m in state["models"]]
        return self
