"""Confidence generation: map raw branch outputs into (0, 1] (Section IV-C1)."""

from __future__ import annotations

import numpy as np

__all__ = ["confidence_scale"]


def confidence_scale(scores, mean: float | None = None, std: float | None = None) -> np.ndarray:
    """Standardise raw predicted values and squash them into (0, 1).

    The GSG and LDG branches emit unbounded scores; following the paper the
    scores are first scaled by their mean and standard deviation and then mapped
    through a sigmoid so that every downstream calibrator sees values that "fit
    into the range of the two models' confidence values".

    Parameters
    ----------
    scores:
        Raw predicted values for the positive class.
    mean, std:
        Optional statistics to reuse (e.g. from the training split); computed
        from ``scores`` when omitted.
    """
    scores = np.asarray(scores, dtype=float)
    if scores.size == 0:
        return scores.copy()
    mean = float(scores.mean()) if mean is None else mean
    std = float(scores.std()) if std is None else std
    if std <= 1e-12:
        std = 1.0
    standardised = (scores - mean) / std
    return 1.0 / (1.0 + np.exp(-np.clip(standardised, -30.0, 30.0)))
