"""Adaptive weight calibration: combine calibrators by ECE reduction (Eq. 24-25)."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.calibration.parametric import Calibrator
from repro.metrics.calibration_error import expected_calibration_error

__all__ = ["CalibrationReport", "AdaptiveCalibrator"]


@dataclass
class CalibrationReport:
    """Per-method calibration diagnostics for one branch (GSG or LDG).

    ``weights`` are the normalised ECE-reduction weights of Eq. 25 — they may be
    negative when a method *increases* the ECE, which the paper observes for
    parametric methods on small categories.
    """

    uncalibrated_ece: float
    method_ece: dict[str, float] = field(default_factory=dict)
    ece_reduction: dict[str, float] = field(default_factory=dict)
    weights: dict[str, float] = field(default_factory=dict)


class AdaptiveCalibrator:
    """Fit several calibrators and combine their outputs with adaptive weights.

    For each calibration method ``i`` the ECE reduction ``ΔECE_i`` (uncalibrated
    ECE minus calibrated ECE) is measured on the calibration split; the combined
    probability is ``Σ_i α_i C_i(p)`` with ``α_i = ΔECE_i / Σ_j ΔECE_j``.
    """

    def __init__(self, calibrators: dict[str, Calibrator] | None = None, num_bins: int = 10):
        if calibrators is None:
            from repro.calibration import default_calibrators

            calibrators = default_calibrators()
        if not calibrators:
            raise ValueError("at least one calibrator is required")
        self.calibrators = dict(calibrators)
        self.num_bins = num_bins
        self.report: CalibrationReport | None = None

    def fit(self, confidences, labels) -> "AdaptiveCalibrator":
        confidences = np.asarray(confidences, dtype=float)
        labels = np.asarray(labels, dtype=float)
        base_ece = expected_calibration_error(labels, confidences, self.num_bins)
        method_ece: dict[str, float] = {}
        reductions: dict[str, float] = {}
        for name, calibrator in self.calibrators.items():
            calibrated = calibrator.fit_transform(confidences, labels)
            ece = expected_calibration_error(labels, calibrated, self.num_bins)
            method_ece[name] = ece
            reductions[name] = base_ece - ece
        total = sum(reductions.values())
        if abs(total) < 1e-12:
            weights = {name: 1.0 / len(reductions) for name in reductions}
        else:
            weights = {name: delta / total for name, delta in reductions.items()}
        self.report = CalibrationReport(
            uncalibrated_ece=base_ece,
            method_ece=method_ece,
            ece_reduction=reductions,
            weights=weights,
        )
        return self

    def transform(self, confidences) -> np.ndarray:
        """Weighted calibrated probabilities (Eq. 24), clipped back to [0, 1]."""
        if self.report is None:
            raise RuntimeError("AdaptiveCalibrator has not been fitted")
        confidences = np.asarray(confidences, dtype=float)
        combined = np.zeros_like(confidences)
        for name, calibrator in self.calibrators.items():
            combined += self.report.weights[name] * calibrator.transform(confidences)
        return np.clip(combined, 0.0, 1.0)

    def fit_transform(self, confidences, labels) -> np.ndarray:
        return self.fit(confidences, labels).transform(confidences)

    def weights(self) -> dict[str, float]:
        """Normalised per-method weights (Figure 6's quantities)."""
        if self.report is None:
            raise RuntimeError("AdaptiveCalibrator has not been fitted")
        return dict(self.report.weights)

    def get_state(self) -> dict:
        """Serializable fitted state: report diagnostics plus per-method states."""
        if self.report is None:
            raise RuntimeError("AdaptiveCalibrator has not been fitted")
        return {
            "num_bins": int(self.num_bins),
            "report": {
                "uncalibrated_ece": float(self.report.uncalibrated_ece),
                "method_ece": {k: float(v) for k, v in self.report.method_ece.items()},
                "ece_reduction": {k: float(v) for k, v in self.report.ece_reduction.items()},
                "weights": {k: float(v) for k, v in self.report.weights.items()},
            },
            "calibrators": {name: cal.get_state() for name, cal in self.calibrators.items()},
        }

    @classmethod
    def from_state(cls, state: dict) -> "AdaptiveCalibrator":
        """Rebuild a fitted instance; method names resolve via ``default_calibrators``."""
        from repro.calibration import default_calibrators

        registry = default_calibrators()
        calibrators = {}
        for name, cal_state in state["calibrators"].items():
            if name not in registry:
                raise ValueError(f"unknown calibration method {name!r} in state")
            calibrators[name] = registry[name].set_state(cal_state)
        instance = cls(calibrators, num_bins=int(state["num_bins"]))
        report = state["report"]
        instance.report = CalibrationReport(
            uncalibrated_ece=float(report["uncalibrated_ece"]),
            method_ece={k: float(v) for k, v in report["method_ece"].items()},
            ece_reduction={k: float(v) for k, v in report["ece_reduction"].items()},
            weights={k: float(v) for k, v in report["weights"].items()},
        )
        return instance
