"""Parametric calibration: temperature scaling, logistic (Platt) and beta calibration."""

from __future__ import annotations

import numpy as np
from scipy import optimize

__all__ = ["Calibrator", "TemperatureScaling", "LogisticCalibration", "BetaCalibration"]

_EPS = 1e-7


def _clip01(p: np.ndarray) -> np.ndarray:
    return np.clip(np.asarray(p, dtype=float), _EPS, 1.0 - _EPS)


def _nll(probabilities: np.ndarray, labels: np.ndarray) -> float:
    p = _clip01(probabilities)
    return float(-(labels * np.log(p) + (1.0 - labels) * np.log(1.0 - p)).mean())


class Calibrator:
    """Common interface: ``fit(confidences, labels)`` then ``transform(confidences)``.

    Every calibrator also supports ``get_state()`` / ``set_state(state)`` so a
    fitted instance can be persisted (the state is a json/npz-friendly dict).
    """

    name = "calibrator"

    def fit(self, confidences, labels) -> "Calibrator":
        raise NotImplementedError

    def transform(self, confidences) -> np.ndarray:
        raise NotImplementedError

    def fit_transform(self, confidences, labels) -> np.ndarray:
        return self.fit(confidences, labels).transform(confidences)

    def get_state(self) -> dict:
        raise NotImplementedError

    def set_state(self, state: dict) -> "Calibrator":
        raise NotImplementedError

    @staticmethod
    def _validate(confidences, labels) -> tuple[np.ndarray, np.ndarray]:
        confidences = np.asarray(confidences, dtype=float)
        labels = np.asarray(labels, dtype=float)
        if confidences.shape != labels.shape:
            raise ValueError("confidences and labels must have the same shape")
        if confidences.size == 0:
            raise ValueError("cannot calibrate on empty arrays")
        return confidences, labels


class TemperatureScaling(Calibrator):
    """Single-parameter temperature scaling (Guo et al. 2017).

    Confidences are converted back to logits, divided by a learned temperature
    ``T > 0`` and squashed again; ``T`` minimises the negative log-likelihood on
    the calibration split.
    """

    name = "temperature_scaling"

    def __init__(self):
        self.temperature = 1.0

    def fit(self, confidences, labels) -> "TemperatureScaling":
        confidences, labels = self._validate(confidences, labels)
        logits = np.log(_clip01(confidences)) - np.log(1.0 - _clip01(confidences))

        def objective(log_t: float) -> float:
            temperature = np.exp(log_t)
            z = np.clip(logits / temperature, -30.0, 30.0)
            return _nll(1.0 / (1.0 + np.exp(-z)), labels)

        result = optimize.minimize_scalar(objective, bounds=(-4.0, 4.0), method="bounded")
        self.temperature = float(np.exp(result.x))
        return self

    def transform(self, confidences) -> np.ndarray:
        confidences = _clip01(confidences)
        logits = np.log(confidences) - np.log(1.0 - confidences)
        return 1.0 / (1.0 + np.exp(-logits / self.temperature))

    def get_state(self) -> dict:
        return {"temperature": float(self.temperature)}

    def set_state(self, state: dict) -> "TemperatureScaling":
        self.temperature = float(state["temperature"])
        return self


class LogisticCalibration(Calibrator):
    """Platt scaling: fit ``sigmoid(a * logit + b)`` by maximum likelihood."""

    name = "logistic_calibration"

    def __init__(self):
        self.slope = 1.0
        self.intercept = 0.0

    def fit(self, confidences, labels) -> "LogisticCalibration":
        confidences, labels = self._validate(confidences, labels)
        logits = np.log(_clip01(confidences)) - np.log(1.0 - _clip01(confidences))

        def objective(params: np.ndarray) -> float:
            a, b = params
            z = np.clip(a * logits + b, -30.0, 30.0)
            return _nll(1.0 / (1.0 + np.exp(-z)), labels)

        result = optimize.minimize(objective, x0=np.array([1.0, 0.0]), method="Nelder-Mead")
        self.slope, self.intercept = (float(result.x[0]), float(result.x[1]))
        return self

    def transform(self, confidences) -> np.ndarray:
        confidences = _clip01(confidences)
        logits = np.log(confidences) - np.log(1.0 - confidences)
        z = np.clip(self.slope * logits + self.intercept, -30.0, 30.0)
        return 1.0 / (1.0 + np.exp(-z))

    def get_state(self) -> dict:
        return {"slope": float(self.slope), "intercept": float(self.intercept)}

    def set_state(self, state: dict) -> "LogisticCalibration":
        self.slope = float(state["slope"])
        self.intercept = float(state["intercept"])
        return self


class BetaCalibration(Calibrator):
    """Beta calibration (Kull et al. 2017): ``sigmoid(a ln(p) - b ln(1-p) + c)``."""

    name = "beta_calibration"

    def __init__(self):
        self.a = 1.0
        self.b = 1.0
        self.c = 0.0

    def fit(self, confidences, labels) -> "BetaCalibration":
        confidences, labels = self._validate(confidences, labels)
        p = _clip01(confidences)
        log_p = np.log(p)
        log_1p = np.log(1.0 - p)

        def objective(params: np.ndarray) -> float:
            a, b, c = params
            z = np.clip(a * log_p - b * log_1p + c, -30.0, 30.0)
            return _nll(1.0 / (1.0 + np.exp(-z)), labels)

        result = optimize.minimize(objective, x0=np.array([1.0, 1.0, 0.0]), method="Nelder-Mead")
        self.a, self.b, self.c = (float(result.x[0]), float(result.x[1]), float(result.x[2]))
        return self

    def transform(self, confidences) -> np.ndarray:
        p = _clip01(confidences)
        z = np.clip(self.a * np.log(p) - self.b * np.log(1.0 - p) + self.c, -30.0, 30.0)
        return 1.0 / (1.0 + np.exp(-z))

    def get_state(self) -> dict:
        return {"a": float(self.a), "b": float(self.b), "c": float(self.c)}

    def set_state(self, state: dict) -> "BetaCalibration":
        self.a = float(state["a"])
        self.b = float(state["b"])
        self.c = float(state["c"])
        return self
