"""Confidence calibration methods and adaptive combination (Section IV-C).

Three parametric methods (temperature scaling, beta calibration, logistic /
Platt calibration) and three non-parametric methods (histogram binning,
isotonic regression, Bayesian binning into quantiles) calibrate each branch's
predicted values; :class:`AdaptiveCalibrator` weights the six calibrated
outputs by their ECE reduction (Eq. 24-25).
"""

from repro.calibration.scaling import confidence_scale
from repro.calibration.parametric import TemperatureScaling, LogisticCalibration, BetaCalibration
from repro.calibration.nonparametric import HistogramBinning, IsotonicCalibration, BBQCalibration
from repro.calibration.adaptive import AdaptiveCalibrator, CalibrationReport

__all__ = [
    "confidence_scale",
    "TemperatureScaling",
    "LogisticCalibration",
    "BetaCalibration",
    "HistogramBinning",
    "IsotonicCalibration",
    "BBQCalibration",
    "AdaptiveCalibrator",
    "CalibrationReport",
    "PARAMETRIC_METHODS",
    "NONPARAMETRIC_METHODS",
    "default_calibrators",
]

#: Names of the parametric calibration methods, in the paper's order.
PARAMETRIC_METHODS = ("temperature_scaling", "beta_calibration", "logistic_calibration")

#: Names of the non-parametric calibration methods, in the paper's order.
NONPARAMETRIC_METHODS = ("histogram_binning", "isotonic_regression", "bbq")


def default_calibrators() -> dict:
    """The six calibrators used by DBG4ETH, keyed by method name."""
    return {
        "temperature_scaling": TemperatureScaling(),
        "beta_calibration": BetaCalibration(),
        "logistic_calibration": LogisticCalibration(),
        "histogram_binning": HistogramBinning(),
        "isotonic_regression": IsotonicCalibration(),
        "bbq": BBQCalibration(),
    }
