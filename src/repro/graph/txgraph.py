"""Directed weighted graph container for account-interaction graphs.

``TxGraph`` maintains per-node out/in adjacency indexes incrementally in
:meth:`TxGraph.add_edge`, so the traversal primitives the rest of the system is
built on (``neighbors``, ``degree``, ``out_edges``, ``in_edges``, ``subgraph``)
cost O(deg) instead of a full O(E) edge scan.  See ``DESIGN.md`` for the index
invariants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator

import numpy as np

__all__ = ["Edge", "TxGraph"]


@dataclass(frozen=True)
class Edge:
    """A merged directed edge between two accounts.

    Attributes
    ----------
    src, dst:
        Node identifiers (account addresses or integer ids).
    amount:
        Total value transferred along this edge (GSG/LDG edge feature ``w``).
    count:
        Number of underlying transactions merged into the edge (GSG feature ``t``).
    timestamp:
        Representative timestamp (mean of merged transactions); used to assign
        the edge to an LDG time slice.
    """

    src: Hashable
    dst: Hashable
    amount: float = 0.0
    count: int = 1
    timestamp: float = 0.0


class TxGraph:
    """A directed graph with node features, labels and merged weighted edges.

    Nodes are stored in insertion order so that the adjacency / feature matrices
    returned by :meth:`adjacency_matrix` and :meth:`feature_matrix` have stable
    row ordering.  Edges are additionally indexed per node: ``_out[u]`` maps
    each successor ``v`` to the merged ``Edge(u, v)`` and ``_in[v]`` maps each
    predecessor ``u`` to the same object, both in first-insertion order.  Every
    edge key also records its global insertion sequence so subgraphs can
    reproduce the parent graph's edge ordering exactly.
    """

    def __init__(self):
        self._nodes: dict[Hashable, int] = {}
        self._node_order: list[Hashable] = []
        self._edges: dict[tuple[Hashable, Hashable], Edge] = {}
        self._node_attrs: dict[Hashable, dict] = {}
        self._out: dict[Hashable, dict[Hashable, Edge]] = {}
        self._in: dict[Hashable, dict[Hashable, Edge]] = {}
        self._edge_seq: dict[tuple[Hashable, Hashable], int] = {}

    # ------------------------------------------------------------------ nodes
    def add_node(self, node: Hashable, **attrs) -> None:
        """Add ``node`` (idempotent); merge keyword attributes into its attr dict."""
        if node not in self._nodes:
            self._nodes[node] = len(self._node_order)
            self._node_order.append(node)
            self._node_attrs[node] = {}
            self._out[node] = {}
            self._in[node] = {}
        if attrs:
            self._node_attrs[node].update(attrs)

    def has_node(self, node: Hashable) -> bool:
        return node in self._nodes

    def __contains__(self, node: Hashable) -> bool:
        return node in self._nodes

    def node_index(self, node: Hashable) -> int:
        return self._nodes[node]

    def node_attr(self, node: Hashable, key: str, default=None):
        return self._node_attrs[node].get(key, default)

    def set_node_attr(self, node: Hashable, key: str, value) -> None:
        self._node_attrs[node][key] = value

    @property
    def nodes(self) -> list[Hashable]:
        return list(self._node_order)

    @property
    def num_nodes(self) -> int:
        return len(self._node_order)

    # ------------------------------------------------------------------ edges
    def add_edge(self, src: Hashable, dst: Hashable, amount: float = 0.0,
                 count: int = 1, timestamp: float = 0.0) -> None:
        """Add a transaction from ``src`` to ``dst``, merging with any existing edge.

        Merging follows Section III-B3 of the paper: repeated transfers between
        the same ordered pair collapse into a single edge carrying the total
        amount and the number of transactions.  The timestamp of the merged edge
        is the count-weighted mean; edges whose merged count is zero (possible
        when callers pass ``count=0`` placeholders) keep the existing
        edge's timestamp instead of dividing by zero.
        """
        self.add_node(src)
        self.add_node(dst)
        key = (src, dst)
        existing = self._edges.get(key)
        if existing is None:
            edge = Edge(src, dst, amount, count, timestamp)
        else:
            total = existing.count + count
            if total > 0:
                mean_ts = (existing.timestamp * existing.count + timestamp * count) / total
            else:
                mean_ts = existing.timestamp
            edge = Edge(src, dst, existing.amount + amount, total, mean_ts)
        # Re-assigning an existing key keeps its position in all three dicts,
        # so edge iteration order is stable under merges.
        if existing is None:
            self._edge_seq[key] = len(self._edges)
        self._edges[key] = edge
        self._out[src][dst] = edge
        self._in[dst][src] = edge

    def has_edge(self, src: Hashable, dst: Hashable) -> bool:
        return (src, dst) in self._edges

    def get_edge(self, src: Hashable, dst: Hashable) -> Edge:
        return self._edges[(src, dst)]

    def edges_between(self, u: Hashable, v: Hashable) -> list[Edge]:
        """Merged edges connecting ``u`` and ``v`` in either direction.

        Returns ``[Edge(u, v)]``, ``[Edge(v, u)]``, both (forward first) or an
        empty list; for a self pair (``u == v``) at most the single loop edge.
        """
        edges = []
        forward = self._edges.get((u, v))
        if forward is not None:
            edges.append(forward)
        if u != v:
            backward = self._edges.get((v, u))
            if backward is not None:
                edges.append(backward)
        return edges

    @property
    def edges(self) -> list[Edge]:
        return list(self._edges.values())

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def out_edges(self, node: Hashable) -> Iterator[Edge]:
        yield from self._out.get(node, {}).values()

    def in_edges(self, node: Hashable) -> Iterator[Edge]:
        yield from self._in.get(node, {}).values()

    def out_degree(self, node: Hashable) -> int:
        return len(self._out.get(node, ()))

    def in_degree(self, node: Hashable) -> int:
        return len(self._in.get(node, ()))

    def neighbors(self, node: Hashable) -> set[Hashable]:
        """Return successors and predecessors of ``node`` (undirected neighbourhood)."""
        return set(self._out.get(node, ())) | set(self._in.get(node, ()))

    def degree(self, node: Hashable) -> int:
        """Number of distinct directed edges incident to ``node`` (a self-loop counts once)."""
        out_nbrs = self._out.get(node)
        in_nbrs = self._in.get(node)
        if out_nbrs is None and in_nbrs is None:
            return 0
        loop = 1 if out_nbrs and node in out_nbrs else 0
        return len(out_nbrs or ()) + len(in_nbrs or ()) - loop

    # ----------------------------------------------------------------- matrices
    def _edge_index_arrays(self, weighted: bool) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(rows, cols, values) over merged edges in insertion order."""
        m = len(self._edges)
        rows = np.empty(m, dtype=np.int64)
        cols = np.empty(m, dtype=np.int64)
        vals = np.empty(m, dtype=np.float64)
        nodes = self._nodes
        for i, ((src, dst), edge) in enumerate(self._edges.items()):
            rows[i] = nodes[src]
            cols[i] = nodes[dst]
            vals[i] = edge.amount if weighted else 1.0
        return rows, cols, vals

    def adjacency_matrix(self, weighted: bool = False, symmetric: bool = False) -> np.ndarray:
        """Dense adjacency matrix in node-insertion order.

        Parameters
        ----------
        weighted:
            Use edge amounts instead of 0/1 entries.
        symmetric:
            Return ``max(A, A.T)`` — the undirected view used by the GNN encoders.
        """
        n = self.num_nodes
        adj = np.zeros((n, n), dtype=np.float64)
        if self._edges:
            rows, cols, vals = self._edge_index_arrays(weighted)
            adj[rows, cols] = vals
        if symmetric:
            adj = np.maximum(adj, adj.T)
        return adj

    def to_csr(self, weighted: bool = False, symmetric: bool = False,
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sparse CSR adjacency ``(indptr, indices, data)`` in node-insertion order.

        The arrays satisfy the standard CSR contract: row ``i``'s non-zero
        columns are ``indices[indptr[i]:indptr[i + 1]]`` (sorted ascending) with
        values ``data[indptr[i]:indptr[i + 1]]``.  ``symmetric=True`` mirrors
        :meth:`adjacency_matrix`: the ``max(A, A.T)`` undirected view.
        """
        n = self.num_nodes
        if not self._edges:
            return (np.zeros(n + 1, dtype=np.int64),
                    np.zeros(0, dtype=np.int64),
                    np.zeros(0, dtype=np.float64))
        rows, cols, vals = self._edge_index_arrays(weighted)
        if symmetric:
            rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
            vals = np.concatenate([vals, vals])
        # Sort by (row, col) and collapse duplicate slots (reciprocal edges in
        # the symmetric view) with max, matching max(A, A.T).
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        keys = rows * n + cols
        starts = np.flatnonzero(np.diff(keys, prepend=keys[0] - 1))
        rows, cols = rows[starts], cols[starts]
        vals = np.maximum.reduceat(vals, starts)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
        return indptr, cols, vals

    def feature_matrix(self, key: str = "features", dim: int | None = None) -> np.ndarray:
        """Stack per-node feature vectors stored under attribute ``key``."""
        rows = []
        for node in self._node_order:
            vec = self._node_attrs[node].get(key)
            if vec is None:
                if dim is None:
                    raise KeyError(f"node {node!r} has no attribute {key!r} and no dim fallback")
                vec = np.zeros(dim)
            rows.append(np.asarray(vec, dtype=np.float64))
        if not rows:
            return np.zeros((0, dim or 0))
        return np.vstack(rows)

    def edge_feature_matrix(self) -> np.ndarray:
        """Edge features ``[amount, count]`` in edge-insertion order."""
        if not self._edges:
            return np.zeros((0, 2))
        return np.array([[e.amount, float(e.count)] for e in self._edges.values()])

    # --------------------------------------------------------------- subgraphs
    def subgraph(self, nodes: Iterable[Hashable]) -> "TxGraph":
        """Induced subgraph on ``nodes``, preserving node attributes and edges.

        Node and edge insertion order follow the parent graph, so matrices built
        from the subgraph are reproducible regardless of the order of ``nodes``.
        """
        keep = {node for node in nodes if node in self._nodes}
        sub = TxGraph()
        node_index = self._nodes
        for i, node in enumerate(sorted(keep, key=node_index.__getitem__)):
            sub._nodes[node] = i
            sub._node_order.append(node)
            sub._node_attrs[node] = dict(self._node_attrs[node])
            sub._out[node] = {}
            sub._in[node] = {}
        if len(keep) * 4 < len(self._node_order):
            # Gather incident edges from the per-node index: O(sum deg), then
            # restore global insertion order via the per-edge sequence number.
            keys = [(src, dst) for src in keep for dst in self._out[src] if dst in keep]
            keys.sort(key=self._edge_seq.__getitem__)
            kept_edges = [(key, self._edges[key]) for key in keys]
        else:
            # Dense selection: a single ordered pass over the edge dict.
            kept_edges = [(key, edge) for key, edge in self._edges.items()
                          if key[0] in keep and key[1] in keep]
        # Bulk-insert: kept edges are already merged and Edge is frozen, so the
        # instances can be shared with the parent instead of re-merged through
        # add_edge.
        sub_edges = sub._edges
        sub_seq = sub._edge_seq
        sub_out = sub._out
        sub_in = sub._in
        for seq, (key, edge) in enumerate(kept_edges):
            sub_edges[key] = edge
            sub_seq[key] = seq
            src, dst = key
            sub_out[src][dst] = edge
            sub_in[dst][src] = edge
        return sub

    def copy(self) -> "TxGraph":
        return self.subgraph(self._node_order)

    def to_networkx(self):
        """Convert to a :class:`networkx.DiGraph` (for interop and validation)."""
        import networkx as nx

        g = nx.DiGraph()
        for node in self._node_order:
            g.add_node(node, **self._node_attrs[node])
        for (src, dst), edge in self._edges.items():
            g.add_edge(src, dst, amount=edge.amount, count=edge.count,
                       timestamp=edge.timestamp)
        return g

    def __repr__(self) -> str:
        return f"TxGraph(nodes={self.num_nodes}, edges={self.num_edges})"
