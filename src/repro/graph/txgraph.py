"""Directed weighted graph container for account-interaction graphs.

``TxGraph`` stores its merged edges as parallel numpy columns — ``src_id`` /
``dst_id`` (dense node indices), ``amount``, ``count`` and ``timestamp`` —
mirroring the ledger's :class:`~repro.chain.txstore.ColumnarTxStore`.
:class:`Edge` objects are materialised lazily, only when a caller crosses the
object API boundary (``edges``, ``out_edges``, ``in_edges``, ``get_edge``,
``edges_between``); the hot consumers (``to_csr``, ``subgraph``, sampling,
centrality, time slicing) read the columns directly via :meth:`edge_arrays`.

Per-node adjacency is served from a lazily built CSR row index (edge slots
sorted by endpoint, insertion order preserved within each row), and the
``(src, dst) -> slot`` lookup dict is also built lazily, so a bulk-ingested
graph pays no per-edge Python object or dict cost at construction time.  See
``DESIGN.md`` for the column/index invariants.

Concurrency contract: **reads are thread-safe, writes are single-threaded.**
Every lazy build (pair->slot dict, CSR row index, ``to_csr`` memo) is guarded
by a per-graph lock with double-checked fast paths, so any number of reader
threads may race on a cold graph and all observe the one structure the winner
built — bit-identical to a single-threaded warm-up.  Mutations must not run
concurrently with reads; serving deployments call :meth:`warm` (pre-build
every lazy structure) or :meth:`freeze` (warm + reject further mutation)
before fanning readers out.
"""

from __future__ import annotations

import threading

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator

import numpy as np

__all__ = ["Edge", "TxGraph"]

#: Bit width used to pack an ``(src_id, dst_id)`` pair into one int key.
_PAIR_SHIFT = 32


@dataclass(frozen=True, slots=True)
class Edge:
    """A merged directed edge between two accounts.

    Attributes
    ----------
    src, dst:
        Node identifiers (account addresses or integer ids).
    amount:
        Total value transferred along this edge (GSG/LDG edge feature ``w``).
    count:
        Number of underlying transactions merged into the edge (GSG feature ``t``).
    timestamp:
        Representative timestamp (mean of merged transactions); used to assign
        the edge to an LDG time slice.
    """

    src: Hashable
    dst: Hashable
    amount: float = 0.0
    count: int = 1
    timestamp: float = 0.0


class TxGraph:
    """A directed graph with node features, labels and merged weighted edges.

    Nodes are stored in insertion order so that the adjacency / feature
    matrices returned by :meth:`adjacency_matrix` and :meth:`feature_matrix`
    have stable row ordering.  Edges live in parallel column arrays in global
    first-insertion order (merging updates a slot in place, so iteration
    order is stable under merges), which makes subgraph edge ordering
    reproducible for free: kept slots are simply sorted.

    Derived lookup structures are built lazily and invalidated by version
    counters (structural for the row index, any-mutation for the CSR cache):

    * ``_slot_of`` — packed ``(src_id, dst_id)`` pair -> edge slot, the O(1)
      merge/`has_edge` lookup.  Because edges are append-only, a stale dict
      is synchronised incrementally (new slots appended, nothing rebuilt).
    * the CSR row index — ``_out_indptr``/``_out_slots`` (and the ``_in``
      twins) list each node's incident edge slots in insertion order,
      serving ``out_edges``/``in_edges``/``neighbors``/``degree`` in O(deg).
    * the :meth:`to_csr` cache — adjacency arrays shared with callers under
      the same treat-as-immutable contract as ``SparseAdjacency``.
    """

    def __init__(self):
        self._nodes: dict[Hashable, int] = {}
        self._node_order: list[Hashable] = []
        self._node_attrs: dict[Hashable, dict] = {}
        # Edge columns (capacity arrays; the first _m entries are live).
        self._m = 0
        self._src = np.empty(0, dtype=np.int64)
        self._dst = np.empty(0, dtype=np.int64)
        self._amount = np.empty(0, dtype=np.float64)
        self._count = np.empty(0, dtype=np.int64)
        self._ts = np.empty(0, dtype=np.float64)
        # Any mutation bumps _version (payload merges included — the weighted
        # to_csr cache depends on amounts); only node/edge additions bump
        # _structure_version, so in-place merges never invalidate the CSR row
        # index, keeping interleaved merge/traversal streams O(deg) per query.
        self._version = 0
        self._structure_version = 0
        self._slot_of: dict[int, int] = {}
        self._slot_synced = 0               # edges currently keyed in _slot_of
        self._adj_version = -1              # CSR row index validity
        self._out_indptr: np.ndarray | None = None
        self._out_slots: np.ndarray | None = None
        self._in_indptr: np.ndarray | None = None
        self._in_slots: np.ndarray | None = None
        self._csr_version = -1              # to_csr() cache validity
        self._csr_cache: dict = {}
        # Follow-the-chain bookkeeping: how many ledger rows this graph has
        # consumed and with which dust filter (set by build_transaction_graph,
        # advanced by ingest()).
        self._ingested_rows = 0
        self._ingest_min_value = 0.0
        # Guards every lazy build above (reentrant: warm() chains them).
        self._lock = threading.RLock()
        self._frozen = False

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]                  # locks are not picklable
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # ------------------------------------------------------------- freezing
    @property
    def frozen(self) -> bool:
        return self._frozen

    def _check_mutable(self) -> None:
        if self._frozen:
            raise RuntimeError(
                "TxGraph is frozen: the graph was sealed for concurrent serving "
                "(freeze()); mutations are no longer allowed")

    def warm(self, csr_keys: Iterable[tuple[bool, bool]] = ((False, True), (True, True)),
             ) -> "TxGraph":
        """Eagerly build every lazy read structure (idempotent, thread-safe).

        After ``warm()`` returns, the pair->slot dict, the CSR row index and
        the :meth:`to_csr` forms for each ``(weighted, symmetric)`` pair in
        ``csr_keys`` are all in place, so reader threads never contend on a
        build lock.  The defaults cover the serving path: the symmetric
        binary/weighted adjacencies consumed by
        :meth:`~repro.graph.sparse.SparseAdjacency.from_graph`.
        """
        with self._lock:
            self._ensure_slots()
            self._ensure_adjacency()
            for weighted, symmetric in csr_keys:
                self.to_csr(weighted=weighted, symmetric=symmetric)
        return self

    def freeze(self, csr_keys: Iterable[tuple[bool, bool]] = ((False, True), (True, True)),
               ) -> "TxGraph":
        """:meth:`warm` plus sealing: any later mutation raises ``RuntimeError``.

        This is the strongest serving guarantee — once frozen, every read is
        lock-free against fully built immutable structures.
        """
        self.warm(csr_keys)
        self._frozen = True
        return self

    # ------------------------------------------------------------------ nodes
    def add_node(self, node: Hashable, **attrs) -> None:
        """Add ``node`` (idempotent); merge keyword attributes into its attr dict."""
        self._check_mutable()
        if node not in self._nodes:
            self._nodes[node] = len(self._node_order)
            self._node_order.append(node)
            self._node_attrs[node] = {}
            self._version += 1
            self._structure_version += 1
        if attrs:
            self._node_attrs[node].update(attrs)

    def has_node(self, node: Hashable) -> bool:
        return node in self._nodes

    def __contains__(self, node: Hashable) -> bool:
        return node in self._nodes

    def node_index(self, node: Hashable) -> int:
        return self._nodes[node]

    def node_attr(self, node: Hashable, key: str, default=None):
        return self._node_attrs[node].get(key, default)

    def set_node_attr(self, node: Hashable, key: str, value) -> None:
        self._check_mutable()
        self._node_attrs[node][key] = value

    @property
    def nodes(self) -> list[Hashable]:
        return list(self._node_order)

    @property
    def node_order(self) -> list[Hashable]:
        """The insertion-ordered node list itself, zero-copy.

        Treat as read-only; prefer :attr:`nodes` (which copies) unless on a
        hot path that only indexes into it (e.g. per-candidate lookups in
        sampling).
        """
        return self._node_order

    @property
    def num_nodes(self) -> int:
        return len(self._node_order)

    # --------------------------------------------------------- edge columns
    def edge_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray,
                                   np.ndarray, np.ndarray]:
        """``(src_idx, dst_idx, amount, count, timestamp)`` column views.

        One entry per merged edge, in global first-insertion order; ``src_idx``
        / ``dst_idx`` are node-insertion indices (the rows of
        :meth:`adjacency_matrix`).  The arrays are live read-only views into
        the graph's own columns (writes through them raise): do not retain
        them across mutations — appended edges are not observed, but an
        in-place merge of an existing pair **is** visible through the views.
        Consumers that must survive later mutation should copy.
        """
        m = self._m
        views = (self._src[:m], self._dst[:m], self._amount[:m],
                 self._count[:m], self._ts[:m])
        for view in views:
            view.flags.writeable = False
        return views

    def _grow(self, extra: int) -> None:
        need = self._m + extra
        cap = len(self._src)
        if need <= cap:
            return
        new_cap = max(need, 2 * cap, 16)
        for name in ("_src", "_dst", "_amount", "_count", "_ts"):
            old = getattr(self, name)
            arr = np.empty(new_cap, dtype=old.dtype)
            arr[:self._m] = old[:self._m]
            setattr(self, name, arr)

    def _ensure_slots(self) -> None:
        """Bring the pair -> slot dict up to date (incremental: append-only)."""
        if self._slot_synced >= self._m:
            return
        with self._lock:
            start = self._slot_synced
            m = self._m
            if start >= m:
                return
            keys = ((self._src[start:m] << np.int64(_PAIR_SHIFT))
                    | self._dst[start:m])
            self._slot_of.update(zip(keys.tolist(), range(start, m)))
            self._slot_synced = m

    def _ensure_adjacency(self) -> None:
        """(Re)build the CSR row index when the structure changed since last build.

        Double-checked: ``_adj_version`` is assigned last, so the lock-free
        fast path only ever observes a fully built index.
        """
        if self._adj_version == self._structure_version:
            return
        with self._lock:
            if self._adj_version == self._structure_version:
                return
            m = self._m
            n = len(self._node_order)
            src = self._src[:m]
            dst = self._dst[:m]
            # Stable argsort groups each node's slots while preserving global
            # insertion order within the row — the same iteration order the
            # per-node dict indexes produced.
            self._out_slots = np.argsort(src, kind="stable")
            self._in_slots = np.argsort(dst, kind="stable")
            self._out_indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(np.bincount(src, minlength=n), out=self._out_indptr[1:])
            self._in_indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(np.bincount(dst, minlength=n), out=self._in_indptr[1:])
            self._adj_version = self._structure_version

    def _edge_at(self, slot: int) -> Edge:
        """Materialise the :class:`Edge` view of one column row."""
        order = self._node_order
        return Edge(order[self._src[slot]], order[self._dst[slot]],
                    float(self._amount[slot]), int(self._count[slot]),
                    float(self._ts[slot]))

    def _append_edge(self, u: int, v: int, amount: float, count: int,
                     timestamp: float) -> None:
        """Append one fresh edge row (``add_edge`` is this with width 1)."""
        self._grow(1)
        m = self._m
        self._src[m] = u
        self._dst[m] = v
        self._amount[m] = amount
        self._count[m] = count
        self._ts[m] = timestamp
        self._m = m + 1
        if self._slot_synced == m:
            self._slot_of[(u << _PAIR_SHIFT) | v] = m
            self._slot_synced = m + 1
        self._version += 1
        self._structure_version += 1

    # ------------------------------------------------------------------ edges
    def add_edge(self, src: Hashable, dst: Hashable, amount: float = 0.0,
                 count: int = 1, timestamp: float = 0.0) -> None:
        """Add a transaction from ``src`` to ``dst``, merging with any existing edge.

        Merging follows Section III-B3 of the paper: repeated transfers between
        the same ordered pair collapse into a single edge carrying the total
        amount and the number of transactions.  The timestamp of the merged edge
        is the count-weighted mean; edges whose merged count is zero (possible
        when callers pass ``count=0`` placeholders) keep the existing
        edge's timestamp instead of dividing by zero.
        """
        self._check_mutable()
        self.add_node(src)
        self.add_node(dst)
        u = self._nodes[src]
        v = self._nodes[dst]
        self._ensure_slots()
        slot = self._slot_of.get((u << _PAIR_SHIFT) | v)
        if slot is None:
            self._append_edge(u, v, amount, count, timestamp)
            return
        # In-place merge: the slot (and therefore edge iteration order) is
        # stable, exactly like re-assigning a dict key was.
        prev_count = self._count[slot]
        total = prev_count + count
        if total > 0:
            self._ts[slot] = (self._ts[slot] * prev_count
                              + timestamp * count) / total
        self._amount[slot] = self._amount[slot] + amount
        self._count[slot] = total
        self._version += 1

    def add_edges_bulk(self, srcs, dsts, amounts=None, counts=None,
                       timestamps=None, node_keys: list | None = None) -> None:
        """Vectorised twin of calling :meth:`add_edge` once per row.

        Parameters
        ----------
        srcs, dsts:
            Per-transaction endpoint sequences.  With ``node_keys`` given they
            must be integer arrays indexing into it (the columnar-store path:
            interned account ids + the interning table); without it they are
            node identifiers factorised internally.
        amounts, counts, timestamps:
            Per-transaction edge payloads (defaults: 0.0 / 1 / 0.0).
        node_keys:
            Optional id -> node-identifier table; lets callers that already
            hold integer codes skip re-factorising string keys.

        The result is bit-identical to the sequential loop: nodes are created
        in first-appearance order scanning ``(src_0, dst_0, src_1, ...)``,
        merged edges keep first-appearance order, per-edge amounts/counts are
        the same left-fold sums, and merged timestamps replay ``add_edge``'s
        iterative count-weighted mean recurrence (including the zero-count
        guard).  Rows whose ordered pair already exists in the graph are
        replayed through :meth:`add_edge` (merging into an existing edge is
        inherently sequential); fresh pairs take the vectorised path, which
        appends whole column blocks — no per-edge Python object or dict write.
        """
        self._check_mutable()
        srcs = np.asarray(srcs)
        n = len(srcs)
        if n == 0:
            return
        dsts = np.asarray(dsts)
        if len(dsts) != n:
            raise ValueError("srcs and dsts must have the same length")
        amounts = (np.zeros(n) if amounts is None
                   else np.ascontiguousarray(amounts, dtype=np.float64))
        counts = (np.ones(n, dtype=np.int64) if counts is None
                  else np.ascontiguousarray(counts, dtype=np.int64))
        timestamps = (np.zeros(n) if timestamps is None
                      else np.ascontiguousarray(timestamps, dtype=np.float64))
        if node_keys is None:
            if srcs.dtype == object or dsts.dtype == object:
                # Non-vectorisable node identifiers: plain sequential loop.
                for i in range(n):
                    self.add_edge(srcs[i], dsts[i], float(amounts[i]),
                                  int(counts[i]), float(timestamps[i]))
                return
            interleaved = np.empty(2 * n, dtype=np.promote_types(srcs.dtype, dsts.dtype))
            interleaved[0::2] = srcs
            interleaved[1::2] = dsts
            uniq, first_pos, inverse = np.unique(
                interleaved, return_index=True, return_inverse=True)
            appearance = np.argsort(first_pos, kind="stable")
            node_keys = uniq[appearance].tolist()
            code_of = np.empty(len(uniq), dtype=np.int64)
            code_of[appearance] = np.arange(len(uniq))
            codes = code_of[inverse]
            src_codes, dst_codes = codes[0::2], codes[1::2]
        else:
            src_codes = np.ascontiguousarray(srcs, dtype=np.int64)
            dst_codes = np.ascontiguousarray(dsts, dtype=np.int64)

        # Nodes, in first-appearance order over the interleaved endpoint scan;
        # record each code's graph node id for the edge-column append below.
        if (src_codes.min() < 0 or dst_codes.min() < 0
                or src_codes.max() >= len(node_keys)
                or dst_codes.max() >= len(node_keys)):
            raise ValueError("src/dst codes must index into the node_keys table")
        interleaved_codes = np.empty(2 * n, dtype=np.int64)
        interleaved_codes[0::2] = src_codes
        interleaved_codes[1::2] = dst_codes
        uniq_codes, first_pos = np.unique(interleaved_codes, return_index=True)
        nodes = self._nodes
        node_order = self._node_order
        node_attrs = self._node_attrs
        code_gid = np.empty(len(node_keys), dtype=np.int64)
        for pos in np.sort(first_pos).tolist():
            code = interleaved_codes[pos]
            node = node_keys[code]
            gid = nodes.get(node)
            if gid is None:
                gid = len(node_order)
                nodes[node] = gid
                node_order.append(node)
                node_attrs[node] = {}
            code_gid[code] = gid

        # Merged edges: group rows by ordered (src, dst) pair.
        num_keys = len(node_keys)
        pair_keys = src_codes * np.int64(num_keys) + dst_codes
        uniq_pairs, pair_first, pair_inverse = np.unique(
            pair_keys, return_index=True, return_inverse=True)
        # Rows whose pair already exists must merge sequentially.
        if self._m:
            self._ensure_slots()
            slot_of = self._slot_of
            existing_pair_mask = np.zeros(len(uniq_pairs), dtype=bool)
            for j, pair in enumerate(uniq_pairs.tolist()):
                key = ((int(code_gid[pair // num_keys]) << _PAIR_SHIFT)
                       | int(code_gid[pair % num_keys]))
                existing_pair_mask[j] = key in slot_of
            if existing_pair_mask.any():
                replay = existing_pair_mask[pair_inverse]
                for i in np.flatnonzero(replay):
                    self.add_edge(node_keys[src_codes[i]], node_keys[dst_codes[i]],
                                  float(amounts[i]), int(counts[i]),
                                  float(timestamps[i]))
                keep = ~replay
                if not keep.any():
                    # The replayed add_edge calls above already bumped
                    # _version once per merge; a further bump here would
                    # needlessly invalidate CSR forms warmed between bulk
                    # calls that turn out to be pure replays.
                    return
                src_codes, dst_codes = src_codes[keep], dst_codes[keep]
                amounts, counts, timestamps = (amounts[keep], counts[keep],
                                               timestamps[keep])
                pair_keys = pair_keys[keep]
                uniq_pairs, pair_first, pair_inverse = np.unique(
                    pair_keys, return_index=True, return_inverse=True)

        # Edge groups in first-appearance order.
        pair_appearance = np.argsort(pair_first, kind="stable")
        edge_rank = np.empty(len(uniq_pairs), dtype=np.int64)
        edge_rank[pair_appearance] = np.arange(len(uniq_pairs))
        groups = edge_rank[pair_inverse]
        num_edges_new = len(uniq_pairs)
        order = np.argsort(groups, kind="stable")     # rows grouped, row order kept
        sizes = np.bincount(groups, minlength=num_edges_new)
        starts = np.zeros(num_edges_new, dtype=np.int64)
        np.cumsum(sizes[:-1], out=starts[1:])
        # Left-fold sums per group: bincount accumulates one element at a time
        # in array order, exactly the sequence of adds the per-row add_edge
        # merge performs (np.add.reduceat would sum pairwise and drift in the
        # last ulp for long groups).
        edge_amounts = np.bincount(groups, weights=amounts, minlength=num_edges_new)
        edge_counts = np.bincount(groups, weights=counts.astype(np.float64),
                                  minlength=num_edges_new).astype(np.int64)
        single = sizes == 1
        if single.any():
            # A size-1 group's merged amount is the raw value itself (bincount
            # starts from +0.0, which would flip the sign of a lone -0.0).
            edge_amounts[single] = amounts[order[starts[single]]]
        # Merged timestamps: replay add_edge's iterative count-weighted mean,
        # vectorised across edges, sequential within each group.
        ts_acc = np.zeros(num_edges_new)
        cnt_acc = np.zeros(num_edges_new, dtype=np.int64)
        k = 0
        active = np.arange(num_edges_new)
        while len(active):
            rows = order[starts[active] + k]
            t_k = timestamps[rows]
            c_k = counts[rows]
            if k == 0:
                ts_acc[active] = t_k
                cnt_acc[active] = c_k
            else:
                prev_ts = ts_acc[active]
                prev_cnt = cnt_acc[active]
                total = prev_cnt + c_k
                positive = total > 0
                merged = prev_ts.copy()
                merged[positive] = ((prev_ts[positive] * prev_cnt[positive]
                                     + t_k[positive] * c_k[positive])
                                    / total[positive])
                ts_acc[active] = merged
                cnt_acc[active] = total
            k += 1
            active = active[sizes[active] > k]

        # Append the merged edges as whole column blocks, in first-appearance
        # order.  No Edge objects, no per-edge dict writes — the pair -> slot
        # dict and the CSR row index are rebuilt lazily on first lookup.
        src_gid = code_gid[(uniq_pairs // num_keys)[pair_appearance]]
        dst_gid = code_gid[(uniq_pairs % num_keys)[pair_appearance]]
        self._grow(num_edges_new)
        m = self._m
        stop = m + num_edges_new
        self._src[m:stop] = src_gid
        self._dst[m:stop] = dst_gid
        self._amount[m:stop] = edge_amounts
        self._count[m:stop] = edge_counts
        self._ts[m:stop] = ts_acc
        self._m = stop
        self._version += 1
        self._structure_version += 1

    @property
    def ingested_rows(self) -> int:
        """Ledger rows consumed so far (the default ``from_row`` of :meth:`ingest`)."""
        return self._ingested_rows

    def ingest(self, ledger, from_row: int | None = None,
               min_value: float | None = None) -> list:
        """Incrementally ingest ledger rows appended since the last build.

        The O(new rows) twin of
        :func:`~repro.data.pipeline.build_transaction_graph`: rows
        ``[from_row, ledger.num_transactions)`` of the ledger's columnar store
        are filtered with the same predicate (submitted, non-self, value >=
        ``min_value``) and merged into this graph through
        :meth:`add_edges_bulk` — so the result is **bit-identical** to
        rebuilding the whole graph from scratch over the grown ledger: nodes
        and merged edges keep global first-appearance order, and merges into
        existing edges replay the same left-fold amount sums and iterative
        count-weighted timestamp means.  New nodes receive the same
        ``is_contract`` / ``label`` attributes the full build assigns.

        ``from_row`` defaults to :attr:`ingested_rows` (maintained by
        ``build_transaction_graph`` and previous ``ingest`` calls);
        ``min_value`` defaults to the filter the graph was built with.
        Returns the addresses incident to the newly ingested edges — the
        invalidation set for downstream per-account caches (feature rows,
        serving subgraph samples).

        A frozen graph (:meth:`freeze`) raises ``RuntimeError`` when there are
        rows to ingest: sealing is the declaration that no reader will ever
        observe a mutation, so a follow-the-chain deployment must use
        :meth:`warm` instead.  With no new rows, ``ingest`` is a no-op and
        returns ``[]`` even on a frozen graph.
        """
        cols = ledger.tx_columns()
        total = len(cols.sender_id)
        if from_row is None:
            from_row = self._ingested_rows
        if min_value is None:
            min_value = self._ingest_min_value
        if from_row >= total:
            return []
        self._check_mutable()
        sl = slice(from_row, total)
        sender_ids = cols.sender_id[sl]
        receiver_ids = cols.receiver_id[sl]
        keep = (cols.submitted[sl]
                & (sender_ids != receiver_ids)
                & (cols.value[sl] >= min_value))
        sender_ids = sender_ids[keep]
        receiver_ids = receiver_ids[keep]
        addresses = ledger.store.addresses
        first_new_node = len(self._node_order)
        if len(sender_ids):
            self.add_edges_bulk(
                sender_ids, receiver_ids,
                amounts=cols.value[sl][keep], timestamps=cols.timestamp[sl][keep],
                node_keys=addresses)
        self._ingested_rows = total
        contracts = ledger.contract_address_set()
        labels = ledger.labels
        for node in self._node_order[first_new_node:]:
            attrs = self._node_attrs[node]
            attrs["is_contract"] = node in contracts
            label = labels.get(node)
            attrs["label"] = label.value if label else None
        touched_ids = np.unique(np.concatenate([sender_ids, receiver_ids]))
        return [addresses[i] for i in touched_ids.tolist()]

    def has_edge(self, src: Hashable, dst: Hashable) -> bool:
        u = self._nodes.get(src)
        v = self._nodes.get(dst)
        if u is None or v is None:
            return False
        self._ensure_slots()
        return ((u << _PAIR_SHIFT) | v) in self._slot_of

    def _slot_between(self, u: int, v: int) -> int | None:
        self._ensure_slots()
        return self._slot_of.get((u << _PAIR_SHIFT) | v)

    def get_edge(self, src: Hashable, dst: Hashable) -> Edge:
        u = self._nodes.get(src)
        v = self._nodes.get(dst)
        slot = self._slot_between(u, v) if u is not None and v is not None else None
        if slot is None:
            raise KeyError((src, dst))
        return self._edge_at(slot)

    def edges_between(self, u: Hashable, v: Hashable) -> list[Edge]:
        """Merged edges connecting ``u`` and ``v`` in either direction.

        Returns ``[Edge(u, v)]``, ``[Edge(v, u)]``, both (forward first) or an
        empty list; for a self pair (``u == v``) at most the single loop edge.
        Nodes absent from the graph simply yield no edges — never a KeyError.
        """
        ui = self._nodes.get(u)
        vi = self._nodes.get(v)
        if ui is None or vi is None:
            return []
        edges = []
        forward = self._slot_between(ui, vi)
        if forward is not None:
            edges.append(self._edge_at(forward))
        if ui != vi:
            backward = self._slot_between(vi, ui)
            if backward is not None:
                edges.append(self._edge_at(backward))
        return edges

    @property
    def edges(self) -> list[Edge]:
        """Materialised :class:`Edge` views, in insertion order (object boundary)."""
        m = self._m
        order = self._node_order
        return [Edge(order[u], order[v], a, c, t) for u, v, a, c, t in zip(
            self._src[:m].tolist(), self._dst[:m].tolist(),
            self._amount[:m].tolist(), self._count[:m].tolist(),
            self._ts[:m].tolist())]

    @property
    def num_edges(self) -> int:
        return self._m

    def _row_slots(self, node: Hashable, indptr_name: str, slots_name: str,
                   ) -> np.ndarray:
        idx = self._nodes.get(node)
        if idx is None or self._m == 0:
            return np.empty(0, dtype=np.int64)
        self._ensure_adjacency()
        indptr = getattr(self, indptr_name)
        slots = getattr(self, slots_name)
        return slots[indptr[idx]:indptr[idx + 1]]

    def out_slots(self, node: Hashable) -> np.ndarray:
        """Edge-column slots of ``node``'s out-edges, in insertion order."""
        return self._row_slots(node, "_out_indptr", "_out_slots")

    def in_slots(self, node: Hashable) -> np.ndarray:
        """Edge-column slots of ``node``'s in-edges, in insertion order."""
        return self._row_slots(node, "_in_indptr", "_in_slots")

    def out_edges(self, node: Hashable) -> Iterator[Edge]:
        for slot in self.out_slots(node).tolist():
            yield self._edge_at(slot)

    def in_edges(self, node: Hashable) -> Iterator[Edge]:
        for slot in self.in_slots(node).tolist():
            yield self._edge_at(slot)

    def out_degree(self, node: Hashable) -> int:
        return len(self.out_slots(node))

    def in_degree(self, node: Hashable) -> int:
        return len(self.in_slots(node))

    def neighbors(self, node: Hashable) -> set[Hashable]:
        """Return successors and predecessors of ``node`` (undirected neighbourhood)."""
        out_ids = self._dst[self.out_slots(node)]
        in_ids = self._src[self.in_slots(node)]
        order = self._node_order
        return {order[i] for i in set(out_ids.tolist()) | set(in_ids.tolist())}

    def degree(self, node: Hashable) -> int:
        """Number of distinct directed edges incident to ``node`` (a self-loop counts once)."""
        idx = self._nodes.get(node)
        if idx is None:
            return 0
        out_row = self.out_slots(node)
        loop = 1 if len(out_row) and bool(np.any(self._dst[out_row] == idx)) else 0
        return len(out_row) + len(self.in_slots(node)) - loop

    def degree_vector(self) -> np.ndarray:
        """Degrees of every node in insertion order, in one O(N + E) pass.

        ``degree_vector()[i] == degree(nodes[i])`` — self-loops count once.
        """
        n = len(self._node_order)
        m = self._m
        src = self._src[:m]
        dst = self._dst[:m]
        deg = np.bincount(src, minlength=n) + np.bincount(dst, minlength=n)
        loops = src == dst
        if loops.any():
            deg -= np.bincount(src[loops], minlength=n)
        return deg

    # ----------------------------------------------------------------- matrices
    def adjacency_matrix(self, weighted: bool = False, symmetric: bool = False) -> np.ndarray:
        """Dense adjacency matrix in node-insertion order.

        Parameters
        ----------
        weighted:
            Use edge amounts instead of 0/1 entries.
        symmetric:
            Return ``max(A, A.T)`` — the undirected view used by the GNN encoders.
        """
        n = self.num_nodes
        m = self._m
        adj = np.zeros((n, n), dtype=np.float64)
        if m:
            vals = self._amount[:m] if weighted else np.ones(m)
            adj[self._src[:m], self._dst[:m]] = vals
        if symmetric:
            adj = np.maximum(adj, adj.T)
        return adj

    def to_csr(self, weighted: bool = False, symmetric: bool = False,
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sparse CSR adjacency ``(indptr, indices, data)`` in node-insertion order.

        The arrays satisfy the standard CSR contract: row ``i``'s non-zero
        columns are ``indices[indptr[i]:indptr[i + 1]]`` (sorted ascending) with
        values ``data[indptr[i]:indptr[i + 1]]``.  ``symmetric=True`` mirrors
        :meth:`adjacency_matrix`: the ``max(A, A.T)`` undirected view.

        Results are memoized per ``(weighted, symmetric)`` until the graph
        mutates; callers share the arrays and must treat them as immutable
        (the same contract as :class:`~repro.graph.sparse.SparseAdjacency`).
        Concurrent cold reads serialise on the graph lock and all receive the
        one set of arrays the winning thread built.
        """
        key = (weighted, symmetric)
        if self._csr_version == self._version:
            # Lock-free hit: the cache dict is replaced (never cleared in
            # place) on invalidation, so a stale reference still yields a
            # result consistent with the version it was checked against.
            cached = self._csr_cache.get(key)
            if cached is not None:
                return cached
        with self._lock:
            if self._csr_version != self._version:
                self._csr_cache = {}
                self._csr_version = self._version
            cached = self._csr_cache.get(key)
            if cached is not None:
                return cached
            result = self._build_csr(weighted, symmetric)
            self._csr_cache[key] = result
            return result

    def _build_csr(self, weighted: bool, symmetric: bool,
                   ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        n = self.num_nodes
        m = self._m
        if not m:
            return (np.zeros(n + 1, dtype=np.int64),
                    np.zeros(0, dtype=np.int64),
                    np.zeros(0, dtype=np.float64))
        rows = self._src[:m]
        cols = self._dst[:m]
        vals = np.array(self._amount[:m]) if weighted else np.ones(m)
        if symmetric:
            rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
            vals = np.concatenate([vals, vals])
        # Sort by (row, col) and collapse duplicate slots (reciprocal edges in
        # the symmetric view) with max, matching max(A, A.T).
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        keys = rows * n + cols
        starts = np.flatnonzero(np.diff(keys, prepend=keys[0] - 1))
        rows, cols = rows[starts], cols[starts]
        vals = np.maximum.reduceat(vals, starts)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
        return (indptr, cols, vals)

    def feature_matrix(self, key: str = "features", dim: int | None = None) -> np.ndarray:
        """Stack per-node feature vectors stored under attribute ``key``."""
        rows = []
        for node in self._node_order:
            vec = self._node_attrs[node].get(key)
            if vec is None:
                if dim is None:
                    raise KeyError(f"node {node!r} has no attribute {key!r} and no dim fallback")
                vec = np.zeros(dim)
            rows.append(np.asarray(vec, dtype=np.float64))
        if not rows:
            return np.zeros((0, dim or 0))
        return np.vstack(rows)

    def edge_feature_matrix(self) -> np.ndarray:
        """Edge features ``[amount, count]`` in edge-insertion order."""
        m = self._m
        if not m:
            return np.zeros((0, 2))
        return np.column_stack((self._amount[:m],
                                self._count[:m].astype(np.float64)))

    # --------------------------------------------------------------- subgraphs
    def subgraph(self, nodes: Iterable[Hashable]) -> "TxGraph":
        """Induced subgraph on ``nodes``, preserving node attributes and edges.

        Node and edge insertion order follow the parent graph, so matrices built
        from the subgraph are reproducible regardless of the order of ``nodes``.
        Identifiers absent from the graph are ignored; a node set inducing no
        edges yields an edgeless subgraph — never a KeyError.
        """
        node_index = self._nodes
        keep_ids = sorted({node_index[node] for node in nodes if node in node_index})
        sub = TxGraph()
        order = self._node_order
        for new_id, old_id in enumerate(keep_ids):
            node = order[old_id]
            sub._nodes[node] = new_id
            sub._node_order.append(node)
            sub._node_attrs[node] = dict(self._node_attrs[node])
        m = self._m
        if m and keep_ids:
            n = len(order)
            in_keep = np.zeros(n, dtype=bool)
            in_keep[keep_ids] = True
            if (self._adj_version == self._structure_version
                    and len(keep_ids) * 4 < n):
                # Gather candidate slots from the CSR row index: O(sum deg),
                # then restore global insertion order with a sort on slots.
                indptr = self._out_indptr
                out_slots = self._out_slots
                parts = [out_slots[indptr[i]:indptr[i + 1]] for i in keep_ids]
                cand = np.concatenate(parts)
                slots = np.sort(cand[in_keep[self._dst[cand]]])
            else:
                # Dense selection: one vectorised pass over the edge columns.
                slots = np.flatnonzero(in_keep[self._src[:m]]
                                       & in_keep[self._dst[:m]])
            remap = np.zeros(n, dtype=np.int64)
            remap[keep_ids] = np.arange(len(keep_ids))
            sub._src = remap[self._src[slots]]
            sub._dst = remap[self._dst[slots]]
            sub._amount = self._amount[slots]
            sub._count = self._count[slots]
            sub._ts = self._ts[slots]
            sub._m = len(slots)
        sub._version += 1
        return sub

    def copy(self) -> "TxGraph":
        return self.subgraph(self._node_order)

    def to_networkx(self):
        """Convert to a :class:`networkx.DiGraph` (for interop and validation)."""
        import networkx as nx

        g = nx.DiGraph()
        for node in self._node_order:
            g.add_node(node, **self._node_attrs[node])
        for edge in self.edges:
            g.add_edge(edge.src, edge.dst, amount=edge.amount, count=edge.count,
                       timestamp=edge.timestamp)
        return g

    def __repr__(self) -> str:
        return f"TxGraph(nodes={self.num_nodes}, edges={self.num_edges})"
