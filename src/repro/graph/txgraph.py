"""Directed weighted graph container for account-interaction graphs."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator

import numpy as np

__all__ = ["Edge", "TxGraph"]


@dataclass(frozen=True)
class Edge:
    """A merged directed edge between two accounts.

    Attributes
    ----------
    src, dst:
        Node identifiers (account addresses or integer ids).
    amount:
        Total value transferred along this edge (GSG/LDG edge feature ``w``).
    count:
        Number of underlying transactions merged into the edge (GSG feature ``t``).
    timestamp:
        Representative timestamp (mean of merged transactions); used to assign
        the edge to an LDG time slice.
    """

    src: Hashable
    dst: Hashable
    amount: float = 0.0
    count: int = 1
    timestamp: float = 0.0


class TxGraph:
    """A directed graph with node features, labels and merged weighted edges.

    Nodes are stored in insertion order so that the adjacency / feature matrices
    returned by :meth:`adjacency_matrix` and :meth:`feature_matrix` have stable
    row ordering.
    """

    def __init__(self):
        self._nodes: dict[Hashable, int] = {}
        self._node_order: list[Hashable] = []
        self._edges: dict[tuple[Hashable, Hashable], Edge] = {}
        self._node_attrs: dict[Hashable, dict] = {}

    # ------------------------------------------------------------------ nodes
    def add_node(self, node: Hashable, **attrs) -> None:
        """Add ``node`` (idempotent); merge keyword attributes into its attr dict."""
        if node not in self._nodes:
            self._nodes[node] = len(self._node_order)
            self._node_order.append(node)
            self._node_attrs[node] = {}
        if attrs:
            self._node_attrs[node].update(attrs)

    def has_node(self, node: Hashable) -> bool:
        return node in self._nodes

    def node_index(self, node: Hashable) -> int:
        return self._nodes[node]

    def node_attr(self, node: Hashable, key: str, default=None):
        return self._node_attrs[node].get(key, default)

    def set_node_attr(self, node: Hashable, key: str, value) -> None:
        self._node_attrs[node][key] = value

    @property
    def nodes(self) -> list[Hashable]:
        return list(self._node_order)

    @property
    def num_nodes(self) -> int:
        return len(self._node_order)

    # ------------------------------------------------------------------ edges
    def add_edge(self, src: Hashable, dst: Hashable, amount: float = 0.0,
                 count: int = 1, timestamp: float = 0.0) -> None:
        """Add a transaction from ``src`` to ``dst``, merging with any existing edge.

        Merging follows Section III-B3 of the paper: repeated transfers between
        the same ordered pair collapse into a single edge carrying the total
        amount and the number of transactions.
        """
        self.add_node(src)
        self.add_node(dst)
        key = (src, dst)
        existing = self._edges.get(key)
        if existing is None:
            self._edges[key] = Edge(src, dst, amount, count, timestamp)
        else:
            total = existing.count + count
            mean_ts = (existing.timestamp * existing.count + timestamp * count) / total
            self._edges[key] = Edge(src, dst, existing.amount + amount, total, mean_ts)

    def has_edge(self, src: Hashable, dst: Hashable) -> bool:
        return (src, dst) in self._edges

    def get_edge(self, src: Hashable, dst: Hashable) -> Edge:
        return self._edges[(src, dst)]

    @property
    def edges(self) -> list[Edge]:
        return list(self._edges.values())

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def out_edges(self, node: Hashable) -> Iterator[Edge]:
        for (src, _dst), edge in self._edges.items():
            if src == node:
                yield edge

    def in_edges(self, node: Hashable) -> Iterator[Edge]:
        for (_src, dst), edge in self._edges.items():
            if dst == node:
                yield edge

    def neighbors(self, node: Hashable) -> set[Hashable]:
        """Return successors and predecessors of ``node`` (undirected neighbourhood)."""
        out_nbrs = {dst for (src, dst) in self._edges if src == node}
        in_nbrs = {src for (src, dst) in self._edges if dst == node}
        return out_nbrs | in_nbrs

    def degree(self, node: Hashable) -> int:
        return sum(1 for (src, dst) in self._edges if src == node or dst == node)

    # ----------------------------------------------------------------- matrices
    def adjacency_matrix(self, weighted: bool = False, symmetric: bool = False) -> np.ndarray:
        """Dense adjacency matrix in node-insertion order.

        Parameters
        ----------
        weighted:
            Use edge amounts instead of 0/1 entries.
        symmetric:
            Return ``max(A, A.T)`` — the undirected view used by the GNN encoders.
        """
        n = self.num_nodes
        adj = np.zeros((n, n), dtype=np.float64)
        for (src, dst), edge in self._edges.items():
            value = edge.amount if weighted else 1.0
            adj[self._nodes[src], self._nodes[dst]] = value
        if symmetric:
            adj = np.maximum(adj, adj.T)
        return adj

    def feature_matrix(self, key: str = "features", dim: int | None = None) -> np.ndarray:
        """Stack per-node feature vectors stored under attribute ``key``."""
        rows = []
        for node in self._node_order:
            vec = self._node_attrs[node].get(key)
            if vec is None:
                if dim is None:
                    raise KeyError(f"node {node!r} has no attribute {key!r} and no dim fallback")
                vec = np.zeros(dim)
            rows.append(np.asarray(vec, dtype=np.float64))
        if not rows:
            return np.zeros((0, dim or 0))
        return np.vstack(rows)

    def edge_feature_matrix(self) -> np.ndarray:
        """Edge features ``[amount, count]`` in edge-insertion order."""
        if not self._edges:
            return np.zeros((0, 2))
        return np.array([[e.amount, float(e.count)] for e in self._edges.values()])

    # --------------------------------------------------------------- subgraphs
    def subgraph(self, nodes: Iterable[Hashable]) -> "TxGraph":
        """Induced subgraph on ``nodes``, preserving node attributes and edges."""
        keep = set(nodes)
        sub = TxGraph()
        for node in self._node_order:
            if node in keep:
                sub.add_node(node, **self._node_attrs[node])
        for (src, dst), edge in self._edges.items():
            if src in keep and dst in keep:
                sub.add_edge(src, dst, edge.amount, edge.count, edge.timestamp)
        return sub

    def copy(self) -> "TxGraph":
        return self.subgraph(self._node_order)

    def to_networkx(self):
        """Convert to a :class:`networkx.DiGraph` (for interop and validation)."""
        import networkx as nx

        g = nx.DiGraph()
        for node in self._node_order:
            g.add_node(node, **self._node_attrs[node])
        for (src, dst), edge in self._edges.items():
            g.add_edge(src, dst, amount=edge.amount, count=edge.count,
                       timestamp=edge.timestamp)
        return g

    def __repr__(self) -> str:
        return f"TxGraph(nodes={self.num_nodes}, edges={self.num_edges})"
