"""Directed weighted graph container for account-interaction graphs.

``TxGraph`` maintains per-node out/in adjacency indexes incrementally in
:meth:`TxGraph.add_edge`, so the traversal primitives the rest of the system is
built on (``neighbors``, ``degree``, ``out_edges``, ``in_edges``, ``subgraph``)
cost O(deg) instead of a full O(E) edge scan.  See ``DESIGN.md`` for the index
invariants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator

import numpy as np

__all__ = ["Edge", "TxGraph"]


@dataclass(frozen=True, slots=True)
class Edge:
    """A merged directed edge between two accounts.

    Attributes
    ----------
    src, dst:
        Node identifiers (account addresses or integer ids).
    amount:
        Total value transferred along this edge (GSG/LDG edge feature ``w``).
    count:
        Number of underlying transactions merged into the edge (GSG feature ``t``).
    timestamp:
        Representative timestamp (mean of merged transactions); used to assign
        the edge to an LDG time slice.
    """

    src: Hashable
    dst: Hashable
    amount: float = 0.0
    count: int = 1
    timestamp: float = 0.0


class TxGraph:
    """A directed graph with node features, labels and merged weighted edges.

    Nodes are stored in insertion order so that the adjacency / feature matrices
    returned by :meth:`adjacency_matrix` and :meth:`feature_matrix` have stable
    row ordering.  Edges are additionally indexed per node: ``_out[u]`` maps
    each successor ``v`` to the merged ``Edge(u, v)`` and ``_in[v]`` maps each
    predecessor ``u`` to the same object, both in first-insertion order.  Every
    edge key also records its global insertion sequence so subgraphs can
    reproduce the parent graph's edge ordering exactly.
    """

    def __init__(self):
        self._nodes: dict[Hashable, int] = {}
        self._node_order: list[Hashable] = []
        self._edges: dict[tuple[Hashable, Hashable], Edge] = {}
        self._node_attrs: dict[Hashable, dict] = {}
        self._out: dict[Hashable, dict[Hashable, Edge]] = {}
        self._in: dict[Hashable, dict[Hashable, Edge]] = {}
        self._edge_seq: dict[tuple[Hashable, Hashable], int] = {}

    # ------------------------------------------------------------------ nodes
    def add_node(self, node: Hashable, **attrs) -> None:
        """Add ``node`` (idempotent); merge keyword attributes into its attr dict."""
        if node not in self._nodes:
            self._nodes[node] = len(self._node_order)
            self._node_order.append(node)
            self._node_attrs[node] = {}
            self._out[node] = {}
            self._in[node] = {}
        if attrs:
            self._node_attrs[node].update(attrs)

    def has_node(self, node: Hashable) -> bool:
        return node in self._nodes

    def __contains__(self, node: Hashable) -> bool:
        return node in self._nodes

    def node_index(self, node: Hashable) -> int:
        return self._nodes[node]

    def node_attr(self, node: Hashable, key: str, default=None):
        return self._node_attrs[node].get(key, default)

    def set_node_attr(self, node: Hashable, key: str, value) -> None:
        self._node_attrs[node][key] = value

    @property
    def nodes(self) -> list[Hashable]:
        return list(self._node_order)

    @property
    def num_nodes(self) -> int:
        return len(self._node_order)

    # ------------------------------------------------------------------ edges
    def add_edge(self, src: Hashable, dst: Hashable, amount: float = 0.0,
                 count: int = 1, timestamp: float = 0.0) -> None:
        """Add a transaction from ``src`` to ``dst``, merging with any existing edge.

        Merging follows Section III-B3 of the paper: repeated transfers between
        the same ordered pair collapse into a single edge carrying the total
        amount and the number of transactions.  The timestamp of the merged edge
        is the count-weighted mean; edges whose merged count is zero (possible
        when callers pass ``count=0`` placeholders) keep the existing
        edge's timestamp instead of dividing by zero.
        """
        self.add_node(src)
        self.add_node(dst)
        key = (src, dst)
        existing = self._edges.get(key)
        if existing is None:
            edge = Edge(src, dst, amount, count, timestamp)
        else:
            total = existing.count + count
            if total > 0:
                mean_ts = (existing.timestamp * existing.count + timestamp * count) / total
            else:
                mean_ts = existing.timestamp
            edge = Edge(src, dst, existing.amount + amount, total, mean_ts)
        # Re-assigning an existing key keeps its position in all three dicts,
        # so edge iteration order is stable under merges.
        if existing is None:
            self._edge_seq[key] = len(self._edges)
        self._edges[key] = edge
        self._out[src][dst] = edge
        self._in[dst][src] = edge

    def add_edges_bulk(self, srcs, dsts, amounts=None, counts=None,
                       timestamps=None, node_keys: list | None = None) -> None:
        """Vectorised twin of calling :meth:`add_edge` once per row.

        Parameters
        ----------
        srcs, dsts:
            Per-transaction endpoint sequences.  With ``node_keys`` given they
            must be integer arrays indexing into it (the columnar-store path:
            interned account ids + the interning table); without it they are
            node identifiers factorised internally.
        amounts, counts, timestamps:
            Per-transaction edge payloads (defaults: 0.0 / 1 / 0.0).
        node_keys:
            Optional id -> node-identifier table; lets callers that already
            hold integer codes skip re-factorising string keys.

        The result is bit-identical to the sequential loop: nodes are created
        in first-appearance order scanning ``(src_0, dst_0, src_1, ...)``,
        merged edges keep first-appearance order, per-edge amounts/counts are
        the same left-fold sums, and merged timestamps replay ``add_edge``'s
        iterative count-weighted mean recurrence (including the zero-count
        guard).  Rows whose ordered pair already exists in the graph are
        replayed through :meth:`add_edge` (merging into an existing edge is
        inherently sequential); fresh pairs take the vectorised path.
        """
        srcs = np.asarray(srcs)
        n = len(srcs)
        if n == 0:
            return
        dsts = np.asarray(dsts)
        if len(dsts) != n:
            raise ValueError("srcs and dsts must have the same length")
        amounts = (np.zeros(n) if amounts is None
                   else np.ascontiguousarray(amounts, dtype=np.float64))
        counts = (np.ones(n, dtype=np.int64) if counts is None
                  else np.ascontiguousarray(counts, dtype=np.int64))
        timestamps = (np.zeros(n) if timestamps is None
                      else np.ascontiguousarray(timestamps, dtype=np.float64))
        if node_keys is None:
            if srcs.dtype == object or dsts.dtype == object:
                # Non-vectorisable node identifiers: plain sequential loop.
                for i in range(n):
                    self.add_edge(srcs[i], dsts[i], float(amounts[i]),
                                  int(counts[i]), float(timestamps[i]))
                return
            interleaved = np.empty(2 * n, dtype=np.promote_types(srcs.dtype, dsts.dtype))
            interleaved[0::2] = srcs
            interleaved[1::2] = dsts
            uniq, first_pos, inverse = np.unique(
                interleaved, return_index=True, return_inverse=True)
            appearance = np.argsort(first_pos, kind="stable")
            node_keys = uniq[appearance].tolist()
            code_of = np.empty(len(uniq), dtype=np.int64)
            code_of[appearance] = np.arange(len(uniq))
            codes = code_of[inverse]
            src_codes, dst_codes = codes[0::2], codes[1::2]
        else:
            src_codes = np.ascontiguousarray(srcs, dtype=np.int64)
            dst_codes = np.ascontiguousarray(dsts, dtype=np.int64)

        # Nodes, in first-appearance order over the interleaved endpoint scan.
        if (src_codes.min() < 0 or dst_codes.min() < 0
                or src_codes.max() >= len(node_keys)
                or dst_codes.max() >= len(node_keys)):
            raise ValueError("src/dst codes must index into the node_keys table")
        interleaved_codes = np.empty(2 * n, dtype=np.int64)
        interleaved_codes[0::2] = src_codes
        interleaved_codes[1::2] = dst_codes
        uniq_codes, first_pos = np.unique(interleaved_codes, return_index=True)
        nodes = self._nodes
        node_order = self._node_order
        node_attrs = self._node_attrs
        out_index = self._out
        in_index = self._in
        for pos in np.sort(first_pos).tolist():
            node = node_keys[interleaved_codes[pos]]
            if node not in nodes:
                nodes[node] = len(node_order)
                node_order.append(node)
                node_attrs[node] = {}
                out_index[node] = {}
                in_index[node] = {}

        # Merged edges: group rows by ordered (src, dst) pair.
        num_keys = len(node_keys)
        pair_keys = src_codes * np.int64(num_keys) + dst_codes
        uniq_pairs, pair_first, pair_inverse = np.unique(
            pair_keys, return_index=True, return_inverse=True)
        # Rows whose pair already exists must merge sequentially.
        existing_pair_mask = np.zeros(len(uniq_pairs), dtype=bool)
        if self._edges:
            for j, pair in enumerate(uniq_pairs):
                key = (node_keys[pair // num_keys], node_keys[pair % num_keys])
                existing_pair_mask[j] = key in self._edges
        if existing_pair_mask.any():
            replay = existing_pair_mask[pair_inverse]
            for i in np.flatnonzero(replay):
                self.add_edge(node_keys[src_codes[i]], node_keys[dst_codes[i]],
                              float(amounts[i]), int(counts[i]), float(timestamps[i]))
            keep = ~replay
            if not keep.any():
                return
            src_codes, dst_codes = src_codes[keep], dst_codes[keep]
            amounts, counts, timestamps = amounts[keep], counts[keep], timestamps[keep]
            pair_keys = pair_keys[keep]
            uniq_pairs, pair_first, pair_inverse = np.unique(
                pair_keys, return_index=True, return_inverse=True)

        # Edge groups in first-appearance order.
        pair_appearance = np.argsort(pair_first, kind="stable")
        edge_rank = np.empty(len(uniq_pairs), dtype=np.int64)
        edge_rank[pair_appearance] = np.arange(len(uniq_pairs))
        groups = edge_rank[pair_inverse]
        num_edges_new = len(uniq_pairs)
        order = np.argsort(groups, kind="stable")     # rows grouped, row order kept
        sizes = np.bincount(groups, minlength=num_edges_new)
        starts = np.zeros(num_edges_new, dtype=np.int64)
        np.cumsum(sizes[:-1], out=starts[1:])
        # Left-fold sums per group: bincount accumulates one element at a time
        # in array order, exactly the sequence of adds the per-row add_edge
        # merge performs (np.add.reduceat would sum pairwise and drift in the
        # last ulp for long groups).
        edge_amounts = np.bincount(groups, weights=amounts, minlength=num_edges_new)
        edge_counts = np.bincount(groups, weights=counts.astype(np.float64),
                                  minlength=num_edges_new).astype(np.int64)
        single = sizes == 1
        if single.any():
            # A size-1 group's merged amount is the raw value itself (bincount
            # starts from +0.0, which would flip the sign of a lone -0.0).
            edge_amounts[single] = amounts[order[starts[single]]]
        # Merged timestamps: replay add_edge's iterative count-weighted mean,
        # vectorised across edges, sequential within each group.
        ts_acc = np.zeros(num_edges_new)
        cnt_acc = np.zeros(num_edges_new, dtype=np.int64)
        k = 0
        active = np.arange(num_edges_new)
        while len(active):
            rows = order[starts[active] + k]
            t_k = timestamps[rows]
            c_k = counts[rows]
            if k == 0:
                ts_acc[active] = t_k
                cnt_acc[active] = c_k
            else:
                prev_ts = ts_acc[active]
                prev_cnt = cnt_acc[active]
                total = prev_cnt + c_k
                positive = total > 0
                merged = prev_ts.copy()
                merged[positive] = ((prev_ts[positive] * prev_cnt[positive]
                                     + t_k[positive] * c_k[positive])
                                    / total[positive])
                ts_acc[active] = merged
                cnt_acc[active] = total
            k += 1
            active = active[sizes[active] > k]

        # Materialise the merged edges in first-appearance order.  tolist()
        # hands the loop native python scalars, so the body is just the Edge
        # construction plus the three index-dict stores.
        src_nodes = [node_keys[c] for c in (uniq_pairs // num_keys)[pair_appearance].tolist()]
        dst_nodes = [node_keys[c] for c in (uniq_pairs % num_keys)[pair_appearance].tolist()]
        edges = self._edges
        edge_seq = self._edge_seq
        seq = len(edges)
        for src, dst, amount, count, ts in zip(
                src_nodes, dst_nodes, edge_amounts.tolist(),
                edge_counts.tolist(), ts_acc.tolist()):
            edge = Edge(src, dst, amount, count, ts)
            key = (src, dst)
            edge_seq[key] = seq
            seq += 1
            edges[key] = edge
            out_index[src][dst] = edge
            in_index[dst][src] = edge

    def has_edge(self, src: Hashable, dst: Hashable) -> bool:
        return (src, dst) in self._edges

    def get_edge(self, src: Hashable, dst: Hashable) -> Edge:
        return self._edges[(src, dst)]

    def edges_between(self, u: Hashable, v: Hashable) -> list[Edge]:
        """Merged edges connecting ``u`` and ``v`` in either direction.

        Returns ``[Edge(u, v)]``, ``[Edge(v, u)]``, both (forward first) or an
        empty list; for a self pair (``u == v``) at most the single loop edge.
        """
        edges = []
        forward = self._edges.get((u, v))
        if forward is not None:
            edges.append(forward)
        if u != v:
            backward = self._edges.get((v, u))
            if backward is not None:
                edges.append(backward)
        return edges

    @property
    def edges(self) -> list[Edge]:
        return list(self._edges.values())

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def out_edges(self, node: Hashable) -> Iterator[Edge]:
        yield from self._out.get(node, {}).values()

    def in_edges(self, node: Hashable) -> Iterator[Edge]:
        yield from self._in.get(node, {}).values()

    def out_degree(self, node: Hashable) -> int:
        return len(self._out.get(node, ()))

    def in_degree(self, node: Hashable) -> int:
        return len(self._in.get(node, ()))

    def neighbors(self, node: Hashable) -> set[Hashable]:
        """Return successors and predecessors of ``node`` (undirected neighbourhood)."""
        return set(self._out.get(node, ())) | set(self._in.get(node, ()))

    def degree(self, node: Hashable) -> int:
        """Number of distinct directed edges incident to ``node`` (a self-loop counts once)."""
        out_nbrs = self._out.get(node)
        in_nbrs = self._in.get(node)
        if out_nbrs is None and in_nbrs is None:
            return 0
        loop = 1 if out_nbrs and node in out_nbrs else 0
        return len(out_nbrs or ()) + len(in_nbrs or ()) - loop

    # ----------------------------------------------------------------- matrices
    def _edge_index_arrays(self, weighted: bool) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(rows, cols, values) over merged edges in insertion order."""
        m = len(self._edges)
        rows = np.empty(m, dtype=np.int64)
        cols = np.empty(m, dtype=np.int64)
        vals = np.empty(m, dtype=np.float64)
        nodes = self._nodes
        for i, ((src, dst), edge) in enumerate(self._edges.items()):
            rows[i] = nodes[src]
            cols[i] = nodes[dst]
            vals[i] = edge.amount if weighted else 1.0
        return rows, cols, vals

    def adjacency_matrix(self, weighted: bool = False, symmetric: bool = False) -> np.ndarray:
        """Dense adjacency matrix in node-insertion order.

        Parameters
        ----------
        weighted:
            Use edge amounts instead of 0/1 entries.
        symmetric:
            Return ``max(A, A.T)`` — the undirected view used by the GNN encoders.
        """
        n = self.num_nodes
        adj = np.zeros((n, n), dtype=np.float64)
        if self._edges:
            rows, cols, vals = self._edge_index_arrays(weighted)
            adj[rows, cols] = vals
        if symmetric:
            adj = np.maximum(adj, adj.T)
        return adj

    def to_csr(self, weighted: bool = False, symmetric: bool = False,
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sparse CSR adjacency ``(indptr, indices, data)`` in node-insertion order.

        The arrays satisfy the standard CSR contract: row ``i``'s non-zero
        columns are ``indices[indptr[i]:indptr[i + 1]]`` (sorted ascending) with
        values ``data[indptr[i]:indptr[i + 1]]``.  ``symmetric=True`` mirrors
        :meth:`adjacency_matrix`: the ``max(A, A.T)`` undirected view.
        """
        n = self.num_nodes
        if not self._edges:
            return (np.zeros(n + 1, dtype=np.int64),
                    np.zeros(0, dtype=np.int64),
                    np.zeros(0, dtype=np.float64))
        rows, cols, vals = self._edge_index_arrays(weighted)
        if symmetric:
            rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
            vals = np.concatenate([vals, vals])
        # Sort by (row, col) and collapse duplicate slots (reciprocal edges in
        # the symmetric view) with max, matching max(A, A.T).
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        keys = rows * n + cols
        starts = np.flatnonzero(np.diff(keys, prepend=keys[0] - 1))
        rows, cols = rows[starts], cols[starts]
        vals = np.maximum.reduceat(vals, starts)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=n), out=indptr[1:])
        return indptr, cols, vals

    def feature_matrix(self, key: str = "features", dim: int | None = None) -> np.ndarray:
        """Stack per-node feature vectors stored under attribute ``key``."""
        rows = []
        for node in self._node_order:
            vec = self._node_attrs[node].get(key)
            if vec is None:
                if dim is None:
                    raise KeyError(f"node {node!r} has no attribute {key!r} and no dim fallback")
                vec = np.zeros(dim)
            rows.append(np.asarray(vec, dtype=np.float64))
        if not rows:
            return np.zeros((0, dim or 0))
        return np.vstack(rows)

    def edge_feature_matrix(self) -> np.ndarray:
        """Edge features ``[amount, count]`` in edge-insertion order."""
        if not self._edges:
            return np.zeros((0, 2))
        return np.array([[e.amount, float(e.count)] for e in self._edges.values()])

    # --------------------------------------------------------------- subgraphs
    def subgraph(self, nodes: Iterable[Hashable]) -> "TxGraph":
        """Induced subgraph on ``nodes``, preserving node attributes and edges.

        Node and edge insertion order follow the parent graph, so matrices built
        from the subgraph are reproducible regardless of the order of ``nodes``.
        """
        keep = {node for node in nodes if node in self._nodes}
        sub = TxGraph()
        node_index = self._nodes
        for i, node in enumerate(sorted(keep, key=node_index.__getitem__)):
            sub._nodes[node] = i
            sub._node_order.append(node)
            sub._node_attrs[node] = dict(self._node_attrs[node])
            sub._out[node] = {}
            sub._in[node] = {}
        if len(keep) * 4 < len(self._node_order):
            # Gather incident edges from the per-node index: O(sum deg), then
            # restore global insertion order via the per-edge sequence number.
            keys = [(src, dst) for src in keep for dst in self._out[src] if dst in keep]
            keys.sort(key=self._edge_seq.__getitem__)
            kept_edges = [(key, self._edges[key]) for key in keys]
        else:
            # Dense selection: a single ordered pass over the edge dict.
            kept_edges = [(key, edge) for key, edge in self._edges.items()
                          if key[0] in keep and key[1] in keep]
        # Bulk-insert: kept edges are already merged and Edge is frozen, so the
        # instances can be shared with the parent instead of re-merged through
        # add_edge.
        sub_edges = sub._edges
        sub_seq = sub._edge_seq
        sub_out = sub._out
        sub_in = sub._in
        for seq, (key, edge) in enumerate(kept_edges):
            sub_edges[key] = edge
            sub_seq[key] = seq
            src, dst = key
            sub_out[src][dst] = edge
            sub_in[dst][src] = edge
        return sub

    def copy(self) -> "TxGraph":
        return self.subgraph(self._node_order)

    def to_networkx(self):
        """Convert to a :class:`networkx.DiGraph` (for interop and validation)."""
        import networkx as nx

        g = nx.DiGraph()
        for node in self._node_order:
            g.add_node(node, **self._node_attrs[node])
        for (src, dst), edge in self._edges.items():
            g.add_edge(src, dst, amount=edge.amount, count=edge.count,
                       timestamp=edge.timestamp)
        return g

    def __repr__(self) -> str:
        return f"TxGraph(nodes={self.num_nodes}, edges={self.num_edges})"
