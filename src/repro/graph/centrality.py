"""Node and edge centralities used by adaptive graph augmentation.

The GSG encoder's topology-level augmentation (Section IV-A3) drops edges whose
*edge centrality* is low, where edge centrality is derived from node centrality
under three measures: degree, eigenvector and PageRank centrality.
"""

from __future__ import annotations

import numpy as np

from repro.graph.txgraph import TxGraph

__all__ = [
    "degree_centrality",
    "eigenvector_centrality",
    "pagerank_centrality",
    "edge_centrality",
]


def degree_centrality(graph: TxGraph) -> dict:
    """Degree centrality: degree divided by the maximum possible degree."""
    n = graph.num_nodes
    if n <= 1:
        return {node: 0.0 for node in graph.nodes}
    scale = 1.0 / (n - 1)
    return {node: graph.degree(node) * scale for node in graph.nodes}


def eigenvector_centrality(graph: TxGraph, max_iter: int = 100, tol: float = 1e-8) -> dict:
    """Eigenvector centrality by power iteration on the symmetrised adjacency."""
    nodes = graph.nodes
    n = len(nodes)
    if n == 0:
        return {}
    # Power iteration on (A + I): the identity shift keeps the eigenvector order
    # while preventing oscillation on bipartite graphs (e.g. star subgraphs).
    adj = graph.adjacency_matrix(symmetric=True) + np.eye(n)
    x = np.full(n, 1.0 / n)
    for _ in range(max_iter):
        x_next = adj @ x + 1e-12
        x_next = x_next / np.linalg.norm(x_next)
        if np.linalg.norm(x_next - x) < tol:
            x = x_next
            break
        x = x_next
    x = np.abs(x)
    return dict(zip(nodes, x))


def pagerank_centrality(graph: TxGraph, damping: float = 0.85, max_iter: int = 100,
                        tol: float = 1e-10) -> dict:
    """PageRank on the directed adjacency with uniform teleport distribution."""
    nodes = graph.nodes
    n = len(nodes)
    if n == 0:
        return {}
    adj = graph.adjacency_matrix()
    out_degree = adj.sum(axis=1)
    rank = np.full(n, 1.0 / n)
    for _ in range(max_iter):
        new_rank = np.full(n, (1.0 - damping) / n)
        for i in range(n):
            if out_degree[i] > 0:
                new_rank += damping * rank[i] * adj[i] / out_degree[i]
            else:
                # Dangling node: distribute its rank uniformly.
                new_rank += damping * rank[i] / n
        if np.abs(new_rank - rank).sum() < tol:
            rank = new_rank
            break
        rank = new_rank
    return dict(zip(nodes, rank))


def edge_centrality(graph: TxGraph, measure: str = "degree") -> dict:
    """Edge centrality as the mean of its endpoints' node centrality.

    Parameters
    ----------
    graph:
        The subgraph to score.
    measure:
        One of ``"degree"``, ``"eigenvector"`` or ``"pagerank"``.
    """
    if measure == "degree":
        node_scores = degree_centrality(graph)
    elif measure == "eigenvector":
        node_scores = eigenvector_centrality(graph)
    elif measure == "pagerank":
        node_scores = pagerank_centrality(graph)
    else:
        raise ValueError(f"unknown centrality measure: {measure!r}")
    return {
        (edge.src, edge.dst): 0.5 * (node_scores[edge.src] + node_scores[edge.dst])
        for edge in graph.edges
    }
