"""Node and edge centralities used by adaptive graph augmentation.

The GSG encoder's topology-level augmentation (Section IV-A3) drops edges whose
*edge centrality* is low, where edge centrality is derived from node centrality
under three measures: degree, eigenvector and PageRank centrality.  All three
read the graph's edge columns (or its cached CSR arrays) directly — no
:class:`~repro.graph.txgraph.Edge` object is materialised.
"""

from __future__ import annotations

import numpy as np

from repro.graph.txgraph import TxGraph

__all__ = [
    "degree_centrality",
    "eigenvector_centrality",
    "pagerank_centrality",
    "edge_centrality",
]


def degree_centrality(graph: TxGraph) -> dict:
    """Degree centrality: degree divided by the maximum possible degree."""
    n = graph.num_nodes
    if n <= 1:
        return {node: 0.0 for node in graph.nodes}
    scale = 1.0 / (n - 1)
    degrees = graph.degree_vector()
    return dict(zip(graph.nodes, (degrees * scale).tolist()))


def _csr_row_ids(indptr: np.ndarray) -> np.ndarray:
    """Expand a CSR ``indptr`` into the row id of every stored entry."""
    return np.repeat(np.arange(len(indptr) - 1), np.diff(indptr))


def eigenvector_centrality(graph: TxGraph, max_iter: int = 100, tol: float = 1e-8) -> dict:
    """Eigenvector centrality by power iteration on the symmetrised adjacency.

    The iteration runs on the graph's CSR arrays (:meth:`TxGraph.to_csr`), so
    each matvec costs O(E) instead of the O(n^2) dense product.
    """
    nodes = graph.nodes
    n = len(nodes)
    if n == 0:
        return {}
    # Power iteration on (A + I): the identity shift keeps the eigenvector order
    # while preventing oscillation on bipartite graphs (e.g. star subgraphs).
    indptr, indices, data = graph.to_csr(symmetric=True)
    rows = _csr_row_ids(indptr)
    x = np.full(n, 1.0 / n)
    for _ in range(max_iter):
        x_next = np.bincount(rows, weights=data * x[indices], minlength=n) + x + 1e-12
        x_next = x_next / np.linalg.norm(x_next)
        if np.linalg.norm(x_next - x) < tol:
            x = x_next
            break
        x = x_next
    x = np.abs(x)
    return dict(zip(nodes, x))


def pagerank_centrality(graph: TxGraph, damping: float = 0.85, max_iter: int = 100,
                        tol: float = 1e-10) -> dict:
    """PageRank on the directed adjacency with uniform teleport distribution.

    Rank is propagated along the CSR edge list (O(E) per iteration); dangling
    nodes spread their rank uniformly, matching the dense reference
    formulation.
    """
    nodes = graph.nodes
    n = len(nodes)
    if n == 0:
        return {}
    indptr, indices, _data = graph.to_csr()
    rows = _csr_row_ids(indptr)
    out_degree = np.diff(indptr).astype(np.float64)
    dangling = out_degree == 0
    rank = np.full(n, 1.0 / n)
    for _ in range(max_iter):
        spread = np.zeros(n)
        np.divide(rank, out_degree, out=spread, where=~dangling)
        new_rank = (np.full(n, (1.0 - damping) / n)
                    + damping * np.bincount(indices, weights=spread[rows], minlength=n)
                    + damping * rank[dangling].sum() / n)
        if np.abs(new_rank - rank).sum() < tol:
            rank = new_rank
            break
        rank = new_rank
    return dict(zip(nodes, rank))


def edge_centrality(graph: TxGraph, measure: str = "degree") -> dict:
    """Edge centrality as the mean of its endpoints' node centrality.

    Parameters
    ----------
    graph:
        The subgraph to score.
    measure:
        One of ``"degree"``, ``"eigenvector"`` or ``"pagerank"``.

    Returns a ``(src, dst) -> score`` dict over merged edges, computed in one
    vectorised pass over the edge columns.
    """
    if measure == "degree":
        node_scores = degree_centrality(graph)
    elif measure == "eigenvector":
        node_scores = eigenvector_centrality(graph)
    elif measure == "pagerank":
        node_scores = pagerank_centrality(graph)
    else:
        raise ValueError(f"unknown centrality measure: {measure!r}")
    nodes = graph.nodes
    src_idx, dst_idx, _amount, _count, _ts = graph.edge_arrays()
    if not len(src_idx):
        return {}
    values = np.array([node_scores[node] for node in nodes], dtype=np.float64)
    scores = 0.5 * (values[src_idx] + values[dst_idx])
    return {(nodes[i], nodes[j]): score
            for i, j, score in zip(src_idx.tolist(), dst_idx.tolist(),
                                   scores.tolist())}
