"""Graph containers and algorithms used throughout the reproduction.

The paper manipulates account-interaction graphs at two granularities: a global
static graph with merged edges (total amount + count) and per-time-slice local
dynamic graphs.  :class:`~repro.graph.txgraph.TxGraph` is the common container;
:mod:`repro.graph.centrality` provides the degree / eigenvector / PageRank
centralities used by the adaptive graph augmentation of the GSG encoder.
"""

from repro.graph.txgraph import TxGraph, Edge
from repro.graph.sparse import SparseAdjacency
from repro.graph.centrality import (
    degree_centrality,
    eigenvector_centrality,
    pagerank_centrality,
    edge_centrality,
)
from repro.graph.sampling import ego_subgraph, top_k_neighbors

__all__ = [
    "TxGraph",
    "Edge",
    "SparseAdjacency",
    "degree_centrality",
    "eigenvector_centrality",
    "pagerank_centrality",
    "edge_centrality",
    "ego_subgraph",
    "top_k_neighbors",
]
