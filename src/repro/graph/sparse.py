"""CSR sparse adjacency value type shared by the data pipeline and the GNN stack.

:class:`SparseAdjacency` wraps the ``(indptr, indices, data)`` arrays produced
by :meth:`TxGraph.to_csr` (or converted from a dense matrix) and provides the
O(E) primitives message passing is built on: row-segment reductions, sparse
matrix/dense matrix products and their transposed counterparts.  Instances are
treated as **immutable** — every transformation (``with_self_loops``,
``binarized``, ``gcn_normalized``, ...) returns a new instance, which lets the
expensive derived forms be memoized per instance and reused across training
epochs.

The module is intentionally numpy-only (no autograd imports) so that the
``graph`` and ``data`` layers can depend on it; the gradient-aware operators
live in :mod:`repro.gnn.sparse_ops`.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["SparseAdjacency", "BatchedAdjacency", "segment_reduce"]


def segment_reduce(contrib: np.ndarray, indptr: np.ndarray, ufunc=np.add) -> np.ndarray:
    """Reduce row-sorted per-edge contributions into per-row outputs.

    ``contrib`` holds one entry per stored edge, ordered by CSR row (axis 0);
    ``indptr`` is the usual CSR row-pointer array.  Rows with no entries reduce
    to 0.  Implemented with ``ufunc.reduceat`` over the non-empty rows only:
    because empty rows contribute no boundaries, each non-empty row's segment
    ends exactly at the next non-empty row's start.
    """
    num_rows = len(indptr) - 1
    out_shape = (num_rows,) + contrib.shape[1:]
    out = np.zeros(out_shape, dtype=np.float64)
    if contrib.shape[0] == 0:
        return out
    nonempty = indptr[1:] > indptr[:-1]
    if nonempty.any():
        out[nonempty] = ufunc.reduceat(contrib, indptr[:-1][nonempty], axis=0)
    return out


class SparseAdjacency:
    """An immutable square adjacency matrix in CSR form.

    Invariants (the same contract as :meth:`TxGraph.to_csr`):

    * ``indptr`` has length ``num_nodes + 1`` with ``indptr[0] == 0``;
    * row ``i``'s stored columns are ``indices[indptr[i]:indptr[i+1]]``,
      sorted ascending and without duplicates;
    * ``data`` holds the matching values (explicit zeros are allowed — they
      arise from augmentation edge drops — and are ignored by the binarized
      structure).

    Derived forms are memoized on the instance, so callers must never mutate
    the arrays of a ``SparseAdjacency`` they did not just create.  Memo builds
    are guarded by a per-instance lock (double-checked), so concurrent readers
    — e.g. parallel scoring threads normalising a shared subgraph adjacency —
    all observe the same derived instance, bit-identical to a single-threaded
    build.
    """

    __slots__ = ("indptr", "indices", "data", "num_nodes", "_memo", "_lock")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, data: np.ndarray):
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        if self.indptr.ndim != 1 or len(self.indptr) < 1:
            raise ValueError("indptr must be a 1-D array of length num_nodes + 1")
        self.num_nodes = len(self.indptr) - 1
        if len(self.indices) != len(self.data) or self.indptr[-1] != len(self.indices):
            raise ValueError("indices/data lengths must match indptr[-1]")
        self._memo: dict = {}
        # Reentrant: derived-form builds compose other memoized forms of the
        # same instance (gcn_normalized -> with_self_loops -> rows), so the
        # building thread re-enters _memoized while holding the lock.
        self._lock = threading.RLock()

    def __getstate__(self):
        # Locks are not picklable; memoized forms are cheap to rebuild.
        return (self.indptr, self.indices, self.data)

    def __setstate__(self, state):
        self.__init__(*state)

    # ---------------------------------------------------------------- builders
    @classmethod
    def coerce(cls, adjacency) -> "SparseAdjacency":
        """Pass through a :class:`SparseAdjacency`; convert a dense matrix."""
        if isinstance(adjacency, cls):
            return adjacency
        return cls.from_dense(adjacency)

    @classmethod
    def from_dense(cls, adjacency: np.ndarray) -> "SparseAdjacency":
        """CSR view of a dense square matrix (non-zero entries, row-major order)."""
        adj = np.asarray(adjacency, dtype=np.float64)
        if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
            raise ValueError("adjacency must be a square matrix")
        rows, cols = np.nonzero(adj)
        indptr = np.zeros(adj.shape[0] + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=adj.shape[0]), out=indptr[1:])
        return cls(indptr, cols.astype(np.int64), adj[rows, cols])

    @classmethod
    def from_graph(cls, graph, weighted: bool = False, symmetric: bool = True,
                   ) -> "SparseAdjacency":
        """CSR adjacency of a :class:`~repro.graph.txgraph.TxGraph`.

        ``TxGraph.to_csr`` memoizes its arrays per ``(weighted, symmetric)``
        until the graph mutates, so instances built repeatedly from the same
        graph share the underlying arrays zero-copy — safe because
        ``SparseAdjacency`` already treats its arrays as immutable.
        """
        return cls(*graph.to_csr(weighted=weighted, symmetric=symmetric))

    @classmethod
    def from_coo(cls, rows, cols, vals, num_nodes: int, combine=np.add,
                 ) -> "SparseAdjacency":
        """Build from COO triplets; duplicate slots are combined with ``combine``.

        ``combine`` must be a binary ufunc (``np.add`` for accumulating slicers,
        ``np.maximum`` for the ``max(A, A.T)`` symmetric view).
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if len(rows) == 0:
            return cls(np.zeros(num_nodes + 1, dtype=np.int64),
                       np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64))
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        keys = rows * num_nodes + cols
        starts = np.flatnonzero(np.diff(keys, prepend=keys[0] - 1))
        rows, cols = rows[starts], cols[starts]
        vals = combine.reduceat(vals, starts)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=num_nodes), out=indptr[1:])
        return cls(indptr, cols, vals)

    @classmethod
    def empty(cls, num_nodes: int) -> "SparseAdjacency":
        return cls(np.zeros(num_nodes + 1, dtype=np.int64),
                   np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64))

    #: Derived forms that :meth:`block_diagonal` can compose block-wise:
    #: name of the zero-argument builder method -> its memo key.  Each form is
    #: *local* (an entry of the derived matrix depends only on its own block),
    #: so the block-diagonal of the per-sample derived forms equals the derived
    #: form of the block-diagonal matrix bit-for-bit.
    _BLOCKWISE_DERIVED = {
        "binarized": "binarized",
        "mean_normalized": "mean_normalized",
        "attention_structure": "attention_structure",
        "gcn_normalized": ("gcn_normalized", True),
        "with_self_loops": ("self_loops", 1.0),
    }

    @classmethod
    def block_diagonal(cls, samples, derived: tuple = (),
                       compose_plans: bool = False) -> "BatchedAdjacency":
        """Stack per-sample adjacencies into one block-diagonal matrix.

        The returned :class:`BatchedAdjacency` carries the per-sample node and
        edge segment offsets (``node_offsets[b]:node_offsets[b+1]`` are sample
        ``b``'s rows), so a single sparse pass over the stack is exactly the
        per-sample passes run side by side: every row's stored entries — and
        therefore every segment reduction — are identical to the corresponding
        per-sample row's.

        ``derived`` names zero-argument derived forms (see
        ``_BLOCKWISE_DERIVED``) to compose block-wise from the samples'
        *memoized* forms instead of recomputing them on the stack: the
        per-sample instances cache their normalisations across training steps,
        so a fresh stack inherits them in O(nnz) concatenation time.  The
        composition is bit-identical to computing the form on the stacked
        matrix (pinned by the hypothesis suite in
        ``tests/test_batched_training.py``).

        ``compose_plans=True`` additionally seeds the transpose plan (the
        column-sort behind :meth:`rmatmul` and every sparse backward pass) of
        the stack — and of each composed derived form — from the samples'
        memoized plans.  Block-diagonal columns are segmented by block, so the
        stacked column sort is exactly the per-block sorts laid side by side;
        each per-sample ``lexsort`` then runs once ever instead of once per
        minibatch per epoch.
        """
        samples = list(samples)
        if not samples:
            raise ValueError("block_diagonal requires at least one sample")
        node_offsets = np.zeros(len(samples) + 1, dtype=np.int64)
        edge_offsets = np.zeros(len(samples) + 1, dtype=np.int64)
        np.cumsum([s.num_nodes for s in samples], out=node_offsets[1:])
        np.cumsum([s.nnz for s in samples], out=edge_offsets[1:])
        indptr = np.zeros(node_offsets[-1] + 1, dtype=np.int64)
        pieces = [s.indptr[1:] + offset
                  for s, offset in zip(samples, edge_offsets[:-1])]
        if pieces:
            np.concatenate(pieces, out=indptr[1:])
        indices = np.concatenate(
            [s.indices + offset for s, offset in zip(samples, node_offsets[:-1])]
        ) if edge_offsets[-1] else np.zeros(0, dtype=np.int64)
        data = np.concatenate([s.data for s in samples]) \
            if edge_offsets[-1] else np.zeros(0, dtype=np.float64)
        stacked = BatchedAdjacency(indptr, indices, data,
                                   node_offsets=node_offsets,
                                   edge_offsets=edge_offsets)
        if compose_plans:
            t_indptr = np.zeros(node_offsets[-1] + 1, dtype=np.int64)
            t_pieces = [s._transpose_plan()[1][1:] + offset
                        for s, offset in zip(samples, edge_offsets[:-1])]
            if t_pieces:
                np.concatenate(t_pieces, out=t_indptr[1:])
            perm = np.concatenate(
                [s._transpose_plan()[0] + offset
                 for s, offset in zip(samples, edge_offsets[:-1])]
            ) if edge_offsets[-1] else np.zeros(0, dtype=np.int64)
            stacked._memo["transpose_plan"] = (perm, t_indptr)
        for name in derived:
            key = cls._BLOCKWISE_DERIVED[name]
            stacked._memo[key] = cls.block_diagonal(
                [getattr(s, name)() for s in samples],
                compose_plans=compose_plans)
        return stacked

    # --------------------------------------------------------------- accessors
    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_nodes, self.num_nodes)

    @property
    def nnz(self) -> int:
        return len(self.data)

    @property
    def rows(self) -> np.ndarray:
        """COO row index per stored entry (cached expansion of ``indptr``)."""
        return self._memoized("rows", lambda: np.repeat(
            np.arange(self.num_nodes, dtype=np.int64), np.diff(self.indptr)))

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        if self.nnz:
            dense[self.rows, self.indices] = self.data
        return dense

    def row_sums(self) -> np.ndarray:
        """Per-row sum of stored values (the weighted degree vector)."""
        return segment_reduce(self.data, self.indptr)

    def is_symmetric(self) -> bool:
        """Structure and values equal to the transpose (within allclose, cached)."""
        def build():
            t = self.transpose()
            return (np.array_equal(self.indptr, t.indptr)
                    and np.array_equal(self.indices, t.indices)
                    and np.allclose(self.data, t.data))
        return self._memoized("is_symmetric", build)

    # ------------------------------------------------------------- derived forms
    def _memoized(self, key, build):
        # Double-checked: the lock-free read hits after the first build (dict
        # reads are atomic under the GIL), the lock serialises first builds so
        # every thread shares the one instance built by the winner.
        value = self._memo.get(key)
        if value is None:
            with self._lock:
                value = self._memo.get(key)
                if value is None:
                    value = build()
                    self._memo[key] = value
        return value

    def transpose(self) -> "SparseAdjacency":
        """``A.T`` in CSR form (cached; stored slots are unique so no combining)."""
        return self._memoized("transpose", lambda: SparseAdjacency.from_coo(
            self.indices, self.rows, self.data, self.num_nodes))

    def with_self_loops(self, value: float = 1.0) -> "SparseAdjacency":
        """``A + value * I`` — existing diagonal entries are incremented."""
        def build():
            diag = np.arange(self.num_nodes, dtype=np.int64)
            return SparseAdjacency.from_coo(
                np.concatenate([self.rows, diag]),
                np.concatenate([self.indices, diag]),
                np.concatenate([self.data, np.full(self.num_nodes, value)]),
                self.num_nodes)
        return self._memoized(("self_loops", value), build)

    def binarized(self) -> "SparseAdjacency":
        """Structure of the strictly positive entries with unit values.

        Mirrors the dense ``(A > 0).astype(float)`` masks used by the seed GIN,
        SAGE and GAT layers; non-positive stored entries are dropped.
        """
        def build():
            keep = self.data > 0
            indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
            np.cumsum(np.bincount(self.rows[keep], minlength=self.num_nodes),
                      out=indptr[1:])
            return SparseAdjacency(indptr, self.indices[keep],
                                   np.ones(int(keep.sum()), dtype=np.float64))
        return self._memoized("binarized", build)

    def pruned(self) -> "SparseAdjacency":
        """Drop explicit zero entries (e.g. after augmentation edge drops)."""
        keep = self.data != 0
        if keep.all():
            return self
        indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        np.cumsum(np.bincount(self.rows[keep], minlength=self.num_nodes),
                  out=indptr[1:])
        return SparseAdjacency(indptr, self.indices[keep], self.data[keep])

    def _symmetrize_plan(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(order, starts, out_indices, out_indptr) of the ``max(A, A.T)`` scan.

        The sort/dedup of the doubled COO depends only on the structure, so it
        is computed once and replayed against any value vector that shares this
        instance's sparsity pattern — e.g. every augmentation edge-drop draw.
        """
        def build():
            rows = np.concatenate([self.rows, self.indices])
            cols = np.concatenate([self.indices, self.rows])
            order = np.lexsort((cols, rows))
            rows, cols = rows[order], cols[order]
            keys = rows * self.num_nodes + cols
            starts = np.flatnonzero(np.diff(keys, prepend=keys[0] - 1))
            indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
            np.cumsum(np.bincount(rows[starts], minlength=self.num_nodes),
                      out=indptr[1:])
            return order, starts, cols[starts], indptr
        return self._memoized("symmetrize_plan", build)

    def symmetrized_max(self, data: np.ndarray | None = None) -> "SparseAdjacency":
        """``max(A, A.T)`` for non-negative matrices (absent entries count as 0).

        ``data`` optionally substitutes a different value vector over this
        instance's sparsity pattern (same length and slot order), reusing the
        memoized sort/dedup plan — the hot path of repeated augmentations.
        """
        vals = self.data if data is None else np.asarray(data, dtype=np.float64)
        if self.nnz == 0:
            return self if data is None else SparseAdjacency(
                self.indptr, self.indices, vals)
        order, starts, out_indices, out_indptr = self._symmetrize_plan()
        doubled = np.concatenate([vals, vals])[order]
        return SparseAdjacency(out_indptr, out_indices,
                               np.maximum.reduceat(doubled, starts))

    def scale(self, row: np.ndarray | None = None, col: np.ndarray | None = None,
              ) -> "SparseAdjacency":
        """``diag(row) @ A @ diag(col)`` (either factor optional)."""
        data = self.data
        if row is not None:
            data = data * np.asarray(row, dtype=np.float64)[self.rows]
        if col is not None:
            data = data * np.asarray(col, dtype=np.float64)[self.indices]
        return SparseAdjacency(self.indptr, self.indices, data)

    def gcn_normalized(self, add_self_loops: bool = True) -> "SparseAdjacency":
        """Symmetric GCN normalisation ``D^{-1/2} (A + I) D^{-1/2}`` (cached).

        Zero-degree rows (isolated nodes when ``add_self_loops=False``, or rows
        whose weights sum to zero) get a zero inverse square root instead of a
        division by zero, matching the dense :func:`normalize_adjacency` guard.
        """
        def build():
            adj = self.with_self_loops() if add_self_loops else self
            degree = adj.row_sums()
            inv_sqrt = np.zeros_like(degree)
            nonzero = degree > 0
            inv_sqrt[nonzero] = degree[nonzero] ** -0.5
            return adj.scale(row=inv_sqrt, col=inv_sqrt)
        return self._memoized(("gcn_normalized", add_self_loops), build)

    def mean_normalized(self) -> "SparseAdjacency":
        """Row-stochastic binarized adjacency (zero-degree rows stay zero, cached).

        Matches the seed GraphSAGE aggregation: ``(A > 0) / max(degree, 1)``.
        """
        def build():
            binary = self.binarized()
            degree = binary.row_sums()
            degree[degree == 0] = 1.0
            return binary.scale(row=1.0 / degree)
        return self._memoized("mean_normalized", build)

    def attention_structure(self) -> "SparseAdjacency":
        """Edge set used by attention: positive entries plus self loops (cached)."""
        return self._memoized("attention_structure",
                              lambda: self.binarized().with_self_loops())

    # ----------------------------------------------------------------- products
    def _transpose_plan(self) -> tuple[np.ndarray, np.ndarray]:
        """(permutation, indptr) that re-sorts stored entries by column.

        ``contrib[perm]`` is column-sorted, so ``segment_reduce(contrib[perm],
        t_indptr)`` scatters per-edge contributions into per-column outputs —
        the kernel behind :meth:`rmatmul` and the backward pass of sparse
        message passing.
        """
        def build():
            perm = np.lexsort((self.rows, self.indices))
            t_indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
            np.cumsum(np.bincount(self.indices, minlength=self.num_nodes),
                      out=t_indptr[1:])
            return perm, t_indptr
        return self._memoized("transpose_plan", build)

    def _rows_nonempty(self) -> bool:
        """True when every CSR row stores at least one entry (cached)."""
        return self._memoized(
            "rows_nonempty", lambda: bool((self.indptr[1:] > self.indptr[:-1]).all()))

    def _cols_nonempty(self) -> bool:
        """True when every column stores at least one entry (cached)."""
        def build():
            _, t_indptr = self._transpose_plan()
            return bool((t_indptr[1:] > t_indptr[:-1]).all())
        return self._memoized("cols_nonempty", build)

    def reduce_rows(self, contrib: np.ndarray, ufunc=np.add) -> np.ndarray:
        """Reduce row-ordered per-edge contributions into per-row outputs.

        Same result as ``segment_reduce(contrib, self.indptr, ufunc)``; when
        every row is non-empty (self-looped structures — the message-passing
        hot path) the reduction runs straight off ``indptr`` with no zero
        buffer or mask.
        """
        if contrib.shape[0] and self._rows_nonempty():
            return ufunc.reduceat(contrib, self.indptr[:-1], axis=0)
        return segment_reduce(contrib, self.indptr, ufunc)

    def reduce_cols(self, contrib: np.ndarray, ufunc=np.add) -> np.ndarray:
        """Reduce row-ordered per-edge contributions into per-column outputs,
        re-sorting through the memoized transpose plan."""
        perm, t_indptr = self._transpose_plan()
        if contrib.shape[0] and self._cols_nonempty():
            return ufunc.reduceat(contrib[perm], t_indptr[:-1], axis=0)
        return segment_reduce(contrib[perm], t_indptr, ufunc)

    def _rmatmul_plan(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Pre-permuted ``(rows[perm], data[perm], t_indptr)`` for ``A.T @ g``.

        Gathering ``g`` by ``rows[perm]`` and scaling by ``data[perm]`` yields
        entry-for-entry the column-sorted contributions that
        ``(g[rows] * data)[perm]`` would — same scalar products, same
        ``reduceat`` accumulation order — with one full-width pass instead of
        a compute-then-permute pair.
        """
        def build():
            perm, t_indptr = self._transpose_plan()
            return self.rows[perm], self.data[perm], t_indptr
        return self._memoized("rmatmul_plan", build)

    def matmul(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` for a dense vector or matrix ``x``."""
        x = np.asarray(x, dtype=np.float64)
        contrib = x[self.indices]          # fresh gather — in-place scale is safe
        contrib *= self.data if x.ndim == 1 else self.data[:, None]
        return self.reduce_rows(contrib)

    def rmatmul(self, g: np.ndarray) -> np.ndarray:
        """``A.T @ g`` for a dense vector or matrix ``g`` (no transpose copy)."""
        g = np.asarray(g, dtype=np.float64)
        rows_perm, data_perm, t_indptr = self._rmatmul_plan()
        contrib = g[rows_perm]             # fresh gather — in-place scale is safe
        contrib *= data_perm if g.ndim == 1 else data_perm[:, None]
        if contrib.shape[0] and self._cols_nonempty():
            return np.add.reduceat(contrib, t_indptr[:-1], axis=0)
        return segment_reduce(contrib, t_indptr, np.add)

    def __repr__(self) -> str:
        return f"SparseAdjacency(n={self.num_nodes}, nnz={self.nnz})"


class BatchedAdjacency(SparseAdjacency):
    """A block-diagonal :class:`SparseAdjacency` that remembers its blocks.

    Built by :meth:`SparseAdjacency.block_diagonal`.  ``node_offsets`` /
    ``edge_offsets`` are ``(num_graphs + 1,)`` int64 arrays: sample ``b`` owns
    rows ``node_offsets[b]:node_offsets[b+1]`` and stored entries
    ``edge_offsets[b]:edge_offsets[b+1]``.  All derived forms remain plain
    block-diagonal matrices (offsets unchanged by construction), so batched
    consumers keep reading the offsets from the instance they built.
    """

    __slots__ = ("node_offsets", "edge_offsets")

    def __init__(self, indptr, indices, data, node_offsets=None, edge_offsets=None):
        super().__init__(indptr, indices, data)
        if node_offsets is None:            # degenerate: one block
            node_offsets = np.array([0, self.num_nodes], dtype=np.int64)
        if edge_offsets is None:
            edge_offsets = np.array([0, self.nnz], dtype=np.int64)
        self.node_offsets = np.asarray(node_offsets, dtype=np.int64)
        self.edge_offsets = np.asarray(edge_offsets, dtype=np.int64)
        if self.node_offsets[-1] != self.num_nodes:
            raise ValueError("node_offsets must span all rows")
        if self.edge_offsets[-1] != self.nnz:
            raise ValueError("edge_offsets must span all stored entries")

    def __getstate__(self):
        return (self.indptr, self.indices, self.data,
                self.node_offsets, self.edge_offsets)

    def __setstate__(self, state):
        self.__init__(*state)

    @classmethod
    def from_dense_blocks(cls, blocks: np.ndarray) -> "BatchedAdjacency":
        """Block-diagonal CSR of a dense ``(B, c, c)`` stack, in one pass.

        Equivalent to ``SparseAdjacency.block_diagonal([from_dense(b) for b in
        blocks])`` bit-for-bit (same row-major non-zero scan, same dropped
        zeros), without materialising ``B`` intermediate instances — the
        construction DiffPool's batched coarse adjacency needs once per pool
        layer per step.
        """
        blocks = np.asarray(blocks, dtype=np.float64)
        if blocks.ndim != 3 or blocks.shape[1] != blocks.shape[2]:
            raise ValueError("blocks must be a (B, c, c) stack of square matrices")
        num_graphs, c, _ = blocks.shape
        flat = blocks.reshape(num_graphs * c, c)
        rows_nz, cols_nz = np.nonzero(flat)
        indptr = np.zeros(num_graphs * c + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows_nz, minlength=num_graphs * c),
                  out=indptr[1:])
        indices = cols_nz.astype(np.int64) + (rows_nz // c) * c
        node_offsets = np.arange(num_graphs + 1, dtype=np.int64) * c
        return cls(indptr, indices, flat[rows_nz, cols_nz],
                   node_offsets=node_offsets,
                   edge_offsets=indptr[node_offsets])

    @property
    def num_graphs(self) -> int:
        return len(self.node_offsets) - 1

    def node_counts(self) -> np.ndarray:
        """Nodes per block, ``(num_graphs,)``."""
        return np.diff(self.node_offsets)

    def batch_vector(self) -> np.ndarray:
        """Block index per row (cached expansion of ``node_offsets``)."""
        return self._memoized("batch_vector", lambda: np.repeat(
            np.arange(self.num_graphs, dtype=np.int64), self.node_counts()))

    def blocks(self) -> list[SparseAdjacency]:
        """Split back into per-sample adjacencies (zero-copy data slices)."""
        out = []
        for b in range(self.num_graphs):
            n0, n1 = self.node_offsets[b], self.node_offsets[b + 1]
            e0, e1 = self.edge_offsets[b], self.edge_offsets[b + 1]
            out.append(SparseAdjacency(
                self.indptr[n0:n1 + 1] - self.indptr[n0],
                self.indices[e0:e1] - n0, self.data[e0:e1]))
        return out

    def __repr__(self) -> str:
        return (f"BatchedAdjacency(graphs={self.num_graphs}, "
                f"n={self.num_nodes}, nnz={self.nnz})")
