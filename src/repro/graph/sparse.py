"""CSR sparse adjacency value type shared by the data pipeline and the GNN stack.

:class:`SparseAdjacency` wraps the ``(indptr, indices, data)`` arrays produced
by :meth:`TxGraph.to_csr` (or converted from a dense matrix) and provides the
O(E) primitives message passing is built on: row-segment reductions, sparse
matrix/dense matrix products and their transposed counterparts.  Instances are
treated as **immutable** — every transformation (``with_self_loops``,
``binarized``, ``gcn_normalized``, ...) returns a new instance, which lets the
expensive derived forms be memoized per instance and reused across training
epochs.

The module is intentionally numpy-only (no autograd imports) so that the
``graph`` and ``data`` layers can depend on it; the gradient-aware operators
live in :mod:`repro.gnn.sparse_ops`.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["SparseAdjacency", "segment_reduce"]


def segment_reduce(contrib: np.ndarray, indptr: np.ndarray, ufunc=np.add) -> np.ndarray:
    """Reduce row-sorted per-edge contributions into per-row outputs.

    ``contrib`` holds one entry per stored edge, ordered by CSR row (axis 0);
    ``indptr`` is the usual CSR row-pointer array.  Rows with no entries reduce
    to 0.  Implemented with ``ufunc.reduceat`` over the non-empty rows only:
    because empty rows contribute no boundaries, each non-empty row's segment
    ends exactly at the next non-empty row's start.
    """
    num_rows = len(indptr) - 1
    out_shape = (num_rows,) + contrib.shape[1:]
    out = np.zeros(out_shape, dtype=np.float64)
    if contrib.shape[0] == 0:
        return out
    nonempty = indptr[1:] > indptr[:-1]
    if nonempty.any():
        out[nonempty] = ufunc.reduceat(contrib, indptr[:-1][nonempty], axis=0)
    return out


class SparseAdjacency:
    """An immutable square adjacency matrix in CSR form.

    Invariants (the same contract as :meth:`TxGraph.to_csr`):

    * ``indptr`` has length ``num_nodes + 1`` with ``indptr[0] == 0``;
    * row ``i``'s stored columns are ``indices[indptr[i]:indptr[i+1]]``,
      sorted ascending and without duplicates;
    * ``data`` holds the matching values (explicit zeros are allowed — they
      arise from augmentation edge drops — and are ignored by the binarized
      structure).

    Derived forms are memoized on the instance, so callers must never mutate
    the arrays of a ``SparseAdjacency`` they did not just create.  Memo builds
    are guarded by a per-instance lock (double-checked), so concurrent readers
    — e.g. parallel scoring threads normalising a shared subgraph adjacency —
    all observe the same derived instance, bit-identical to a single-threaded
    build.
    """

    __slots__ = ("indptr", "indices", "data", "num_nodes", "_memo", "_lock")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray, data: np.ndarray):
        self.indptr = np.asarray(indptr, dtype=np.int64)
        self.indices = np.asarray(indices, dtype=np.int64)
        self.data = np.asarray(data, dtype=np.float64)
        if self.indptr.ndim != 1 or len(self.indptr) < 1:
            raise ValueError("indptr must be a 1-D array of length num_nodes + 1")
        self.num_nodes = len(self.indptr) - 1
        if len(self.indices) != len(self.data) or self.indptr[-1] != len(self.indices):
            raise ValueError("indices/data lengths must match indptr[-1]")
        self._memo: dict = {}
        # Reentrant: derived-form builds compose other memoized forms of the
        # same instance (gcn_normalized -> with_self_loops -> rows), so the
        # building thread re-enters _memoized while holding the lock.
        self._lock = threading.RLock()

    def __getstate__(self):
        # Locks are not picklable; memoized forms are cheap to rebuild.
        return (self.indptr, self.indices, self.data)

    def __setstate__(self, state):
        self.__init__(*state)

    # ---------------------------------------------------------------- builders
    @classmethod
    def coerce(cls, adjacency) -> "SparseAdjacency":
        """Pass through a :class:`SparseAdjacency`; convert a dense matrix."""
        if isinstance(adjacency, cls):
            return adjacency
        return cls.from_dense(adjacency)

    @classmethod
    def from_dense(cls, adjacency: np.ndarray) -> "SparseAdjacency":
        """CSR view of a dense square matrix (non-zero entries, row-major order)."""
        adj = np.asarray(adjacency, dtype=np.float64)
        if adj.ndim != 2 or adj.shape[0] != adj.shape[1]:
            raise ValueError("adjacency must be a square matrix")
        rows, cols = np.nonzero(adj)
        indptr = np.zeros(adj.shape[0] + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=adj.shape[0]), out=indptr[1:])
        return cls(indptr, cols.astype(np.int64), adj[rows, cols])

    @classmethod
    def from_graph(cls, graph, weighted: bool = False, symmetric: bool = True,
                   ) -> "SparseAdjacency":
        """CSR adjacency of a :class:`~repro.graph.txgraph.TxGraph`.

        ``TxGraph.to_csr`` memoizes its arrays per ``(weighted, symmetric)``
        until the graph mutates, so instances built repeatedly from the same
        graph share the underlying arrays zero-copy — safe because
        ``SparseAdjacency`` already treats its arrays as immutable.
        """
        return cls(*graph.to_csr(weighted=weighted, symmetric=symmetric))

    @classmethod
    def from_coo(cls, rows, cols, vals, num_nodes: int, combine=np.add,
                 ) -> "SparseAdjacency":
        """Build from COO triplets; duplicate slots are combined with ``combine``.

        ``combine`` must be a binary ufunc (``np.add`` for accumulating slicers,
        ``np.maximum`` for the ``max(A, A.T)`` symmetric view).
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        vals = np.asarray(vals, dtype=np.float64)
        if len(rows) == 0:
            return cls(np.zeros(num_nodes + 1, dtype=np.int64),
                       np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64))
        order = np.lexsort((cols, rows))
        rows, cols, vals = rows[order], cols[order], vals[order]
        keys = rows * num_nodes + cols
        starts = np.flatnonzero(np.diff(keys, prepend=keys[0] - 1))
        rows, cols = rows[starts], cols[starts]
        vals = combine.reduceat(vals, starts)
        indptr = np.zeros(num_nodes + 1, dtype=np.int64)
        np.cumsum(np.bincount(rows, minlength=num_nodes), out=indptr[1:])
        return cls(indptr, cols, vals)

    @classmethod
    def empty(cls, num_nodes: int) -> "SparseAdjacency":
        return cls(np.zeros(num_nodes + 1, dtype=np.int64),
                   np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64))

    # --------------------------------------------------------------- accessors
    @property
    def shape(self) -> tuple[int, int]:
        return (self.num_nodes, self.num_nodes)

    @property
    def nnz(self) -> int:
        return len(self.data)

    @property
    def rows(self) -> np.ndarray:
        """COO row index per stored entry (cached expansion of ``indptr``)."""
        return self._memoized("rows", lambda: np.repeat(
            np.arange(self.num_nodes, dtype=np.int64), np.diff(self.indptr)))

    def to_dense(self) -> np.ndarray:
        dense = np.zeros(self.shape, dtype=np.float64)
        if self.nnz:
            dense[self.rows, self.indices] = self.data
        return dense

    def row_sums(self) -> np.ndarray:
        """Per-row sum of stored values (the weighted degree vector)."""
        return segment_reduce(self.data, self.indptr)

    def is_symmetric(self) -> bool:
        """Structure and values equal to the transpose (within allclose)."""
        t = self.transpose()
        return (np.array_equal(self.indptr, t.indptr)
                and np.array_equal(self.indices, t.indices)
                and np.allclose(self.data, t.data))

    # ------------------------------------------------------------- derived forms
    def _memoized(self, key, build):
        # Double-checked: the lock-free read hits after the first build (dict
        # reads are atomic under the GIL), the lock serialises first builds so
        # every thread shares the one instance built by the winner.
        value = self._memo.get(key)
        if value is None:
            with self._lock:
                value = self._memo.get(key)
                if value is None:
                    value = build()
                    self._memo[key] = value
        return value

    def transpose(self) -> "SparseAdjacency":
        """``A.T`` in CSR form (cached; stored slots are unique so no combining)."""
        return self._memoized("transpose", lambda: SparseAdjacency.from_coo(
            self.indices, self.rows, self.data, self.num_nodes))

    def with_self_loops(self, value: float = 1.0) -> "SparseAdjacency":
        """``A + value * I`` — existing diagonal entries are incremented."""
        def build():
            diag = np.arange(self.num_nodes, dtype=np.int64)
            return SparseAdjacency.from_coo(
                np.concatenate([self.rows, diag]),
                np.concatenate([self.indices, diag]),
                np.concatenate([self.data, np.full(self.num_nodes, value)]),
                self.num_nodes)
        return self._memoized(("self_loops", value), build)

    def binarized(self) -> "SparseAdjacency":
        """Structure of the strictly positive entries with unit values.

        Mirrors the dense ``(A > 0).astype(float)`` masks used by the seed GIN,
        SAGE and GAT layers; non-positive stored entries are dropped.
        """
        def build():
            keep = self.data > 0
            indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
            np.cumsum(np.bincount(self.rows[keep], minlength=self.num_nodes),
                      out=indptr[1:])
            return SparseAdjacency(indptr, self.indices[keep],
                                   np.ones(int(keep.sum()), dtype=np.float64))
        return self._memoized("binarized", build)

    def pruned(self) -> "SparseAdjacency":
        """Drop explicit zero entries (e.g. after augmentation edge drops)."""
        keep = self.data != 0
        if keep.all():
            return self
        indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
        np.cumsum(np.bincount(self.rows[keep], minlength=self.num_nodes),
                  out=indptr[1:])
        return SparseAdjacency(indptr, self.indices[keep], self.data[keep])

    def symmetrized_max(self) -> "SparseAdjacency":
        """``max(A, A.T)`` for non-negative matrices (absent entries count as 0)."""
        return SparseAdjacency.from_coo(
            np.concatenate([self.rows, self.indices]),
            np.concatenate([self.indices, self.rows]),
            np.concatenate([self.data, self.data]),
            self.num_nodes, combine=np.maximum)

    def scale(self, row: np.ndarray | None = None, col: np.ndarray | None = None,
              ) -> "SparseAdjacency":
        """``diag(row) @ A @ diag(col)`` (either factor optional)."""
        data = self.data
        if row is not None:
            data = data * np.asarray(row, dtype=np.float64)[self.rows]
        if col is not None:
            data = data * np.asarray(col, dtype=np.float64)[self.indices]
        return SparseAdjacency(self.indptr, self.indices, data)

    def gcn_normalized(self, add_self_loops: bool = True) -> "SparseAdjacency":
        """Symmetric GCN normalisation ``D^{-1/2} (A + I) D^{-1/2}`` (cached).

        Zero-degree rows (isolated nodes when ``add_self_loops=False``, or rows
        whose weights sum to zero) get a zero inverse square root instead of a
        division by zero, matching the dense :func:`normalize_adjacency` guard.
        """
        def build():
            adj = self.with_self_loops() if add_self_loops else self
            degree = adj.row_sums()
            inv_sqrt = np.zeros_like(degree)
            nonzero = degree > 0
            inv_sqrt[nonzero] = degree[nonzero] ** -0.5
            return adj.scale(row=inv_sqrt, col=inv_sqrt)
        return self._memoized(("gcn_normalized", add_self_loops), build)

    def mean_normalized(self) -> "SparseAdjacency":
        """Row-stochastic binarized adjacency (zero-degree rows stay zero, cached).

        Matches the seed GraphSAGE aggregation: ``(A > 0) / max(degree, 1)``.
        """
        def build():
            binary = self.binarized()
            degree = binary.row_sums()
            degree[degree == 0] = 1.0
            return binary.scale(row=1.0 / degree)
        return self._memoized("mean_normalized", build)

    def attention_structure(self) -> "SparseAdjacency":
        """Edge set used by attention: positive entries plus self loops (cached)."""
        return self._memoized("attention_structure",
                              lambda: self.binarized().with_self_loops())

    # ----------------------------------------------------------------- products
    def _transpose_plan(self) -> tuple[np.ndarray, np.ndarray]:
        """(permutation, indptr) that re-sorts stored entries by column.

        ``contrib[perm]`` is column-sorted, so ``segment_reduce(contrib[perm],
        t_indptr)`` scatters per-edge contributions into per-column outputs —
        the kernel behind :meth:`rmatmul` and the backward pass of sparse
        message passing.
        """
        def build():
            perm = np.lexsort((self.rows, self.indices))
            t_indptr = np.zeros(self.num_nodes + 1, dtype=np.int64)
            np.cumsum(np.bincount(self.indices, minlength=self.num_nodes),
                      out=t_indptr[1:])
            return perm, t_indptr
        return self._memoized("transpose_plan", build)

    def matmul(self, x: np.ndarray) -> np.ndarray:
        """``A @ x`` for a dense vector or matrix ``x``."""
        x = np.asarray(x, dtype=np.float64)
        contrib = self.data * x[self.indices] if x.ndim == 1 \
            else self.data[:, None] * x[self.indices]
        return segment_reduce(contrib, self.indptr)

    def rmatmul(self, g: np.ndarray) -> np.ndarray:
        """``A.T @ g`` for a dense vector or matrix ``g`` (no transpose copy)."""
        g = np.asarray(g, dtype=np.float64)
        contrib = self.data * g[self.rows] if g.ndim == 1 \
            else self.data[:, None] * g[self.rows]
        perm, t_indptr = self._transpose_plan()
        return segment_reduce(contrib[perm], t_indptr)

    def __repr__(self) -> str:
        return f"SparseAdjacency(n={self.num_nodes}, nnz={self.nnz})"
