"""Neighbourhood sampling used to build account-centred subgraphs (Eq. 2)."""

from __future__ import annotations

from typing import Hashable

import numpy as np

from repro.graph.txgraph import TxGraph

__all__ = ["top_k_neighbors", "ego_subgraph"]


def top_k_neighbors(graph: TxGraph, node: Hashable, k: int) -> list[Hashable]:
    """Return up to ``k`` neighbours of ``node``, highest-value first.

    Each neighbour is scored by its **best per-direction average transaction
    value**: for the (at most two) merged directed edges connecting it with
    ``node``, the maximum of ``edge.amount / edge.count`` — the per-direction
    mean transfer size of Section III-B1's value ranking.  Ties on that best
    average are broken by the **total** amount transferred across both
    directions (descending), and remaining ties by the string form of the
    node identifier (ascending), so the ranking is fully deterministic.
    Self-loops never rank.

    The scoring runs on the graph's edge columns (amount/count gathered by
    the CSR row index) — no :class:`~repro.graph.txgraph.Edge` object is
    materialised.  Totals fold out-edges before in-edges, the same
    accumulation order the edges_between-based loop used.
    """
    if node not in graph:
        return []
    idx = graph.node_index(node)
    src_ids, dst_ids, amount_col, count_col, _ts = graph.edge_arrays()
    out_slots = graph.out_slots(node)
    in_slots = graph.in_slots(node)
    others = np.concatenate([dst_ids[out_slots], src_ids[in_slots]])
    slots = np.concatenate([out_slots, in_slots])
    not_self = others != idx
    others, slots = others[not_self], slots[not_self]
    if not len(others):
        return []
    amounts = amount_col[slots]
    avgs = amounts / np.maximum(count_col[slots], 1)
    # Group by neighbour: totals are a left-fold from 0.0 in (out, in) order
    # via bincount — the same accumulation the per-edge loop performed — and
    # the best average is an exact max, order-independent.
    uniq, inverse = np.unique(others, return_inverse=True)
    totals = np.bincount(inverse, weights=amounts, minlength=len(uniq))
    best = np.full(len(uniq), -np.inf)
    np.maximum.at(best, inverse, avgs)
    best = np.maximum(best, 0.0)
    # Zero-copy lookup table: graph.nodes would copy the full node list per
    # call, dwarfing the O(deg) scoring on large graphs.
    node_order = graph.node_order
    ranked = sorted(
        zip(uniq.tolist(), best.tolist(), totals.tolist()),
        key=lambda item: (-item[1], -item[2], str(node_order[item[0]])))
    return [node_order[i] for i, _best, _total in ranked[:k]]


def ego_subgraph(graph: TxGraph, center: Hashable, hops: int = 2, k: int = 2000) -> TxGraph:
    """Extract the ``hops``-hop top-K ego subgraph around ``center``.

    This implements the iterative sampling of Eq. 2: starting from the centre,
    each frontier node contributes its top-K neighbours (by average transaction
    value) to the next frontier, and the union of all sampled nodes induces the
    returned subgraph.
    """
    if center not in graph:
        raise KeyError(f"center node {center!r} is not in the graph")
    selected: set[Hashable] = {center}
    frontier: set[Hashable] = {center}
    for _hop in range(hops):
        next_frontier: set[Hashable] = set()
        for node in frontier:
            # With at most k incident edges every neighbour ranks in the top-k,
            # so the scoring/sorting pass can be skipped outright; the centre
            # itself (a self-loop "neighbour") is already in ``selected``.
            if graph.degree(node) <= k:
                candidates = graph.neighbors(node)
            else:
                candidates = top_k_neighbors(graph, node, k)
            for neighbor in candidates:
                if neighbor not in selected:
                    next_frontier.add(neighbor)
        selected |= next_frontier
        frontier = next_frontier
        if not frontier:
            break
    return graph.subgraph(selected)
